#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>

namespace hedc::sim {

void Simulator::At(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  events_.push(Event{std::max(t, now_), next_seq_++, std::move(fn)});
}

void Simulator::After(SimTime delay, std::function<void()> fn) {
  At(now_ + std::max<SimTime>(delay, 0), std::move(fn));
}

uint64_t Simulator::Run() {
  uint64_t processed = 0;
  while (!events_.empty()) {
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.time;
    event.fn();
    ++processed;
  }
  return processed;
}

uint64_t Simulator::RunUntil(SimTime t) {
  uint64_t processed = 0;
  while (!events_.empty() && events_.top().time <= t) {
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.time;
    event.fn();
    ++processed;
  }
  now_ = std::max(now_, t);
  return processed;
}

void FcfsQueue::Submit(SimTime service_time,
                       std::function<void()> on_complete) {
  waiting_.push_back(Job{service_time, std::move(on_complete)});
  StartNext();
}

void FcfsQueue::StartNext() {
  while (free_servers_ > 0 && !waiting_.empty()) {
    Job job = std::move(waiting_.front());
    waiting_.pop_front();
    --free_servers_;
    ++busy_;
    busy_time_ += job.service_time;
    auto on_complete = std::make_shared<std::function<void()>>(
        std::move(job.on_complete));
    sim_->After(job.service_time, [this, on_complete] {
      ++free_servers_;
      --busy_;
      ++completed_;
      (*on_complete)();
      StartNext();
    });
  }
}

double PsCpu::RatePerJob() const {
  int n = static_cast<int>(jobs_.size());
  if (n == 0) return 0;
  double rate = std::min(1.0, cores_ / static_cast<double>(n));
  if (stretch_) {
    double s = stretch_(n);
    if (s > 1.0) rate /= s;
  }
  return rate;
}

void PsCpu::AdvanceTo(SimTime t) {
  double rate = RatePerJob();
  double elapsed = t - last_update_;
  if (elapsed > 0 && rate > 0) {
    for (Job& job : jobs_) {
      job.remaining -= elapsed * rate;
      work_done_ += elapsed * rate;
    }
  }
  last_update_ = t;
}

void PsCpu::ScheduleNextCompletion() {
  ++epoch_;
  if (jobs_.empty()) return;
  double rate = RatePerJob();
  if (rate <= 0) return;
  double min_remaining = std::numeric_limits<double>::max();
  for (const Job& job : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  min_remaining = std::max(min_remaining, 0.0);
  uint64_t epoch = epoch_;
  sim_->After(min_remaining / rate, [this, epoch] {
    if (epoch != epoch_) return;  // stale: job set changed since scheduling
    AdvanceTo(sim_->now());
    // Complete every job that has (numerically) finished.
    std::vector<std::function<void()>> callbacks;
    for (size_t i = 0; i < jobs_.size();) {
      if (jobs_[i].remaining <= 1e-12) {
        callbacks.push_back(std::move(jobs_[i].on_complete));
        jobs_[i] = std::move(jobs_.back());
        jobs_.pop_back();
        ++completed_;
      } else {
        ++i;
      }
    }
    ScheduleNextCompletion();
    for (auto& cb : callbacks) cb();
  });
}

void PsCpu::Submit(double demand, std::function<void()> on_complete) {
  AdvanceTo(sim_->now());
  jobs_.push_back(Job{std::max(demand, 0.0), std::move(on_complete),
                      next_job_id_++});
  ScheduleNextCompletion();
}

}  // namespace hedc::sim
