// Discrete-event simulation engine.
//
// Substitute for the paper's 100-machine test bed (DESIGN.md §2): a
// virtual-time event loop plus the two queueing resources the evaluation
// needs — FCFS multi-server stations (database, disks, DM operation
// pipelines) and processor-sharing CPUs (web/application-logic nodes,
// IDL hosts).
#ifndef HEDC_SIM_SIMULATOR_H_
#define HEDC_SIM_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

namespace hedc::sim {

using SimTime = double;  // virtual seconds

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now).
  void At(SimTime t, std::function<void()> fn);
  // Schedules `fn` after `delay` seconds.
  void After(SimTime delay, std::function<void()> fn);

  // Runs until the event queue drains. Returns events processed.
  uint64_t Run();
  // Runs until virtual time `t` (events at exactly t are processed).
  uint64_t RunUntil(SimTime t);

  bool empty() const { return events_.empty(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO tie-break
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
};

// First-come-first-served station with `servers` identical servers.
class FcfsQueue {
 public:
  FcfsQueue(Simulator* sim, int servers)
      : sim_(sim), free_servers_(servers) {}

  // Enqueues a job needing `service_time`; `on_complete` fires when done.
  void Submit(SimTime service_time, std::function<void()> on_complete);

  int queue_length() const { return static_cast<int>(waiting_.size()); }
  int busy_servers() const { return busy_; }
  uint64_t completed() const { return completed_; }
  SimTime busy_time() const { return busy_time_; }  // aggregate service time

 private:
  struct Job {
    SimTime service_time;
    std::function<void()> on_complete;
  };
  void StartNext();

  Simulator* sim_;
  int free_servers_;
  int busy_ = 0;
  std::deque<Job> waiting_;
  uint64_t completed_ = 0;
  SimTime busy_time_ = 0;
};

// Processor-sharing CPU with `cores` cores: n concurrent jobs each
// progress at rate min(1, cores/n). An optional stretch function models
// concurrency-dependent overhead (memory pressure, context switching):
// the *demand* of a job is fixed at submit time by the caller; the
// per-job service rate is divided by stretch(n).
class PsCpu {
 public:
  PsCpu(Simulator* sim, double cores)
      : sim_(sim), cores_(cores) {}

  // stretch(n) >= 1; applied to the rate while n jobs are active.
  void SetStretchFunction(std::function<double(int)> stretch) {
    stretch_ = std::move(stretch);
  }

  void Submit(double demand, std::function<void()> on_complete);

  int active_jobs() const { return static_cast<int>(jobs_.size()); }
  uint64_t completed() const { return completed_; }
  // Fraction of capacity used so far (integral of rate / cores / elapsed).
  double utilization(SimTime elapsed) const {
    return elapsed > 0 ? work_done_ / (cores_ * elapsed) : 0;
  }

 private:
  struct Job {
    double remaining;
    std::function<void()> on_complete;
    uint64_t id;
  };

  double RatePerJob() const;
  void AdvanceTo(SimTime t);
  void ScheduleNextCompletion();

  Simulator* sim_;
  double cores_;
  std::function<double(int)> stretch_;
  std::vector<Job> jobs_;
  SimTime last_update_ = 0;
  uint64_t epoch_ = 0;  // invalidates stale completion events
  uint64_t next_job_id_ = 0;
  uint64_t completed_ = 0;
  double work_done_ = 0;
};

// Streaming mean/min/max accumulator for sojourn times etc.
class Accumulator {
 public:
  void Add(double value) {
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (count_ == 1 || value > max_) max_ = value;
  }
  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace hedc::sim

#endif  // HEDC_SIM_SIMULATOR_H_
