// Range-partitioned wavelet-encoded materialized views and the density /
// extent plots built from them (§3.4, §6.3).
//
// A PartitionedView covers a 1-D domain (e.g. observation time) split into
// fixed-width partitions; each partition's signal is wavelet-encoded
// independently, so a range query decodes only overlapping partitions and
// can trade fidelity for speed via a coefficient budget.
#ifndef HEDC_WAVELET_VIEWS_H_
#define HEDC_WAVELET_VIEWS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "wavelet/codec.h"

namespace hedc::wavelet {

class PartitionedView {
 public:
  struct Options {
    double domain_lo = 0;
    double domain_hi = 1;
    size_t num_partitions = 16;
    size_t bins_per_partition = 256;
    CodecOptions codec;
  };

  // Error-bounded approximate aggregate over a domain range, computed
  // from coarse coefficient prefixes (see PrefixInfo in codec.h for the
  // bound derivation; per-partition bounds add).
  struct RangeAggregate {
    double sum = 0;          // approximate sum of bin values in range
    double error_bound = 0;  // |true sum - sum| <= error_bound
    size_t bins = 0;         // bins contributing to the sum
    size_t bytes_read = 0;   // encoded bytes the prefixes required
  };

  // Builds the view from (position, value) samples: samples are binned
  // (summed) over the domain, then each partition is encoded as a
  // prefix-decodable progressive (HWV3) stream.
  static Result<PartitionedView> Build(
      const std::vector<std::pair<double, double>>& samples,
      const Options& options);

  // Reconstructs bin values covering [lo, hi] using `fraction` of each
  // overlapping partition's coefficients. Returns the bin values and
  // writes the domain position of the first returned bin to *start_pos.
  // Semantics at the edges: hi < lo is InvalidArgument; a range that
  // does not intersect the domain yields an empty result; fraction is
  // clamped to (0, 1] (<= 0 decodes the single coarsest coefficient,
  // > 1 decodes everything); single-partition views behave like any
  // other size.
  Result<std::vector<double>> Query(double lo, double hi, double fraction,
                                    double* start_pos) const;

  // Query at a resolution level: decodes only the per-partition prefix
  // covering levels 0..level (level 0 = per-partition mean). Levels
  // beyond the finest clamp to a full decode.
  Result<std::vector<double>> QueryResolution(double lo, double hi,
                                              size_t level,
                                              double* start_pos) const;

  // Approximate sum of bin values over [lo, hi) from level-`level`
  // prefixes, with a deterministic error bound.
  Result<RangeAggregate> AggregateRange(double lo, double hi,
                                        size_t level) const;

  // Resolution levels per partition (log2 of padded bins + 1).
  size_t ResolutionLevelCount() const;

  // Serialized size of the partitions overlapping [lo, hi] — the bytes a
  // client must download for such a query.
  size_t BytesForRange(double lo, double hi) const;
  // Same, but only the prefix bytes needed for resolution `level`.
  size_t PrefixBytesForRange(double lo, double hi, size_t level) const;
  size_t TotalBytes() const;

  const Options& options() const { return options_; }
  size_t num_partitions() const { return partitions_.size(); }
  double bin_width() const { return bin_width_; }

 private:
  // Partitions overlapping the clamped [lo, hi]; false when the range
  // misses the domain entirely.
  bool PartitionSpan(double lo, double hi, size_t* first,
                     size_t* last) const;

  Options options_;
  double bin_width_ = 0;
  std::vector<std::vector<uint8_t>> partitions_;  // encoded streams
};

// Density plot: tuples per (x, y) bin over user-specified ranges —
// "density (number of tuples per bin) ... plots" (§6.3).
struct DensityPlot {
  size_t x_bins = 0;
  size_t y_bins = 0;
  double x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
  std::vector<double> counts;  // row-major [y][x]

  double At(size_t x, size_t y) const { return counts[y * x_bins + x]; }
  double MaxCount() const;
};

// Extent plot entry: location and extent of each tuple/cluster (§6.3).
struct Extent {
  double x_lo, x_hi;
  double y_lo, y_hi;
  int64_t tuple_count;
};

// Builds a density plot from (x, y) points.
DensityPlot BuildDensityPlot(const std::vector<std::pair<double, double>>& points,
                             size_t x_bins, size_t y_bins, double x_lo,
                             double x_hi, double y_lo, double y_hi);

// Greedy grid-clustering of points into extents: adjacent occupied cells
// merge into one extent.
std::vector<Extent> BuildExtentPlot(
    const std::vector<std::pair<double, double>>& points, size_t grid,
    double x_lo, double x_hi, double y_lo, double y_hi);

}  // namespace hedc::wavelet

#endif  // HEDC_WAVELET_VIEWS_H_
