// Progressive wavelet codec.
//
// Coefficients are quantized and stored in decreasing-magnitude order, so
// any prefix of the stream reconstructs the best possible approximation
// for that byte budget ("the client works on approximated and aggregated
// versions of the original data", §6.3). Decoding with fraction = 1.0 is
// lossless up to quantization.
#ifndef HEDC_WAVELET_CODEC_H_
#define HEDC_WAVELET_CODEC_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace hedc::wavelet {

struct CodecOptions {
  // Quantization step: coefficients are stored as round(c / step).
  // Smaller = more fidelity, larger stream.
  double quant_step = 1e-6;
  // Coefficients with |c| < threshold are dropped entirely.
  double threshold = 0.0;
};

// Encodes `signal` (any length; padded internally): Haar transform,
// threshold, quantize, magnitude-order.
std::vector<uint8_t> EncodeSignal(const std::vector<double>& signal,
                                  const CodecOptions& options = {});

// Decodes using roughly the first `fraction` (0..1] of the coefficient
// stream. fraction >= 1 uses everything.
Result<std::vector<double>> DecodeSignal(const std::vector<uint8_t>& stream,
                                         double fraction = 1.0);

// Number of coefficients retained in the stream (post-threshold).
Result<size_t> CoefficientCount(const std::vector<uint8_t>& stream);

// Relative L2 error between two signals (||a-b|| / ||a||; 0 when a == 0).
double RelativeL2Error(const std::vector<double>& reference,
                       const std::vector<double>& approximation);

// --- 2-D progressive codec (image previews in the StreamCorder) --------

// Encodes a row-major `width` x `height` image (any dimensions; padded to
// powers of two internally) with the 2-D Haar transform and the same
// magnitude-ordered coefficient stream as EncodeSignal.
std::vector<uint8_t> EncodeImage2d(const std::vector<double>& pixels,
                                   size_t width, size_t height,
                                   const CodecOptions& options = {});

// Decodes the first `fraction` of the coefficients; returns the pixels
// and writes the dimensions.
Result<std::vector<double>> DecodeImage2d(const std::vector<uint8_t>& stream,
                                          double fraction, size_t* width,
                                          size_t* height);

}  // namespace hedc::wavelet

#endif  // HEDC_WAVELET_CODEC_H_
