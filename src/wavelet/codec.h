// Progressive wavelet codec.
//
// Two stream formats share the Haar transform and varint coefficient
// records:
//  - HWV1 (EncodeSignal): coefficients in decreasing-magnitude order, so
//    any *coefficient-count* prefix reconstructs the best approximation
//    for that budget ("the client works on approximated and aggregated
//    versions of the original data", §6.3).
//  - HWV3 (EncodeSignalProgressive): coefficients ordered by resolution
//    level, then by decreasing magnitude within each level, with a
//    per-level byte-offset table in the header. Any *byte* prefix of the
//    stream is decodable on its own, so one stored stream serves every
//    resolution: a server slices the first K bytes and the client
//    reconstructs the best K-byte approximation plus a deterministic
//    error bound from the energy accounting carried in the header.
//
// Decoding with fraction = 1.0 (or the full HWV3 stream) is lossless up
// to quantization, and the reconstructed samples are bit-identical
// between the two formats for the same signal and options: the fill
// order of the coefficient array does not change its contents.
#ifndef HEDC_WAVELET_CODEC_H_
#define HEDC_WAVELET_CODEC_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/status.h"

namespace hedc::wavelet {

struct CodecOptions {
  // Quantization step: coefficients are stored as round(c / step).
  // Smaller = more fidelity, larger stream.
  double quant_step = 1e-6;
  // Coefficients with |c| < threshold are dropped entirely.
  double threshold = 0.0;
};

// Encodes `signal` (any length; padded internally): Haar transform,
// threshold, quantize, magnitude-order.
std::vector<uint8_t> EncodeSignal(const std::vector<double>& signal,
                                  const CodecOptions& options = {});

// Decodes using roughly the first `fraction` (0..1] of the coefficient
// stream. fraction >= 1 uses everything. Accepts both HWV1 and HWV3
// streams (for HWV3 the fraction selects a coefficient-count prefix in
// stored, i.e. level-major, order).
Result<std::vector<double>> DecodeSignal(const std::vector<uint8_t>& stream,
                                         double fraction = 1.0);

// Number of coefficients retained in the stream (post-threshold).
// Accepts both formats.
Result<size_t> CoefficientCount(const std::vector<uint8_t>& stream);

// Relative L2 error between two signals (||a-b|| / ||a||; 0 when a == 0).
double RelativeL2Error(const std::vector<double>& reference,
                       const std::vector<double>& approximation);

// --- prefix-decodable progressive streams (HWV3) -----------------------

// What a byte-prefix decode reconstructed, plus the energy accounting
// needed for deterministic error bars. With the orthonormal Haar basis
// the L2 norm of the reconstruction residual equals the L2 norm of the
// missing coefficients, so the header's energy totals turn a truncated
// stream into a *bounded* approximation:
//   ||x - x_hat||_2 <= sqrt(undecoded) + sqrt(dropped)
//                      + (quant_step / 2) * sqrt(coeffs_total)
// (triangle inequality over the three residual components: retained
// coefficients missing from the prefix, coefficients dropped at encode
// time, and per-coefficient quantization error). Range aggregates follow
// by Cauchy-Schwarz: |sum over R of (x_i - x_hat_i)| <=
// sqrt(|R|) * L2ErrorBound().
struct PrefixInfo {
  size_t original_len = 0;
  size_t padded_len = 0;
  size_t coeffs_total = 0;    // retained in the full stream
  size_t coeffs_decoded = 0;  // present in this prefix
  size_t levels_total = 0;    // resolution levels (log2(padded_len) + 1)
  size_t levels_complete = 0; // levels fully covered by this prefix
  size_t prefix_bytes = 0;    // bytes of the stream actually consumed
  size_t full_bytes = 0;      // header-declared size of the full stream
  double quant_step = 0;
  double undecoded_energy = 0; // retained energy missing from the prefix
  double dropped_energy = 0;   // energy discarded at encode time

  // Upper bound on ||original - reconstruction||_2.
  double L2ErrorBound() const {
    return std::sqrt(undecoded_energy) + std::sqrt(dropped_energy) +
           (quant_step / 2) * std::sqrt(static_cast<double>(coeffs_total));
  }
  // Upper bound on |sum over any `range_bins` bins of the residual|.
  double SumErrorBound(size_t range_bins) const {
    return std::sqrt(static_cast<double>(range_bins)) * L2ErrorBound();
  }
};

// Encodes `signal` as a prefix-decodable HWV3 stream (level-major
// coefficient order, per-level byte offsets, energy accounting).
std::vector<uint8_t> EncodeSignalProgressive(
    const std::vector<double>& signal, const CodecOptions& options = {});

// True if `stream` starts with the HWV3 magic.
bool IsProgressiveStream(const std::vector<uint8_t>& stream);

// Number of resolution levels in an HWV3 stream: level 0 is the single
// scaling (DC) coefficient, level l adds detail indices [2^(l-1), 2^l).
Result<size_t> ResolutionLevels(const std::vector<uint8_t>& stream);

// Size in bytes of the shortest prefix that fully covers resolution
// levels 0..level (header included). level >= levels-1 returns the full
// stream size.
Result<size_t> PrefixBytesForLevel(const std::vector<uint8_t>& stream,
                                   size_t level);

// Copies the prefix covering levels 0..level out of `stream` — what a
// server ships for a coarse request without touching the tail bytes.
Result<std::vector<uint8_t>> SlicePrefixForLevel(
    const std::vector<uint8_t>& stream, size_t level);

// Decodes the first `size` bytes of an HWV3 stream. The header must be
// complete; coefficient records are consumed while they fit (a record
// split by the prefix boundary is ignored, not an error — that is the
// expected shape of a truncated delivery). Corruption is still detected:
// bad magic, inconsistent header, out-of-range indices.
Result<std::vector<double>> DecodeSignalPrefix(const uint8_t* data,
                                               size_t size,
                                               PrefixInfo* info = nullptr);
inline Result<std::vector<double>> DecodeSignalPrefix(
    const std::vector<uint8_t>& prefix, PrefixInfo* info = nullptr) {
  return DecodeSignalPrefix(prefix.data(), prefix.size(), info);
}

// --- 2-D progressive codec (image previews in the StreamCorder) --------

// Encodes a row-major `width` x `height` image (any dimensions; padded to
// powers of two internally) with the 2-D Haar transform and the same
// magnitude-ordered coefficient stream as EncodeSignal.
std::vector<uint8_t> EncodeImage2d(const std::vector<double>& pixels,
                                   size_t width, size_t height,
                                   const CodecOptions& options = {});

// Decodes the first `fraction` of the coefficients; returns the pixels
// and writes the dimensions.
Result<std::vector<double>> DecodeImage2d(const std::vector<uint8_t>& stream,
                                          double fraction, size_t* width,
                                          size_t* height);

}  // namespace hedc::wavelet

#endif  // HEDC_WAVELET_CODEC_H_
