#include "wavelet/codec.h"

#include <algorithm>
#include <cmath>

#include "core/bytes.h"
#include "wavelet/haar.h"

namespace hedc::wavelet {

namespace {
constexpr uint32_t kCodecMagic = 0x48575631;        // "HWV1"
constexpr uint32_t kCodec2dMagic = 0x48575632;      // "HWV2"
constexpr uint32_t kProgressiveMagic = 0x48575633;  // "HWV3"

// Streams travel over HTTP now, so header lengths are attacker
// controlled: cap the coefficient-array allocation before trusting a
// decoded varint (4M doubles = 32 MB, far above any real view).
constexpr uint64_t kMaxPaddedLen = 1ull << 22;

bool IsPow2(uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Resolution level of a coefficient index in the fully-decomposed Haar
// layout: index 0 is the scaling (DC) coefficient (level 0); detail
// level l >= 1 occupies indices [2^(l-1), 2^l).
size_t LevelOfIndex(size_t index) {
  size_t level = 0;
  while ((1ull << level) <= index) ++level;
  return level;  // == floor(log2(index)) + 1 for index >= 1
}

size_t LevelCount(size_t padded_len) {
  size_t levels = 1;
  while ((1ull << (levels - 1)) < padded_len) ++levels;
  return levels;  // log2(padded_len) + 1
}

struct Entry {
  uint32_t index;
  double value;
};

// Haar transform + threshold/quantization survivors, shared by both
// encoders (they differ only in coefficient order and header).
std::vector<Entry> RetainedCoefficients(const std::vector<double>& signal,
                                        const CodecOptions& options,
                                        size_t* original_len,
                                        size_t* padded_len,
                                        double* dropped_energy) {
  std::vector<double> coeffs = signal;
  *original_len = coeffs.size();
  PadToPow2(&coeffs);
  HaarForward(&coeffs);
  *padded_len = coeffs.size();

  std::vector<Entry> entries;
  entries.reserve(coeffs.size());
  double dropped = 0;
  for (size_t i = 0; i < coeffs.size(); ++i) {
    if (std::fabs(coeffs[i]) >= options.threshold &&
        std::fabs(coeffs[i]) >= options.quant_step / 2) {
      entries.push_back({static_cast<uint32_t>(i), coeffs[i]});
    } else {
      dropped += coeffs[i] * coeffs[i];
    }
  }
  *dropped_energy = dropped;
  return entries;
}

}  // namespace

std::vector<uint8_t> EncodeSignal(const std::vector<double>& signal,
                                  const CodecOptions& options) {
  size_t original_len = 0, padded_len = 0;
  double dropped_energy = 0;
  std::vector<Entry> entries = RetainedCoefficients(
      signal, options, &original_len, &padded_len, &dropped_energy);
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::fabs(a.value) > std::fabs(b.value);
            });

  ByteBuffer out;
  out.PutU32(kCodecMagic);
  out.PutVarint(original_len);
  out.PutVarint(padded_len);
  out.PutF64(options.quant_step);
  out.PutVarint(entries.size());
  for (const Entry& e : entries) {
    out.PutVarint(e.index);
    out.PutSignedVarint(
        static_cast<int64_t>(std::llround(e.value / options.quant_step)));
  }
  return std::move(out).TakeData();
}

std::vector<uint8_t> EncodeSignalProgressive(const std::vector<double>& signal,
                                             const CodecOptions& options) {
  size_t original_len = 0, padded_len = 0;
  double dropped_energy = 0;
  std::vector<Entry> entries = RetainedCoefficients(
      signal, options, &original_len, &padded_len, &dropped_energy);
  // Level-major order; best-first (decreasing magnitude) within a level
  // so even a prefix that splits a level is the best prefix of that
  // length. Index is the tiebreak for a deterministic stream.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              size_t la = LevelOfIndex(a.index), lb = LevelOfIndex(b.index);
              if (la != lb) return la < lb;
              double ma = std::fabs(a.value), mb = std::fabs(b.value);
              if (ma != mb) return ma > mb;
              return a.index < b.index;
            });

  size_t num_levels = LevelCount(padded_len);

  // Payload first: per-level record counts and end offsets feed the
  // header's table, and the retained-energy total is accumulated over
  // the *dequantized* values in storage order so a full-prefix decode
  // reproduces it bit-exactly.
  ByteBuffer payload;
  std::vector<uint64_t> level_counts(num_levels, 0);
  std::vector<uint64_t> level_ends(num_levels, 0);
  double retained_energy = 0;
  size_t cursor = 0;
  for (size_t level = 0; level < num_levels; ++level) {
    while (cursor < entries.size() &&
           LevelOfIndex(entries[cursor].index) == level) {
      const Entry& e = entries[cursor];
      int64_t quantized =
          static_cast<int64_t>(std::llround(e.value / options.quant_step));
      payload.PutVarint(e.index);
      payload.PutSignedVarint(quantized);
      double dq = static_cast<double>(quantized) * options.quant_step;
      retained_energy += dq * dq;
      ++level_counts[level];
      ++cursor;
    }
    level_ends[level] = payload.size();
  }

  ByteBuffer out;
  out.PutU32(kProgressiveMagic);
  out.PutVarint(original_len);
  out.PutVarint(padded_len);
  out.PutF64(options.quant_step);
  out.PutF64(retained_energy);
  out.PutF64(dropped_energy);
  out.PutVarint(entries.size());
  out.PutVarint(num_levels);
  for (size_t level = 0; level < num_levels; ++level) {
    out.PutVarint(level_counts[level]);
    out.PutVarint(level_ends[level]);
  }
  out.PutBytes(payload.data().data(), payload.size());
  return std::move(out).TakeData();
}

namespace {

struct StreamHeader {
  size_t original_len;
  size_t padded_len;
  double quant_step;
  size_t num_coeffs;
};

Status ReadHeader(ByteReader* reader, StreamHeader* header) {
  uint32_t magic = 0;
  HEDC_RETURN_IF_ERROR(reader->GetU32(&magic));
  if (magic != kCodecMagic) {
    return Status::Corruption("not a wavelet stream (bad magic)");
  }
  uint64_t original_len = 0, padded_len = 0, num_coeffs = 0;
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&original_len));
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&padded_len));
  HEDC_RETURN_IF_ERROR(reader->GetF64(&header->quant_step));
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&num_coeffs));
  header->original_len = original_len;
  header->padded_len = padded_len;
  header->num_coeffs = num_coeffs;
  if (padded_len == 0 || padded_len > kMaxPaddedLen || !IsPow2(padded_len) ||
      padded_len < original_len || !std::isfinite(header->quant_step) ||
      header->quant_step <= 0) {
    return Status::Corruption("wavelet stream header invalid");
  }
  // Each record is at least two bytes; a count that cannot fit in the
  // remaining stream is hostile, not merely truncated.
  if (num_coeffs > padded_len || num_coeffs * 2 > reader->remaining()) {
    return Status::Corruption("wavelet coefficient count exceeds stream");
  }
  return Status::Ok();
}

// HWV3 header plus the derived payload geometry.
struct ProgressiveHeader {
  size_t original_len = 0;
  size_t padded_len = 0;
  double quant_step = 0;
  double retained_energy = 0;
  double dropped_energy = 0;
  size_t num_coeffs = 0;
  size_t num_levels = 0;
  std::vector<uint64_t> level_counts;
  std::vector<uint64_t> level_ends;  // payload-relative byte offsets
  size_t header_bytes = 0;           // stream offset where payload starts
};

Status ReadProgressiveHeader(ByteReader* reader, ProgressiveHeader* h) {
  uint32_t magic = 0;
  HEDC_RETURN_IF_ERROR(reader->GetU32(&magic));
  if (magic != kProgressiveMagic) {
    return Status::Corruption("not a progressive wavelet stream (bad magic)");
  }
  uint64_t original_len = 0, padded_len = 0, num_coeffs = 0, num_levels = 0;
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&original_len));
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&padded_len));
  HEDC_RETURN_IF_ERROR(reader->GetF64(&h->quant_step));
  HEDC_RETURN_IF_ERROR(reader->GetF64(&h->retained_energy));
  HEDC_RETURN_IF_ERROR(reader->GetF64(&h->dropped_energy));
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&num_coeffs));
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&num_levels));
  if (padded_len == 0 || padded_len > kMaxPaddedLen || !IsPow2(padded_len) ||
      padded_len < original_len || !std::isfinite(h->quant_step) ||
      h->quant_step <= 0 || !std::isfinite(h->retained_energy) ||
      h->retained_energy < 0 || !std::isfinite(h->dropped_energy) ||
      h->dropped_energy < 0) {
    return Status::Corruption("progressive stream header invalid");
  }
  if (num_levels != LevelCount(padded_len) || num_coeffs > padded_len) {
    return Status::Corruption("progressive stream geometry invalid");
  }
  h->original_len = original_len;
  h->padded_len = padded_len;
  h->num_coeffs = num_coeffs;
  h->num_levels = num_levels;
  h->level_counts.resize(num_levels);
  h->level_ends.resize(num_levels);
  uint64_t total_count = 0;
  uint64_t prev_end = 0;
  for (size_t l = 0; l < num_levels; ++l) {
    HEDC_RETURN_IF_ERROR(reader->GetVarint(&h->level_counts[l]));
    HEDC_RETURN_IF_ERROR(reader->GetVarint(&h->level_ends[l]));
    // Level l has at most 2^(l-1) coefficients (1 for level 0).
    uint64_t capacity = l == 0 ? 1 : (1ull << (l - 1));
    if (h->level_counts[l] > capacity || h->level_ends[l] < prev_end) {
      return Status::Corruption("progressive level table invalid");
    }
    total_count += h->level_counts[l];
    prev_end = h->level_ends[l];
  }
  if (total_count != num_coeffs || prev_end / 2 < num_coeffs) {
    return Status::Corruption("progressive level table inconsistent");
  }
  h->header_bytes = reader->position();
  return Status::Ok();
}

Result<std::vector<double>> DecodeProgressive(const uint8_t* data,
                                              size_t size, size_t max_coeffs,
                                              PrefixInfo* info) {
  ByteReader reader(data, size);
  ProgressiveHeader header;
  HEDC_RETURN_IF_ERROR(ReadProgressiveHeader(&reader, &header));

  size_t payload_total = header.level_ends.empty()
                             ? 0
                             : static_cast<size_t>(header.level_ends.back());
  // Stop at whichever comes first: the prefix boundary or the declared
  // end of the payload (trailing junk past it is never parsed). When the
  // whole stream is present a parse failure is corruption; in a shorter
  // prefix a record split by the boundary is the expected tail of a
  // truncated delivery and decoding simply stops there.
  bool full_stream = size >= header.header_bytes + payload_total;
  size_t limit = std::min(size, header.header_bytes + payload_total);

  std::vector<double> coeffs(header.padded_len, 0.0);
  double decoded_energy = 0;
  size_t decoded = 0;
  while (decoded < max_coeffs && decoded < header.num_coeffs &&
         reader.position() < limit) {
    uint64_t index = 0;
    int64_t quantized = 0;
    if (!reader.GetVarint(&index).ok() ||
        !reader.GetSignedVarint(&quantized).ok() ||
        reader.position() > limit) {
      if (full_stream) {
        return Status::Corruption("progressive coefficient record invalid");
      }
      break;
    }
    if (index >= header.padded_len) {
      return Status::Corruption("wavelet coefficient index out of range");
    }
    double value = static_cast<double>(quantized) * header.quant_step;
    coeffs[index] = value;
    decoded_energy += value * value;
    ++decoded;
  }
  if (full_stream && max_coeffs >= header.num_coeffs &&
      decoded < header.num_coeffs) {
    return Status::Corruption("progressive payload short of coefficients");
  }

  if (info != nullptr) {
    info->original_len = header.original_len;
    info->padded_len = header.padded_len;
    info->coeffs_total = header.num_coeffs;
    info->coeffs_decoded = decoded;
    info->levels_total = header.num_levels;
    info->prefix_bytes = std::min(size, header.header_bytes + payload_total);
    info->full_bytes = header.header_bytes + payload_total;
    info->quant_step = header.quant_step;
    // Summation order matches the encoder (storage order), so a full
    // decode cancels exactly; clamp guards rounding on partial decodes.
    info->undecoded_energy =
        std::max(0.0, header.retained_energy - decoded_energy);
    info->dropped_energy = header.dropped_energy;
    info->levels_complete = 0;
    size_t cumulative = 0;
    for (size_t l = 0; l < header.num_levels; ++l) {
      cumulative += header.level_counts[l];
      if (decoded >= cumulative) {
        info->levels_complete = l + 1;
      } else {
        break;
      }
    }
  }

  HaarInverse(&coeffs);
  coeffs.resize(header.original_len);
  return coeffs;
}

}  // namespace

Result<std::vector<double>> DecodeSignal(const std::vector<uint8_t>& stream,
                                         double fraction) {
  if (stream.size() >= 4) {
    uint32_t magic = static_cast<uint32_t>(stream[0]) |
                     static_cast<uint32_t>(stream[1]) << 8 |
                     static_cast<uint32_t>(stream[2]) << 16 |
                     static_cast<uint32_t>(stream[3]) << 24;
    if (magic == kProgressiveMagic) {
      ByteReader peek(stream);
      ProgressiveHeader header;
      HEDC_RETURN_IF_ERROR(ReadProgressiveHeader(&peek, &header));
      size_t take = header.num_coeffs;
      if (fraction < 1.0) {
        take = static_cast<size_t>(
            std::ceil(fraction * static_cast<double>(header.num_coeffs)));
        if (fraction > 0 && take == 0) take = 1;
      }
      return DecodeProgressive(stream.data(), stream.size(), take, nullptr);
    }
  }

  ByteReader reader(stream);
  StreamHeader header;
  HEDC_RETURN_IF_ERROR(ReadHeader(&reader, &header));

  size_t take = header.num_coeffs;
  if (fraction < 1.0) {
    take = static_cast<size_t>(
        std::ceil(fraction * static_cast<double>(header.num_coeffs)));
    if (fraction > 0 && take == 0) take = 1;
  }

  std::vector<double> coeffs(header.padded_len, 0.0);
  for (size_t i = 0; i < header.num_coeffs && i < take; ++i) {
    uint64_t index = 0;
    int64_t quantized = 0;
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&index));
    HEDC_RETURN_IF_ERROR(reader.GetSignedVarint(&quantized));
    if (index >= header.padded_len) {
      return Status::Corruption("wavelet coefficient index out of range");
    }
    coeffs[index] = static_cast<double>(quantized) * header.quant_step;
  }

  HaarInverse(&coeffs);
  coeffs.resize(header.original_len);
  return coeffs;
}

Result<std::vector<double>> DecodeSignalPrefix(const uint8_t* data,
                                               size_t size,
                                               PrefixInfo* info) {
  return DecodeProgressive(data, size, static_cast<size_t>(-1), info);
}

bool IsProgressiveStream(const std::vector<uint8_t>& stream) {
  if (stream.size() < 4) return false;
  uint32_t magic = static_cast<uint32_t>(stream[0]) |
                   static_cast<uint32_t>(stream[1]) << 8 |
                   static_cast<uint32_t>(stream[2]) << 16 |
                   static_cast<uint32_t>(stream[3]) << 24;
  return magic == kProgressiveMagic;
}

Result<size_t> ResolutionLevels(const std::vector<uint8_t>& stream) {
  ByteReader reader(stream);
  ProgressiveHeader header;
  HEDC_RETURN_IF_ERROR(ReadProgressiveHeader(&reader, &header));
  return header.num_levels;
}

Result<size_t> PrefixBytesForLevel(const std::vector<uint8_t>& stream,
                                   size_t level) {
  ByteReader reader(stream);
  ProgressiveHeader header;
  HEDC_RETURN_IF_ERROR(ReadProgressiveHeader(&reader, &header));
  if (level >= header.num_levels) level = header.num_levels - 1;
  size_t bytes =
      header.header_bytes + static_cast<size_t>(header.level_ends[level]);
  return std::min(bytes, stream.size());
}

Result<std::vector<uint8_t>> SlicePrefixForLevel(
    const std::vector<uint8_t>& stream, size_t level) {
  HEDC_ASSIGN_OR_RETURN(size_t bytes, PrefixBytesForLevel(stream, level));
  return std::vector<uint8_t>(stream.begin(),
                              stream.begin() + static_cast<int64_t>(bytes));
}

Result<size_t> CoefficientCount(const std::vector<uint8_t>& stream) {
  if (IsProgressiveStream(stream)) {
    ByteReader reader(stream);
    ProgressiveHeader header;
    HEDC_RETURN_IF_ERROR(ReadProgressiveHeader(&reader, &header));
    return header.num_coeffs;
  }
  ByteReader reader(stream);
  StreamHeader header;
  HEDC_RETURN_IF_ERROR(ReadHeader(&reader, &header));
  return header.num_coeffs;
}

std::vector<uint8_t> EncodeImage2d(const std::vector<double>& pixels,
                                   size_t width, size_t height,
                                   const CodecOptions& options) {
  size_t pw = NextPow2(std::max<size_t>(width, 1));
  size_t ph = NextPow2(std::max<size_t>(height, 1));
  std::vector<double> padded(pw * ph, 0.0);
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      padded[y * pw + x] = pixels[y * width + x];
    }
    // Step-extend rows.
    for (size_t x = width; x < pw; ++x) {
      padded[y * pw + x] = width > 0 ? pixels[y * width + width - 1] : 0;
    }
  }
  for (size_t y = height; y < ph; ++y) {
    for (size_t x = 0; x < pw; ++x) {
      padded[y * pw + x] = height > 0 ? padded[(height - 1) * pw + x] : 0;
    }
  }
  Haar2dForward(&padded, ph, pw);

  struct Entry2d {
    uint32_t index;
    double value;
  };
  std::vector<Entry2d> entries;
  entries.reserve(padded.size());
  for (size_t i = 0; i < padded.size(); ++i) {
    if (std::fabs(padded[i]) >= options.threshold &&
        std::fabs(padded[i]) >= options.quant_step / 2) {
      entries.push_back({static_cast<uint32_t>(i), padded[i]});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry2d& a, const Entry2d& b) {
              return std::fabs(a.value) > std::fabs(b.value);
            });

  ByteBuffer out;
  out.PutU32(kCodec2dMagic);
  out.PutVarint(width);
  out.PutVarint(height);
  out.PutVarint(pw);
  out.PutVarint(ph);
  out.PutF64(options.quant_step);
  out.PutVarint(entries.size());
  for (const Entry2d& e : entries) {
    out.PutVarint(e.index);
    out.PutSignedVarint(
        static_cast<int64_t>(std::llround(e.value / options.quant_step)));
  }
  return std::move(out).TakeData();
}

Result<std::vector<double>> DecodeImage2d(const std::vector<uint8_t>& stream,
                                          double fraction, size_t* width,
                                          size_t* height) {
  ByteReader reader(stream);
  uint32_t magic = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kCodec2dMagic) {
    return Status::Corruption("not a 2-D wavelet stream (bad magic)");
  }
  uint64_t w = 0, h = 0, pw = 0, ph = 0, num = 0;
  double quant_step = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&w));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&h));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&pw));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&ph));
  HEDC_RETURN_IF_ERROR(reader.GetF64(&quant_step));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&num));
  if (pw == 0 || ph == 0 || pw < w || ph < h || quant_step <= 0 ||
      !std::isfinite(quant_step) || pw * ph > (64u << 20)) {
    return Status::Corruption("2-D wavelet stream header invalid");
  }
  if (num > pw * ph || num * 2 > reader.remaining()) {
    return Status::Corruption("2-D coefficient count exceeds stream");
  }
  size_t take = num;
  if (fraction < 1.0) {
    take = static_cast<size_t>(
        std::ceil(fraction * static_cast<double>(num)));
    if (fraction > 0 && take == 0) take = 1;
  }
  std::vector<double> coeffs(pw * ph, 0.0);
  for (size_t i = 0; i < num && i < take; ++i) {
    uint64_t index = 0;
    int64_t quantized = 0;
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&index));
    HEDC_RETURN_IF_ERROR(reader.GetSignedVarint(&quantized));
    if (index >= pw * ph) {
      return Status::Corruption("2-D coefficient index out of range");
    }
    coeffs[index] = static_cast<double>(quantized) * quant_step;
  }
  Haar2dInverse(&coeffs, ph, pw);
  std::vector<double> pixels(w * h, 0.0);
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      pixels[y * w + x] = coeffs[y * pw + x];
    }
  }
  *width = w;
  *height = h;
  return pixels;
}

double RelativeL2Error(const std::vector<double>& reference,
                       const std::vector<double>& approximation) {
  double err = 0, norm = 0;
  size_t n = std::min(reference.size(), approximation.size());
  for (size_t i = 0; i < n; ++i) {
    double d = reference[i] - approximation[i];
    err += d * d;
    norm += reference[i] * reference[i];
  }
  for (size_t i = n; i < reference.size(); ++i) {
    err += reference[i] * reference[i];
    norm += reference[i] * reference[i];
  }
  if (norm == 0) return err == 0 ? 0.0 : 1.0;
  return std::sqrt(err / norm);
}

}  // namespace hedc::wavelet
