#include "wavelet/codec.h"

#include <algorithm>
#include <cmath>

#include "core/bytes.h"
#include "wavelet/haar.h"

namespace hedc::wavelet {

namespace {
constexpr uint32_t kCodecMagic = 0x48575631;   // "HWV1"
constexpr uint32_t kCodec2dMagic = 0x48575632;  // "HWV2"
}  // namespace

std::vector<uint8_t> EncodeSignal(const std::vector<double>& signal,
                                  const CodecOptions& options) {
  std::vector<double> coeffs = signal;
  size_t original_len = coeffs.size();
  PadToPow2(&coeffs);
  HaarForward(&coeffs);

  // Magnitude ordering of surviving coefficients.
  struct Entry {
    uint32_t index;
    double value;
  };
  std::vector<Entry> entries;
  entries.reserve(coeffs.size());
  for (size_t i = 0; i < coeffs.size(); ++i) {
    if (std::fabs(coeffs[i]) >= options.threshold &&
        std::fabs(coeffs[i]) >= options.quant_step / 2) {
      entries.push_back({static_cast<uint32_t>(i), coeffs[i]});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::fabs(a.value) > std::fabs(b.value);
            });

  ByteBuffer out;
  out.PutU32(kCodecMagic);
  out.PutVarint(original_len);
  out.PutVarint(coeffs.size());
  out.PutF64(options.quant_step);
  out.PutVarint(entries.size());
  for (const Entry& e : entries) {
    out.PutVarint(e.index);
    out.PutSignedVarint(
        static_cast<int64_t>(std::llround(e.value / options.quant_step)));
  }
  return std::move(out).TakeData();
}

namespace {

struct StreamHeader {
  size_t original_len;
  size_t padded_len;
  double quant_step;
  size_t num_coeffs;
};

Status ReadHeader(ByteReader* reader, StreamHeader* header) {
  uint32_t magic = 0;
  HEDC_RETURN_IF_ERROR(reader->GetU32(&magic));
  if (magic != kCodecMagic) {
    return Status::Corruption("not a wavelet stream (bad magic)");
  }
  uint64_t original_len = 0, padded_len = 0, num_coeffs = 0;
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&original_len));
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&padded_len));
  HEDC_RETURN_IF_ERROR(reader->GetF64(&header->quant_step));
  HEDC_RETURN_IF_ERROR(reader->GetVarint(&num_coeffs));
  header->original_len = original_len;
  header->padded_len = padded_len;
  header->num_coeffs = num_coeffs;
  if (padded_len == 0 || padded_len < original_len ||
      header->quant_step <= 0) {
    return Status::Corruption("wavelet stream header invalid");
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<double>> DecodeSignal(const std::vector<uint8_t>& stream,
                                         double fraction) {
  ByteReader reader(stream);
  StreamHeader header;
  HEDC_RETURN_IF_ERROR(ReadHeader(&reader, &header));

  size_t take = header.num_coeffs;
  if (fraction < 1.0) {
    take = static_cast<size_t>(
        std::ceil(fraction * static_cast<double>(header.num_coeffs)));
    if (fraction > 0 && take == 0) take = 1;
  }

  std::vector<double> coeffs(header.padded_len, 0.0);
  for (size_t i = 0; i < header.num_coeffs && i < take; ++i) {
    uint64_t index = 0;
    int64_t quantized = 0;
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&index));
    HEDC_RETURN_IF_ERROR(reader.GetSignedVarint(&quantized));
    if (index >= header.padded_len) {
      return Status::Corruption("wavelet coefficient index out of range");
    }
    coeffs[index] = static_cast<double>(quantized) * header.quant_step;
  }

  HaarInverse(&coeffs);
  coeffs.resize(header.original_len);
  return coeffs;
}

Result<size_t> CoefficientCount(const std::vector<uint8_t>& stream) {
  ByteReader reader(stream);
  StreamHeader header;
  HEDC_RETURN_IF_ERROR(ReadHeader(&reader, &header));
  return header.num_coeffs;
}

std::vector<uint8_t> EncodeImage2d(const std::vector<double>& pixels,
                                   size_t width, size_t height,
                                   const CodecOptions& options) {
  size_t pw = NextPow2(std::max<size_t>(width, 1));
  size_t ph = NextPow2(std::max<size_t>(height, 1));
  std::vector<double> padded(pw * ph, 0.0);
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      padded[y * pw + x] = pixels[y * width + x];
    }
    // Step-extend rows.
    for (size_t x = width; x < pw; ++x) {
      padded[y * pw + x] = width > 0 ? pixels[y * width + width - 1] : 0;
    }
  }
  for (size_t y = height; y < ph; ++y) {
    for (size_t x = 0; x < pw; ++x) {
      padded[y * pw + x] = height > 0 ? padded[(height - 1) * pw + x] : 0;
    }
  }
  Haar2dForward(&padded, ph, pw);

  struct Entry {
    uint32_t index;
    double value;
  };
  std::vector<Entry> entries;
  entries.reserve(padded.size());
  for (size_t i = 0; i < padded.size(); ++i) {
    if (std::fabs(padded[i]) >= options.threshold &&
        std::fabs(padded[i]) >= options.quant_step / 2) {
      entries.push_back({static_cast<uint32_t>(i), padded[i]});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::fabs(a.value) > std::fabs(b.value);
            });

  ByteBuffer out;
  out.PutU32(kCodec2dMagic);
  out.PutVarint(width);
  out.PutVarint(height);
  out.PutVarint(pw);
  out.PutVarint(ph);
  out.PutF64(options.quant_step);
  out.PutVarint(entries.size());
  for (const Entry& e : entries) {
    out.PutVarint(e.index);
    out.PutSignedVarint(
        static_cast<int64_t>(std::llround(e.value / options.quant_step)));
  }
  return std::move(out).TakeData();
}

Result<std::vector<double>> DecodeImage2d(const std::vector<uint8_t>& stream,
                                          double fraction, size_t* width,
                                          size_t* height) {
  ByteReader reader(stream);
  uint32_t magic = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kCodec2dMagic) {
    return Status::Corruption("not a 2-D wavelet stream (bad magic)");
  }
  uint64_t w = 0, h = 0, pw = 0, ph = 0, num = 0;
  double quant_step = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&w));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&h));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&pw));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&ph));
  HEDC_RETURN_IF_ERROR(reader.GetF64(&quant_step));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&num));
  if (pw == 0 || ph == 0 || pw < w || ph < h || quant_step <= 0 ||
      pw * ph > (64u << 20)) {
    return Status::Corruption("2-D wavelet stream header invalid");
  }
  size_t take = num;
  if (fraction < 1.0) {
    take = static_cast<size_t>(
        std::ceil(fraction * static_cast<double>(num)));
    if (fraction > 0 && take == 0) take = 1;
  }
  std::vector<double> coeffs(pw * ph, 0.0);
  for (size_t i = 0; i < num && i < take; ++i) {
    uint64_t index = 0;
    int64_t quantized = 0;
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&index));
    HEDC_RETURN_IF_ERROR(reader.GetSignedVarint(&quantized));
    if (index >= pw * ph) {
      return Status::Corruption("2-D coefficient index out of range");
    }
    coeffs[index] = static_cast<double>(quantized) * quant_step;
  }
  Haar2dInverse(&coeffs, ph, pw);
  std::vector<double> pixels(w * h, 0.0);
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      pixels[y * w + x] = coeffs[y * pw + x];
    }
  }
  *width = w;
  *height = h;
  return pixels;
}

double RelativeL2Error(const std::vector<double>& reference,
                       const std::vector<double>& approximation) {
  double err = 0, norm = 0;
  size_t n = std::min(reference.size(), approximation.size());
  for (size_t i = 0; i < n; ++i) {
    double d = reference[i] - approximation[i];
    err += d * d;
    norm += reference[i] * reference[i];
  }
  for (size_t i = n; i < reference.size(); ++i) {
    err += reference[i] * reference[i];
    norm += reference[i] * reference[i];
  }
  if (norm == 0) return err == 0 ? 0.0 : 1.0;
  return std::sqrt(err / norm);
}

}  // namespace hedc::wavelet
