#include "wavelet/views.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/strings.h"

namespace hedc::wavelet {

Result<PartitionedView> PartitionedView::Build(
    const std::vector<std::pair<double, double>>& samples,
    const Options& options) {
  if (options.domain_hi <= options.domain_lo) {
    return Status::InvalidArgument("empty view domain");
  }
  if (options.num_partitions == 0 || options.bins_per_partition == 0) {
    return Status::InvalidArgument("view needs partitions and bins");
  }
  PartitionedView view;
  view.options_ = options;
  size_t total_bins = options.num_partitions * options.bins_per_partition;
  view.bin_width_ =
      (options.domain_hi - options.domain_lo) / static_cast<double>(total_bins);

  // Bin all samples over the full domain.
  std::vector<double> bins(total_bins, 0.0);
  for (const auto& [pos, value] : samples) {
    if (pos < options.domain_lo || pos >= options.domain_hi) continue;
    size_t b = static_cast<size_t>((pos - options.domain_lo) /
                                   view.bin_width_);
    if (b >= total_bins) b = total_bins - 1;
    bins[b] += value;
  }

  // Encode each partition independently as a prefix-decodable stream.
  view.partitions_.reserve(options.num_partitions);
  for (size_t p = 0; p < options.num_partitions; ++p) {
    std::vector<double> part(
        bins.begin() + p * options.bins_per_partition,
        bins.begin() + (p + 1) * options.bins_per_partition);
    view.partitions_.push_back(EncodeSignalProgressive(part, options.codec));
  }
  return view;
}

bool PartitionedView::PartitionSpan(double lo, double hi, size_t* first,
                                    size_t* last) const {
  if (hi < options_.domain_lo || lo > options_.domain_hi) return false;
  lo = std::max(lo, options_.domain_lo);
  hi = std::min(hi, options_.domain_hi);
  double part_width =
      bin_width_ * static_cast<double>(options_.bins_per_partition);
  *first = static_cast<size_t>(
      std::floor((lo - options_.domain_lo) / part_width));
  *last = static_cast<size_t>(
      std::floor((hi - options_.domain_lo) / part_width));
  if (*first >= partitions_.size()) *first = partitions_.size() - 1;
  if (*last >= partitions_.size()) *last = partitions_.size() - 1;
  return true;
}

Result<std::vector<double>> PartitionedView::Query(double lo, double hi,
                                                   double fraction,
                                                   double* start_pos) const {
  if (hi < lo) return Status::InvalidArgument("inverted query range");
  // Clamp the coefficient budget to (0, 1]: non-positive (or NaN)
  // degrades to the single coarsest coefficient, anything above 1 is a
  // full decode.
  if (!(fraction > 0)) fraction = 1e-300;
  if (fraction > 1.0) fraction = 1.0;
  size_t first = 0, last = 0;
  if (!PartitionSpan(lo, hi, &first, &last)) {
    if (start_pos != nullptr) {
      *start_pos = std::clamp(lo, options_.domain_lo, options_.domain_hi);
    }
    return std::vector<double>{};
  }

  std::vector<double> out;
  for (size_t p = first; p <= last; ++p) {
    HEDC_ASSIGN_OR_RETURN(std::vector<double> part,
                          DecodeSignal(partitions_[p], fraction));
    out.insert(out.end(), part.begin(), part.end());
  }
  if (start_pos != nullptr) {
    double part_width =
        bin_width_ * static_cast<double>(options_.bins_per_partition);
    *start_pos = options_.domain_lo + static_cast<double>(first) * part_width;
  }
  return out;
}

Result<std::vector<double>> PartitionedView::QueryResolution(
    double lo, double hi, size_t level, double* start_pos) const {
  if (hi < lo) return Status::InvalidArgument("inverted query range");
  size_t first = 0, last = 0;
  if (!PartitionSpan(lo, hi, &first, &last)) {
    if (start_pos != nullptr) {
      *start_pos = std::clamp(lo, options_.domain_lo, options_.domain_hi);
    }
    return std::vector<double>{};
  }
  std::vector<double> out;
  for (size_t p = first; p <= last; ++p) {
    HEDC_ASSIGN_OR_RETURN(size_t bytes,
                          PrefixBytesForLevel(partitions_[p], level));
    HEDC_ASSIGN_OR_RETURN(
        std::vector<double> part,
        DecodeSignalPrefix(partitions_[p].data(), bytes, nullptr));
    out.insert(out.end(), part.begin(), part.end());
  }
  if (start_pos != nullptr) {
    double part_width =
        bin_width_ * static_cast<double>(options_.bins_per_partition);
    *start_pos = options_.domain_lo + static_cast<double>(first) * part_width;
  }
  return out;
}

Result<PartitionedView::RangeAggregate> PartitionedView::AggregateRange(
    double lo, double hi, size_t level) const {
  if (hi < lo) return Status::InvalidArgument("inverted aggregate range");
  RangeAggregate agg;
  size_t first = 0, last = 0;
  if (!PartitionSpan(lo, hi, &first, &last)) return agg;
  for (size_t p = first; p <= last; ++p) {
    HEDC_ASSIGN_OR_RETURN(size_t bytes,
                          PrefixBytesForLevel(partitions_[p], level));
    PrefixInfo info;
    HEDC_ASSIGN_OR_RETURN(
        std::vector<double> part,
        DecodeSignalPrefix(partitions_[p].data(), bytes, &info));
    size_t base = p * options_.bins_per_partition;
    size_t in_range = 0;
    for (size_t b = 0; b < part.size(); ++b) {
      double bin_lo =
          options_.domain_lo + static_cast<double>(base + b) * bin_width_;
      double bin_hi = bin_lo + bin_width_;
      // Half-open bins: include every bin overlapping [lo, hi).
      if (bin_lo >= hi || bin_hi <= lo) continue;
      agg.sum += part[b];
      ++in_range;
    }
    agg.bins += in_range;
    agg.bytes_read += bytes;
    agg.error_bound += info.SumErrorBound(in_range);
  }
  return agg;
}

size_t PartitionedView::ResolutionLevelCount() const {
  if (partitions_.empty()) return 0;
  auto levels = ResolutionLevels(partitions_.front());
  return levels.ok() ? levels.value() : 0;
}

size_t PartitionedView::BytesForRange(double lo, double hi) const {
  if (hi < lo) return 0;
  size_t first = 0, last = 0;
  if (!PartitionSpan(lo, hi, &first, &last)) return 0;
  size_t bytes = 0;
  for (size_t p = first; p <= last; ++p) bytes += partitions_[p].size();
  return bytes;
}

size_t PartitionedView::PrefixBytesForRange(double lo, double hi,
                                            size_t level) const {
  if (hi < lo) return 0;
  size_t first = 0, last = 0;
  if (!PartitionSpan(lo, hi, &first, &last)) return 0;
  size_t bytes = 0;
  for (size_t p = first; p <= last; ++p) {
    auto prefix = PrefixBytesForLevel(partitions_[p], level);
    if (prefix.ok()) bytes += prefix.value();
  }
  return bytes;
}

size_t PartitionedView::TotalBytes() const {
  size_t bytes = 0;
  for (const auto& p : partitions_) bytes += p.size();
  return bytes;
}

double DensityPlot::MaxCount() const {
  double best = 0;
  for (double c : counts) best = std::max(best, c);
  return best;
}

DensityPlot BuildDensityPlot(
    const std::vector<std::pair<double, double>>& points, size_t x_bins,
    size_t y_bins, double x_lo, double x_hi, double y_lo, double y_hi) {
  DensityPlot plot;
  plot.x_bins = x_bins;
  plot.y_bins = y_bins;
  plot.x_lo = x_lo;
  plot.x_hi = x_hi;
  plot.y_lo = y_lo;
  plot.y_hi = y_hi;
  plot.counts.assign(x_bins * y_bins, 0.0);
  if (x_bins == 0 || y_bins == 0 || x_hi <= x_lo || y_hi <= y_lo) return plot;
  double xw = (x_hi - x_lo) / static_cast<double>(x_bins);
  double yw = (y_hi - y_lo) / static_cast<double>(y_bins);
  for (const auto& [x, y] : points) {
    if (x < x_lo || x >= x_hi || y < y_lo || y >= y_hi) continue;
    size_t bx = std::min(static_cast<size_t>((x - x_lo) / xw), x_bins - 1);
    size_t by = std::min(static_cast<size_t>((y - y_lo) / yw), y_bins - 1);
    plot.counts[by * x_bins + bx] += 1.0;
  }
  return plot;
}

std::vector<Extent> BuildExtentPlot(
    const std::vector<std::pair<double, double>>& points, size_t grid,
    double x_lo, double x_hi, double y_lo, double y_hi) {
  std::vector<Extent> out;
  if (grid == 0 || x_hi <= x_lo || y_hi <= y_lo) return out;
  DensityPlot density =
      BuildDensityPlot(points, grid, grid, x_lo, x_hi, y_lo, y_hi);

  // Union-find over occupied cells; 4-connectivity.
  std::vector<int64_t> parent(grid * grid, -1);
  std::function<int64_t(int64_t)> find = [&](int64_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  };
  for (size_t y = 0; y < grid; ++y) {
    for (size_t x = 0; x < grid; ++x) {
      size_t i = y * grid + x;
      if (density.counts[i] <= 0) continue;
      parent[i] = static_cast<int64_t>(i);
    }
  }
  auto merge = [&](size_t a, size_t b) {
    if (parent[a] < 0 || parent[b] < 0) return;
    int64_t ra = find(static_cast<int64_t>(a));
    int64_t rb = find(static_cast<int64_t>(b));
    if (ra != rb) parent[rb] = ra;
  };
  for (size_t y = 0; y < grid; ++y) {
    for (size_t x = 0; x < grid; ++x) {
      size_t i = y * grid + x;
      if (parent[i] < 0) continue;
      if (x + 1 < grid) merge(i, i + 1);
      if (y + 1 < grid) merge(i, i + grid);
    }
  }

  // Accumulate cluster bounding boxes.
  struct Box {
    size_t x_min, x_max, y_min, y_max;
    int64_t count;
    bool used = false;
  };
  std::vector<Box> boxes(grid * grid);
  double xw = (x_hi - x_lo) / static_cast<double>(grid);
  double yw = (y_hi - y_lo) / static_cast<double>(grid);
  for (size_t y = 0; y < grid; ++y) {
    for (size_t x = 0; x < grid; ++x) {
      size_t i = y * grid + x;
      if (parent[i] < 0) continue;
      size_t root = static_cast<size_t>(find(static_cast<int64_t>(i)));
      Box& box = boxes[root];
      int64_t cell_count = static_cast<int64_t>(density.counts[i]);
      if (!box.used) {
        box = Box{x, x, y, y, cell_count, true};
      } else {
        box.x_min = std::min(box.x_min, x);
        box.x_max = std::max(box.x_max, x);
        box.y_min = std::min(box.y_min, y);
        box.y_max = std::max(box.y_max, y);
        box.count += cell_count;
      }
    }
  }
  for (const Box& box : boxes) {
    if (!box.used) continue;
    out.push_back(Extent{
        x_lo + static_cast<double>(box.x_min) * xw,
        x_lo + static_cast<double>(box.x_max + 1) * xw,
        y_lo + static_cast<double>(box.y_min) * yw,
        y_lo + static_cast<double>(box.y_max + 1) * yw,
        box.count,
    });
  }
  return out;
}

}  // namespace hedc::wavelet
