#include "wavelet/haar.h"

#include <cmath>

namespace hedc::wavelet {

namespace {
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

// One forward step over the first `n` entries: pairwise (avg, diff)
// with orthonormal scaling; averages land in [0, n/2), details in
// [n/2, n).
void ForwardStep(std::vector<double>* data, size_t n) {
  std::vector<double> tmp(n);
  size_t half = n / 2;
  for (size_t i = 0; i < half; ++i) {
    double a = (*data)[2 * i];
    double b = (*data)[2 * i + 1];
    tmp[i] = (a + b) * kInvSqrt2;
    tmp[half + i] = (a - b) * kInvSqrt2;
  }
  for (size_t i = 0; i < n; ++i) (*data)[i] = tmp[i];
}

void InverseStep(std::vector<double>* data, size_t n) {
  std::vector<double> tmp(n);
  size_t half = n / 2;
  for (size_t i = 0; i < half; ++i) {
    double s = (*data)[i];
    double d = (*data)[half + i];
    tmp[2 * i] = (s + d) * kInvSqrt2;
    tmp[2 * i + 1] = (s - d) * kInvSqrt2;
  }
  for (size_t i = 0; i < n; ++i) (*data)[i] = tmp[i];
}

int MaxLevels(size_t n) {
  int levels = 0;
  while (n > 1) {
    n /= 2;
    ++levels;
  }
  return levels;
}

}  // namespace

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

size_t PadToPow2(std::vector<double>* data) {
  size_t original = data->size();
  if (original == 0) {
    data->push_back(0.0);
    return original;
  }
  size_t target = NextPow2(original);
  data->resize(target, data->back());
  return original;
}

void HaarForward(std::vector<double>* data, int levels) {
  size_t n = data->size();
  if (n < 2) return;
  int max_levels = MaxLevels(n);
  if (levels <= 0 || levels > max_levels) levels = max_levels;
  size_t len = n;
  for (int l = 0; l < levels && len >= 2; ++l) {
    ForwardStep(data, len);
    len /= 2;
  }
}

void HaarInverse(std::vector<double>* data, int levels) {
  size_t n = data->size();
  if (n < 2) return;
  int max_levels = MaxLevels(n);
  if (levels <= 0 || levels > max_levels) levels = max_levels;
  // Lengths at which forward steps were applied, replayed in reverse.
  std::vector<size_t> lens;
  size_t len = n;
  for (int l = 0; l < levels && len >= 2; ++l) {
    lens.push_back(len);
    len /= 2;
  }
  for (auto it = lens.rbegin(); it != lens.rend(); ++it) {
    InverseStep(data, *it);
  }
}

void Haar2dForward(std::vector<double>* data, size_t rows, size_t cols) {
  // Transform each row.
  std::vector<double> line;
  for (size_t r = 0; r < rows; ++r) {
    line.assign(data->begin() + r * cols, data->begin() + (r + 1) * cols);
    HaarForward(&line);
    for (size_t c = 0; c < cols; ++c) (*data)[r * cols + c] = line[c];
  }
  // Transform each column.
  line.resize(rows);
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) line[r] = (*data)[r * cols + c];
    HaarForward(&line);
    for (size_t r = 0; r < rows; ++r) (*data)[r * cols + c] = line[r];
  }
}

void Haar2dInverse(std::vector<double>* data, size_t rows, size_t cols) {
  std::vector<double> line(rows);
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) line[r] = (*data)[r * cols + c];
    HaarInverse(&line);
    for (size_t r = 0; r < rows; ++r) (*data)[r * cols + c] = line[r];
  }
  line.resize(cols);
  for (size_t r = 0; r < rows; ++r) {
    line.assign(data->begin() + r * cols, data->begin() + (r + 1) * cols);
    HaarInverse(&line);
    for (size_t c = 0; c < cols; ++c) (*data)[r * cols + c] = line[c];
  }
}

}  // namespace hedc::wavelet
