// Orthonormal Haar wavelet transforms (1-D and 2-D).
//
// §3.4/§6.3: raw data is pre-processed into wavelet-compressed
// range-partitioned views; clients reconstruct approximations from a
// coefficient prefix. The orthonormal normalization keeps L2 energy, so
// truncating small coefficients bounds reconstruction error.
#ifndef HEDC_WAVELET_HAAR_H_
#define HEDC_WAVELET_HAAR_H_

#include <cstddef>
#include <vector>

namespace hedc::wavelet {

// Rounds up to the next power of two (min 1).
size_t NextPow2(size_t n);

// Forward multi-level transform. Input length must be a power of two;
// use PadToPow2 first otherwise. `levels` = 0 means full decomposition.
void HaarForward(std::vector<double>* data, int levels = 0);

// Inverse of HaarForward with the same `levels`.
void HaarInverse(std::vector<double>* data, int levels = 0);

// Pads with the last value (step extension) to the next power of two;
// returns the original length.
size_t PadToPow2(std::vector<double>* data);

// 2-D transform on row-major `rows` x `cols` data (both powers of two):
// standard decomposition (full 1-D transform on rows, then columns).
void Haar2dForward(std::vector<double>* data, size_t rows, size_t cols);
void Haar2dInverse(std::vector<double>* data, size_t rows, size_t cols);

}  // namespace hedc::wavelet

#endif  // HEDC_WAVELET_HAAR_H_
