// Heap table with secondary indexes.
//
// Rows live in a slotted in-memory heap addressed by row id; B+-tree or
// hash indexes can be attached per column and are maintained on every
// mutation. All mutations are single-writer (guarded by Database's
// per-table latch at the executor level).
#ifndef HEDC_DB_TABLE_H_
#define HEDC_DB_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "db/btree.h"
#include "db/hash_index.h"
#include "db/schema.h"
#include "db/value.h"

namespace hedc::db {

enum class IndexKind { kBTree, kHash };

struct IndexDef {
  std::string name;
  size_t column = 0;
  IndexKind kind = IndexKind::kBTree;
};

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return live_rows_; }

  // Inserts a row; returns its row id. Enforces schema + primary-key
  // uniqueness.
  Result<int64_t> Insert(Row row);

  // Replaces the row at `row_id`. The previous image is returned through
  // `old_row` if non-null (used for undo logging).
  Status Update(int64_t row_id, Row row, Row* old_row = nullptr);

  // Deletes a row; previous image returned via `old_row` if non-null.
  Status Delete(int64_t row_id, Row* old_row = nullptr);

  // Fetches a row copy by id.
  Result<Row> Get(int64_t row_id) const;
  bool Exists(int64_t row_id) const;

  // Full scan; `visit` returns false to stop.
  void Scan(const std::function<bool(int64_t, const Row&)>& visit) const;

  // Index management. Column is named; fails if absent or duplicated.
  Status CreateIndex(const std::string& index_name,
                     const std::string& column_name, IndexKind kind);
  // Finds an index on `column`, preferring B+-tree (supports ranges).
  const IndexDef* FindIndex(size_t column, bool need_range) const;

  const std::vector<IndexDef>& indexes() const { return index_defs_; }
  const BTreeIndex* btree(const std::string& index_name) const;
  const HashIndex* hash(const std::string& index_name) const;

  // Row ids via index lookup (point) and range scan.
  void IndexLookup(const IndexDef& def, const Value& key,
                   std::vector<int64_t>* out) const;
  void IndexRange(const IndexDef& def, const std::optional<Value>& lo,
                  bool lo_inclusive, const std::optional<Value>& hi,
                  bool hi_inclusive, std::vector<int64_t>* out) const;

  // Re-inserts a row with a specific id (WAL recovery path).
  Status InsertWithId(int64_t row_id, Row row);

  int64_t max_row_id() const { return next_row_id_ - 1; }

 private:
  void IndexInsert(int64_t row_id, const Row& row);
  void IndexErase(int64_t row_id, const Row& row);
  Status CheckPrimaryKey(const Row& row, int64_t ignore_row_id);

  std::string name_;
  Schema schema_;
  std::unordered_map<int64_t, Row> rows_;
  int64_t next_row_id_ = 1;
  size_t live_rows_ = 0;

  std::vector<IndexDef> index_defs_;
  std::vector<std::unique_ptr<BTreeIndex>> btrees_;  // parallel, null if hash
  std::vector<std::unique_ptr<HashIndex>> hashes_;   // parallel, null if btree
};

}  // namespace hedc::db

#endif  // HEDC_DB_TABLE_H_
