// Heap table with secondary indexes.
//
// Rows live in a morsel-paged in-memory heap addressed by row id: the
// id space is split into fixed-width morsels (row-id ranges), each
// holding a dense slot array plus a per-column zone map (min/max over
// every non-null value written, widen-only). Morsels are the unit of
// work for the vectorized scan path (db/vectorized.h): parallel scans
// claim whole morsels and zone maps let range predicates skip them
// wholesale. B+-tree or hash indexes can be attached per column and are
// maintained on every mutation. All mutations are single-writer
// (guarded by Database's per-table latch at the executor level); scans
// require at least the shared latch, which keeps morsels and slot rows
// stable while chunks borrow pointers into them.
#ifndef HEDC_DB_TABLE_H_
#define HEDC_DB_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/btree.h"
#include "db/data_chunk.h"
#include "db/hash_index.h"
#include "db/schema.h"
#include "db/value.h"

namespace hedc::db {

enum class IndexKind { kBTree, kHash };

struct IndexDef {
  std::string name;
  size_t column = 0;
  IndexKind kind = IndexKind::kBTree;
};

class Table {
 public:
  static constexpr int64_t kDefaultRowsPerMorsel = 1024;

  Table(std::string name, Schema schema,
        int64_t rows_per_morsel = kDefaultRowsPerMorsel);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return live_rows_; }

  // Inserts a row; returns its row id. Enforces schema + primary-key
  // uniqueness.
  Result<int64_t> Insert(Row row);

  // Replaces the row at `row_id`. The previous image is returned through
  // `old_row` if non-null (used for undo logging).
  Status Update(int64_t row_id, Row row, Row* old_row = nullptr);

  // Deletes a row; previous image returned via `old_row` if non-null.
  Status Delete(int64_t row_id, Row* old_row = nullptr);

  // Fetches a row copy by id.
  Result<Row> Get(int64_t row_id) const;
  // Borrowed pointer to the row, or nullptr if absent. Stable until the
  // next mutation of this table (callers hold the table latch).
  const Row* Find(int64_t row_id) const;
  bool Exists(int64_t row_id) const;

  // Full scan in ascending row-id order; `visit` returns false to stop.
  void Scan(const std::function<bool(int64_t, const Row&)>& visit) const;

  // ----- Morsel access (vectorized execution engine; DESIGN.md §4e) -----

  // One fixed-width row-id range of the heap. Zone bounds are widen-only:
  // they cover every non-null value ever written into the morsel, so they
  // are a conservative superset of the live values (updates and deletes
  // never narrow them). zone_ok[c] is false once column c held a value
  // that does not order totally under Value::Compare (blobs).
  struct Morsel {
    Morsel(int64_t first, int64_t width, size_t columns)
        : first_row_id(first),
          slots(static_cast<size_t>(width)),
          occupied(static_cast<size_t>(width), 0),
          zmin(columns),
          zmax(columns),
          zone_ok(columns, 1) {}

    int64_t first_row_id;  // covers ids [first_row_id, first_row_id + width)
    std::vector<Row> slots;
    std::vector<uint8_t> occupied;
    int64_t live = 0;
    std::vector<Value> zmin, zmax;  // Null = no non-null value recorded
    std::vector<uint8_t> zone_ok;
  };

  int64_t rows_per_morsel() const { return rows_per_morsel_; }
  size_t num_morsels() const { return morsels_.size(); }

  // Borrowed pointers to the live morsels in ascending row-id order;
  // stable while the caller holds the table latch.
  void ListMorsels(std::vector<const Morsel*>* out) const;

  // Cursor for chunk-at-a-time scanning (serial batched path).
  struct ScanCursor {
    int64_t next_key = 0;  // morsel map key (first_row_id / width)
  };

  // Fills `chunk` with the live rows of the next non-empty morsel and
  // advances the cursor; returns false when the heap is exhausted. If
  // `morsel` is non-null it receives the source morsel (for zone maps).
  bool ScanChunk(ScanCursor* cursor, DataChunk* chunk,
                 const Morsel** morsel = nullptr) const;

  // Fills `chunk` with the live rows of `m` (parallel workers fill
  // chunks from morsels they claimed).
  void FillChunk(const Morsel& m, DataChunk* chunk) const;

  // Index management. Column is named; fails if absent or duplicated.
  Status CreateIndex(const std::string& index_name,
                     const std::string& column_name, IndexKind kind);
  // Finds an index on `column`, preferring B+-tree (supports ranges).
  const IndexDef* FindIndex(size_t column, bool need_range) const;

  const std::vector<IndexDef>& indexes() const { return index_defs_; }
  const BTreeIndex* btree(const std::string& index_name) const;
  const HashIndex* hash(const std::string& index_name) const;
  // Mutable index access for recovery tooling and fault-injection tests
  // (e.g. planting a stale entry to exercise the executor's skip path).
  BTreeIndex* mutable_btree(const std::string& index_name);
  HashIndex* mutable_hash(const std::string& index_name);

  // Row ids via index lookup (point) and range scan.
  void IndexLookup(const IndexDef& def, const Value& key,
                   std::vector<int64_t>* out) const;
  void IndexRange(const IndexDef& def, const std::optional<Value>& lo,
                  bool lo_inclusive, const std::optional<Value>& hi,
                  bool hi_inclusive, std::vector<int64_t>* out) const;

  // Re-inserts a row with a specific id (WAL recovery path).
  Status InsertWithId(int64_t row_id, Row row);

  int64_t max_row_id() const { return next_row_id_ - 1; }

 private:
  void IndexInsert(int64_t row_id, const Row& row);
  void IndexErase(int64_t row_id, const Row& row);
  Status CheckPrimaryKey(const Row& row, int64_t ignore_row_id);

  Morsel* GetOrCreateMorsel(int64_t row_id);
  Row* Slot(int64_t row_id);  // nullptr if absent or unoccupied
  const Row* Slot(int64_t row_id) const;
  // Occupies the slot for `row_id` and widens the zone map.
  void Place(int64_t row_id, Row row);
  void WidenZones(Morsel* m, const Row& row);

  std::string name_;
  Schema schema_;
  int64_t rows_per_morsel_;
  // Keyed by first_row_id / rows_per_morsel_; ordered so scans visit
  // rows in ascending id order. Morsels whose last live row is deleted
  // are freed (bounding memory under churn; zone bounds reset with them).
  std::map<int64_t, std::unique_ptr<Morsel>> morsels_;
  int64_t next_row_id_ = 1;
  size_t live_rows_ = 0;

  std::vector<IndexDef> index_defs_;
  std::vector<std::unique_ptr<BTreeIndex>> btrees_;  // parallel, null if hash
  std::vector<std::unique_ptr<HashIndex>> hashes_;   // parallel, null if btree
};

}  // namespace hedc::db

#endif  // HEDC_DB_TABLE_H_
