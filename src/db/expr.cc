#include "db/expr.h"

#include "core/strings.h"

namespace hedc::db {

std::unique_ptr<Expr> Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Column(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->column = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Param(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kParam;
  e->param_index = index;
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->un_op = op;
  e->left = std::move(operand);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinOp op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->bin_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->column = column;
  e->column_index = column_index;
  e->param_index = param_index;
  e->bin_op = bin_op;
  e->un_op = un_op;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  for (const auto& item : list) e->list.push_back(item->Clone());
  return e;
}

Status BindExpr(Expr* expr, const Schema& schema,
                const std::vector<Value>& params) {
  switch (expr->kind) {
    case Expr::Kind::kLiteral:
      return Status::Ok();
    case Expr::Kind::kColumn: {
      auto idx = schema.ColumnIndex(expr->column);
      if (!idx.has_value()) {
        return Status::InvalidArgument("unknown column: " + expr->column);
      }
      expr->column_index = static_cast<int>(*idx);
      return Status::Ok();
    }
    case Expr::Kind::kParam: {
      if (expr->param_index < 0 ||
          expr->param_index >= static_cast<int>(params.size())) {
        return Status::InvalidArgument(
            StrFormat("parameter %d not bound", expr->param_index + 1));
      }
      // Substitute: parameters become literals for this execution.
      expr->literal = params[expr->param_index];
      expr->kind = Expr::Kind::kLiteral;
      return Status::Ok();
    }
    case Expr::Kind::kUnary:
      return BindExpr(expr->left.get(), schema, params);
    case Expr::Kind::kBinary:
      HEDC_RETURN_IF_ERROR(BindExpr(expr->left.get(), schema, params));
      return BindExpr(expr->right.get(), schema, params);
    case Expr::Kind::kInList: {
      HEDC_RETURN_IF_ERROR(BindExpr(expr->left.get(), schema, params));
      for (auto& item : expr->list) {
        HEDC_RETURN_IF_ERROR(BindExpr(item.get(), schema, params));
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable expr kind");
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard match with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Result<Value> EvalBinary(const Expr& expr, const Row& row) {
  // Short-circuit logical operators.
  if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
    HEDC_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.left, row));
    bool l = lhs.AsBool();
    if (expr.bin_op == BinOp::kAnd && !l) return Value::Bool(false);
    if (expr.bin_op == BinOp::kOr && l) return Value::Bool(true);
    HEDC_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.right, row));
    return Value::Bool(rhs.AsBool());
  }

  HEDC_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.left, row));
  HEDC_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.right, row));

  switch (expr.bin_op) {
    case BinOp::kEq:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(lhs.Compare(rhs) == 0);
    case BinOp::kNe:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(lhs.Compare(rhs) != 0);
    case BinOp::kLt:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(lhs.Compare(rhs) < 0);
    case BinOp::kLe:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(lhs.Compare(rhs) <= 0);
    case BinOp::kGt:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(lhs.Compare(rhs) > 0);
    case BinOp::kGe:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(lhs.Compare(rhs) >= 0);
    case BinOp::kLike:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(LikeMatch(lhs.AsText(), rhs.AsText()));
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      bool both_int = lhs.type() == ValueType::kInt &&
                      rhs.type() == ValueType::kInt;
      if (expr.bin_op == BinOp::kAdd && (lhs.type() == ValueType::kText ||
                                         rhs.type() == ValueType::kText)) {
        // '+' on text concatenates (convenience for templating queries).
        return Value::Text(lhs.AsText() + rhs.AsText());
      }
      double a = lhs.AsReal();
      double b = rhs.AsReal();
      double r = 0;
      switch (expr.bin_op) {
        case BinOp::kAdd:
          r = a + b;
          break;
        case BinOp::kSub:
          r = a - b;
          break;
        case BinOp::kMul:
          r = a * b;
          break;
        case BinOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          r = a / b;
          break;
        default:
          break;
      }
      if (both_int && expr.bin_op != BinOp::kDiv) {
        return Value::Int(static_cast<int64_t>(r));
      }
      return Value::Real(r);
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const Row& row) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kColumn:
      if (expr.column_index < 0 ||
          expr.column_index >= static_cast<int>(row.size())) {
        return Status::Internal("unbound column: " + expr.column);
      }
      return row[expr.column_index];
    case Expr::Kind::kParam:
      return Status::Internal("unbound parameter");
    case Expr::Kind::kUnary: {
      HEDC_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.left, row));
      switch (expr.un_op) {
        case UnOp::kNot:
          return Value::Bool(!v.AsBool());
        case UnOp::kNeg:
          if (v.type() == ValueType::kInt) return Value::Int(-v.AsInt());
          return Value::Real(-v.AsReal());
        case UnOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Status::Internal("unhandled unary op");
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, row);
    case Expr::Kind::kInList: {
      HEDC_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.left, row));
      if (v.is_null()) return Value::Bool(false);
      for (const auto& item : expr.list) {
        HEDC_ASSIGN_OR_RETURN(Value candidate, EvalExpr(*item, row));
        if (!candidate.is_null() && v.Compare(candidate) == 0) {
          return Value::Bool(true);
        }
      }
      return Value::Bool(false);
    }
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace hedc::db
