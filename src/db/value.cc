#include "db/value.h"

#include <cstdio>
#include <functional>

#include "core/strings.h"

namespace hedc::db {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kReal:
      return "REAL";
    case ValueType::kText:
      return "TEXT";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kBlob:
      return "BLOB";
  }
  return "?";
}

int64_t Value::AsInt() const {
  switch (type()) {
    case ValueType::kInt:
      return std::get<int64_t>(data_);
    case ValueType::kReal:
      return static_cast<int64_t>(std::get<double>(data_));
    case ValueType::kBool:
      return std::get<bool>(data_) ? 1 : 0;
    case ValueType::kText: {
      int64_t v = 0;
      ParseInt64(std::get<std::string>(data_), &v);
      return v;
    }
    default:
      return 0;
  }
}

double Value::AsReal() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(std::get<int64_t>(data_));
    case ValueType::kReal:
      return std::get<double>(data_);
    case ValueType::kBool:
      return std::get<bool>(data_) ? 1.0 : 0.0;
    case ValueType::kText: {
      double v = 0.0;
      ParseDouble(std::get<std::string>(data_), &v);
      return v;
    }
    default:
      return 0.0;
  }
}

bool Value::AsBool() const {
  switch (type()) {
    case ValueType::kBool:
      return std::get<bool>(data_);
    case ValueType::kInt:
      return std::get<int64_t>(data_) != 0;
    case ValueType::kReal:
      return std::get<double>(data_) != 0.0;
    case ValueType::kText:
      return !std::get<std::string>(data_).empty();
    default:
      return false;
  }
}

std::string Value::AsText() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kReal: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", std::get<double>(data_));
      return buf;
    }
    case ValueType::kText:
      return std::get<std::string>(data_);
    case ValueType::kBool:
      return std::get<bool>(data_) ? "TRUE" : "FALSE";
    case ValueType::kBlob:
      return StrFormat("<blob %zu bytes>",
                       std::get<std::vector<uint8_t>>(data_).size());
  }
  return "";
}

namespace {

bool IsNumeric(ValueType type) {
  return type == ValueType::kInt || type == ValueType::kReal ||
         type == ValueType::kBool;
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    if (a == b) return 0;
    return a == ValueType::kNull ? -1 : 1;
  }
  if (a == ValueType::kInt && b == ValueType::kInt) {
    int64_t x = std::get<int64_t>(data_);
    int64_t y = std::get<int64_t>(other.data_);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (IsNumeric(a) && IsNumeric(b)) {
    return CompareDoubles(AsReal(), other.AsReal());
  }
  // Text compared against numeric: coerce text to number.
  if (IsNumeric(a) && b == ValueType::kText) {
    return CompareDoubles(AsReal(), other.AsReal());
  }
  if (a == ValueType::kText && IsNumeric(b)) {
    return CompareDoubles(AsReal(), other.AsReal());
  }
  if (a == ValueType::kText && b == ValueType::kText) {
    return text().compare(other.text());
  }
  if (a == ValueType::kBlob && b == ValueType::kBlob) {
    const auto& x = blob();
    const auto& y = other.blob();
    if (x < y) return -1;
    if (y < x) return 1;
    return 0;
  }
  // Mixed non-comparable types: order by type tag for index stability.
  return static_cast<int>(a) - static_cast<int>(b);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kInt:
      return std::hash<int64_t>{}(std::get<int64_t>(data_));
    case ValueType::kReal: {
      double d = std::get<double>(data_);
      // Hash integral reals as their integer so 3 and 3.0 collide (they
      // compare equal).
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kText:
      return std::hash<std::string>{}(std::get<std::string>(data_));
    case ValueType::kBool:
      return std::hash<int64_t>{}(std::get<bool>(data_) ? 1 : 0);
    case ValueType::kBlob: {
      const auto& b = std::get<std::vector<uint8_t>>(data_);
      size_t h = 1469598103934665603ull;
      for (uint8_t byte : b) {
        h ^= byte;
        h *= 1099511628211ull;
      }
      return h;
    }
  }
  return 0;
}

}  // namespace hedc::db
