// Typed values held in metadata tuples.
//
// The metadata schema needs integers (ids, counts), reals (energy ranges,
// times), text (paths, parameters, log excerpts), booleans (flags such as
// is_public) and blobs (LOB ablation).
#ifndef HEDC_DB_VALUE_H_
#define HEDC_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace hedc::db {

enum class ValueType { kNull = 0, kInt, kReal, kText, kBool, kBlob };

const char* ValueTypeName(ValueType type);

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Text(std::string v) { return Value(std::move(v)); }
  static Value Bool(bool v) { return Value(v); }
  static Value Blob(std::vector<uint8_t> v) { return Value(std::move(v)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const;     // numeric coercion; 0 for null/non-numeric
  double AsReal() const;     // numeric coercion; 0.0 likewise
  bool AsBool() const;       // false for null; non-zero numerics are true
  std::string AsText() const;  // printable rendering of any type
  // Unchecked typed reads (UB unless type() matches); the vectorized
  // scan path uses these to keep per-row flattening free of the
  // coercion switch in the As* accessors.
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double real_value() const { return std::get<double>(data_); }
  bool bool_value() const { return std::get<bool>(data_); }
  const std::string& text() const { return std::get<std::string>(data_); }
  const std::vector<uint8_t>& blob() const {
    return std::get<std::vector<uint8_t>>(data_);
  }

  // SQL-style three-valued-logic-free ordering used by indexes: NULL sorts
  // first; numeric types compare by value; text lexicographically. Cross
  // numeric/text comparisons coerce text to number when comparing with a
  // numeric (mirrors lenient scripting front ends).
  // Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  size_t Hash() const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(std::vector<uint8_t> v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string, bool,
               std::vector<uint8_t>>
      data_;
};

using Row = std::vector<Value>;

}  // namespace hedc::db

#endif  // HEDC_DB_VALUE_H_
