// Equality-only hash index (point lookups on ids, e.g. the location
// tables keyed by item_id — the "two extra database queries on an indexed
// field" of §4.3 are served here).
#ifndef HEDC_DB_HASH_INDEX_H_
#define HEDC_DB_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/value.h"

namespace hedc::db {

class HashIndex {
 public:
  void Insert(const Value& key, int64_t row_id) {
    buckets_[KeyOf(key)].push_back(row_id);
    ++size_;
  }

  bool Erase(const Value& key, int64_t row_id) {
    auto it = buckets_.find(KeyOf(key));
    if (it == buckets_.end()) return false;
    auto& ids = it->second;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == row_id) {
        ids[i] = ids.back();
        ids.pop_back();
        if (ids.empty()) buckets_.erase(it);
        --size_;
        return true;
      }
    }
    return false;
  }

  void Lookup(const Value& key, std::vector<int64_t>* out) const {
    auto it = buckets_.find(KeyOf(key));
    if (it == buckets_.end()) return;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }

  size_t size() const { return size_; }

 private:
  // Values that compare equal must map to the same bucket key; AsText of
  // the canonical rendering plus the type class achieves that for the
  // numeric coercions Value::Compare performs.
  static std::string KeyOf(const Value& v) {
    switch (v.type()) {
      case ValueType::kInt:
      case ValueType::kReal:
      case ValueType::kBool: {
        double d = v.AsReal();
        char buf[40];
        snprintf(buf, sizeof(buf), "n:%.17g", d);
        return buf;
      }
      case ValueType::kText:
        return "t:" + v.text();
      case ValueType::kNull:
        return "0:";
      case ValueType::kBlob:
        return "b:" + std::to_string(v.Hash());
    }
    return "";
  }

  std::unordered_map<std::string, std::vector<int64_t>> buckets_;
  size_t size_ = 0;
};

}  // namespace hedc::db

#endif  // HEDC_DB_HASH_INDEX_H_
