// Checkpointing: snapshot the full database state to a file and truncate
// the WAL. Recovery becomes snapshot + WAL tail instead of replaying the
// whole history — the "backup/recovery procedures" of §4.1 for the
// metadata side.
#ifndef HEDC_DB_CHECKPOINT_H_
#define HEDC_DB_CHECKPOINT_H_

#include <string>

#include "core/status.h"
#include "db/database.h"

namespace hedc::db {

// Writes a snapshot of every table (schema, indexes, rows with their row
// ids) to `snapshot_path`. CRC-framed; atomic via write-to-temp+rename.
Status WriteSnapshot(Database* db, const std::string& snapshot_path);

// Loads a snapshot into an empty Database.
Status LoadSnapshot(Database* db, const std::string& snapshot_path);

// Full checkpoint for a WAL-backed database: snapshot, then truncate the
// WAL file (the snapshot now carries everything up to this point).
// The database must currently have no open transaction.
Status Checkpoint(Database* db, const std::string& snapshot_path,
                  const std::string& wal_path);

// Opens a database from snapshot (if present) + WAL tail, and re-enables
// WAL logging. The standard recovery entry point.
Status OpenWithCheckpoint(Database* db, const std::string& snapshot_path,
                          const std::string& wal_path);

}  // namespace hedc::db

#endif  // HEDC_DB_CHECKPOINT_H_
