// Multi-table SELECT support: joined name resolution and the hash-join
// pipeline executor (DESIGN.md §4h).
//
// A joined SELECT binds every column reference against a JoinSchema — the
// FROM-order concatenation of the participating tables' schemas — so a
// bound Expr evaluates against a "combined row" (driver columns followed
// by each joined table's columns at its offset). Qualified names
// (table.column) resolve exactly; bare names must be unambiguous across
// the FROM list.
//
// Execution (src/db/join.cc) plans one equi-join pipeline per statement:
// WHERE and ON conjuncts are pooled, single-table conjuncts are pushed
// down to their table's scan, column=column equalities become join
// edges, and everything else is a residual interpreted at the earliest
// step where all referenced tables are available. Zone-map row estimates
// pick the probe (driver) side and the build order; the vectorized mode
// probes partitioned hash tables morsel-at-a-time on the scan pool, the
// row mode (db.vectorized=off) interprets the same plan tuple-at-a-time.
#ifndef HEDC_DB_JOIN_H_
#define HEDC_DB_JOIN_H_

#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/expr.h"
#include "db/table.h"

namespace hedc::db {

// FROM-order table list with flat column offsets. Borrowed Table
// pointers: the caller holds the latches for the statement's duration.
class JoinSchema {
 public:
  struct TableRef {
    std::string name;    // as written in the statement
    const Table* table;
    size_t offset;       // first flat column index of this table
  };

  // Appends a table; rejects duplicates (self-joins need aliases the
  // dialect does not have).
  Status AddTable(const std::string& name, const Table* table);

  size_t num_tables() const { return tables_.size(); }
  const TableRef& table(size_t i) const { return tables_[i]; }
  size_t total_columns() const { return total_columns_; }

  // Flat index for `name` ("table.column" resolves exactly; a bare
  // column must match exactly one table). InvalidArgument on ambiguity,
  // NotFound on no match.
  Result<size_t> ResolveColumn(const std::string& name) const;

  // FROM-order index of the table owning flat column `flat`.
  size_t TableOfColumn(size_t flat) const;
  // Column index within its owning table.
  size_t LocalColumn(size_t flat) const;
  // Declared type of a flat column.
  const ColumnDef& column(size_t flat) const;
  // Display name: bare column name if unique across the FROM list,
  // otherwise table-qualified.
  std::string ColumnDisplayName(size_t flat) const;

 private:
  std::vector<TableRef> tables_;
  size_t total_columns_ = 0;
};

// BindExpr against a JoinSchema: column references resolve to flat
// combined-row indexes, '?' parameters are substituted as literals.
Status BindExprJoined(Expr* expr, const JoinSchema& schema,
                      const std::vector<Value>& params);

// Rewrites "table.column" references to bare "column" in place when the
// qualifier names `table` (case-insensitive); used by the single-table
// executor so qualified names keep working without a JoinSchema.
void StripQualifiers(Expr* expr, const std::string& table);

// Single-name variant of the rewrite above.
std::string StripQualifier(const std::string& name, const std::string& table);

// Canonicalizes a join-key value so that hashing agrees with
// Value::Compare across the physical types the two key columns can
// hold. Within one comparison class (numeric/numeric or text/text)
// Value::Hash already matches Compare; a text-vs-numeric column pairing
// compares on the double axis, so both sides canonicalize to Real.
// NULL keys stay NULL (the caller drops them: NULL = x is false).
Value CanonicalJoinKey(const Value& v, bool coerce_numeric);

}  // namespace hedc::db

#endif  // HEDC_DB_JOIN_H_
