// SQL-subset front end: lexer, AST and recursive-descent parser.
//
// Dialect (sufficient for all metadata traffic in the paper):
//   SELECT */cols/aggs FROM t [[INNER] JOIN t2 ON e]... [WHERE e]
//       [GROUP BY c, ...] [ORDER BY c [DESC]] [LIMIT n]
//   INSERT INTO t [(cols)] VALUES (...), (...)
//   UPDATE t SET c = e, ... [WHERE e]
//   DELETE FROM t [WHERE e]
//   CREATE TABLE t (c TYPE [PRIMARY KEY] [NOT NULL], ...)
//   CREATE INDEX name ON t (c) [USING HASH]
//   DROP TABLE t
// Literals: integers, reals, 'strings', TRUE/FALSE/NULL; '?' parameters.
// Aggregates: COUNT(*), COUNT(c), MIN, MAX, SUM, AVG.
// Column references may be qualified (table.column); each JOIN is an
// inner equi-join whose ON clause must contain at least one equality
// between columns of the new table and an earlier one (extra ON
// conjuncts become residual predicates).
#ifndef HEDC_DB_SQL_H_
#define HEDC_DB_SQL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/expr.h"
#include "db/schema.h"

namespace hedc::db {

enum class AggFunc { kNone, kCount, kCountStar, kMin, kMax, kSum, kAvg };

struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  std::string column;  // empty for COUNT(*)
  std::string alias;   // display name
};

// One `JOIN table ON condition` clause. The ON tree may reference
// columns of the joined table and any table to its left in FROM order.
struct JoinClause {
  std::string table;
  std::unique_ptr<Expr> on;
};

struct SelectStmt {
  std::string table;
  std::vector<JoinClause> joins;      // empty = single-table SELECT
  bool star = false;
  std::vector<SelectItem> items;
  std::unique_ptr<Expr> where;
  std::vector<std::string> group_by;  // empty = none
  std::string order_by;         // empty = none
  bool order_desc = false;
  int64_t limit = -1;           // -1 = unlimited
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::unique_ptr<Expr> where;
};

struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;
};

struct CreateTableStmt {
  std::string table;
  Schema schema;
  bool if_not_exists = false;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::string column;
  bool hash = false;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kCreateIndex,
    kDropTable,
    kBegin,
    kCommit,
    kRollback,
  };
  Kind kind;
  SelectStmt select;
  InsertStmt insert;
  UpdateStmt update;
  DeleteStmt del;
  CreateTableStmt create_table;
  CreateIndexStmt create_index;
  DropTableStmt drop_table;
  int num_params = 0;  // number of '?' markers encountered
};

// Parses a single SQL statement (trailing ';' optional).
Result<std::unique_ptr<Statement>> ParseSql(std::string_view sql);

}  // namespace hedc::db

#endif  // HEDC_DB_SQL_H_
