#include "db/schema.h"

#include "core/strings.h"

namespace hedc::db {

std::optional<size_t> Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::optional<size_t> Schema::PrimaryKeyIndex() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) return i;
  }
  return std::nullopt;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema has %zu columns", row.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnDef& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (col.not_null || col.primary_key) {
        return Status::InvalidArgument(
            StrFormat("NULL in NOT NULL column '%s'", col.name.c_str()));
      }
      continue;
    }
    switch (col.type) {
      case ValueType::kInt:
      case ValueType::kReal:
      case ValueType::kBool:
        if (v.type() == ValueType::kBlob) {
          return Status::InvalidArgument(
              StrFormat("blob value in numeric column '%s'",
                        col.name.c_str()));
        }
        break;
      case ValueType::kText:
        if (v.type() == ValueType::kBlob) {
          return Status::InvalidArgument(StrFormat(
              "blob value in text column '%s'", col.name.c_str()));
        }
        break;
      case ValueType::kBlob:
        if (v.type() != ValueType::kBlob) {
          return Status::InvalidArgument(StrFormat(
              "non-blob value in blob column '%s'", col.name.c_str()));
        }
        break;
      case ValueType::kNull:
        break;
    }
  }
  return Status::Ok();
}

void Schema::CoerceRow(Row* row) const {
  for (size_t i = 0; i < columns_.size() && i < row->size(); ++i) {
    Value& v = (*row)[i];
    if (v.is_null()) continue;
    switch (columns_[i].type) {
      case ValueType::kInt:
        if (v.type() != ValueType::kInt) v = Value::Int(v.AsInt());
        break;
      case ValueType::kReal:
        if (v.type() != ValueType::kReal) v = Value::Real(v.AsReal());
        break;
      case ValueType::kBool:
        if (v.type() != ValueType::kBool) v = Value::Bool(v.AsBool());
        break;
      case ValueType::kText:
        if (v.type() != ValueType::kText) v = Value::Text(v.AsText());
        break;
      default:
        break;
    }
  }
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += ValueTypeName(columns_[i].type);
    if (columns_[i].primary_key) out += " PRIMARY KEY";
    if (columns_[i].not_null) out += " NOT NULL";
  }
  out += ')';
  return out;
}

}  // namespace hedc::db
