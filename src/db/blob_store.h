// LOB emulation: stores large objects chunked across database rows.
//
// §4.2 rejects LOBs because (i) access is significantly slower than files
// and (ii) "for the LOBs to be manageable, they must be reasonably small".
// BlobStore reproduces that design alternative so the abl_lob_vs_file
// bench can compare it against direct archive file reads.
#ifndef HEDC_DB_BLOB_STORE_H_
#define HEDC_DB_BLOB_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/database.h"

namespace hedc::db {

class BlobStore {
 public:
  // `chunk_size` mirrors "reasonably small" LOBs.
  explicit BlobStore(Database* db, size_t chunk_size = 64 * 1024);

  // Creates the backing table (idempotent).
  Status Init();

  // Stores `data` under `name`, replacing any previous value.
  Status Put(const std::string& name, const std::vector<uint8_t>& data);

  // Reassembles the blob through the SQL layer (chunk query + ordering),
  // which is exactly the overhead the paper measured against files.
  Result<std::vector<uint8_t>> Get(const std::string& name);

  Status Delete(const std::string& name);

  size_t chunk_size() const { return chunk_size_; }

 private:
  Database* db_;
  size_t chunk_size_;
};

}  // namespace hedc::db

#endif  // HEDC_DB_BLOB_STORE_H_
