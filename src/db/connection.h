// Connections and connection pools.
//
// §5.3: "Creating database connections and user sessions are the two most
// expensive parts of request processing. ... The database connection pool
// is split into separate pools for query processing, updates, and user
// authentication. Connections are immediately released by sessions after
// the result set has been copied."
//
// Connection creation charges a configurable setup cost against the given
// Clock so the pooling benefit is measurable (abl_session_pooling bench).
#ifndef HEDC_DB_CONNECTION_H_
#define HEDC_DB_CONNECTION_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/status.h"
#include "db/database.h"

namespace hedc::db {

class Connection {
 public:
  // Opening a connection performs authentication against the database's
  // user table semantics (simulated) and pays `setup_cost`.
  Connection(Database* db, Clock* clock, Micros setup_cost);

  Result<ResultSet> Execute(std::string_view sql,
                            const std::vector<Value>& params = {});

  Database* database() { return db_; }
  int64_t id() const { return id_; }

 private:
  Database* db_;
  int64_t id_;
};

enum class PoolKind { kQuery = 0, kUpdate = 1, kAuth = 2 };

// A pooled connection handle; returns the connection on destruction.
class ConnectionPool;
class PooledConnection {
 public:
  PooledConnection() = default;
  PooledConnection(ConnectionPool* pool, PoolKind kind,
                   std::shared_ptr<Connection> conn)
      : pool_(pool), kind_(kind), conn_(std::move(conn)) {}
  ~PooledConnection();

  PooledConnection(PooledConnection&& other) noexcept { *this = std::move(other); }
  PooledConnection& operator=(PooledConnection&& other) noexcept;
  PooledConnection(const PooledConnection&) = delete;
  PooledConnection& operator=(const PooledConnection&) = delete;

  Connection* operator->() { return conn_.get(); }
  Connection* get() { return conn_.get(); }
  bool valid() const { return conn_ != nullptr; }

  // Early release (the "released immediately after the result set has been
  // copied" discipline).
  void Release();

 private:
  ConnectionPool* pool_ = nullptr;
  PoolKind kind_ = PoolKind::kQuery;
  std::shared_ptr<Connection> conn_;
};

class ConnectionPool {
 public:
  struct Options {
    size_t query_pool_size = 8;
    size_t update_pool_size = 4;
    size_t auth_pool_size = 2;
    Micros connection_setup_cost = 50 * kMicrosPerMilli;
    bool pooling_enabled = true;  // false = open a fresh connection per use
  };

  ConnectionPool(Database* db, Clock* clock, Options options);

  // Blocks until a connection of the requested kind is available.
  PooledConnection Acquire(PoolKind kind);

  // Pool metrics.
  int64_t connections_created() const { return connections_created_; }
  size_t available(PoolKind kind) const;

 private:
  friend class PooledConnection;
  void ReturnConnection(PoolKind kind, std::shared_ptr<Connection> conn);
  std::shared_ptr<Connection> NewConnection();

  Database* db_;
  Clock* clock_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Connection>> free_[3];
  size_t outstanding_[3] = {0, 0, 0};
  int64_t connections_created_ = 0;
};

}  // namespace hedc::db

#endif  // HEDC_DB_CONNECTION_H_
