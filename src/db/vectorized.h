// Vectorized scan-filter execution (DESIGN.md §4e).
//
// The row-at-a-time path re-interprets the WHERE tree per row on boxed
// Values (Status machinery + Value copies at every node). This module
// replaces it for the common shapes: the bound predicate is compiled
// once per statement into per-conjunct *filter kernels* that run over a
// DataChunk's flattened column vectors, compacting a selection vector.
// Conjuncts the compiler does not recognize fall back to the
// interpreter (EvalExpr) — per row, but only for the residual conjunct,
// and still batched. Kernels are applied in conjunct order, so AND
// short-circuit semantics (a row dropped by conjunct k never evaluates
// conjunct k+1) match the interpreter exactly.
//
// ScanFilter drives whole table scans morsel-at-a-time: zone maps
// prune morsels whose [min,max] cannot intersect the predicate's
// sargable bounds, and on large tables morsels are dispatched
// morsel-driven (workers claim the next morsel off a shared atomic) on
// a core::ThreadPool, the caller participating as one worker.
#ifndef HEDC_DB_VECTORIZED_H_
#define HEDC_DB_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "core/thread_pool.h"
#include "db/data_chunk.h"
#include "db/expr.h"
#include "db/scan_bounds.h"
#include "db/table.h"

namespace hedc::db {

// One compiled conjunct. Borrowed pointers (`literal`, `in_values`,
// `expr`) point into the bound WHERE tree and must outlive the plan.
struct FilterKernel {
  enum class Kind {
    kCompare,     // col <op> literal, op in {=, !=, <, <=, >, >=}
    kLike,        // col LIKE literal
    kInList,      // col IN (literals...)
    kIsNull,      // col IS NULL
    kIsNotNull,   // col IS NOT NULL
    kConstFalse,  // provably empty (e.g. col = NULL)
    kInterpret,   // anything else: EvalExpr per selected row
  };
  Kind kind = Kind::kInterpret;
  int col = -1;
  BinOp op = BinOp::kEq;
  const Value* literal = nullptr;
  std::vector<const Value*> in_values;  // non-null IN items
  const Expr* expr = nullptr;
};

struct FilterPlan {
  std::vector<FilterKernel> kernels;
  size_t typed = 0;        // kernels running on flattened vectors
  size_t interpreted = 0;  // kernels falling back to EvalExpr

  bool fully_typed() const { return interpreted == 0; }
};

// Compiles the bound WHERE tree (nullptr = no predicate) into kernels,
// one per AND-conjunct, in conjunct order.
FilterPlan CompileFilter(const Expr* where);

// Applies `plan` to `chunk`, compacting `sel` (indices into the chunk)
// in place. `sel` must be initialized by the caller (identity for a
// fresh chunk). Only interpreted kernels can fail.
Status ApplyFilter(const FilterPlan& plan, DataChunk* chunk,
                   std::vector<uint32_t>* sel);

// True if the zone map cannot rule out a row of `m` matching `b` on
// column `col`. Conservative: returns true whenever the zone is
// unusable (disabled column, or text zone probed with a non-text bound,
// where Value::Compare's coercion does not agree with the zone order).
bool MorselMayMatch(const Table::Morsel& m, size_t col,
                    const ColumnBounds& b);

// Morsels of `table` surviving zone-map pruning under `bounds`, in
// ascending row-id order. `pruned` (optional) counts skipped morsels.
void PruneMorsels(const Table& table,
                  const std::unordered_map<int, ColumnBounds>& bounds,
                  std::vector<const Table::Morsel*>* out, int64_t* pruned);

struct ScanOptions {
  bool zone_maps = true;
  int threads = 1;              // parallelism degree, caller included
  ThreadPool* pool = nullptr;   // required for threads > 1
  // Tables smaller than this stay serial (morsel dispatch overhead
  // dwarfs the scan itself).
  int64_t min_parallel_rows = 4096;
};

struct ScanStats {
  int64_t morsels_total = 0;
  int64_t morsels_pruned = 0;
  int64_t rows_scanned = 0;  // rows run through the kernels
  int64_t rows_matched = 0;
  int threads_used = 1;
};

// A surviving row: borrowed pointer into the table heap, stable while
// the caller holds the table latch and performs no mutations.
struct ScanMatch {
  int64_t row_id;
  const Row* row;
};

// The parallelism degree ScanFilter would use for `table` under `opts`,
// assuming a pool is available (exposed so ExplainSelect reports the
// same number without instantiating the pool).
int PlannedScanThreads(const Table& table, const ScanOptions& opts);

// Vectorized scan-filter over the whole table: compiles `where`, prunes
// morsels via zone maps, fills chunks and applies the kernels, either
// serially or morsel-driven on `opts.pool`. Matches are appended in
// ascending row-id order. Caller must hold the table latch (shared is
// enough) for the duration of the call *and* for as long as it
// dereferences the returned row pointers.
Status ScanFilter(const Table& table, const Expr* where,
                  const ScanOptions& opts, std::vector<ScanMatch>* out,
                  ScanStats* stats);

}  // namespace hedc::db

#endif  // HEDC_DB_VECTORIZED_H_
