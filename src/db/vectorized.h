// Vectorized scan-filter execution (DESIGN.md §4e).
//
// The row-at-a-time path re-interprets the WHERE tree per row on boxed
// Values (Status machinery + Value copies at every node). This module
// replaces it for the common shapes: the bound predicate is compiled
// once per statement into per-conjunct *filter kernels* that run over a
// DataChunk's flattened column vectors, compacting a selection vector.
// Conjuncts the compiler does not recognize fall back to the
// interpreter (EvalExpr) — per row, but only for the residual conjunct,
// and still batched. Kernels are applied in conjunct order, so AND
// short-circuit semantics (a row dropped by conjunct k never evaluates
// conjunct k+1) match the interpreter exactly.
//
// ScanFilter drives whole table scans morsel-at-a-time: zone maps
// prune morsels whose [min,max] cannot intersect the predicate's
// sargable bounds, and on large tables morsels are dispatched
// morsel-driven (workers claim the next morsel off a shared atomic) on
// a core::ThreadPool, the caller participating as one worker.
#ifndef HEDC_DB_VECTORIZED_H_
#define HEDC_DB_VECTORIZED_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "core/thread_pool.h"
#include "db/data_chunk.h"
#include "db/expr.h"
#include "db/scan_bounds.h"
#include "db/sql.h"
#include "db/table.h"

namespace hedc::db {

// One compiled conjunct. Borrowed pointers (`literal`, `in_values`,
// `expr`) point into the bound WHERE tree and must outlive the plan.
struct FilterKernel {
  enum class Kind {
    kCompare,     // col <op> literal, op in {=, !=, <, <=, >, >=}
    kLike,        // col LIKE literal
    kInList,      // col IN (literals...)
    kIsNull,      // col IS NULL
    kIsNotNull,   // col IS NOT NULL
    kConstFalse,  // provably empty (e.g. col = NULL)
    kInterpret,   // anything else: EvalExpr per selected row
  };
  Kind kind = Kind::kInterpret;
  int col = -1;
  BinOp op = BinOp::kEq;
  const Value* literal = nullptr;
  std::vector<const Value*> in_values;  // non-null IN items
  const Expr* expr = nullptr;
};

struct FilterPlan {
  std::vector<FilterKernel> kernels;
  size_t typed = 0;        // kernels running on flattened vectors
  size_t interpreted = 0;  // kernels falling back to EvalExpr

  bool fully_typed() const { return interpreted == 0; }
};

// Compiles the bound WHERE tree (nullptr = no predicate) into kernels,
// one per AND-conjunct, in conjunct order.
FilterPlan CompileFilter(const Expr* where);

// Applies `plan` to `chunk`, compacting `sel` (indices into the chunk)
// in place. `sel` must be initialized by the caller (identity for a
// fresh chunk). Only interpreted kernels can fail.
Status ApplyFilter(const FilterPlan& plan, DataChunk* chunk,
                   std::vector<uint32_t>* sel);

// True if the zone map cannot rule out a row of `m` matching `b` on
// column `col`. Conservative: returns true whenever the zone is
// unusable (disabled column, or text zone probed with a non-text bound,
// where Value::Compare's coercion does not agree with the zone order).
bool MorselMayMatch(const Table::Morsel& m, size_t col,
                    const ColumnBounds& b);

// Morsels of `table` surviving zone-map pruning under `bounds`, in
// ascending row-id order. `pruned` (optional) counts skipped morsels.
void PruneMorsels(const Table& table,
                  const std::unordered_map<int, ColumnBounds>& bounds,
                  std::vector<const Table::Morsel*>* out, int64_t* pruned);

struct ScanOptions {
  bool zone_maps = true;
  int threads = 1;              // parallelism degree, caller included
  ThreadPool* pool = nullptr;   // required for threads > 1
  // Tables smaller than this stay serial (morsel dispatch overhead
  // dwarfs the scan itself).
  int64_t min_parallel_rows = 4096;
};

struct ScanStats {
  int64_t morsels_total = 0;
  int64_t morsels_pruned = 0;
  int64_t rows_scanned = 0;  // rows run through the kernels
  int64_t rows_matched = 0;
  int threads_used = 1;
};

// A surviving row: borrowed pointer into the table heap, stable while
// the caller holds the table latch and performs no mutations.
struct ScanMatch {
  int64_t row_id;
  const Row* row;
};

// The parallelism degree ScanFilter would use for `table` under `opts`,
// assuming a pool is available (exposed so ExplainSelect reports the
// same number without instantiating the pool).
int PlannedScanThreads(const Table& table, const ScanOptions& opts);

// Vectorized scan-filter over the whole table: compiles `where`, prunes
// morsels via zone maps, fills chunks and applies the kernels, either
// serially or morsel-driven on `opts.pool`. Matches are appended in
// ascending row-id order. Caller must hold the table latch (shared is
// enough) for the duration of the call *and* for as long as it
// dereferences the returned row pointers.
Status ScanFilter(const Table& table, const Expr* where,
                  const ScanOptions& opts, std::vector<ScanMatch>* out,
                  ScanStats* stats);

// ---- Vectorized grouped aggregation (DESIGN.md §4h) ----
//
// One hash-grouped accumulator shared by every aggregation path: the
// row interpreter feeds it boxed rows, the vectorized paths run typed
// kernels over a chunk's flattened columns, and parallel scans fork one
// aggregator per worker and merge the partials. Group identity is the
// rendered text of the key columns joined with 0x1f (single-column keys
// therefore match the historical row path exactly, including NULL
// rendering as "NULL"), so Int(1) and Real(1.0) share a group just as
// Value::Compare equates them.

struct AggSpec {
  AggFunc func = AggFunc::kCountStar;
  int col = -1;  // column index (combined/flat for joins); -1 = COUNT(*)
};

class GroupedAggregator {
 public:
  GroupedAggregator(std::vector<int> group_cols, std::vector<AggSpec> specs);

  // Empty aggregator with the same shape (per-worker partials).
  GroupedAggregator Fork() const;

  // Row-at-a-time accumulation. `seq` orders a group's first appearance
  // across partials (pass the driving row id, or a running counter).
  void AccumulateRow(const Row& row, int64_t seq);

  // Chunk accumulation over the selected positions: group ids resolve
  // once per row (memoized int / borrowed text fast paths for uniform
  // key columns), then each aggregate runs a typed kernel over the
  // flattened column with a generic Value fallback for mixed columns.
  void AccumulateChunk(DataChunk* chunk, const std::vector<uint32_t>& sel);

  // Folds a partial into this aggregator (key-wise; first_seen = min).
  void MergeFrom(const GroupedAggregator& other);

  size_t num_groups() const { return groups_.size(); }

  // Output layout: each slot is either a group key (index into the
  // group_cols list) or an aggregate (index into the specs list).
  struct OutputSlot {
    bool group_key = false;
    size_t index = 0;
  };

  // One row per group, ordered by first appearance. With no group
  // columns and no accumulated rows, emits the SQL empty-input row
  // (COUNT = 0, other aggregates NULL) when `empty_input_row` is set.
  void Emit(const std::vector<OutputSlot>& layout, bool empty_input_row,
            std::vector<Row>* out) const;

 private:
  struct ItemAgg {
    int64_t nonnull = 0;  // non-NULL inputs (COUNT(col), AVG divisor)
    double sum = 0;
    bool any = false;
    Value vmin, vmax;
  };
  struct Group {
    std::string key;
    std::vector<Value> key_vals;  // first-seen key values, display order
    int64_t rows = 0;             // COUNT(*)
    int64_t first_seen = 0;
    std::vector<ItemAgg> items;   // parallel to specs_
  };

  // Group index for `key`, creating it (first_seen=seq, key values
  // copied from kv[0..nkv)) on first sight; min-updates first_seen.
  size_t Intern(const std::string& key, int64_t seq, const Value* kv,
                size_t nkv);
  std::string BuildKey(const Row& row) const;
  void AccumulateItems(Group* g, const Row& row);
  static void UpdateMinMax(ItemAgg* a, const Value& v);

  std::vector<int> group_cols_;
  std::vector<AggSpec> specs_;
  std::vector<Group> groups_;
  std::unordered_map<std::string, size_t> index_;
  std::unordered_map<int64_t, size_t> int_memo_;  // single-int-key cache
  std::vector<uint32_t> gids_;                    // per-chunk scratch
};

// ScanFilter's sibling for aggregate queries: scan → filter → aggregate
// per morsel without materializing matches. Parallel workers accumulate
// worker-local partials, merged into `agg` after the scan; group output
// order stays deterministic (first_seen is the row id) but
// floating-point SUM/AVG association varies with the schedule.
Status ScanAggregate(const Table& table, const Expr* where,
                     const ScanOptions& opts, GroupedAggregator* agg,
                     ScanStats* stats);

}  // namespace hedc::db

#endif  // HEDC_DB_VECTORIZED_H_
