// Columnar execution batch for the vectorized scan path.
//
// A DataChunk holds one morsel's worth of live rows as borrowed
// pointers into the table heap (stable while the caller holds the
// table latch) plus lazily materialized per-column vectors. Filter
// kernels only pay the row->column transposition for the columns a
// predicate actually touches; untouched columns are never flattened.
#ifndef HEDC_DB_DATA_CHUNK_H_
#define HEDC_DB_DATA_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/value.h"

namespace hedc::db {

// One flattened column of a chunk. `tag` is the uniform physical type
// of the non-null values; schema coercion guarantees uniformity for
// rows that went through Insert/Update, but a mixed column (possible
// through direct Table access) clears `uniform` and sends kernels down
// the generic Value::Compare path.
struct FlatColumn {
  ValueType tag = ValueType::kNull;
  bool uniform = true;
  std::vector<uint8_t> nulls;             // 1 = NULL at that position
  std::vector<int64_t> ints;              // tag kInt | kBool (as 0/1)
  std::vector<double> reals;              // tag kReal
  std::vector<const std::string*> texts;  // tag kText (borrowed)
};

class DataChunk {
 public:
  // Clears the chunk and sets the column arity (flattened columns are
  // re-derived on demand after every Reset).
  void Reset(size_t num_columns);

  void Append(int64_t row_id, const Row* row) {
    row_ids_.push_back(row_id);
    rows_.push_back(row);
  }

  size_t size() const { return rows_.size(); }
  int64_t row_id(size_t i) const { return row_ids_[i]; }
  const Row& row(size_t i) const { return *rows_[i]; }
  const Row* row_ptr(size_t i) const { return rows_[i]; }

  // Lazily transposes column `col` into typed vectors; cached until the
  // next Reset. `col` must be within the arity passed to Reset and the
  // appended rows must have at least `col + 1` values.
  const FlatColumn& Flatten(size_t col);

 private:
  std::vector<int64_t> row_ids_;
  std::vector<const Row*> rows_;
  std::vector<FlatColumn> columns_;
  std::vector<uint8_t> flattened_;
};

}  // namespace hedc::db

#endif  // HEDC_DB_DATA_CHUNK_H_
