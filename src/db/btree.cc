#include "db/btree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace hedc::db {

struct BTreeIndex::Node {
  bool leaf = true;
  std::vector<Entry> entries;    // leaf: data entries; internal: separators
  std::vector<Node*> children;   // internal only: entries.size() + 1
  Node* next = nullptr;          // leaf chain
};

namespace {

// Composite (key, row_id) comparison.
int CompareComposite(const Value& a_key, int64_t a_id, const Value& b_key,
                     int64_t b_id) {
  int c = a_key.Compare(b_key);
  if (c != 0) return c;
  if (a_id < b_id) return -1;
  if (a_id > b_id) return 1;
  return 0;
}

}  // namespace

int BTreeIndex::CompareEntry(const Entry& a, const Value& key,
                             int64_t row_id) {
  return CompareComposite(a.key, a.row_id, key, row_id);
}

BTreeIndex::BTreeIndex(int fanout) : fanout_(std::max(fanout, 4)) {
  root_ = new Node();
}

BTreeIndex::~BTreeIndex() { FreeTree(root_); }

void BTreeIndex::FreeTree(Node* node) {
  if (node == nullptr) return;
  for (Node* child : node->children) FreeTree(child);
  delete node;
}

void BTreeIndex::SplitChild(Node* parent, int idx) {
  Node* child = parent->children[idx];
  Node* right = new Node();
  right->leaf = child->leaf;
  size_t mid = child->entries.size() / 2;

  if (child->leaf) {
    // B+-tree leaf split: right keeps the upper half; the separator is a
    // copy of the first right entry.
    right->entries.assign(child->entries.begin() + mid,
                          child->entries.end());
    child->entries.resize(mid);
    right->next = child->next;
    child->next = right;
    parent->entries.insert(parent->entries.begin() + idx,
                           right->entries.front());
  } else {
    // Internal split: the median separator moves up.
    Entry median = child->entries[mid];
    right->entries.assign(child->entries.begin() + mid + 1,
                          child->entries.end());
    right->children.assign(child->children.begin() + mid + 1,
                           child->children.end());
    child->entries.resize(mid);
    child->children.resize(mid + 1);
    parent->entries.insert(parent->entries.begin() + idx, std::move(median));
  }
  parent->children.insert(parent->children.begin() + idx + 1, right);
}

void BTreeIndex::Insert(const Value& key, int64_t row_id) {
  if (static_cast<int>(root_->entries.size()) >= fanout_) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->children.push_back(root_);
    root_ = new_root;
    SplitChild(root_, 0);
  }
  InsertNonFull(root_, key, row_id);
  ++size_;
}

void BTreeIndex::InsertNonFull(Node* node, const Value& key,
                               int64_t row_id) {
  while (!node->leaf) {
    // Child index: first separator strictly greater than the target.
    size_t idx = 0;
    while (idx < node->entries.size() &&
           CompareEntry(node->entries[idx], key, row_id) <= 0) {
      ++idx;
    }
    Node* child = node->children[idx];
    if (static_cast<int>(child->entries.size()) >= fanout_) {
      SplitChild(node, static_cast<int>(idx));
      if (CompareEntry(node->entries[idx], key, row_id) <= 0) ++idx;
      child = node->children[idx];
    }
    node = child;
  }
  auto it = std::lower_bound(
      node->entries.begin(), node->entries.end(), 0,
      [&](const Entry& e, int) { return CompareEntry(e, key, row_id) < 0; });
  node->entries.insert(it, Entry{key, row_id});
}

BTreeIndex::Node* BTreeIndex::FindLeaf(const Value& key,
                                       int64_t row_id) const {
  Node* node = root_;
  while (!node->leaf) {
    size_t idx = 0;
    while (idx < node->entries.size() &&
           CompareEntry(node->entries[idx], key, row_id) <= 0) {
      ++idx;
    }
    node = node->children[idx];
  }
  return node;
}

BTreeIndex::Node* BTreeIndex::LeftmostLeaf() const {
  Node* node = root_;
  while (!node->leaf) node = node->children.front();
  return node;
}

bool BTreeIndex::Erase(const Value& key, int64_t row_id) {
  Node* leaf = FindLeaf(key, row_id);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), 0,
      [&](const Entry& e, int) { return CompareEntry(e, key, row_id) < 0; });
  if (it == leaf->entries.end() || CompareEntry(*it, key, row_id) != 0) {
    return false;
  }
  // Lazy deletion: no rebalancing. Empty leaves remain in the chain and
  // are skipped during scans; stale separators preserve ordering.
  leaf->entries.erase(it);
  --size_;
  return true;
}

void BTreeIndex::Lookup(const Value& key, std::vector<int64_t>* out) const {
  Scan(key, /*lo_inclusive=*/true, key, /*hi_inclusive=*/true,
       [out](const Value&, int64_t row_id) {
         out->push_back(row_id);
         return true;
       });
}

void BTreeIndex::Scan(
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive,
    const std::function<bool(const Value&, int64_t)>& visit) const {
  Node* leaf;
  if (lo.has_value()) {
    // Position at the first entry that can satisfy the lower bound.
    int64_t probe_id = std::numeric_limits<int64_t>::min();
    leaf = FindLeaf(*lo, probe_id);
  } else {
    leaf = LeftmostLeaf();
  }
  for (; leaf != nullptr; leaf = leaf->next) {
    for (const Entry& e : leaf->entries) {
      if (lo.has_value()) {
        int c = e.key.Compare(*lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi.has_value()) {
        int c = e.key.Compare(*hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      if (!visit(e.key, e.row_id)) return;
    }
  }
}

int BTreeIndex::height() const {
  int h = 1;
  const Node* node = root_;
  while (!node->leaf) {
    node = node->children.front();
    ++h;
  }
  return h;
}

bool BTreeIndex::CheckInvariants() const {
  int leaf_depth = height();
  if (!CheckNode(root_, nullptr, nullptr, 1, leaf_depth)) return false;
  // Leaf chain must be globally sorted.
  const Node* leaf = LeftmostLeaf();
  const Entry* prev = nullptr;
  size_t counted = 0;
  for (; leaf != nullptr; leaf = leaf->next) {
    for (const Entry& e : leaf->entries) {
      if (prev != nullptr &&
          CompareComposite(prev->key, prev->row_id, e.key, e.row_id) > 0) {
        return false;
      }
      prev = &e;
      ++counted;
    }
  }
  return counted == size_;
}

bool BTreeIndex::CheckNode(const Node* node, const Entry* lo,
                           const Entry* hi, int depth,
                           int leaf_depth) const {
  // Entries sorted within the node.
  for (size_t i = 1; i < node->entries.size(); ++i) {
    if (CompareComposite(node->entries[i - 1].key, node->entries[i - 1].row_id,
                         node->entries[i].key, node->entries[i].row_id) > 0) {
      return false;
    }
  }
  // Entries within (lo, hi] window imposed by ancestors.
  for (const Entry& e : node->entries) {
    if (lo != nullptr &&
        CompareComposite(e.key, e.row_id, lo->key, lo->row_id) < 0) {
      return false;
    }
    if (hi != nullptr &&
        CompareComposite(e.key, e.row_id, hi->key, hi->row_id) > 0) {
      return false;
    }
  }
  if (node->leaf) {
    return depth == leaf_depth;
  }
  if (node->children.size() != node->entries.size() + 1) return false;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Entry* child_lo = (i == 0) ? lo : &node->entries[i - 1];
    const Entry* child_hi = (i == node->entries.size()) ? hi : &node->entries[i];
    if (!CheckNode(node->children[i], child_lo, child_hi, depth + 1,
                   leaf_depth)) {
      return false;
    }
  }
  return true;
}

}  // namespace hedc::db
