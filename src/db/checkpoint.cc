#include "db/checkpoint.h"

#include <cstdio>

#include "core/crc32.h"
#include "core/strings.h"
#include "db/wal.h"

namespace hedc::db {

namespace {

constexpr uint32_t kSnapshotMagic = 0x48535031;  // "HSP1"

std::string CreateTableSql(const std::string& name, const Schema& schema) {
  std::string sql = "CREATE TABLE " + name + " (";
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const ColumnDef& col = schema.column(i);
    if (i > 0) sql += ", ";
    sql += col.name;
    sql += ' ';
    switch (col.type) {
      case ValueType::kInt:
        sql += "INT";
        break;
      case ValueType::kReal:
        sql += "REAL";
        break;
      case ValueType::kText:
        sql += "TEXT";
        break;
      case ValueType::kBool:
        sql += "BOOL";
        break;
      case ValueType::kBlob:
        sql += "BLOB";
        break;
      case ValueType::kNull:
        sql += "TEXT";
        break;
    }
    if (col.primary_key) sql += " PRIMARY KEY";
    if (col.not_null) sql += " NOT NULL";
  }
  sql += ")";
  return sql;
}

}  // namespace

Status WriteSnapshot(Database* db, const std::string& snapshot_path) {
  ByteBuffer payload;
  std::vector<std::string> names = db->TableNames();
  payload.PutVarint(names.size());
  for (const std::string& name : names) {
    const Table* table = db->GetTable(name);
    if (table == nullptr) {
      return Status::Internal("table vanished during snapshot: " + name);
    }
    payload.PutString(name);
    // Schema.
    const Schema& schema = table->schema();
    payload.PutVarint(schema.num_columns());
    for (const ColumnDef& col : schema.columns()) {
      payload.PutString(col.name);
      payload.PutU8(static_cast<uint8_t>(col.type));
      payload.PutU8((col.not_null ? 1 : 0) | (col.primary_key ? 2 : 0));
    }
    // Indexes.
    payload.PutVarint(table->indexes().size());
    for (const IndexDef& def : table->indexes()) {
      payload.PutString(def.name);
      payload.PutString(schema.column(def.column).name);
      payload.PutU8(def.kind == IndexKind::kHash ? 1 : 0);
    }
    // Rows.
    payload.PutVarint(table->num_rows());
    table->Scan([&payload](int64_t row_id, const Row& row) {
      payload.PutSignedVarint(row_id);
      EncodeRow(row, &payload);
      return true;
    });
  }

  std::string tmp_path = snapshot_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open snapshot temp file: " + tmp_path);
  }
  ByteBuffer header;
  header.PutU32(kSnapshotMagic);
  header.PutU32(Crc32(payload.data()));
  header.PutU64(payload.size());
  bool ok =
      std::fwrite(header.data().data(), 1, header.size(), f) ==
          header.size() &&
      std::fwrite(payload.data().data(), 1, payload.size(), f) ==
          payload.size();
  std::fflush(f);
  std::fclose(f);
  if (!ok) {
    std::remove(tmp_path.c_str());
    return Status::Internal("snapshot write failed");
  }
  if (std::rename(tmp_path.c_str(), snapshot_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("snapshot rename failed");
  }
  return Status::Ok();
}

Status LoadSnapshot(Database* db, const std::string& snapshot_path) {
  std::FILE* f = std::fopen(snapshot_path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("snapshot: " + snapshot_path);
  std::vector<uint8_t> contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.insert(contents.end(), buf, buf + n);
  }
  std::fclose(f);

  ByteReader reader(contents);
  uint32_t magic = 0, crc = 0;
  uint64_t payload_size = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::Corruption("not a snapshot file (bad magic)");
  }
  HEDC_RETURN_IF_ERROR(reader.GetU32(&crc));
  HEDC_RETURN_IF_ERROR(reader.GetU64(&payload_size));
  if (payload_size != reader.remaining()) {
    return Status::Corruption("snapshot truncated");
  }
  if (Crc32(contents.data() + reader.position(), payload_size) != crc) {
    return Status::Corruption("snapshot CRC mismatch");
  }

  uint64_t num_tables = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&num_tables));
  for (uint64_t t = 0; t < num_tables; ++t) {
    std::string name;
    HEDC_RETURN_IF_ERROR(reader.GetString(&name));
    uint64_t num_cols = 0;
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&num_cols));
    std::vector<ColumnDef> cols;
    for (uint64_t c = 0; c < num_cols; ++c) {
      ColumnDef col;
      HEDC_RETURN_IF_ERROR(reader.GetString(&col.name));
      uint8_t type = 0, flags = 0;
      HEDC_RETURN_IF_ERROR(reader.GetU8(&type));
      HEDC_RETURN_IF_ERROR(reader.GetU8(&flags));
      col.type = static_cast<ValueType>(type);
      col.not_null = (flags & 1) != 0;
      col.primary_key = (flags & 2) != 0;
      cols.push_back(std::move(col));
    }
    Schema schema(cols);
    Result<ResultSet> created =
        db->Execute(CreateTableSql(name, schema));
    if (!created.ok()) return created.status();

    uint64_t num_indexes = 0;
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&num_indexes));
    Table* table = db->GetTable(name);
    if (table == nullptr) return Status::Internal("snapshot table missing");
    for (uint64_t i = 0; i < num_indexes; ++i) {
      std::string index_name, column;
      uint8_t hash = 0;
      HEDC_RETURN_IF_ERROR(reader.GetString(&index_name));
      HEDC_RETURN_IF_ERROR(reader.GetString(&column));
      HEDC_RETURN_IF_ERROR(reader.GetU8(&hash));
      HEDC_RETURN_IF_ERROR(table->CreateIndex(
          index_name, column,
          hash != 0 ? IndexKind::kHash : IndexKind::kBTree));
    }
    uint64_t num_rows = 0;
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&num_rows));
    for (uint64_t r = 0; r < num_rows; ++r) {
      int64_t row_id = 0;
      HEDC_RETURN_IF_ERROR(reader.GetSignedVarint(&row_id));
      Row row;
      HEDC_RETURN_IF_ERROR(DecodeRow(&reader, &row));
      HEDC_RETURN_IF_ERROR(table->InsertWithId(row_id, std::move(row)));
    }
  }
  return Status::Ok();
}

Status Checkpoint(Database* db, const std::string& snapshot_path,
                  const std::string& wal_path) {
  if (db->in_transaction()) {
    return Status::FailedPrecondition(
        "cannot checkpoint with an open transaction");
  }
  HEDC_RETURN_IF_ERROR(WriteSnapshot(db, snapshot_path));
  return db->ResetWal(wal_path);
}

Status OpenWithCheckpoint(Database* db, const std::string& snapshot_path,
                          const std::string& wal_path) {
  Status loaded = LoadSnapshot(db, snapshot_path);
  if (!loaded.ok() && !loaded.IsNotFound()) return loaded;
  return db->OpenWal(wal_path);
}

}  // namespace hedc::db
