// Database: catalog + SQL executor + transactions.
//
// Plays the role Oracle plays in HEDC: it stores only metadata (the actual
// science data lives in the archive's file system) and serves the indexed
// point/range/count queries the DM issues.
//
// Concurrency model (latch hierarchy, acquired strictly in this order):
//   1. catalog_mu_ — shared by every statement, exclusive for DDL
//      (CREATE/DROP TABLE, CREATE INDEX) and WAL reset;
//   2. one per-table latch — shared for SELECT, exclusive for DML.
// A DML statement touches one table latch, so writers to different
// tables proceed in parallel; the multi-latch paths (joined SELECTs and
// transaction rollback) acquire latches in ascending table-name order,
// which keeps the hierarchy deadlock-free. Explicit transactions assume a
// single writer thread (Begin/Commit/Rollback serialize on txn_mu_).
#ifndef HEDC_DB_DATABASE_H_
#define HEDC_DB_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "core/thread_pool.h"
#include "db/sql.h"
#include "db/table.h"
#include "db/wal.h"

namespace hedc {
class Config;
}

namespace hedc::db {

// Tabular statement result. DML statements report affected row count.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected_rows = 0;
  int64_t last_insert_row_id = 0;

  size_t num_rows() const { return rows.size(); }
  // Value at (row, named column); Null when out of range/unknown.
  Value Get(size_t row, const std::string& column) const;
};

// Execution statistics for the evaluation harness.
struct DbStats {
  std::atomic<int64_t> queries{0};        // SELECT statements
  std::atomic<int64_t> joins{0};          // joined SELECT statements
  std::atomic<int64_t> updates{0};        // INSERT/UPDATE/DELETE statements
  std::atomic<int64_t> full_scans{0};     // table scans (no usable index)
  std::atomic<int64_t> index_scans{0};    // index-assisted accesses
  std::atomic<int64_t> rows_examined{0};
  std::atomic<int64_t> rows_matched{0};        // rows surviving the WHERE
  std::atomic<int64_t> morsels_pruned{0};      // zone-map skips
  std::atomic<int64_t> stale_index_entries{0};  // dangling index hits
};

// Query-execution knobs (DESIGN.md §4e). `morsel_rows` applies to
// tables created after the change; the other fields take effect on the
// next statement.
struct ExecOptions {
  bool vectorized = true;   // batched scan-filter path (db/vectorized.h)
  bool zone_maps = true;    // morsel min/max pruning
  int64_t morsel_rows = Table::kDefaultRowsPerMorsel;
  int scan_threads = 4;     // max parallelism of one full scan
  int join_partitions = 8;  // hash-join build partitions (vectorized mode)
  // Cost-based join order (largest estimated input drives, smallest
  // builds first); off = FROM order.
  bool join_planner = true;
};

class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Enables durability: appends every committed mutation to `wal_path` and
  // (if the file already has records) replays them first.
  Status OpenWal(const std::string& wal_path);

  // Truncates and reopens the WAL (used by checkpointing after a
  // snapshot has captured the current state). Requires an open WAL.
  Status ResetWal(const std::string& wal_path);
  bool wal_enabled() const { return wal_enabled_; }

  // Parses and executes one statement. `params` bind '?' markers in order.
  Result<ResultSet> Execute(std::string_view sql,
                            const std::vector<Value>& params = {});

  // Executes a pre-parsed statement (prepared-statement path; the
  // statement is not consumed and can be re-executed with new params).
  Result<ResultSet> ExecuteStatement(const Statement& stmt,
                                     const std::vector<Value>& params);

  // Explicit transactions (single writer at a time). DML inside a
  // transaction is applied immediately but undone on Rollback; WAL records
  // are buffered until Commit (flushed as one group-committed batch).
  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const {
    return in_txn_.load(std::memory_order_acquire);
  }

  // Direct table access for substrates that bypass SQL (BlobStore, tests).
  // The lookup is latched, but the returned table is not: callers are
  // expected to coordinate their own access (single-threaded admin paths).
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // Reads db.vectorized, db.zone_maps, db.morsel_rows, db.scan_threads,
  // db.join_partitions and db.join_planner; unset keys keep their
  // current value.
  void Configure(const Config& config);
  void set_exec_options(const ExecOptions& opts) { exec_options_ = opts; }
  const ExecOptions& exec_options() const { return exec_options_; }

  DbStats& stats() { return stats_; }

  // Plan description for a joined SELECT, one line per pipeline stage
  // (driver scan, hash-join builds, terminal); mirrors the planner
  // decisions ExecJoinedSelect would make (src/db/join.cc).
  Result<std::vector<std::string>> ExplainJoinedSelect(
      const SelectStmt& stmt, const std::vector<Value>& params);

 private:
  struct UndoOp {
    WalOp op;  // inverse action is derived from this
    std::string table;
    int64_t row_id = 0;
    Row old_row;
  };

  // A catalog slot: the table plus its latch. Entries are only created or
  // destroyed under an exclusive catalog_mu_, so holding catalog_mu_
  // shared keeps the entry (and its latch) alive.
  struct TableEntry {
    TableEntry(std::string name, Schema schema, int64_t morsel_rows)
        : table(std::move(name), std::move(schema), morsel_rows) {}
    Table table;
    mutable std::shared_mutex latch;
  };

  Result<ResultSet> ExecSelect(const SelectStmt& stmt,
                               const std::vector<Value>& params);
  // Multi-table SELECT (src/db/join.cc): plans an equi-join pipeline
  // and runs it vectorized or row-at-a-time per exec_options_.
  Result<ResultSet> ExecJoinedSelect(const SelectStmt& stmt,
                                     const std::vector<Value>& params);
  Result<ResultSet> ExecInsert(const InsertStmt& stmt,
                               const std::vector<Value>& params);
  Result<ResultSet> ExecUpdate(const UpdateStmt& stmt,
                               const std::vector<Value>& params);
  Result<ResultSet> ExecDelete(const DeleteStmt& stmt,
                               const std::vector<Value>& params);
  Result<ResultSet> ExecCreateTable(const CreateTableStmt& stmt);
  Result<ResultSet> ExecCreateIndex(const CreateIndexStmt& stmt);
  Result<ResultSet> ExecDropTable(const DropTableStmt& stmt);

  // Catalog lookup; caller must hold catalog_mu_ (shared or exclusive).
  TableEntry* FindEntry(const std::string& name);

  // If an index serves a sargable conjunct of `where`, fills `row_ids`
  // with candidates (residual predicate still required) and sets
  // *used_index. Otherwise only bumps the full-scan counter: callers
  // stream the heap scan themselves with the predicate pushed down, so
  // non-matching rows are never copied.
  Status CollectIndexCandidates(Table* table, const Expr* where,
                                std::vector<int64_t>* row_ids,
                                bool* used_index);

  // Full-scan candidate collection with `where` pushed down, appending
  // surviving row ids. Uses the vectorized batched path when enabled,
  // else streams the heap scan row-at-a-time; either way rows are
  // evaluated in place and only ids are collected.
  Status FilterByScan(Table* table, const Expr* where,
                      std::vector<int64_t>* row_ids);

  // Lazily constructed worker pool shared by all parallel scans of this
  // database (sized to the host, capped; per-statement parallelism is
  // limited by ExecOptions::scan_threads instead).
  ThreadPool* ScanPool();

  void LogOrBuffer(WalRecord record);
  // DML bookkeeping: buffers WAL record + undo inside a transaction,
  // appends straight to the WAL otherwise.
  void RecordMutation(WalRecord record, UndoOp undo);

  // Latch hierarchy level 1 (see file comment).
  mutable std::shared_mutex catalog_mu_;
  std::unordered_map<std::string, std::unique_ptr<TableEntry>> tables_;
  WriteAheadLog wal_;
  bool wal_enabled_ = false;

  ExecOptions exec_options_;
  std::once_flag scan_pool_once_;
  std::unique_ptr<ThreadPool> scan_pool_;

  std::mutex txn_mu_;  // serializes explicit transactions
  std::atomic<bool> in_txn_{false};
  std::mutex txn_state_mu_;  // guards the two buffers below
  std::vector<UndoOp> undo_log_;
  std::vector<WalRecord> txn_wal_buffer_;

  DbStats stats_;
};

}  // namespace hedc::db

#endif  // HEDC_DB_DATABASE_H_
