// Database: catalog + SQL executor + transactions.
//
// Plays the role Oracle plays in HEDC: it stores only metadata (the actual
// science data lives in the archive's file system) and serves the indexed
// point/range/count queries the DM issues. Thread-safe: SELECTs take a
// shared lock, DML takes an exclusive lock per database.
#ifndef HEDC_DB_DATABASE_H_
#define HEDC_DB_DATABASE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "db/sql.h"
#include "db/table.h"
#include "db/wal.h"

namespace hedc::db {

// Tabular statement result. DML statements report affected row count.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected_rows = 0;
  int64_t last_insert_row_id = 0;

  size_t num_rows() const { return rows.size(); }
  // Value at (row, named column); Null when out of range/unknown.
  Value Get(size_t row, const std::string& column) const;
};

// Execution statistics for the evaluation harness.
struct DbStats {
  std::atomic<int64_t> queries{0};        // SELECT statements
  std::atomic<int64_t> updates{0};        // INSERT/UPDATE/DELETE statements
  std::atomic<int64_t> full_scans{0};     // table scans (no usable index)
  std::atomic<int64_t> index_scans{0};    // index-assisted accesses
  std::atomic<int64_t> rows_examined{0};
};

class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Enables durability: appends every committed mutation to `wal_path` and
  // (if the file already has records) replays them first.
  Status OpenWal(const std::string& wal_path);

  // Truncates and reopens the WAL (used by checkpointing after a
  // snapshot has captured the current state). Requires an open WAL.
  Status ResetWal(const std::string& wal_path);
  bool wal_enabled() const { return wal_enabled_; }

  // Parses and executes one statement. `params` bind '?' markers in order.
  Result<ResultSet> Execute(std::string_view sql,
                            const std::vector<Value>& params = {});

  // Executes a pre-parsed statement (prepared-statement path; the
  // statement is not consumed and can be re-executed with new params).
  Result<ResultSet> ExecuteStatement(const Statement& stmt,
                                     const std::vector<Value>& params);

  // Explicit transactions (single writer at a time). DML inside a
  // transaction is applied immediately but undone on Rollback; WAL records
  // are buffered until Commit.
  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const { return in_txn_; }

  // Direct table access for substrates that bypass SQL (BlobStore, tests).
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  DbStats& stats() { return stats_; }

 private:
  struct UndoOp {
    WalOp op;  // inverse action is derived from this
    std::string table;
    int64_t row_id = 0;
    Row old_row;
  };

  Result<ResultSet> ExecSelect(const SelectStmt& stmt,
                               const std::vector<Value>& params);
  Result<ResultSet> ExecInsert(const InsertStmt& stmt,
                               const std::vector<Value>& params);
  Result<ResultSet> ExecUpdate(const UpdateStmt& stmt,
                               const std::vector<Value>& params);
  Result<ResultSet> ExecDelete(const DeleteStmt& stmt,
                               const std::vector<Value>& params);
  Result<ResultSet> ExecCreateTable(const CreateTableStmt& stmt);
  Result<ResultSet> ExecCreateIndex(const CreateIndexStmt& stmt);
  Result<ResultSet> ExecDropTable(const DropTableStmt& stmt);

  // Collects matching row ids for `where` on `table`, using an index when
  // a sargable conjunct exists, else a full scan. Returned ids still need
  // residual predicate evaluation (done by caller via `residual`).
  Status CollectCandidates(Table* table, const Expr* where,
                           std::vector<int64_t>* row_ids, bool* used_index);

  void LogOrBuffer(WalRecord record);

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  WriteAheadLog wal_;
  bool wal_enabled_ = false;

  std::mutex txn_mu_;  // serializes explicit transactions
  bool in_txn_ = false;
  std::vector<UndoOp> undo_log_;
  std::vector<WalRecord> txn_wal_buffer_;

  DbStats stats_;
};

}  // namespace hedc::db

#endif  // HEDC_DB_DATABASE_H_
