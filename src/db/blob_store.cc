#include "db/blob_store.h"

#include <algorithm>

namespace hedc::db {

BlobStore::BlobStore(Database* db, size_t chunk_size)
    : db_(db), chunk_size_(std::max<size_t>(chunk_size, 1)) {}

Status BlobStore::Init() {
  HEDC_ASSIGN_OR_RETURN(
      ResultSet unused,
      db_->Execute("CREATE TABLE IF NOT EXISTS lobs ("
                   "lob_name TEXT NOT NULL, chunk_no INT NOT NULL, "
                   "data BLOB)"));
  (void)unused;
  // Index for chunk retrieval by name; ignore AlreadyExists on re-init.
  Result<ResultSet> idx =
      db_->Execute("CREATE INDEX lobs_by_name ON lobs (lob_name) USING HASH");
  if (!idx.ok() && idx.status().code() != StatusCode::kAlreadyExists) {
    return idx.status();
  }
  return Status::Ok();
}

Status BlobStore::Put(const std::string& name,
                      const std::vector<uint8_t>& data) {
  HEDC_RETURN_IF_ERROR(Delete(name));
  int64_t chunk_no = 0;
  for (size_t off = 0; off < data.size() || chunk_no == 0;
       off += chunk_size_) {
    size_t n = std::min(chunk_size_, data.size() - off);
    std::vector<uint8_t> chunk(data.begin() + off, data.begin() + off + n);
    HEDC_ASSIGN_OR_RETURN(
        ResultSet unused,
        db_->Execute("INSERT INTO lobs (lob_name, chunk_no, data) "
                     "VALUES (?, ?, ?)",
                     {Value::Text(name), Value::Int(chunk_no),
                      Value::Blob(std::move(chunk))}));
    (void)unused;
    ++chunk_no;
    if (data.empty()) break;
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> BlobStore::Get(const std::string& name) {
  HEDC_ASSIGN_OR_RETURN(
      ResultSet rs,
      db_->Execute(
          "SELECT chunk_no, data FROM lobs WHERE lob_name = ? "
          "ORDER BY chunk_no",
          {Value::Text(name)}));
  if (rs.rows.empty()) {
    return Status::NotFound("lob " + name);
  }
  std::vector<uint8_t> out;
  for (size_t i = 0; i < rs.rows.size(); ++i) {
    const Value& v = rs.Get(i, "data");
    if (v.type() != ValueType::kBlob) continue;
    const std::vector<uint8_t>& chunk = v.blob();
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

Status BlobStore::Delete(const std::string& name) {
  HEDC_ASSIGN_OR_RETURN(ResultSet unused,
                        db_->Execute("DELETE FROM lobs WHERE lob_name = ?",
                                     {Value::Text(name)}));
  (void)unused;
  return Status::Ok();
}

}  // namespace hedc::db
