// Sargability analysis shared by the executor, the plan explainer and
// the vectorized scan's zone-map pruning: AND-conjunct decomposition and
// per-column literal bounds extracted from a bound WHERE tree.
#ifndef HEDC_DB_SCAN_BOUNDS_H_
#define HEDC_DB_SCAN_BOUNDS_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "db/expr.h"
#include "db/value.h"

namespace hedc::db {

// Per-column sargable bounds extracted from the WHERE conjuncts.
struct ColumnBounds {
  std::optional<Value> eq;
  std::optional<Value> lo;
  bool lo_inclusive = true;
  std::optional<Value> hi;
  bool hi_inclusive = true;

  bool has_range() const { return lo.has_value() || hi.has_value(); }
};

// Collects AND-connected conjuncts (a single non-AND expression is one
// conjunct). Null `e` yields nothing.
void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out);

// If `e` is `col <op> literal` or `literal <op> col` with op in
// {=, <, <=, >, >=} and a non-NULL literal, records/tightens the bound.
void ExtractBound(const Expr* e,
                  std::unordered_map<int, ColumnBounds>* bounds);

// Convenience: conjunct decomposition + bound extraction in one call.
std::unordered_map<int, ColumnBounds> ExtractColumnBounds(const Expr* where);

}  // namespace hedc::db

#endif  // HEDC_DB_SCAN_BOUNDS_H_
