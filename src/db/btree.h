// In-memory B+-tree index.
//
// Keys are (Value, row_id) pairs so duplicate column values are supported;
// leaves are chained for range scans. The browse workload of §7 is "range
// queries on indexed fields" plus count queries — both served here.
#ifndef HEDC_DB_BTREE_H_
#define HEDC_DB_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "db/value.h"

namespace hedc::db {

class BTreeIndex {
 public:
  // `fanout` is the max number of keys per node (>= 4).
  explicit BTreeIndex(int fanout = 64);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  void Insert(const Value& key, int64_t row_id);
  // Removes the exact (key, row_id) entry; returns true if present.
  bool Erase(const Value& key, int64_t row_id);

  // Appends all row ids whose key equals `key`.
  void Lookup(const Value& key, std::vector<int64_t>* out) const;

  // Appends row ids with key in the given range. Unset bounds are open.
  // `visit` may stop the scan early by returning false.
  void Scan(const std::optional<Value>& lo, bool lo_inclusive,
            const std::optional<Value>& hi, bool hi_inclusive,
            const std::function<bool(const Value&, int64_t)>& visit) const;

  size_t size() const { return size_; }
  int height() const;

  // Validates B+-tree invariants (ordering, occupancy, leaf chaining);
  // used by property tests.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    Value key;
    int64_t row_id;
  };

  // Compares (key, row_id) composite.
  static int CompareEntry(const Entry& a, const Value& key, int64_t row_id);

  Node* root_;
  int fanout_;
  size_t size_ = 0;

  void FreeTree(Node* node);
  // Splits child `idx` of `parent` (child must be full).
  void SplitChild(Node* parent, int idx);
  void InsertNonFull(Node* node, const Value& key, int64_t row_id);
  Node* FindLeaf(const Value& key, int64_t row_id) const;
  Node* LeftmostLeaf() const;
  bool CheckNode(const Node* node, const Entry* lo, const Entry* hi,
                 int depth, int leaf_depth) const;
};

}  // namespace hedc::db

#endif  // HEDC_DB_BTREE_H_
