#include "db/wal.h"

#include "core/crc32.h"
#include "core/metrics.h"
#include "core/strings.h"

namespace hedc::db {

namespace {

struct WalMetrics {
  Counter* fsyncs;
  Counter* append_bytes;
  Histogram* fsync_us;
};

const WalMetrics& Metrics() {
  static const WalMetrics kMetrics = [] {
    MetricsRegistry* registry = MetricsRegistry::Default();
    return WalMetrics{registry->GetCounter("wal.fsyncs"),
                      registry->GetCounter("wal.append_bytes"),
                      registry->GetHistogram("wal.fsync_us")};
  }();
  return kMetrics;
}

}  // namespace

void EncodeValue(const Value& v, ByteBuffer* out) {
  out->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      out->PutSignedVarint(v.AsInt());
      break;
    case ValueType::kReal:
      out->PutF64(v.AsReal());
      break;
    case ValueType::kText:
      out->PutString(v.text());
      break;
    case ValueType::kBool:
      out->PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kBlob:
      out->PutVarint(v.blob().size());
      out->PutBytes(v.blob().data(), v.blob().size());
      break;
  }
}

Status DecodeValue(ByteReader* in, Value* out) {
  uint8_t tag;
  HEDC_RETURN_IF_ERROR(in->GetU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::Ok();
    case ValueType::kInt: {
      int64_t v;
      HEDC_RETURN_IF_ERROR(in->GetSignedVarint(&v));
      *out = Value::Int(v);
      return Status::Ok();
    }
    case ValueType::kReal: {
      double v;
      HEDC_RETURN_IF_ERROR(in->GetF64(&v));
      *out = Value::Real(v);
      return Status::Ok();
    }
    case ValueType::kText: {
      std::string s;
      HEDC_RETURN_IF_ERROR(in->GetString(&s));
      *out = Value::Text(std::move(s));
      return Status::Ok();
    }
    case ValueType::kBool: {
      uint8_t b;
      HEDC_RETURN_IF_ERROR(in->GetU8(&b));
      *out = Value::Bool(b != 0);
      return Status::Ok();
    }
    case ValueType::kBlob: {
      uint64_t n;
      HEDC_RETURN_IF_ERROR(in->GetVarint(&n));
      std::vector<uint8_t> bytes(n);
      HEDC_RETURN_IF_ERROR(in->GetBytes(bytes.data(), n));
      *out = Value::Blob(std::move(bytes));
      return Status::Ok();
    }
  }
  return Status::Corruption(StrFormat("bad value tag %u", tag));
}

void EncodeRow(const Row& row, ByteBuffer* out) {
  out->PutVarint(row.size());
  for (const Value& v : row) EncodeValue(v, out);
}

Status DecodeRow(ByteReader* in, Row* out) {
  uint64_t n;
  HEDC_RETURN_IF_ERROR(in->GetVarint(&n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    HEDC_RETURN_IF_ERROR(DecodeValue(in, &v));
    out->push_back(std::move(v));
  }
  return Status::Ok();
}

namespace {

void EncodeSchema(const Schema& schema, ByteBuffer* out) {
  out->PutVarint(schema.num_columns());
  for (const ColumnDef& col : schema.columns()) {
    out->PutString(col.name);
    out->PutU8(static_cast<uint8_t>(col.type));
    out->PutU8((col.not_null ? 1 : 0) | (col.primary_key ? 2 : 0));
  }
}

Status DecodeSchema(ByteReader* in, Schema* out) {
  uint64_t n;
  HEDC_RETURN_IF_ERROR(in->GetVarint(&n));
  std::vector<ColumnDef> cols;
  cols.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ColumnDef col;
    HEDC_RETURN_IF_ERROR(in->GetString(&col.name));
    uint8_t type;
    HEDC_RETURN_IF_ERROR(in->GetU8(&type));
    col.type = static_cast<ValueType>(type);
    uint8_t flags;
    HEDC_RETURN_IF_ERROR(in->GetU8(&flags));
    col.not_null = (flags & 1) != 0;
    col.primary_key = (flags & 2) != 0;
    cols.push_back(std::move(col));
  }
  *out = Schema(std::move(cols));
  return Status::Ok();
}

}  // namespace

void WriteAheadLog::EncodeRecord(const WalRecord& record, ByteBuffer* out) {
  out->PutU8(static_cast<uint8_t>(record.op));
  out->PutString(record.table);
  switch (record.op) {
    case WalOp::kCreateTable:
      EncodeSchema(record.schema, out);
      break;
    case WalOp::kCreateIndex:
      out->PutString(record.index_name);
      out->PutString(record.column);
      out->PutU8(record.hash_index ? 1 : 0);
      break;
    case WalOp::kDropTable:
      break;
    case WalOp::kInsert:
    case WalOp::kUpdate:
      out->PutSignedVarint(record.row_id);
      EncodeRow(record.row, out);
      break;
    case WalOp::kDelete:
      out->PutSignedVarint(record.row_id);
      break;
  }
}

Status WriteAheadLog::DecodeRecord(ByteReader* in, WalRecord* out) {
  uint8_t op;
  HEDC_RETURN_IF_ERROR(in->GetU8(&op));
  out->op = static_cast<WalOp>(op);
  HEDC_RETURN_IF_ERROR(in->GetString(&out->table));
  switch (out->op) {
    case WalOp::kCreateTable:
      return DecodeSchema(in, &out->schema);
    case WalOp::kCreateIndex: {
      HEDC_RETURN_IF_ERROR(in->GetString(&out->index_name));
      HEDC_RETURN_IF_ERROR(in->GetString(&out->column));
      uint8_t hash;
      HEDC_RETURN_IF_ERROR(in->GetU8(&hash));
      out->hash_index = hash != 0;
      return Status::Ok();
    }
    case WalOp::kDropTable:
      return Status::Ok();
    case WalOp::kInsert:
    case WalOp::kUpdate:
      HEDC_RETURN_IF_ERROR(in->GetSignedVarint(&out->row_id));
      return DecodeRow(in, &out->row);
    case WalOp::kDelete:
      return in->GetSignedVarint(&out->row_id);
  }
  return Status::Corruption(StrFormat("bad WAL opcode %u", op));
}

WriteAheadLog::~WriteAheadLog() { Close(); }

Status WriteAheadLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::FailedPrecondition("WAL already open");
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open WAL file: " + path);
  }
  return Status::Ok();
}

void WriteAheadLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WriteAheadLog::Append(const WalRecord& record) {
  ByteBuffer payload;
  EncodeRecord(record, &payload);
  ByteBuffer frame;
  frame.PutU32(Crc32(payload.data()));
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutBytes(payload.data().data(), payload.size());

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  size_t written =
      std::fwrite(frame.data().data(), 1, frame.size(), file_);
  if (written != frame.size()) return Status::Internal("WAL write failed");
  {
    ScopedTimer timer(Metrics().fsync_us);
    std::fflush(file_);
  }
  Metrics().fsyncs->Add();
  Metrics().append_bytes->Add(static_cast<int64_t>(frame.size()));
  return Status::Ok();
}

Status WriteAheadLog::ReadAll(const std::string& path,
                              std::vector<WalRecord>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("WAL file: " + path);
  std::vector<uint8_t> contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.insert(contents.end(), buf, buf + n);
  }
  std::fclose(f);

  ByteReader reader(contents);
  while (!reader.AtEnd()) {
    uint32_t crc, len;
    size_t frame_start = reader.position();
    if (!reader.GetU32(&crc).ok() || !reader.GetU32(&len).ok() ||
        len > reader.remaining()) {
      // Torn trailing record: tolerated (crash mid-append).
      if (frame_start == 0) {
        return Status::Corruption("WAL header unreadable");
      }
      return Status::Ok();
    }
    std::vector<uint8_t> payload(len);
    HEDC_RETURN_IF_ERROR(reader.GetBytes(payload.data(), len));
    if (Crc32(payload) != crc) {
      // Checksum mismatch at the tail is a torn write; in the middle it is
      // real corruption.
      if (reader.AtEnd()) return Status::Ok();
      return Status::Corruption(
          StrFormat("WAL record CRC mismatch at offset %zu", frame_start));
    }
    ByteReader payload_reader(payload);
    WalRecord record;
    HEDC_RETURN_IF_ERROR(DecodeRecord(&payload_reader, &record));
    out->push_back(std::move(record));
  }
  return Status::Ok();
}

}  // namespace hedc::db
