#include "db/wal.h"

#include <unistd.h>

#include "core/crc32.h"
#include "core/metrics.h"
#include "core/strings.h"

namespace hedc::db {

namespace {

struct WalMetrics {
  Counter* fsyncs;        // real fsync(2) calls, one per commit group
  Counter* append_bytes;
  Histogram* fsync_us;    // write+fflush+fsync latency per group
  Histogram* group_size;  // records made durable per fsync
};

const WalMetrics& Metrics() {
  static const WalMetrics kMetrics = [] {
    MetricsRegistry* registry = MetricsRegistry::Default();
    return WalMetrics{
        registry->GetCounter("wal.fsyncs"),
        registry->GetCounter("wal.append_bytes"),
        registry->GetHistogram("wal.fsync_us"),
        registry->GetHistogram("wal.group_size",
                               {1, 2, 4, 8, 16, 32, 64, 128, 256})};
  }();
  return kMetrics;
}

}  // namespace

void EncodeValue(const Value& v, ByteBuffer* out) {
  out->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      out->PutSignedVarint(v.AsInt());
      break;
    case ValueType::kReal:
      out->PutF64(v.AsReal());
      break;
    case ValueType::kText:
      out->PutString(v.text());
      break;
    case ValueType::kBool:
      out->PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kBlob:
      out->PutVarint(v.blob().size());
      out->PutBytes(v.blob().data(), v.blob().size());
      break;
  }
}

Status DecodeValue(ByteReader* in, Value* out) {
  uint8_t tag;
  HEDC_RETURN_IF_ERROR(in->GetU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::Ok();
    case ValueType::kInt: {
      int64_t v;
      HEDC_RETURN_IF_ERROR(in->GetSignedVarint(&v));
      *out = Value::Int(v);
      return Status::Ok();
    }
    case ValueType::kReal: {
      double v;
      HEDC_RETURN_IF_ERROR(in->GetF64(&v));
      *out = Value::Real(v);
      return Status::Ok();
    }
    case ValueType::kText: {
      std::string s;
      HEDC_RETURN_IF_ERROR(in->GetString(&s));
      *out = Value::Text(std::move(s));
      return Status::Ok();
    }
    case ValueType::kBool: {
      uint8_t b;
      HEDC_RETURN_IF_ERROR(in->GetU8(&b));
      *out = Value::Bool(b != 0);
      return Status::Ok();
    }
    case ValueType::kBlob: {
      uint64_t n;
      HEDC_RETURN_IF_ERROR(in->GetVarint(&n));
      if (n > in->remaining()) {
        return Status::Corruption("blob length past end of input");
      }
      std::vector<uint8_t> bytes(n);
      HEDC_RETURN_IF_ERROR(in->GetBytes(bytes.data(), n));
      *out = Value::Blob(std::move(bytes));
      return Status::Ok();
    }
  }
  return Status::Corruption(StrFormat("bad value tag %u", tag));
}

void EncodeRow(const Row& row, ByteBuffer* out) {
  out->PutVarint(row.size());
  for (const Value& v : row) EncodeValue(v, out);
}

Status DecodeRow(ByteReader* in, Row* out) {
  uint64_t n;
  HEDC_RETURN_IF_ERROR(in->GetVarint(&n));
  // Every value costs at least its tag byte, so a count beyond the
  // remaining input is corrupt; checking before reserve() keeps hostile
  // counts from forcing a huge allocation.
  if (n > in->remaining()) {
    return Status::Corruption("row value count past end of input");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    HEDC_RETURN_IF_ERROR(DecodeValue(in, &v));
    out->push_back(std::move(v));
  }
  return Status::Ok();
}

namespace {

void EncodeSchema(const Schema& schema, ByteBuffer* out) {
  out->PutVarint(schema.num_columns());
  for (const ColumnDef& col : schema.columns()) {
    out->PutString(col.name);
    out->PutU8(static_cast<uint8_t>(col.type));
    out->PutU8((col.not_null ? 1 : 0) | (col.primary_key ? 2 : 0));
  }
}

Status DecodeSchema(ByteReader* in, Schema* out) {
  uint64_t n;
  HEDC_RETURN_IF_ERROR(in->GetVarint(&n));
  if (n > in->remaining()) {
    return Status::Corruption("column count past end of input");
  }
  std::vector<ColumnDef> cols;
  cols.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ColumnDef col;
    HEDC_RETURN_IF_ERROR(in->GetString(&col.name));
    uint8_t type;
    HEDC_RETURN_IF_ERROR(in->GetU8(&type));
    col.type = static_cast<ValueType>(type);
    uint8_t flags;
    HEDC_RETURN_IF_ERROR(in->GetU8(&flags));
    col.not_null = (flags & 1) != 0;
    col.primary_key = (flags & 2) != 0;
    cols.push_back(std::move(col));
  }
  *out = Schema(std::move(cols));
  return Status::Ok();
}

}  // namespace

void WriteAheadLog::EncodeRecord(const WalRecord& record, ByteBuffer* out) {
  out->PutU8(static_cast<uint8_t>(record.op));
  out->PutString(record.table);
  switch (record.op) {
    case WalOp::kCreateTable:
      EncodeSchema(record.schema, out);
      break;
    case WalOp::kCreateIndex:
      out->PutString(record.index_name);
      out->PutString(record.column);
      out->PutU8(record.hash_index ? 1 : 0);
      break;
    case WalOp::kDropTable:
      break;
    case WalOp::kInsert:
    case WalOp::kUpdate:
      out->PutSignedVarint(record.row_id);
      EncodeRow(record.row, out);
      break;
    case WalOp::kDelete:
      out->PutSignedVarint(record.row_id);
      break;
  }
}

Status WriteAheadLog::DecodeRecord(ByteReader* in, WalRecord* out) {
  uint8_t op;
  HEDC_RETURN_IF_ERROR(in->GetU8(&op));
  out->op = static_cast<WalOp>(op);
  HEDC_RETURN_IF_ERROR(in->GetString(&out->table));
  switch (out->op) {
    case WalOp::kCreateTable:
      return DecodeSchema(in, &out->schema);
    case WalOp::kCreateIndex: {
      HEDC_RETURN_IF_ERROR(in->GetString(&out->index_name));
      HEDC_RETURN_IF_ERROR(in->GetString(&out->column));
      uint8_t hash;
      HEDC_RETURN_IF_ERROR(in->GetU8(&hash));
      out->hash_index = hash != 0;
      return Status::Ok();
    }
    case WalOp::kDropTable:
      return Status::Ok();
    case WalOp::kInsert:
    case WalOp::kUpdate:
      HEDC_RETURN_IF_ERROR(in->GetSignedVarint(&out->row_id));
      return DecodeRow(in, &out->row);
    case WalOp::kDelete:
      return in->GetSignedVarint(&out->row_id);
  }
  return Status::Corruption(StrFormat("bad WAL opcode %u", op));
}

WriteAheadLog::~WriteAheadLog() { Close(); }

Status WriteAheadLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::FailedPrecondition("WAL already open");
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open WAL file: " + path);
  }
  io_error_ = Status::Ok();
  return Status::Ok();
}

void WriteAheadLog::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  // Let in-flight groups drain so no appender is left waiting on a file
  // we are about to close.
  cv_.wait(lock, [this] { return queue_.empty() && !leader_active_; });
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool WriteAheadLog::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

namespace {

// Frames one record: u32 crc, u32 len, payload.
void AppendFrame(const WalRecord& record, std::string* out) {
  ByteBuffer payload;
  WriteAheadLog::EncodeRecord(record, &payload);
  ByteBuffer frame;
  frame.PutU32(Crc32(payload.data()));
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutBytes(payload.data().data(), payload.size());
  out->append(reinterpret_cast<const char*>(frame.data().data()),
              frame.size());
}

}  // namespace

Status WriteAheadLog::Append(const WalRecord& record) {
  std::string bytes;
  AppendFrame(record, &bytes);
  return EnqueueAndWait(std::move(bytes), 1);
}

Status WriteAheadLog::AppendBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return Status::Ok();
  std::string bytes;
  for (const WalRecord& record : records) AppendFrame(record, &bytes);
  return EnqueueAndWait(std::move(bytes), records.size());
}

Status WriteAheadLog::WriteBatch(std::unique_lock<std::mutex>* lock,
                                 std::vector<PendingUnit> batch) {
  std::FILE* file = file_;
  lock->unlock();
  size_t total_bytes = 0;
  size_t total_records = 0;
  Status status;
  {
    ScopedTimer timer(Metrics().fsync_us);
    for (const PendingUnit& unit : batch) {
      size_t written =
          std::fwrite(unit.bytes.data(), 1, unit.bytes.size(), file);
      if (written != unit.bytes.size()) {
        status = Status::Internal("WAL write failed");
        break;
      }
      total_bytes += unit.bytes.size();
      total_records += unit.records;
    }
    if (status.ok()) {
      if (std::fflush(file) != 0 || ::fsync(::fileno(file)) != 0) {
        status = Status::Internal("WAL fsync failed");
      }
    }
  }
  if (status.ok()) {
    Metrics().fsyncs->Add();
    Metrics().append_bytes->Add(static_cast<int64_t>(total_bytes));
    Metrics().group_size->Observe(static_cast<int64_t>(total_records));
  }
  lock->lock();
  return status;
}

Status WriteAheadLog::EnqueueAndWait(std::string bytes, size_t records) {
  std::unique_lock<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  if (!io_error_.ok()) return io_error_;
  cv_.wait(lock, [this] { return queue_.size() < kMaxQueuedUnits; });
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  uint64_t my_seq = ++enqueued_units_;
  queue_.push_back(PendingUnit{std::move(bytes), records});

  while (durable_units_ < my_seq && io_error_.ok()) {
    if (!leader_active_ && !queue_.empty()) {
      // Become the leader: drain everything queued so far and make it
      // durable with one write+fsync; followers keep waiting.
      leader_active_ = true;
      std::vector<PendingUnit> batch(
          std::make_move_iterator(queue_.begin()),
          std::make_move_iterator(queue_.end()));
      queue_.clear();
      size_t batch_units = batch.size();
      Status status = WriteBatch(&lock, std::move(batch));
      if (status.ok()) {
        durable_units_ += batch_units;
      } else {
        io_error_ = status;  // sticky; this batch's waiters all fail
      }
      leader_active_ = false;
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  return durable_units_ >= my_seq ? Status::Ok() : io_error_;
}

Status WriteAheadLog::ReadAll(const std::string& path,
                              std::vector<WalRecord>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("WAL file: " + path);
  std::vector<uint8_t> contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.insert(contents.end(), buf, buf + n);
  }
  std::fclose(f);

  ByteReader reader(contents);
  while (!reader.AtEnd()) {
    uint32_t crc, len;
    size_t frame_start = reader.position();
    if (!reader.GetU32(&crc).ok() || !reader.GetU32(&len).ok() ||
        len > reader.remaining()) {
      // Torn trailing record: tolerated (crash mid-append).
      if (frame_start == 0) {
        return Status::Corruption("WAL header unreadable");
      }
      return Status::Ok();
    }
    std::vector<uint8_t> payload(len);
    HEDC_RETURN_IF_ERROR(reader.GetBytes(payload.data(), len));
    if (Crc32(payload) != crc) {
      // Checksum mismatch at the tail is a torn write; in the middle it is
      // real corruption.
      if (reader.AtEnd()) return Status::Ok();
      return Status::Corruption(
          StrFormat("WAL record CRC mismatch at offset %zu", frame_start));
    }
    ByteReader payload_reader(payload);
    WalRecord record;
    HEDC_RETURN_IF_ERROR(DecodeRecord(&payload_reader, &record));
    out->push_back(std::move(record));
  }
  return Status::Ok();
}

}  // namespace hedc::db
