// Joined-SELECT execution: name resolution over the FROM list, the
// cost-based equi-join planner, partitioned hash tables, and the two
// executors — the vectorized morsel pipeline and the row-at-a-time
// interpreter used for differential testing (DESIGN.md §4h).
#include "db/join.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "core/strings.h"
#include "db/data_chunk.h"
#include "db/database.h"
#include "db/scan_bounds.h"
#include "db/sql.h"
#include "db/vectorized.h"

namespace hedc::db {

// ---------------------------------------------------------------------------
// JoinSchema

Status JoinSchema::AddTable(const std::string& name, const Table* table) {
  for (const TableRef& t : tables_) {
    if (EqualsIgnoreCase(t.name, name)) {
      return Status::InvalidArgument("duplicate table in join: " + name);
    }
  }
  tables_.push_back(TableRef{name, table, total_columns_});
  total_columns_ += table->schema().num_columns();
  return Status::Ok();
}

Result<size_t> JoinSchema::ResolveColumn(const std::string& name) const {
  const size_t dot = name.find('.');
  if (dot != std::string::npos) {
    const std::string table_name = name.substr(0, dot);
    const std::string column_name = name.substr(dot + 1);
    for (const TableRef& t : tables_) {
      if (!EqualsIgnoreCase(t.name, table_name)) continue;
      auto ci = t.table->schema().ColumnIndex(column_name);
      if (!ci.has_value()) {
        return Status::InvalidArgument("unknown column: " + name);
      }
      return t.offset + *ci;
    }
    return Status::InvalidArgument("unknown table in column reference: " +
                                   name);
  }
  size_t hits = 0;
  size_t found = 0;
  for (const TableRef& t : tables_) {
    auto ci = t.table->schema().ColumnIndex(name);
    if (!ci.has_value()) continue;
    ++hits;
    found = t.offset + *ci;
  }
  if (hits > 1) {
    return Status::InvalidArgument("ambiguous column in join: " + name);
  }
  if (hits == 0) return Status::InvalidArgument("unknown column: " + name);
  return found;
}

size_t JoinSchema::TableOfColumn(size_t flat) const {
  for (size_t i = tables_.size(); i-- > 1;) {
    if (flat >= tables_[i].offset) return i;
  }
  return 0;
}

size_t JoinSchema::LocalColumn(size_t flat) const {
  return flat - tables_[TableOfColumn(flat)].offset;
}

const ColumnDef& JoinSchema::column(size_t flat) const {
  const TableRef& t = tables_[TableOfColumn(flat)];
  return t.table->schema().column(flat - t.offset);
}

std::string JoinSchema::ColumnDisplayName(size_t flat) const {
  const TableRef& owner = tables_[TableOfColumn(flat)];
  const std::string& bare = column(flat).name;
  size_t hits = 0;
  for (const TableRef& t : tables_) {
    if (t.table->schema().ColumnIndex(bare).has_value()) ++hits;
  }
  if (hits > 1) return owner.name + "." + bare;
  return bare;
}

// ---------------------------------------------------------------------------
// Binding and qualifier rewriting

Status BindExprJoined(Expr* expr, const JoinSchema& schema,
                      const std::vector<Value>& params) {
  switch (expr->kind) {
    case Expr::Kind::kLiteral:
      return Status::Ok();
    case Expr::Kind::kColumn: {
      HEDC_ASSIGN_OR_RETURN(size_t flat, schema.ResolveColumn(expr->column));
      expr->column_index = static_cast<int>(flat);
      return Status::Ok();
    }
    case Expr::Kind::kParam: {
      if (expr->param_index < 0 ||
          expr->param_index >= static_cast<int>(params.size())) {
        return Status::InvalidArgument(
            StrFormat("parameter %d not bound", expr->param_index + 1));
      }
      expr->literal = params[expr->param_index];
      expr->kind = Expr::Kind::kLiteral;
      return Status::Ok();
    }
    case Expr::Kind::kUnary:
      return BindExprJoined(expr->left.get(), schema, params);
    case Expr::Kind::kBinary:
      HEDC_RETURN_IF_ERROR(BindExprJoined(expr->left.get(), schema, params));
      return BindExprJoined(expr->right.get(), schema, params);
    case Expr::Kind::kInList: {
      HEDC_RETURN_IF_ERROR(BindExprJoined(expr->left.get(), schema, params));
      for (auto& item : expr->list) {
        HEDC_RETURN_IF_ERROR(BindExprJoined(item.get(), schema, params));
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable expr kind");
}

std::string StripQualifier(const std::string& name, const std::string& table) {
  const size_t dot = name.find('.');
  if (dot == std::string::npos) return name;
  if (EqualsIgnoreCase(name.substr(0, dot), table)) return name.substr(dot + 1);
  return name;
}

void StripQualifiers(Expr* expr, const std::string& table) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kColumn) {
    expr->column = StripQualifier(expr->column, table);
  }
  StripQualifiers(expr->left.get(), table);
  StripQualifiers(expr->right.get(), table);
  for (auto& item : expr->list) StripQualifiers(item.get(), table);
}

Value CanonicalJoinKey(const Value& v, bool coerce_numeric) {
  if (!coerce_numeric || v.is_null()) return v;
  return Value::Real(v.AsReal());
}

// ---------------------------------------------------------------------------
// Planner

namespace {

// FROM-order bitmask of the tables a bound subtree references.
void CollectTableMask(const Expr* e, const JoinSchema& js, uint32_t* mask) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kColumn && e->column_index >= 0) {
    *mask |= 1u << js.TableOfColumn(static_cast<size_t>(e->column_index));
  }
  CollectTableMask(e->left.get(), js, mask);
  CollectTableMask(e->right.get(), js, mask);
  for (const auto& item : e->list) CollectTableMask(item.get(), js, mask);
}

// col = col with the two columns in different tables.
bool IsJoinEdge(const Expr* e, const JoinSchema& js, size_t* flat_a,
                size_t* flat_b) {
  if (e->kind != Expr::Kind::kBinary || e->bin_op != BinOp::kEq) return false;
  const Expr* l = e->left.get();
  const Expr* r = e->right.get();
  if (l == nullptr || r == nullptr) return false;
  if (l->kind != Expr::Kind::kColumn || r->kind != Expr::Kind::kColumn) {
    return false;
  }
  if (l->column_index < 0 || r->column_index < 0) return false;
  const size_t a = static_cast<size_t>(l->column_index);
  const size_t b = static_cast<size_t>(r->column_index);
  if (js.TableOfColumn(a) == js.TableOfColumn(b)) return false;
  *flat_a = a;
  *flat_b = b;
  return true;
}

// Rewrites flat combined-row column indexes to table-local ones.
void ShiftToLocal(Expr* e, size_t offset) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kColumn && e->column_index >= 0) {
    e->column_index -= static_cast<int>(offset);
  }
  ShiftToLocal(e->left.get(), offset);
  ShiftToLocal(e->right.get(), offset);
  for (auto& item : e->list) ShiftToLocal(item.get(), offset);
}

std::unique_ptr<Expr> FoldAnd(std::vector<std::unique_ptr<Expr>> conjuncts) {
  std::unique_ptr<Expr> acc;
  for (auto& c : conjuncts) {
    if (acc == nullptr) {
      acc = std::move(c);
    } else {
      acc = Expr::Binary(BinOp::kAnd, std::move(acc), std::move(c));
    }
  }
  return acc;
}

// Selectivity estimate for one table under its pushed-down predicate:
// exact index-candidate count when an equality hits an index, else the
// sum of live rows in zone-surviving morsels, else the live row count.
int64_t EstimateTableRows(const Table& t, const Expr* local_where,
                          bool zone_maps) {
  const int64_t n = static_cast<int64_t>(t.num_rows());
  if (local_where == nullptr) return n;
  const auto bounds = ExtractColumnBounds(local_where);
  for (const auto& [col, b] : bounds) {
    if (!b.eq.has_value()) continue;
    const IndexDef* def =
        t.FindIndex(static_cast<size_t>(col), /*need_range=*/false);
    if (def == nullptr) continue;
    std::vector<int64_t> ids;
    t.IndexLookup(*def, *b.eq, &ids);
    return static_cast<int64_t>(ids.size());
  }
  if (!zone_maps || bounds.empty()) return n;
  std::vector<const Table::Morsel*> kept;
  int64_t pruned = 0;
  PruneMorsels(t, bounds, &kept, &pruned);
  int64_t est = 0;
  for (const Table::Morsel* m : kept) est += m->live;
  return std::min(est, n);
}

// One hash-join build step in execution order.
struct JoinStepPlan {
  size_t table_idx = 0;   // FROM index of the build table
  size_t build_col = 0;   // flat key column inside the build table
  size_t probe_col = 0;   // flat key column in an earlier-available table
  bool coerce_numeric = false;
  const Expr* edge = nullptr;  // the active equality (row mode re-verifies)
  std::vector<const Expr*> residuals;
  int64_t est_rows = 0;
};

struct JoinPlan {
  // Owning storage for the bound predicate trees; everything below
  // borrows into these.
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> ons;

  // Per FROM table: the AND of its single-table conjuncts, cloned with
  // table-local column indexes (nullptr = unfiltered), and the row
  // estimate under it.
  std::vector<std::unique_ptr<Expr>> local;
  std::vector<int64_t> est;

  size_t driver = 0;
  std::vector<JoinStepPlan> steps;
  std::vector<int> step_of_table;  // FROM index -> step index; driver = -1
};

Status PlanJoin(const SelectStmt& stmt, const JoinSchema& js,
                const std::vector<Value>& params, const ExecOptions& opts,
                JoinPlan* plan) {
  const size_t n = js.num_tables();
  if (n > 31) return Status::Unimplemented("too many tables in join");

  if (stmt.where != nullptr) {
    plan->where = stmt.where->Clone();
    HEDC_RETURN_IF_ERROR(BindExprJoined(plan->where.get(), js, params));
  }
  for (size_t i = 0; i < stmt.joins.size(); ++i) {
    auto on = stmt.joins[i].on->Clone();
    HEDC_RETURN_IF_ERROR(BindExprJoined(on.get(), js, params));
    uint32_t mask = 0;
    CollectTableMask(on.get(), js, &mask);
    // JOIN i introduces FROM table i+1; its ON clause may reference that
    // table and anything to its left.
    if ((mask & ~((1u << (i + 2)) - 1)) != 0) {
      return Status::InvalidArgument(
          "ON clause of JOIN " + stmt.joins[i].table +
          " references a table joined later");
    }
    plan->ons.push_back(std::move(on));
  }

  // Pool every AND-conjunct from WHERE and all ON clauses, then
  // classify: single-table conjuncts push down to their table's scan,
  // cross-table equalities become join-edge candidates, the rest are
  // residuals interpreted once all their tables are available.
  struct Pooled {
    const Expr* e;
    uint32_t mask;
    bool is_edge;
    size_t flat_a = 0, flat_b = 0;
  };
  std::vector<Pooled> pooled;
  {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(plan->where.get(), &conjuncts);
    for (const auto& on : plan->ons) CollectConjuncts(on.get(), &conjuncts);
    for (const Expr* c : conjuncts) {
      Pooled p{c, 0, false};
      CollectTableMask(c, js, &p.mask);
      p.is_edge = IsJoinEdge(c, js, &p.flat_a, &p.flat_b);
      pooled.push_back(p);
    }
  }

  std::vector<std::vector<std::unique_ptr<Expr>>> local_parts(n);
  for (const Pooled& p : pooled) {
    if (p.is_edge || __builtin_popcount(p.mask) > 1) continue;
    // Single-table (or column-free, e.g. a parameterized constant):
    // push to the owning table; column-free conjuncts go to table 0,
    // where a constant-false prunes the whole inner join.
    const size_t t = p.mask == 0 ? 0 : static_cast<size_t>(
                                           __builtin_ctz(p.mask));
    auto clone = p.e->Clone();
    ShiftToLocal(clone.get(), js.table(t).offset);
    local_parts[t].push_back(std::move(clone));
  }
  plan->local.resize(n);
  plan->est.resize(n);
  for (size_t t = 0; t < n; ++t) {
    plan->local[t] = FoldAnd(std::move(local_parts[t]));
    plan->est[t] = EstimateTableRows(*js.table(t).table, plan->local[t].get(),
                                     opts.zone_maps);
  }

  // Join order. With the planner on, the largest estimated input drives
  // (probe side streams, smaller sides build hash tables) and build
  // steps greedily take the smallest connectable estimate; with it off,
  // FROM order is preserved (table 0 drives).
  if (opts.join_planner) {
    plan->driver = static_cast<size_t>(
        std::max_element(plan->est.begin(), plan->est.end()) -
        plan->est.begin());
  } else {
    plan->driver = 0;
  }

  uint32_t avail = 1u << plan->driver;
  plan->step_of_table.assign(n, -1);
  std::vector<const Expr*> active_edges;
  while (__builtin_popcount(avail) < static_cast<int>(n)) {
    // Tables reachable from the available set via an equality edge.
    size_t best = n;
    for (size_t t = 0; t < n; ++t) {
      if (avail & (1u << t)) continue;
      bool connectable = false;
      for (const Pooled& p : pooled) {
        if (!p.is_edge) continue;
        const size_t ta = js.TableOfColumn(p.flat_a);
        const size_t tb = js.TableOfColumn(p.flat_b);
        if ((ta == t && (avail & (1u << tb))) ||
            (tb == t && (avail & (1u << ta)))) {
          connectable = true;
          break;
        }
      }
      if (!connectable) continue;
      if (best == n) {
        best = t;
      } else if (opts.join_planner && plan->est[t] < plan->est[best]) {
        best = t;
      }
      if (!opts.join_planner) break;  // FROM order: first connectable
    }
    if (best == n) {
      return Status::Unimplemented(
          "JOIN without an equality to an earlier table (cross joins are "
          "not supported)");
    }
    // Pick the active edge for this step.
    JoinStepPlan step;
    step.table_idx = best;
    for (const Pooled& p : pooled) {
      if (!p.is_edge) continue;
      const size_t ta = js.TableOfColumn(p.flat_a);
      const size_t tb = js.TableOfColumn(p.flat_b);
      if (ta == best && (avail & (1u << tb))) {
        step.build_col = p.flat_a;
        step.probe_col = p.flat_b;
      } else if (tb == best && (avail & (1u << ta))) {
        step.build_col = p.flat_b;
        step.probe_col = p.flat_a;
      } else {
        continue;
      }
      step.edge = p.e;
      break;
    }
    const bool build_text = js.column(step.build_col).type == ValueType::kText;
    const bool probe_text = js.column(step.probe_col).type == ValueType::kText;
    step.coerce_numeric = build_text != probe_text;
    step.est_rows = plan->est[best];
    plan->step_of_table[best] = static_cast<int>(plan->steps.size());
    active_edges.push_back(step.edge);
    plan->steps.push_back(std::move(step));
    avail |= 1u << best;
  }

  // Everything not pushed down and not an active edge becomes a
  // residual at the earliest step where all its tables are available.
  for (const Pooled& p : pooled) {
    if (!p.is_edge && __builtin_popcount(p.mask) <= 1) continue;
    if (std::find(active_edges.begin(), active_edges.end(), p.e) !=
        active_edges.end()) {
      continue;
    }
    int attach = -1;
    for (size_t t = 0; t < n; ++t) {
      if (p.mask & (1u << t)) attach = std::max(attach, plan->step_of_table[t]);
    }
    if (attach < 0) {
      // Both sides in the driver table can't happen (cross-table), but a
      // conjunct could in principle collapse after binding; be safe.
      attach = 0;
    }
    plan->steps[static_cast<size_t>(attach)].residuals.push_back(p.e);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Output shape

struct JoinOutput {
  bool agg = false;
  std::vector<int> group_cols;  // flat
  std::vector<AggSpec> specs;
  std::vector<GroupedAggregator::OutputSlot> layout;
  std::vector<size_t> needed;  // flat columns the aggregate reads
  std::vector<size_t> proj;    // flat, non-aggregate mode
  std::vector<std::string> columns;
  std::optional<size_t> order_col;  // flat
};

Status ResolveJoinOutput(const SelectStmt& stmt, const JoinSchema& js,
                         JoinOutput* out) {
  bool has_agg = false;
  for (const SelectItem& item : stmt.items) {
    if (item.agg != AggFunc::kNone) has_agg = true;
  }
  for (const std::string& g : stmt.group_by) {
    HEDC_ASSIGN_OR_RETURN(size_t flat, js.ResolveColumn(g));
    out->group_cols.push_back(static_cast<int>(flat));
  }
  out->agg = has_agg || !out->group_cols.empty();

  if (out->agg) {
    if (stmt.star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with aggregation");
    }
    if (!stmt.order_by.empty()) {
      return Status::Unimplemented(
          "ORDER BY on an aggregated joined SELECT");
    }
    for (const SelectItem& item : stmt.items) {
      out->columns.push_back(item.alias);
      if (item.agg == AggFunc::kNone) {
        HEDC_ASSIGN_OR_RETURN(size_t flat, js.ResolveColumn(item.column));
        const auto it = std::find(out->group_cols.begin(),
                                  out->group_cols.end(),
                                  static_cast<int>(flat));
        if (it == out->group_cols.end()) {
          return Status::InvalidArgument("column " + item.column +
                                         " must appear in GROUP BY");
        }
        out->layout.push_back(GroupedAggregator::OutputSlot{
            true, static_cast<size_t>(it - out->group_cols.begin())});
        continue;
      }
      AggSpec spec{item.agg, -1};
      if (item.agg != AggFunc::kCountStar) {
        HEDC_ASSIGN_OR_RETURN(size_t flat, js.ResolveColumn(item.column));
        spec.col = static_cast<int>(flat);
      }
      out->layout.push_back(
          GroupedAggregator::OutputSlot{false, out->specs.size()});
      out->specs.push_back(spec);
    }
    for (int c : out->group_cols) out->needed.push_back(static_cast<size_t>(c));
    for (const AggSpec& s : out->specs) {
      if (s.col >= 0) out->needed.push_back(static_cast<size_t>(s.col));
    }
    std::sort(out->needed.begin(), out->needed.end());
    out->needed.erase(std::unique(out->needed.begin(), out->needed.end()),
                      out->needed.end());
    return Status::Ok();
  }

  if (stmt.star) {
    for (size_t flat = 0; flat < js.total_columns(); ++flat) {
      out->proj.push_back(flat);
      out->columns.push_back(js.ColumnDisplayName(flat));
    }
  } else {
    for (const SelectItem& item : stmt.items) {
      HEDC_ASSIGN_OR_RETURN(size_t flat, js.ResolveColumn(item.column));
      out->proj.push_back(flat);
      out->columns.push_back(item.alias);
    }
  }
  if (!stmt.order_by.empty()) {
    HEDC_ASSIGN_OR_RETURN(size_t flat, js.ResolveColumn(stmt.order_by));
    out->order_col = flat;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Partitioned hash table for one build side

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) == 0;
  }
};

class JoinHashTable {
 public:
  JoinHashTable(size_t local_col, bool coerce, size_t partitions)
      : local_col_(local_col),
        coerce_(coerce),
        parts_(std::max<size_t>(1, partitions)) {}

  // Builds from scan survivors. Large inputs scatter into partitions
  // serially (one hash per key), then insert partition-parallel on the
  // pool; NULL keys are dropped (NULL = x is never true).
  void Build(const std::vector<ScanMatch>& matches, ThreadPool* pool,
             int threads) {
    if (parts_.size() == 1 || static_cast<int64_t>(matches.size()) <
                                  kMinParallelBuild ||
        pool == nullptr || threads <= 1) {
      for (const ScanMatch& m : matches) InsertSerial(m.row);
      return;
    }
    std::vector<std::vector<std::pair<Value, const Row*>>> scatter(
        parts_.size());
    for (const ScanMatch& m : matches) {
      const Value& raw = (*m.row)[local_col_];
      if (raw.is_null()) continue;
      Value key = CanonicalJoinKey(raw, coerce_);
      const size_t p = key.Hash() % parts_.size();
      scatter[p].emplace_back(std::move(key), m.row);
      ++rows_;
    }
    std::atomic<size_t> next{0};
    auto work = [&] {
      size_t p;
      while ((p = next.fetch_add(1, std::memory_order_relaxed)) <
             scatter.size()) {
        for (auto& kv : scatter[p]) {
          parts_[p].map[std::move(kv.first)].push_back(kv.second);
        }
      }
    };
    std::mutex done_mu;
    std::condition_variable done_cv;
    int launched = 0;
    int done = 0;
    const int helpers =
        std::min<int>(threads - 1, static_cast<int>(parts_.size()) - 1);
    for (int i = 0; i < helpers; ++i) {
      const bool ok = pool->TrySubmit([&] {
        work();
        std::lock_guard<std::mutex> lock(done_mu);
        ++done;
        done_cv.notify_all();
      });
      if (ok) ++launched;
    }
    work();
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == launched; });
  }

  // Matching build rows for a probe value, nullptr when none. The raw
  // value probes directly in the common case: within one comparison
  // class Value::Hash already agrees with Value::Compare.
  const std::vector<const Row*>* Probe(const Value& raw) const {
    if (raw.is_null()) return nullptr;
    if (!coerce_) return Find(raw);
    const Value canon = CanonicalJoinKey(raw, true);
    return Find(canon);
  }

  int64_t rows() const { return rows_; }

 private:
  static constexpr int64_t kMinParallelBuild = 8192;

  struct Part {
    std::unordered_map<Value, std::vector<const Row*>, ValueHasher, ValueEq>
        map;
  };

  void InsertSerial(const Row* row) {
    const Value& raw = (*row)[local_col_];
    if (raw.is_null()) return;
    Value key = CanonicalJoinKey(raw, coerce_);
    const size_t p =
        parts_.size() == 1 ? 0 : key.Hash() % parts_.size();
    parts_[p].map[std::move(key)].push_back(row);
    ++rows_;
  }

  const std::vector<const Row*>* Find(const Value& key) const {
    const Part& p =
        parts_[parts_.size() == 1 ? 0 : key.Hash() % parts_.size()];
    auto it = p.map.find(key);
    return it == p.map.end() ? nullptr : &it->second;
  }

  size_t local_col_;
  bool coerce_;
  std::vector<Part> parts_;
  int64_t rows_ = 0;
};

// Scan survivors plus the hash table built over them; `matches` keeps
// the borrowed row pointers alive for the probe phase.
struct BuiltSide {
  std::vector<ScanMatch> matches;
  std::unique_ptr<JoinHashTable> ht;
};

}  // namespace

// ---------------------------------------------------------------------------
// Database::ExecJoinedSelect

Result<ResultSet> Database::ExecJoinedSelect(const SelectStmt& stmt,
                                             const std::vector<Value>& params) {
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);

  // Resolve the FROM list and latch every table (shared), in ascending
  // table-name order so the hierarchy stays deadlock-free against
  // multi-latch writers (transaction rollback uses the same order).
  std::vector<std::string> names;
  names.push_back(stmt.table);
  for (const JoinClause& jc : stmt.joins) names.push_back(jc.table);
  std::vector<TableEntry*> entries;
  JoinSchema js;
  for (const std::string& name : names) {
    TableEntry* entry = FindEntry(name);
    if (entry == nullptr) return Status::NotFound("table " + name);
    entries.push_back(entry);
    HEDC_RETURN_IF_ERROR(js.AddTable(name, &entry->table));
  }
  std::vector<TableEntry*> latch_order = entries;
  std::sort(latch_order.begin(), latch_order.end(),
            [](const TableEntry* a, const TableEntry* b) {
              return ToLower(a->table.name()) < ToLower(b->table.name());
            });
  std::vector<std::shared_lock<std::shared_mutex>> latches;
  latches.reserve(latch_order.size());
  for (TableEntry* e : latch_order) latches.emplace_back(e->latch);

  stats_.joins.fetch_add(1, std::memory_order_relaxed);

  JoinPlan plan;
  HEDC_RETURN_IF_ERROR(PlanJoin(stmt, js, params, exec_options_, &plan));
  JoinOutput out;
  HEDC_RETURN_IF_ERROR(ResolveJoinOutput(stmt, js, &out));

  const size_t nsteps = plan.steps.size();
  const size_t total_cols = js.total_columns();
  const bool vectorized = exec_options_.vectorized;

  // --- Gather one table's surviving rows under its local predicate.
  // Index candidates when usable (residual re-checked row-at-a-time),
  // else the vectorized batched scan, else the legacy row scan.
  auto gather = [&](size_t t_idx,
                    std::vector<ScanMatch>* matches) -> Status {
    Table* table = &entries[t_idx]->table;
    const Expr* lw = plan.local[t_idx].get();
    bool used_index = false;
    std::vector<int64_t> candidates;
    HEDC_RETURN_IF_ERROR(
        CollectIndexCandidates(table, lw, &candidates, &used_index));
    if (used_index) {
      int64_t stale = 0;
      for (int64_t row_id : candidates) {
        const Row* row = table->Find(row_id);
        if (row == nullptr) {
          ++stale;
          continue;
        }
        stats_.rows_examined.fetch_add(1, std::memory_order_relaxed);
        if (lw != nullptr) {
          HEDC_ASSIGN_OR_RETURN(Value keep, EvalExpr(*lw, *row));
          if (!keep.AsBool()) continue;
        }
        matches->push_back(ScanMatch{row_id, row});
      }
      if (stale > 0) {
        stats_.stale_index_entries.fetch_add(stale,
                                             std::memory_order_relaxed);
      }
      return Status::Ok();
    }
    if (vectorized) {
      ScanOptions sopts;
      sopts.zone_maps = exec_options_.zone_maps;
      sopts.threads = exec_options_.scan_threads;
      sopts.pool = exec_options_.scan_threads > 1 ? ScanPool() : nullptr;
      ScanStats sstats;
      HEDC_RETURN_IF_ERROR(ScanFilter(*table, lw, sopts, matches, &sstats));
      stats_.rows_examined.fetch_add(sstats.rows_scanned,
                                     std::memory_order_relaxed);
      stats_.morsels_pruned.fetch_add(sstats.morsels_pruned,
                                      std::memory_order_relaxed);
      return Status::Ok();
    }
    Status eval_error;
    int64_t examined = 0;
    table->Scan([&](int64_t row_id, const Row& row) {
      ++examined;
      if (lw != nullptr) {
        Result<Value> keep = EvalExpr(*lw, row);
        if (!keep.ok()) {
          eval_error = keep.status();
          return false;
        }
        if (!keep.value().AsBool()) return true;
      }
      matches->push_back(ScanMatch{row_id, &row});
      return true;
    });
    stats_.rows_examined.fetch_add(examined, std::memory_order_relaxed);
    return eval_error;
  };

  // --- Build phase: hash tables over every non-driver table.
  const size_t partitions = static_cast<size_t>(
      std::clamp(exec_options_.join_partitions, 1, 64));
  std::vector<BuiltSide> built(nsteps);
  for (size_t s = 0; s < nsteps; ++s) {
    const JoinStepPlan& step = plan.steps[s];
    HEDC_RETURN_IF_ERROR(gather(step.table_idx, &built[s].matches));
    built[s].ht = std::make_unique<JoinHashTable>(
        js.LocalColumn(step.build_col), step.coerce_numeric,
        vectorized ? partitions : 1);
    built[s].ht->Build(
        built[s].matches,
        exec_options_.scan_threads > 1 ? ScanPool() : nullptr,
        vectorized ? exec_options_.scan_threads : 1);
  }

  // --- Probe-side tuple machinery shared by both modes. A tuple is a
  // driver row plus one matched build row per completed step; tuples
  // are flat arrays (`pos` into the driver batch, `rows` with stride
  // nsteps) so the per-morsel pipeline allocates nothing after warmup.
  struct TupleBuf {
    std::vector<uint32_t> pos;
    std::vector<const Row*> rows;  // stride = nsteps
  };

  const size_t driver_offset = js.table(plan.driver).offset;
  const Table& driver_table = *js.table(plan.driver).table;
  const size_t driver_cols = driver_table.schema().num_columns();

  // Flat combined-row value of `flat` for tuple k of `t` whose driver
  // row is `drow`.
  auto value_at = [&](const Row& drow, const TupleBuf& t, size_t k,
                      size_t flat) -> const Value& {
    const size_t ti = js.TableOfColumn(flat);
    const size_t local = js.LocalColumn(flat);
    if (ti == plan.driver) return drow[local];
    return (*t.rows[k * nsteps +
                    static_cast<size_t>(plan.step_of_table[ti])])[local];
  };

  // Assembles the combined row for residual interpretation: driver
  // columns, completed steps, plus the candidate row for step `s`.
  // Unavailable tables keep stale values; residual attachment
  // guarantees they are never read.
  auto assemble = [&](const Row& drow, const TupleBuf& t, size_t k, size_t s,
                      const Row* candidate, Row* scratch) {
    for (size_t c = 0; c < driver_cols; ++c) {
      (*scratch)[driver_offset + c] = drow[c];
    }
    for (size_t s2 = 0; s2 <= s; ++s2) {
      const Row* brow =
          s2 == s ? candidate : t.rows[k * nsteps + s2];
      const size_t off = js.table(plan.steps[s2].table_idx).offset;
      for (size_t c = 0; c < brow->size(); ++c) {
        (*scratch)[off + c] = (*brow)[c];
      }
    }
  };

  // Runs the join steps over one batch of driver rows (`cur.pos`
  // preloaded with surviving batch indexes), leaving surviving tuples
  // in `cur`. `driver_row(i)` maps a batch index to its Row.
  auto run_steps = [&](const std::function<const Row&(uint32_t)>& driver_row,
                       TupleBuf* cur, TupleBuf* next,
                       Row* scratch) -> Status {
    for (size_t s = 0; s < nsteps; ++s) {
      const JoinStepPlan& step = plan.steps[s];
      const JoinHashTable& ht = *built[s].ht;
      next->pos.clear();
      next->rows.clear();
      const size_t ntuples = cur->pos.size();
      for (size_t k = 0; k < ntuples; ++k) {
        const Row& drow = driver_row(cur->pos[k]);
        const Value& key = value_at(drow, *cur, k, step.probe_col);
        const std::vector<const Row*>* hits = ht.Probe(key);
        if (hits == nullptr) continue;
        for (const Row* brow : *hits) {
          if (!step.residuals.empty()) {
            assemble(drow, *cur, k, s, brow, scratch);
            bool keep = true;
            for (const Expr* res : step.residuals) {
              HEDC_ASSIGN_OR_RETURN(Value v, EvalExpr(*res, *scratch));
              if (!v.AsBool()) {
                keep = false;
                break;
              }
            }
            if (!keep) continue;
          }
          next->pos.push_back(cur->pos[k]);
          for (size_t s2 = 0; s2 < nsteps; ++s2) {
            next->rows.push_back(s2 < s ? cur->rows[k * nsteps + s2]
                                        : (s2 == s ? brow : nullptr));
          }
        }
      }
      std::swap(*cur, *next);
    }
    return Status::Ok();
  };

  // --- Terminal state. Aggregation accumulates into worker-local
  // GroupedAggregator forks; projection collects per-batch row vectors
  // merged in driver order (a trailing sort-key column is appended when
  // ORDER BY reshuffles afterwards).
  GroupedAggregator agg_proto(out.group_cols, out.specs);
  const bool keyed_sort = out.order_col.has_value();

  auto emit_tuples = [&](const std::function<const Row&(uint32_t)>& driver_row,
                         const std::function<int64_t(uint32_t)>& driver_id,
                         const TupleBuf& cur, GroupedAggregator* agg,
                         Row* scratch, std::vector<Row>* rows_out) {
    const size_t ntuples = cur.pos.size();
    for (size_t k = 0; k < ntuples; ++k) {
      const Row& drow = driver_row(cur.pos[k]);
      if (out.agg) {
        for (size_t flat : out.needed) {
          (*scratch)[flat] = value_at(drow, cur, k, flat);
        }
        agg->AccumulateRow(*scratch, driver_id(cur.pos[k]));
        continue;
      }
      Row r;
      r.reserve(out.proj.size() + (keyed_sort ? 1 : 0));
      for (size_t flat : out.proj) r.push_back(value_at(drow, cur, k, flat));
      if (keyed_sort) r.push_back(value_at(drow, cur, k, *out.order_col));
      rows_out->push_back(std::move(r));
    }
    stats_.rows_matched.fetch_add(static_cast<int64_t>(ntuples),
                                  std::memory_order_relaxed);
  };

  GroupedAggregator agg_total = agg_proto.Fork();
  std::vector<Row> plain_rows;

  const Expr* driver_where = plan.local[plan.driver].get();
  bool driver_used_index = false;
  std::vector<int64_t> driver_candidates;
  HEDC_RETURN_IF_ERROR(CollectIndexCandidates(
      &entries[plan.driver]->table, driver_where, &driver_candidates,
      &driver_used_index));

  if (driver_used_index || !vectorized) {
    // Serial probe: index candidates (both modes) or the row-at-a-time
    // fallback. Driver rows stream in row-id order through the same
    // step pipeline, one batch of one row... batching still pays for
    // the tuple buffers, so batch up to the morsel size.
    std::vector<ScanMatch> driver_matches;
    if (driver_used_index) {
      int64_t stale = 0;
      Table* table = &entries[plan.driver]->table;
      for (int64_t row_id : driver_candidates) {
        const Row* row = table->Find(row_id);
        if (row == nullptr) {
          ++stale;
          continue;
        }
        stats_.rows_examined.fetch_add(1, std::memory_order_relaxed);
        if (driver_where != nullptr) {
          HEDC_ASSIGN_OR_RETURN(Value keep, EvalExpr(*driver_where, *row));
          if (!keep.AsBool()) continue;
        }
        driver_matches.push_back(ScanMatch{row_id, row});
      }
      if (stale > 0) {
        stats_.stale_index_entries.fetch_add(stale,
                                             std::memory_order_relaxed);
      }
    } else {
      // Row mode, no index: legacy heap scan (the driver's
      // CollectIndexCandidates above already counted the full scan).
      Table* table = &entries[plan.driver]->table;
      Status eval_error;
      int64_t examined = 0;
      table->Scan([&](int64_t row_id, const Row& row) {
        ++examined;
        if (driver_where != nullptr) {
          Result<Value> keep = EvalExpr(*driver_where, row);
          if (!keep.ok()) {
            eval_error = keep.status();
            return false;
          }
          if (!keep.value().AsBool()) return true;
        }
        driver_matches.push_back(ScanMatch{row_id, &row});
        return true;
      });
      stats_.rows_examined.fetch_add(examined, std::memory_order_relaxed);
      HEDC_RETURN_IF_ERROR(eval_error);
    }
    TupleBuf cur, next;
    Row scratch(total_cols);
    auto driver_row = [&](uint32_t i) -> const Row& {
      return *driver_matches[i].row;
    };
    auto driver_id = [&](uint32_t i) -> int64_t {
      return driver_matches[i].row_id;
    };
    cur.pos.resize(driver_matches.size());
    std::iota(cur.pos.begin(), cur.pos.end(), 0);
    HEDC_RETURN_IF_ERROR(run_steps(driver_row, &cur, &next, &scratch));
    emit_tuples(driver_row, driver_id, cur, &agg_total, &scratch,
                &plain_rows);
  } else {
    // Vectorized probe: morsel-driven over the driver table, the local
    // predicate compiled to filter kernels, join steps probed per
    // chunk.
    const FilterPlan fplan = CompileFilter(driver_where);
    std::vector<const Table::Morsel*> morsels;
    if (exec_options_.zone_maps && driver_where != nullptr) {
      const auto bounds = ExtractColumnBounds(driver_where);
      if (!bounds.empty()) {
        int64_t pruned = 0;
        PruneMorsels(driver_table, bounds, &morsels, &pruned);
        stats_.morsels_pruned.fetch_add(pruned, std::memory_order_relaxed);
      } else {
        driver_table.ListMorsels(&morsels);
      }
    } else {
      driver_table.ListMorsels(&morsels);
    }

    // Per-morsel worker body; projection output lands in the morsel's
    // slot so the merged result preserves driver row order.
    auto probe_morsel = [&](const Table::Morsel& m, DataChunk* chunk,
                            std::vector<uint32_t>* sel, TupleBuf* cur,
                            TupleBuf* next, Row* scratch,
                            GroupedAggregator* agg,
                            std::vector<Row>* rows_out) -> Status {
      driver_table.FillChunk(m, chunk);
      sel->resize(chunk->size());
      std::iota(sel->begin(), sel->end(), 0);
      HEDC_RETURN_IF_ERROR(ApplyFilter(fplan, chunk, sel));
      stats_.rows_examined.fetch_add(static_cast<int64_t>(chunk->size()),
                                     std::memory_order_relaxed);
      cur->pos = *sel;
      auto driver_row = [&](uint32_t i) -> const Row& {
        return chunk->row(i);
      };
      auto driver_id = [&](uint32_t i) -> int64_t {
        return chunk->row_id(i);
      };
      HEDC_RETURN_IF_ERROR(run_steps(driver_row, cur, next, scratch));
      emit_tuples(driver_row, driver_id, *cur, agg, scratch, rows_out);
      return Status::Ok();
    };

    ScanOptions sopts;
    sopts.zone_maps = exec_options_.zone_maps;
    sopts.threads = exec_options_.scan_threads;
    sopts.pool = exec_options_.scan_threads > 1 ? ScanPool() : nullptr;
    const int threads =
        sopts.pool != nullptr ? PlannedScanThreads(driver_table, sopts) : 1;

    if (threads <= 1 || morsels.size() <= 1) {
      DataChunk chunk;
      std::vector<uint32_t> sel;
      TupleBuf cur, next;
      Row scratch(total_cols);
      for (const Table::Morsel* m : morsels) {
        HEDC_RETURN_IF_ERROR(probe_morsel(*m, &chunk, &sel, &cur, &next,
                                          &scratch, &agg_total,
                                          &plain_rows));
      }
    } else {
      std::atomic<size_t> next_morsel{0};
      std::atomic<bool> stop{false};
      std::vector<GroupedAggregator> partials;
      partials.reserve(static_cast<size_t>(threads));
      for (int t = 0; t < threads; ++t) partials.push_back(agg_proto.Fork());
      std::vector<std::vector<Row>> slots(morsels.size());
      std::mutex err_mu;
      Status first_error = Status::Ok();

      auto worker = [&](int t) {
        DataChunk chunk;
        std::vector<uint32_t> sel;
        TupleBuf cur, nxt;
        Row scratch(total_cols);
        while (!stop.load(std::memory_order_relaxed)) {
          const size_t i =
              next_morsel.fetch_add(1, std::memory_order_relaxed);
          if (i >= morsels.size()) break;
          Status s = probe_morsel(*morsels[i], &chunk, &sel, &cur, &nxt,
                                  &scratch, &partials[t], &slots[i]);
          if (!s.ok()) {
            {
              std::lock_guard<std::mutex> lock(err_mu);
              if (first_error.ok()) first_error = std::move(s);
            }
            stop.store(true, std::memory_order_relaxed);
            break;
          }
        }
      };

      std::mutex done_mu;
      std::condition_variable done_cv;
      int launched = 0;
      int done = 0;
      for (int t = 1; t < threads; ++t) {
        const bool ok = sopts.pool->TrySubmit([&, t] {
          worker(t);
          std::lock_guard<std::mutex> lock(done_mu);
          ++done;
          done_cv.notify_all();
        });
        if (ok) ++launched;
      }
      worker(0);
      {
        std::unique_lock<std::mutex> lock(done_mu);
        done_cv.wait(lock, [&] { return done == launched; });
      }
      HEDC_RETURN_IF_ERROR(first_error);
      for (const GroupedAggregator& p : partials) agg_total.MergeFrom(p);
      for (std::vector<Row>& s : slots) {
        for (Row& r : s) plain_rows.push_back(std::move(r));
      }
    }
  }

  // --- Emit.
  ResultSet result;
  result.columns = out.columns;
  if (out.agg) {
    agg_total.Emit(out.layout, /*empty_input_row=*/out.group_cols.empty(),
                   &result.rows);
  } else {
    if (keyed_sort) {
      const size_t key_idx = out.proj.size();
      const bool desc = stmt.order_desc;
      std::stable_sort(plain_rows.begin(), plain_rows.end(),
                       [key_idx, desc](const Row& a, const Row& b) {
                         const int cmp = a[key_idx].Compare(b[key_idx]);
                         return desc ? cmp > 0 : cmp < 0;
                       });
      for (Row& r : plain_rows) r.pop_back();
    }
    result.rows = std::move(plain_rows);
  }
  if (stmt.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(stmt.limit)) {
    result.rows.resize(static_cast<size_t>(stmt.limit));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Database::ExplainJoinedSelect

Result<std::vector<std::string>> Database::ExplainJoinedSelect(
    const SelectStmt& stmt, const std::vector<Value>& params) {
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
  std::vector<std::string> names;
  names.push_back(stmt.table);
  for (const JoinClause& jc : stmt.joins) names.push_back(jc.table);
  std::vector<TableEntry*> entries;
  JoinSchema js;
  for (const std::string& name : names) {
    TableEntry* entry = FindEntry(name);
    if (entry == nullptr) return Status::NotFound("table " + name);
    entries.push_back(entry);
    HEDC_RETURN_IF_ERROR(js.AddTable(name, &entry->table));
  }
  std::vector<TableEntry*> latch_order = entries;
  std::sort(latch_order.begin(), latch_order.end(),
            [](const TableEntry* a, const TableEntry* b) {
              return ToLower(a->table.name()) < ToLower(b->table.name());
            });
  std::vector<std::shared_lock<std::shared_mutex>> latches;
  latches.reserve(latch_order.size());
  for (TableEntry* e : latch_order) latches.emplace_back(e->latch);

  JoinPlan plan;
  HEDC_RETURN_IF_ERROR(PlanJoin(stmt, js, params, exec_options_, &plan));
  JoinOutput out;
  HEDC_RETURN_IF_ERROR(ResolveJoinOutput(stmt, js, &out));

  std::vector<std::string> pipeline;
  // Driver access: mirrors the executor's CollectIndexCandidates
  // decision without touching the stats counters.
  const Expr* dw = plan.local[plan.driver].get();
  bool driver_indexed = false;
  if (dw != nullptr) {
    for (const auto& [col, b] : ExtractColumnBounds(dw)) {
      const Table& t = *js.table(plan.driver).table;
      if ((b.eq.has_value() &&
           t.FindIndex(static_cast<size_t>(col), false) != nullptr) ||
          (b.has_range() &&
           t.FindIndex(static_cast<size_t>(col), true) != nullptr)) {
        driver_indexed = true;
        break;
      }
    }
  }
  std::string head = driver_indexed ? "INDEX SCAN " : "SCAN ";
  head += js.table(plan.driver).name;
  head += StrFormat(" (est %lld rows)",
                    static_cast<long long>(plan.est[plan.driver]));
  if (exec_options_.vectorized && !driver_indexed) {
    ScanOptions sopts;
    sopts.zone_maps = exec_options_.zone_maps;
    sopts.threads = exec_options_.scan_threads;
    sopts.pool = scan_pool_.get();  // sizing only
    const int threads =
        PlannedScanThreads(*js.table(plan.driver).table, sopts);
    head += StrFormat(" [vectorized x%d]", threads);
  }
  pipeline.push_back(std::move(head));

  for (const JoinStepPlan& step : plan.steps) {
    std::string s = "HASH JOIN build ";
    s += js.table(step.table_idx).name;
    s += StrFormat(" (est %lld rows) ON ",
                   static_cast<long long>(step.est_rows));
    s += js.ColumnDisplayName(step.probe_col);
    s += " = ";
    s += js.ColumnDisplayName(step.build_col);
    if (!step.residuals.empty()) {
      s += StrFormat(" + %d residual", static_cast<int>(step.residuals.size()));
    }
    pipeline.push_back(std::move(s));
  }

  if (out.agg) {
    pipeline.push_back(StrFormat("GROUP AGGREGATE (%d keys, %d aggs)",
                                 static_cast<int>(out.group_cols.size()),
                                 static_cast<int>(out.specs.size())));
  } else {
    pipeline.push_back(
        StrFormat("PROJECT %d cols", static_cast<int>(out.proj.size())));
  }
  return pipeline;
}

}  // namespace hedc::db
