// Table schemas for the metadata database.
#ifndef HEDC_DB_SCHEMA_H_
#define HEDC_DB_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/value.h"

namespace hedc::db {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kText;
  bool not_null = false;
  bool primary_key = false;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  // Case-insensitive column lookup; nullopt if absent.
  std::optional<size_t> ColumnIndex(std::string_view name) const;

  // Index of the PRIMARY KEY column, if declared.
  std::optional<size_t> PrimaryKeyIndex() const;

  // Validates a row against this schema: arity, NOT NULL, loose type
  // compatibility (ints accepted into REAL columns, etc.).
  Status ValidateRow(const Row& row) const;

  // Coerces row values to the declared column types in place (e.g. an int
  // literal inserted into a REAL column becomes a real).
  void CoerceRow(Row* row) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace hedc::db

#endif  // HEDC_DB_SCHEMA_H_
