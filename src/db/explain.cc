#include "db/explain.h"

#include <optional>
#include <unordered_map>

#include "core/strings.h"
#include "db/expr.h"
#include "db/sql.h"
#include "db/table.h"

namespace hedc::db {

namespace {

// Mirrors the executor's sargability analysis (database.cc); kept in sync
// by the ExplainMatchesExecutor tests.
struct Bounds {
  bool has_eq = false;
  bool has_range = false;
};

void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kBinary && e->bin_op == BinOp::kAnd) {
    CollectConjuncts(e->left.get(), out);
    CollectConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

void ExtractBound(const Expr* e, std::unordered_map<int, Bounds>* bounds) {
  if (e->kind != Expr::Kind::kBinary) return;
  BinOp op = e->bin_op;
  if (op != BinOp::kEq && op != BinOp::kLt && op != BinOp::kLe &&
      op != BinOp::kGt && op != BinOp::kGe) {
    return;
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  if (e->left->kind == Expr::Kind::kColumn &&
      e->right->kind == Expr::Kind::kLiteral) {
    col = e->left.get();
    lit = e->right.get();
  } else if (e->right->kind == Expr::Kind::kColumn &&
             e->left->kind == Expr::Kind::kLiteral) {
    col = e->right.get();
    lit = e->left.get();
  } else {
    return;
  }
  if (lit->literal.is_null()) return;
  Bounds& b = (*bounds)[col->column_index];
  if (op == BinOp::kEq) {
    b.has_eq = true;
  } else {
    b.has_range = true;
  }
}

}  // namespace

std::string QueryPlan::ToString() const {
  switch (access) {
    case Access::kFullScan:
      return StrFormat("FULL SCAN %s%s", table.c_str(),
                       has_residual ? " WHERE <predicate>" : "");
    case Access::kIndexPoint:
      return StrFormat("INDEX POINT %s.%s (%s)%s", table.c_str(),
                       column.c_str(), index_name.c_str(),
                       has_residual ? " + residual" : "");
    case Access::kIndexRange:
      return StrFormat("INDEX RANGE %s.%s (%s)%s", table.c_str(),
                       column.c_str(), index_name.c_str(),
                       has_residual ? " + residual" : "");
  }
  return "?";
}

Result<QueryPlan> ExplainSelect(Database* db, std::string_view sql,
                                const std::vector<Value>& params) {
  HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, ParseSql(sql));
  if (stmt->kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  const SelectStmt& select = stmt->select;
  Table* table = db->GetTable(select.table);
  if (table == nullptr) return Status::NotFound("table " + select.table);

  QueryPlan plan;
  plan.table = table->name();
  if (select.where == nullptr) {
    plan.access = QueryPlan::Access::kFullScan;
    return plan;
  }
  std::unique_ptr<Expr> where = select.where->Clone();
  // Pad parameters so planning never fails on unbound markers.
  std::vector<Value> padded = params;
  padded.resize(static_cast<size_t>(stmt->num_params), Value::Int(0));
  HEDC_RETURN_IF_ERROR(BindExpr(where.get(), table->schema(), padded));

  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where.get(), &conjuncts);
  std::unordered_map<int, Bounds> bounds;
  for (const Expr* c : conjuncts) ExtractBound(c, &bounds);
  plan.has_residual = true;  // the executor always re-checks the predicate

  // Same preference order as the executor: indexed equality first, then
  // indexed range, else scan.
  for (const auto& [col, b] : bounds) {
    if (!b.has_eq) continue;
    const IndexDef* def =
        table->FindIndex(static_cast<size_t>(col), /*need_range=*/false);
    if (def == nullptr) continue;
    plan.access = QueryPlan::Access::kIndexPoint;
    plan.index_name = def->name;
    plan.column = table->schema().column(def->column).name;
    return plan;
  }
  for (const auto& [col, b] : bounds) {
    if (!b.has_range) continue;
    const IndexDef* def =
        table->FindIndex(static_cast<size_t>(col), /*need_range=*/true);
    if (def == nullptr) continue;
    plan.access = QueryPlan::Access::kIndexRange;
    plan.index_name = def->name;
    plan.column = table->schema().column(def->column).name;
    return plan;
  }
  plan.access = QueryPlan::Access::kFullScan;
  return plan;
}

}  // namespace hedc::db
