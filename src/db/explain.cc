#include "db/explain.h"

#include <optional>
#include <unordered_map>

#include "core/strings.h"
#include "db/expr.h"
#include "db/scan_bounds.h"
#include "db/sql.h"
#include "db/table.h"
#include "db/vectorized.h"

namespace hedc::db {

std::string QueryPlan::ToString() const {
  if (joined) {
    std::string s = "PIPELINE ";
    for (size_t i = 0; i < pipeline.size(); ++i) {
      if (i > 0) s += " -> ";
      s += pipeline[i];
    }
    return s;
  }
  switch (access) {
    case Access::kFullScan: {
      std::string s = StrFormat("FULL SCAN %s%s", table.c_str(),
                                has_residual ? " WHERE <predicate>" : "");
      if (vectorized) {
        s += StrFormat(
            " [vectorized, %lld morsels, %lld pruned, %d threads]",
            static_cast<long long>(morsel_count),
            static_cast<long long>(morsels_pruned), parallelism);
      }
      return s;
    }
    case Access::kIndexPoint:
      return StrFormat("INDEX POINT %s.%s (%s)%s", table.c_str(),
                       column.c_str(), index_name.c_str(),
                       has_residual ? " + residual" : "");
    case Access::kIndexRange:
      return StrFormat("INDEX RANGE %s.%s (%s)%s", table.c_str(),
                       column.c_str(), index_name.c_str(),
                       has_residual ? " + residual" : "");
  }
  return "?";
}

Result<QueryPlan> ExplainSelect(Database* db, std::string_view sql,
                                const std::vector<Value>& params) {
  HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, ParseSql(sql));
  if (stmt->kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  const SelectStmt& select = stmt->select;

  if (!select.joins.empty()) {
    // Joined SELECT: the join planner reports its pipeline directly so
    // EXPLAIN and execution share one set of decisions.
    std::vector<Value> padded = params;
    padded.resize(static_cast<size_t>(stmt->num_params), Value::Int(0));
    QueryPlan plan;
    plan.joined = true;
    plan.table = select.table;
    HEDC_ASSIGN_OR_RETURN(plan.pipeline,
                          db->ExplainJoinedSelect(select, padded));
    return plan;
  }

  Table* table = db->GetTable(select.table);
  if (table == nullptr) return Status::NotFound("table " + select.table);

  QueryPlan plan;
  plan.table = table->name();

  // Fills in the full-scan strategy fields from the executor's own
  // helpers, so EXPLAIN and execution can never drift apart.
  auto finish_full_scan =
      [&](const std::unordered_map<int, ColumnBounds>& bounds) {
        plan.access = QueryPlan::Access::kFullScan;
        const ExecOptions& eopts = db->exec_options();
        plan.vectorized = eopts.vectorized;
        plan.morsel_count = static_cast<int64_t>(table->num_morsels());
        if (!eopts.vectorized) return;
        ScanOptions sopts;
        sopts.zone_maps = eopts.zone_maps;
        sopts.threads = eopts.scan_threads;
        plan.parallelism = PlannedScanThreads(*table, sopts);
        if (eopts.zone_maps && !bounds.empty()) {
          std::vector<const Table::Morsel*> kept;
          PruneMorsels(*table, bounds, &kept, &plan.morsels_pruned);
        }
      };

  if (select.where == nullptr) {
    finish_full_scan({});
    return plan;
  }
  std::unique_ptr<Expr> where = select.where->Clone();
  // Pad parameters so planning never fails on unbound markers.
  std::vector<Value> padded = params;
  padded.resize(static_cast<size_t>(stmt->num_params), Value::Int(0));
  HEDC_RETURN_IF_ERROR(BindExpr(where.get(), table->schema(), padded));

  std::unordered_map<int, ColumnBounds> bounds =
      ExtractColumnBounds(where.get());
  plan.has_residual = true;  // the executor always re-checks the predicate

  // Same preference order as the executor: indexed equality first, then
  // indexed range, else scan.
  for (const auto& [col, b] : bounds) {
    if (!b.eq.has_value()) continue;
    const IndexDef* def =
        table->FindIndex(static_cast<size_t>(col), /*need_range=*/false);
    if (def == nullptr) continue;
    plan.access = QueryPlan::Access::kIndexPoint;
    plan.index_name = def->name;
    plan.column = table->schema().column(def->column).name;
    return plan;
  }
  for (const auto& [col, b] : bounds) {
    if (!b.has_range()) continue;
    const IndexDef* def =
        table->FindIndex(static_cast<size_t>(col), /*need_range=*/true);
    if (def == nullptr) continue;
    plan.access = QueryPlan::Access::kIndexRange;
    plan.index_name = def->name;
    plan.column = table->schema().column(def->column).name;
    return plan;
  }
  finish_full_scan(bounds);
  return plan;
}

}  // namespace hedc::db
