#include "db/database.h"

#include <algorithm>
#include <thread>

#include "core/config.h"
#include "core/metrics.h"
#include "core/strings.h"
#include "db/join.h"
#include "db/scan_bounds.h"
#include "db/vectorized.h"

namespace hedc::db {

namespace {

// Statement latency histograms, shared by every Database in the process.
Histogram* QueryLatency() {
  static Histogram* const kHist =
      MetricsRegistry::Default()->GetHistogram("db.query_us");
  return kHist;
}

Histogram* UpdateLatency() {
  static Histogram* const kHist =
      MetricsRegistry::Default()->GetHistogram("db.update_us");
  return kHist;
}

// Scan-volume counters: rows run through predicate evaluation vs. rows
// that survived it. Their ratio is the selectivity the zone maps and
// indexes are supposed to exploit.
Counter* RowsScannedCounter() {
  static Counter* const kCounter =
      MetricsRegistry::Default()->GetCounter("db.rows_scanned");
  return kCounter;
}

Counter* RowsMatchedCounter() {
  static Counter* const kCounter =
      MetricsRegistry::Default()->GetCounter("db.rows_matched");
  return kCounter;
}

// Index entries pointing at rows that no longer exist. A steady climb
// means index maintenance is broken somewhere.
Counter* StaleIndexCounter() {
  static Counter* const kCounter =
      MetricsRegistry::Default()->GetCounter("db.stale_index_entries");
  return kCounter;
}

std::string NormalizeName(std::string_view name) { return ToLower(name); }

}  // namespace

Value ResultSet::Get(size_t row, const std::string& column) const {
  if (row >= rows.size()) return Value::Null();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i], column)) {
      return i < rows[row].size() ? rows[row][i] : Value::Null();
    }
  }
  return Value::Null();
}

Status Database::OpenWal(const std::string& wal_path) {
  std::vector<WalRecord> records;
  Status read = WriteAheadLog::ReadAll(wal_path, &records);
  if (!read.ok() && !read.IsNotFound()) return read;
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  // Replay into the catalog before enabling logging so replay itself is
  // not re-logged.
  for (const WalRecord& record : records) {
    std::string key = NormalizeName(record.table);
    switch (record.op) {
      case WalOp::kCreateTable:
        if (tables_.count(key) == 0) {
          tables_[key] = std::make_unique<TableEntry>(
              record.table, record.schema, exec_options_.morsel_rows);
        }
        break;
      case WalOp::kCreateIndex: {
        auto it = tables_.find(key);
        if (it != tables_.end()) {
          Status s = it->second->table.CreateIndex(
              record.index_name, record.column,
              record.hash_index ? IndexKind::kHash : IndexKind::kBTree);
          if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
        }
        break;
      }
      case WalOp::kDropTable:
        tables_.erase(key);
        break;
      case WalOp::kInsert: {
        auto it = tables_.find(key);
        if (it == tables_.end()) break;
        HEDC_RETURN_IF_ERROR(
            it->second->table.InsertWithId(record.row_id, record.row));
        break;
      }
      case WalOp::kUpdate: {
        auto it = tables_.find(key);
        if (it == tables_.end()) break;
        HEDC_RETURN_IF_ERROR(
            it->second->table.Update(record.row_id, record.row));
        break;
      }
      case WalOp::kDelete: {
        auto it = tables_.find(key);
        if (it == tables_.end()) break;
        HEDC_RETURN_IF_ERROR(it->second->table.Delete(record.row_id));
        break;
      }
    }
  }
  HEDC_RETURN_IF_ERROR(wal_.Open(wal_path));
  wal_enabled_ = true;
  return Status::Ok();
}

Status Database::ResetWal(const std::string& wal_path) {
  // Exclusive catalog lock: no statement (and hence no WAL append) can be
  // in flight while the log file is swapped out underneath.
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (!wal_enabled_) {
    return Status::FailedPrecondition("WAL is not enabled");
  }
  wal_.Close();
  std::FILE* f = std::fopen(wal_path.c_str(), "wb");  // truncate
  if (f == nullptr) {
    return Status::Internal("cannot truncate WAL: " + wal_path);
  }
  std::fclose(f);
  return wal_.Open(wal_path);
}

void Database::LogOrBuffer(WalRecord record) {
  if (!wal_enabled_) return;
  if (in_txn_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(txn_state_mu_);
    if (in_txn_.load(std::memory_order_relaxed)) {
      txn_wal_buffer_.push_back(std::move(record));
      return;
    }
  }
  wal_.Append(record);
}

void Database::RecordMutation(WalRecord record, UndoOp undo) {
  if (in_txn_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(txn_state_mu_);
    if (in_txn_.load(std::memory_order_relaxed)) {
      undo_log_.push_back(std::move(undo));
      if (wal_enabled_) txn_wal_buffer_.push_back(std::move(record));
      return;
    }
  }
  if (wal_enabled_) wal_.Append(record);
}

Status Database::Begin() {
  std::lock_guard<std::mutex> lock(txn_mu_);
  if (in_txn_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("transaction already open");
  }
  std::lock_guard<std::mutex> state_lock(txn_state_mu_);
  undo_log_.clear();
  txn_wal_buffer_.clear();
  in_txn_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status Database::Commit() {
  std::lock_guard<std::mutex> lock(txn_mu_);
  if (!in_txn_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("no open transaction");
  }
  std::vector<WalRecord> to_flush;
  {
    std::lock_guard<std::mutex> state_lock(txn_state_mu_);
    to_flush = std::move(txn_wal_buffer_);
    txn_wal_buffer_.clear();
  }
  if (wal_.is_open() && !to_flush.empty()) {
    // One durable unit: the whole transaction shares a single fsync.
    Status appended = wal_.AppendBatch(to_flush);
    if (!appended.ok()) {
      std::lock_guard<std::mutex> state_lock(txn_state_mu_);
      txn_wal_buffer_ = std::move(to_flush);
      return appended;
    }
  }
  std::lock_guard<std::mutex> state_lock(txn_state_mu_);
  undo_log_.clear();
  in_txn_.store(false, std::memory_order_release);
  return Status::Ok();
}

Status Database::Rollback() {
  std::lock_guard<std::mutex> txn_lock(txn_mu_);
  if (!in_txn_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("no open transaction");
  }
  std::vector<UndoOp> undo;
  {
    std::lock_guard<std::mutex> state_lock(txn_state_mu_);
    undo = std::move(undo_log_);
    undo_log_.clear();
    txn_wal_buffer_.clear();
    in_txn_.store(false, std::memory_order_release);
  }

  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  // Latch every touched table exclusively, in ascending name order (the
  // deterministic order that keeps the latch hierarchy deadlock-free).
  std::vector<std::string> keys;
  for (const UndoOp& op : undo) keys.push_back(NormalizeName(op.table));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::unique_lock<std::shared_mutex>> latches;
  latches.reserve(keys.size());
  for (const std::string& key : keys) {
    auto it = tables_.find(key);
    if (it != tables_.end()) latches.emplace_back(it->second->latch);
  }

  // Undo in reverse order.
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    auto table_it = tables_.find(NormalizeName(it->table));
    if (table_it == tables_.end()) continue;
    Table* table = &table_it->second->table;
    switch (it->op) {
      case WalOp::kInsert:
        table->Delete(it->row_id);
        break;
      case WalOp::kUpdate:
        table->Update(it->row_id, it->old_row);
        break;
      case WalOp::kDelete:
        table->InsertWithId(it->row_id, it->old_row);
        break;
      default:
        break;
    }
  }
  return Status::Ok();
}

Database::TableEntry* Database::FindEntry(const std::string& name) {
  auto it = tables_.find(NormalizeName(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::GetTable(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  TableEntry* entry = FindEntry(name);
  return entry == nullptr ? nullptr : &entry->table;
}

const Table* Database::GetTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto it = tables_.find(NormalizeName(name));
  return it == tables_.end() ? nullptr : &it->second->table;
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, entry] : tables_) names.push_back(entry->table.name());
  std::sort(names.begin(), names.end());
  return names;
}

void Database::Configure(const Config& config) {
  ExecOptions opts = exec_options_;
  opts.vectorized = config.GetBool("db.vectorized", opts.vectorized);
  opts.zone_maps = config.GetBool("db.zone_maps", opts.zone_maps);
  opts.morsel_rows = config.GetInt("db.morsel_rows", opts.morsel_rows);
  opts.scan_threads =
      static_cast<int>(config.GetInt("db.scan_threads", opts.scan_threads));
  opts.join_partitions = static_cast<int>(
      config.GetInt("db.join_partitions", opts.join_partitions));
  opts.join_planner = config.GetBool("db.join_planner", opts.join_planner);
  exec_options_ = opts;
}

ThreadPool* Database::ScanPool() {
  std::call_once(scan_pool_once_, [this] {
    // One worker fewer than the host so the caller thread (which always
    // participates in its own scan) has a core; per-statement fan-out is
    // bounded by scan_threads, not by the pool size.
    size_t hw = std::thread::hardware_concurrency();
    size_t n = hw > 1 ? hw - 1 : 1;
    scan_pool_ = std::make_unique<ThreadPool>(std::min<size_t>(n, 16));
  });
  return scan_pool_.get();
}

Result<ResultSet> Database::Execute(std::string_view sql,
                                    const std::vector<Value>& params) {
  HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt, ParseSql(sql));
  return ExecuteStatement(*stmt, params);
}

Result<ResultSet> Database::ExecuteStatement(
    const Statement& stmt, const std::vector<Value>& params) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      stats_.queries.fetch_add(1, std::memory_order_relaxed);
      ScopedTimer timer(QueryLatency());
      return ExecSelect(stmt.select, params);
    }
    case Statement::Kind::kInsert: {
      stats_.updates.fetch_add(1, std::memory_order_relaxed);
      ScopedTimer timer(UpdateLatency());
      return ExecInsert(stmt.insert, params);
    }
    case Statement::Kind::kUpdate: {
      stats_.updates.fetch_add(1, std::memory_order_relaxed);
      ScopedTimer timer(UpdateLatency());
      return ExecUpdate(stmt.update, params);
    }
    case Statement::Kind::kDelete: {
      stats_.updates.fetch_add(1, std::memory_order_relaxed);
      ScopedTimer timer(UpdateLatency());
      return ExecDelete(stmt.del, params);
    }
    case Statement::Kind::kCreateTable:
      return ExecCreateTable(stmt.create_table);
    case Statement::Kind::kCreateIndex:
      return ExecCreateIndex(stmt.create_index);
    case Statement::Kind::kDropTable:
      return ExecDropTable(stmt.drop_table);
    case Statement::Kind::kBegin: {
      HEDC_RETURN_IF_ERROR(Begin());
      return ResultSet{};
    }
    case Statement::Kind::kCommit: {
      HEDC_RETURN_IF_ERROR(Commit());
      return ResultSet{};
    }
    case Statement::Kind::kRollback: {
      HEDC_RETURN_IF_ERROR(Rollback());
      return ResultSet{};
    }
  }
  return Status::Internal("unreachable statement kind");
}

Status Database::CollectIndexCandidates(Table* table, const Expr* where,
                                        std::vector<int64_t>* row_ids,
                                        bool* used_index) {
  *used_index = false;
  if (where != nullptr) {
    std::unordered_map<int, ColumnBounds> bounds = ExtractColumnBounds(where);

    // Prefer an equality-indexed column, then a range-indexed column.
    for (const auto& [col, b] : bounds) {
      if (!b.eq.has_value()) continue;
      const IndexDef* def =
          table->FindIndex(static_cast<size_t>(col), /*need_range=*/false);
      if (def == nullptr) continue;
      table->IndexLookup(*def, *b.eq, row_ids);
      *used_index = true;
      stats_.index_scans.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    for (const auto& [col, b] : bounds) {
      if (!b.lo.has_value() && !b.hi.has_value()) continue;
      const IndexDef* def =
          table->FindIndex(static_cast<size_t>(col), /*need_range=*/true);
      if (def == nullptr) continue;
      table->IndexRange(*def, b.lo, b.lo_inclusive, b.hi, b.hi_inclusive,
                        row_ids);
      *used_index = true;
      stats_.index_scans.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
  }
  // No usable index: the caller streams the heap scan with the predicate
  // pushed down (rows are visited by reference, survivors copied).
  stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Result<ResultSet> Database::ExecSelect(const SelectStmt& stmt,
                                       const std::vector<Value>& params) {
  if (!stmt.joins.empty()) return ExecJoinedSelect(stmt, params);
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
  TableEntry* entry = FindEntry(stmt.table);
  if (entry == nullptr) return Status::NotFound("table " + stmt.table);
  std::shared_lock<std::shared_mutex> latch(entry->latch);
  Table* table = &entry->table;
  const Schema& schema = table->schema();

  // Column references may carry the table as a qualifier even in
  // single-table statements.
  auto resolve = [&](const std::string& name) -> std::optional<size_t> {
    auto ci = schema.ColumnIndex(name);
    if (!ci.has_value()) {
      ci = schema.ColumnIndex(StripQualifier(name, stmt.table));
    }
    return ci;
  };

  std::unique_ptr<Expr> where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    StripQualifiers(where.get(), stmt.table);
    HEDC_RETURN_IF_ERROR(BindExpr(where.get(), schema, params));
  }

  // Resolve the output shape up front: the aggregate fast path below
  // picks its scan strategy from it.
  bool has_agg = false;
  for (const SelectItem& item : stmt.items) {
    if (item.agg != AggFunc::kNone) has_agg = true;
  }
  const bool agg_path = has_agg || !stmt.group_by.empty();
  std::vector<int> group_cols;
  std::vector<AggSpec> agg_specs;
  std::vector<GroupedAggregator::OutputSlot> agg_layout;
  if (agg_path) {
    if (stmt.star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with aggregation");
    }
    for (const std::string& g : stmt.group_by) {
      auto ci = resolve(g);
      if (!ci.has_value()) {
        return Status::InvalidArgument("unknown GROUP BY column: " + g);
      }
      group_cols.push_back(static_cast<int>(*ci));
    }
    for (const SelectItem& item : stmt.items) {
      if (item.agg == AggFunc::kNone) {
        auto ci = resolve(item.column);
        if (!ci.has_value()) {
          return Status::InvalidArgument("unknown column: " + item.column);
        }
        const auto it = std::find(group_cols.begin(), group_cols.end(),
                                  static_cast<int>(*ci));
        if (it == group_cols.end()) {
          return Status::InvalidArgument("column " + item.column +
                                         " must appear in GROUP BY");
        }
        agg_layout.push_back(GroupedAggregator::OutputSlot{
            true, static_cast<size_t>(it - group_cols.begin())});
        continue;
      }
      AggSpec spec{item.agg, -1};
      if (item.agg != AggFunc::kCountStar) {
        auto ci = resolve(item.column);
        if (!ci.has_value()) {
          return Status::InvalidArgument("unknown column: " + item.column);
        }
        spec.col = static_cast<int>(*ci);
      }
      agg_layout.push_back(
          GroupedAggregator::OutputSlot{false, agg_specs.size()});
      agg_specs.push_back(spec);
    }
  }

  bool used_index = false;
  std::vector<int64_t> candidates;
  HEDC_RETURN_IF_ERROR(
      CollectIndexCandidates(table, where.get(), &candidates, &used_index));

  // Aggregate fast path: no index, no ORDER BY (which reorders groups
  // through first-seen) — scan → filter → aggregate per morsel without
  // materializing matches (db/vectorized.h).
  if (agg_path && !used_index && exec_options_.vectorized &&
      stmt.order_by.empty()) {
    ScanOptions sopts;
    sopts.zone_maps = exec_options_.zone_maps;
    sopts.threads = exec_options_.scan_threads;
    sopts.pool = exec_options_.scan_threads > 1 ? ScanPool() : nullptr;
    ScanStats sstats;
    GroupedAggregator agg(group_cols, agg_specs);
    HEDC_RETURN_IF_ERROR(
        ScanAggregate(*table, where.get(), sopts, &agg, &sstats));
    stats_.rows_examined.fetch_add(sstats.rows_scanned,
                                   std::memory_order_relaxed);
    stats_.morsels_pruned.fetch_add(sstats.morsels_pruned,
                                    std::memory_order_relaxed);
    stats_.rows_matched.fetch_add(sstats.rows_matched,
                                  std::memory_order_relaxed);
    RowsScannedCounter()->Add(sstats.rows_scanned);
    RowsMatchedCounter()->Add(sstats.rows_matched);
    ResultSet result;
    for (const SelectItem& item : stmt.items) {
      result.columns.push_back(item.alias);
    }
    agg.Emit(agg_layout, /*empty_input_row=*/group_cols.empty(),
             &result.rows);
    if (stmt.limit >= 0 &&
        result.rows.size() > static_cast<size_t>(stmt.limit)) {
      result.rows.resize(static_cast<size_t>(stmt.limit));
    }
    return result;
  }

  // Survivors are borrowed pointers into the heap — stable because the
  // shared latch blocks all mutation for the rest of this function — so
  // neither scan path copies a row to find out it matched.
  std::vector<ScanMatch> matches;
  if (used_index) {
    // Filter the index candidates with the full predicate (residual
    // included).
    matches.reserve(candidates.size());
    int64_t stale = 0;
    for (int64_t row_id : candidates) {
      const Row* row = table->Find(row_id);
      if (row == nullptr) {
        // The index returned a row id the heap no longer has. Harmless
        // for this query (the row is gone) but a symptom worth counting.
        ++stale;
        continue;
      }
      stats_.rows_examined.fetch_add(1, std::memory_order_relaxed);
      if (where != nullptr) {
        HEDC_ASSIGN_OR_RETURN(Value keep, EvalExpr(*where, *row));
        if (!keep.AsBool()) continue;
      }
      matches.push_back(ScanMatch{row_id, row});
    }
    if (stale > 0) {
      stats_.stale_index_entries.fetch_add(stale, std::memory_order_relaxed);
      StaleIndexCounter()->Add(stale);
    }
  } else if (exec_options_.vectorized) {
    ScanOptions sopts;
    sopts.zone_maps = exec_options_.zone_maps;
    sopts.threads = exec_options_.scan_threads;
    sopts.pool = exec_options_.scan_threads > 1 ? ScanPool() : nullptr;
    ScanStats sstats;
    HEDC_RETURN_IF_ERROR(
        ScanFilter(*table, where.get(), sopts, &matches, &sstats));
    stats_.rows_examined.fetch_add(sstats.rows_scanned,
                                   std::memory_order_relaxed);
    stats_.morsels_pruned.fetch_add(sstats.morsels_pruned,
                                    std::memory_order_relaxed);
    RowsScannedCounter()->Add(sstats.rows_scanned);
  } else {
    // Legacy row-at-a-time scan (db.vectorized = off).
    Status eval_error;
    int64_t examined = 0;
    table->Scan([&](int64_t row_id, const Row& row) {
      ++examined;
      if (where != nullptr) {
        Result<Value> keep = EvalExpr(*where, row);
        if (!keep.ok()) {
          eval_error = keep.status();
          return false;
        }
        if (!keep.value().AsBool()) return true;
      }
      matches.push_back(ScanMatch{row_id, &row});
      return true;
    });
    stats_.rows_examined.fetch_add(examined, std::memory_order_relaxed);
    RowsScannedCounter()->Add(examined);
    if (!eval_error.ok()) return eval_error;
  }
  stats_.rows_matched.fetch_add(static_cast<int64_t>(matches.size()),
                                std::memory_order_relaxed);
  RowsMatchedCounter()->Add(static_cast<int64_t>(matches.size()));

  // ORDER BY before projection/limit (and before aggregation, where it
  // fixes the groups' first-seen order).
  if (!stmt.order_by.empty()) {
    auto col = resolve(stmt.order_by);
    if (!col.has_value()) {
      return Status::InvalidArgument("unknown ORDER BY column: " +
                                     stmt.order_by);
    }
    size_t c = *col;
    bool desc = stmt.order_desc;
    std::stable_sort(matches.begin(), matches.end(),
                     [c, desc](const ScanMatch& a, const ScanMatch& b) {
                       int cmp = (*a.row)[c].Compare((*b.row)[c]);
                       return desc ? cmp > 0 : cmp < 0;
                     });
  }

  ResultSet result;

  if (agg_path) {
    // Aggregation over the materialized matches (index scans, ORDER BY,
    // or the row-at-a-time mode). Groups preserve first-seen order in
    // the (possibly sorted) match sequence.
    GroupedAggregator agg(group_cols, agg_specs);
    int64_t seq = 0;
    for (const ScanMatch& m : matches) agg.AccumulateRow(*m.row, seq++);
    for (const SelectItem& item : stmt.items) {
      result.columns.push_back(item.alias);
    }
    agg.Emit(agg_layout, /*empty_input_row=*/group_cols.empty(),
             &result.rows);
  } else {
    // Plain projection.
    std::vector<int> proj;
    if (stmt.star) {
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        result.columns.push_back(schema.column(i).name);
        proj.push_back(static_cast<int>(i));
      }
    } else {
      for (const SelectItem& item : stmt.items) {
        auto ci = resolve(item.column);
        if (!ci.has_value()) {
          return Status::InvalidArgument("unknown column: " + item.column);
        }
        result.columns.push_back(item.alias);
        proj.push_back(static_cast<int>(*ci));
      }
    }
    // Only LIMIT-many rows are materialized when no ORDER BY reshuffles
    // the match order afterwards.
    size_t cap = matches.size();
    if (stmt.limit >= 0 && stmt.order_by.empty()) {
      cap = std::min<size_t>(cap, static_cast<size_t>(stmt.limit));
    }
    result.rows.reserve(cap);
    for (const ScanMatch& m : matches) {
      if (result.rows.size() >= cap) break;
      Row out_row;
      out_row.reserve(proj.size());
      for (int c : proj) out_row.push_back((*m.row)[c]);
      result.rows.push_back(std::move(out_row));
    }
  }

  if (stmt.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(stmt.limit)) {
    result.rows.resize(stmt.limit);
  }
  return result;
}

Result<ResultSet> Database::ExecInsert(const InsertStmt& stmt,
                                       const std::vector<Value>& params) {
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
  TableEntry* entry = FindEntry(stmt.table);
  if (entry == nullptr) return Status::NotFound("table " + stmt.table);
  std::unique_lock<std::shared_mutex> latch(entry->latch);
  Table* table = &entry->table;
  const Schema& schema = table->schema();

  // Column mapping.
  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) targets.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      auto ci = schema.ColumnIndex(name);
      if (!ci.has_value()) {
        return Status::InvalidArgument("unknown column: " + name);
      }
      targets.push_back(*ci);
    }
  }

  ResultSet result;
  for (const auto& value_exprs : stmt.rows) {
    if (value_exprs.size() != targets.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < value_exprs.size(); ++i) {
      std::unique_ptr<Expr> e = value_exprs[i]->Clone();
      HEDC_RETURN_IF_ERROR(BindExpr(e.get(), schema, params));
      HEDC_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, Row{}));
      row[targets[i]] = std::move(v);
    }
    HEDC_ASSIGN_OR_RETURN(int64_t row_id, table->Insert(std::move(row)));
    Result<Row> inserted = table->Get(row_id);
    RecordMutation(WalRecord{WalOp::kInsert, table->name(), row_id,
                             inserted.ok() ? inserted.value() : Row{},
                             Schema{}, "", "", false},
                   UndoOp{WalOp::kInsert, table->name(), row_id, {}});
    result.last_insert_row_id = row_id;
    ++result.affected_rows;
  }
  return result;
}

Result<ResultSet> Database::ExecUpdate(const UpdateStmt& stmt,
                                       const std::vector<Value>& params) {
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
  TableEntry* entry = FindEntry(stmt.table);
  if (entry == nullptr) return Status::NotFound("table " + stmt.table);
  std::unique_lock<std::shared_mutex> latch(entry->latch);
  Table* table = &entry->table;
  const Schema& schema = table->schema();

  std::unique_ptr<Expr> where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    HEDC_RETURN_IF_ERROR(BindExpr(where.get(), schema, params));
  }
  // Bind assignment expressions.
  std::vector<std::pair<size_t, std::unique_ptr<Expr>>> assigns;
  for (const auto& [col_name, expr] : stmt.assignments) {
    auto ci = schema.ColumnIndex(col_name);
    if (!ci.has_value()) {
      return Status::InvalidArgument("unknown column: " + col_name);
    }
    std::unique_ptr<Expr> bound = expr->Clone();
    HEDC_RETURN_IF_ERROR(BindExpr(bound.get(), schema, params));
    assigns.emplace_back(*ci, std::move(bound));
  }

  bool used_index = false;
  std::vector<int64_t> candidates;
  HEDC_RETURN_IF_ERROR(
      CollectIndexCandidates(table, where.get(), &candidates, &used_index));
  bool residual_needed = used_index;
  if (!used_index) {
    // Streamed scan under the exclusive latch: rows cannot change between
    // the scan and the mutation loop, so survivors need no re-check and
    // non-matching rows are never copied.
    HEDC_RETURN_IF_ERROR(
        FilterByScan(table, where.get(), &candidates));
  }

  ResultSet result;
  for (int64_t row_id : candidates) {
    const Row* current = table->Find(row_id);
    if (current == nullptr) {
      if (residual_needed) {
        stats_.stale_index_entries.fetch_add(1, std::memory_order_relaxed);
        StaleIndexCounter()->Add(1);
      }
      continue;
    }
    if (residual_needed && where != nullptr) {
      HEDC_ASSIGN_OR_RETURN(Value keep, EvalExpr(*where, *current));
      if (!keep.AsBool()) continue;
    }
    Row updated = *current;
    for (const auto& [col, expr] : assigns) {
      HEDC_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, *current));
      updated[col] = std::move(v);
    }
    // `current` dies with this Update; no use after it below.
    Row old_row;
    HEDC_RETURN_IF_ERROR(table->Update(row_id, std::move(updated), &old_row));
    Result<Row> new_row = table->Get(row_id);
    RecordMutation(
        WalRecord{WalOp::kUpdate, table->name(), row_id,
                  new_row.ok() ? new_row.value() : Row{}, Schema{}, "", "",
                  false},
        UndoOp{WalOp::kUpdate, table->name(), row_id, std::move(old_row)});
    ++result.affected_rows;
  }
  return result;
}

Result<ResultSet> Database::ExecDelete(const DeleteStmt& stmt,
                                       const std::vector<Value>& params) {
  std::shared_lock<std::shared_mutex> catalog(catalog_mu_);
  TableEntry* entry = FindEntry(stmt.table);
  if (entry == nullptr) return Status::NotFound("table " + stmt.table);
  std::unique_lock<std::shared_mutex> latch(entry->latch);
  Table* table = &entry->table;
  const Schema& schema = table->schema();

  std::unique_ptr<Expr> where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    HEDC_RETURN_IF_ERROR(BindExpr(where.get(), schema, params));
  }

  bool used_index = false;
  std::vector<int64_t> candidates;
  HEDC_RETURN_IF_ERROR(
      CollectIndexCandidates(table, where.get(), &candidates, &used_index));
  bool residual_needed = used_index;
  if (!used_index) {
    HEDC_RETURN_IF_ERROR(FilterByScan(table, where.get(), &candidates));
  }

  ResultSet result;
  for (int64_t row_id : candidates) {
    const Row* current = table->Find(row_id);
    if (current == nullptr) {
      if (residual_needed) {
        stats_.stale_index_entries.fetch_add(1, std::memory_order_relaxed);
        StaleIndexCounter()->Add(1);
      }
      continue;
    }
    if (residual_needed && where != nullptr) {
      HEDC_ASSIGN_OR_RETURN(Value keep, EvalExpr(*where, *current));
      if (!keep.AsBool()) continue;
    }
    Row old_row;
    HEDC_RETURN_IF_ERROR(table->Delete(row_id, &old_row));
    RecordMutation(
        WalRecord{WalOp::kDelete, table->name(), row_id, Row{}, Schema{},
                  "", "", false},
        UndoOp{WalOp::kDelete, table->name(), row_id, std::move(old_row)});
    ++result.affected_rows;
  }
  return result;
}

Status Database::FilterByScan(Table* table, const Expr* where,
                              std::vector<int64_t>* row_ids) {
  if (exec_options_.vectorized) {
    // DML callers hold the exclusive table latch; the parallel workers
    // only read the heap, so sharing the scan inside the latch is safe.
    ScanOptions sopts;
    sopts.zone_maps = exec_options_.zone_maps;
    sopts.threads = exec_options_.scan_threads;
    sopts.pool = exec_options_.scan_threads > 1 ? ScanPool() : nullptr;
    std::vector<ScanMatch> matches;
    ScanStats sstats;
    HEDC_RETURN_IF_ERROR(ScanFilter(*table, where, sopts, &matches, &sstats));
    row_ids->reserve(row_ids->size() + matches.size());
    for (const ScanMatch& m : matches) row_ids->push_back(m.row_id);
    stats_.rows_examined.fetch_add(sstats.rows_scanned,
                                   std::memory_order_relaxed);
    stats_.morsels_pruned.fetch_add(sstats.morsels_pruned,
                                    std::memory_order_relaxed);
    RowsScannedCounter()->Add(sstats.rows_scanned);
    return Status::Ok();
  }
  Status eval_error;
  int64_t examined = 0;
  table->Scan([&](int64_t row_id, const Row& row) {
    ++examined;
    if (where != nullptr) {
      Result<Value> keep = EvalExpr(*where, row);
      if (!keep.ok()) {
        eval_error = keep.status();
        return false;
      }
      if (!keep.value().AsBool()) return true;
    }
    row_ids->push_back(row_id);
    return true;
  });
  stats_.rows_examined.fetch_add(examined, std::memory_order_relaxed);
  RowsScannedCounter()->Add(examined);
  return eval_error;
}

Result<ResultSet> Database::ExecCreateTable(const CreateTableStmt& stmt) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  std::string key = NormalizeName(stmt.table);
  if (tables_.count(key) > 0) {
    if (stmt.if_not_exists) return ResultSet{};
    return Status::AlreadyExists("table " + stmt.table);
  }
  tables_[key] = std::make_unique<TableEntry>(stmt.table, stmt.schema,
                                              exec_options_.morsel_rows);
  LogOrBuffer(WalRecord{WalOp::kCreateTable, stmt.table, 0, Row{},
                        stmt.schema, "", "", false});
  return ResultSet{};
}

Result<ResultSet> Database::ExecCreateIndex(const CreateIndexStmt& stmt) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  TableEntry* entry = FindEntry(stmt.table);
  if (entry == nullptr) return Status::NotFound("table " + stmt.table);
  HEDC_RETURN_IF_ERROR(entry->table.CreateIndex(
      stmt.index_name, stmt.column,
      stmt.hash ? IndexKind::kHash : IndexKind::kBTree));
  LogOrBuffer(WalRecord{WalOp::kCreateIndex, stmt.table, 0, Row{}, Schema{},
                        stmt.index_name, stmt.column, stmt.hash});
  return ResultSet{};
}

Result<ResultSet> Database::ExecDropTable(const DropTableStmt& stmt) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  std::string key = NormalizeName(stmt.table);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (stmt.if_exists) return ResultSet{};
    return Status::NotFound("table " + stmt.table);
  }
  tables_.erase(it);
  LogOrBuffer(WalRecord{WalOp::kDropTable, stmt.table, 0, Row{}, Schema{},
                        "", "", false});
  return ResultSet{};
}

}  // namespace hedc::db
