#include "db/connection.h"

#include <atomic>

#include "core/metrics.h"

namespace hedc::db {

namespace {

std::atomic<int64_t> g_next_connection_id{1};

Histogram* PoolWaitLatency() {
  static Histogram* const kHist =
      MetricsRegistry::Default()->GetHistogram("db.pool_wait_us");
  return kHist;
}

Gauge* PoolInUse() {
  static Gauge* const kGauge =
      MetricsRegistry::Default()->GetGauge("db.pool_in_use");
  return kGauge;
}

}  // namespace

Connection::Connection(Database* db, Clock* clock, Micros setup_cost)
    : db_(db), id_(g_next_connection_id.fetch_add(1)) {
  if (setup_cost > 0 && clock != nullptr) clock->SleepFor(setup_cost);
}

Result<ResultSet> Connection::Execute(std::string_view sql,
                                      const std::vector<Value>& params) {
  return db_->Execute(sql, params);
}

PooledConnection::~PooledConnection() { Release(); }

PooledConnection& PooledConnection::operator=(
    PooledConnection&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    kind_ = other.kind_;
    conn_ = std::move(other.conn_);
    other.pool_ = nullptr;
  }
  return *this;
}

void PooledConnection::Release() {
  if (pool_ != nullptr && conn_ != nullptr) {
    pool_->ReturnConnection(kind_, std::move(conn_));
  }
  conn_.reset();
  pool_ = nullptr;
}

ConnectionPool::ConnectionPool(Database* db, Clock* clock, Options options)
    : db_(db), clock_(clock), options_(options) {
  if (options_.pooling_enabled) {
    size_t sizes[3] = {options_.query_pool_size, options_.update_pool_size,
                       options_.auth_pool_size};
    for (int k = 0; k < 3; ++k) {
      for (size_t i = 0; i < sizes[k]; ++i) {
        free_[k].push_back(NewConnection());
      }
    }
  }
}

std::shared_ptr<Connection> ConnectionPool::NewConnection() {
  ++connections_created_;
  return std::make_shared<Connection>(db_, clock_,
                                      options_.connection_setup_cost);
}

PooledConnection ConnectionPool::Acquire(PoolKind kind) {
  int k = static_cast<int>(kind);
  if (!options_.pooling_enabled) {
    // No pooling: every acquisition pays the full setup cost and the
    // connection is dropped on release.
    std::shared_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++connections_created_;
    }
    conn = std::make_shared<Connection>(db_, clock_,
                                        options_.connection_setup_cost);
    return PooledConnection(nullptr, kind, std::move(conn));
  }
  ScopedTimer wait_timer(PoolWaitLatency());
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, k] { return !free_[k].empty(); });
  std::shared_ptr<Connection> conn = std::move(free_[k].front());
  free_[k].pop_front();
  ++outstanding_[k];
  PoolInUse()->Add(1);
  return PooledConnection(this, kind, std::move(conn));
}

void ConnectionPool::ReturnConnection(PoolKind kind,
                                      std::shared_ptr<Connection> conn) {
  std::lock_guard<std::mutex> lock(mu_);
  int k = static_cast<int>(kind);
  free_[k].push_back(std::move(conn));
  --outstanding_[k];
  PoolInUse()->Add(-1);
  cv_.notify_all();
}

size_t ConnectionPool::available(PoolKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_[static_cast<int>(kind)].size();
}

}  // namespace hedc::db
