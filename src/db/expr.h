// Expression trees for WHERE clauses and UPDATE assignments.
#ifndef HEDC_DB_EXPR_H_
#define HEDC_DB_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "db/schema.h"
#include "db/value.h"

namespace hedc::db {

enum class BinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLike,
};

enum class UnOp { kNot, kNeg, kIsNull, kIsNotNull };

struct Expr {
  enum class Kind { kLiteral, kColumn, kParam, kUnary, kBinary, kInList };

  Kind kind = Kind::kLiteral;
  Value literal;                  // kLiteral
  std::string column;             // kColumn
  int column_index = -1;          // resolved by Bind()
  int param_index = -1;           // kParam: position of '?' in the statement
  BinOp bin_op = BinOp::kEq;      // kBinary
  UnOp un_op = UnOp::kNot;        // kUnary
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;
  std::vector<std::unique_ptr<Expr>> list;  // kInList: right-hand values

  static std::unique_ptr<Expr> Literal(Value v);
  static std::unique_ptr<Expr> Column(std::string name);
  static std::unique_ptr<Expr> Param(int index);
  static std::unique_ptr<Expr> Unary(UnOp op, std::unique_ptr<Expr> operand);
  static std::unique_ptr<Expr> Binary(BinOp op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);

  // Deep copy (plans cache bound copies).
  std::unique_ptr<Expr> Clone() const;
};

// Resolves column references against `schema` and parameter markers
// against `params`. Fails on unknown columns / out-of-range parameters.
Status BindExpr(Expr* expr, const Schema& schema,
                const std::vector<Value>& params);

// Evaluates a bound expression against a row.
Result<Value> EvalExpr(const Expr& expr, const Row& row);

// SQL LIKE with '%' (any run) and '_' (any single char).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace hedc::db

#endif  // HEDC_DB_EXPR_H_
