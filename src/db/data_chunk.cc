#include "db/data_chunk.h"

namespace hedc::db {

void DataChunk::Reset(size_t num_columns) {
  row_ids_.clear();
  rows_.clear();
  if (columns_.size() != num_columns) {
    columns_.resize(num_columns);
    flattened_.resize(num_columns);
  }
  for (uint8_t& f : flattened_) f = 0;
}

const FlatColumn& DataChunk::Flatten(size_t col) {
  FlatColumn& fc = columns_[col];
  if (flattened_[col]) return fc;
  flattened_[col] = 1;

  const size_t n = rows_.size();
  fc.tag = ValueType::kNull;
  fc.uniform = true;
  fc.nulls.assign(n, 0);
  fc.ints.clear();
  fc.reals.clear();
  fc.texts.clear();

  // First pass: find the physical type of the non-null values.
  for (size_t i = 0; i < n && fc.tag == ValueType::kNull; ++i) {
    fc.tag = (*rows_[i])[col].type();
  }
  switch (fc.tag) {
    case ValueType::kInt:
    case ValueType::kBool:
      fc.ints.resize(n, 0);
      break;
    case ValueType::kReal:
      fc.reals.resize(n, 0);
      break;
    case ValueType::kText:
      fc.texts.resize(n, nullptr);
      break;
    default:
      // All-NULL or blob: nothing to transpose; kernels treat blobs via
      // the generic path.
      break;
  }
  for (size_t i = 0; i < n; ++i) {
    const Value& v = (*rows_[i])[col];
    if (v.is_null()) {
      fc.nulls[i] = 1;
      continue;
    }
    if (v.type() != fc.tag) {
      fc.uniform = false;
      continue;
    }
    switch (fc.tag) {
      case ValueType::kInt:
        fc.ints[i] = v.int_value();
        break;
      case ValueType::kBool:
        fc.ints[i] = v.bool_value() ? 1 : 0;
        break;
      case ValueType::kReal:
        fc.reals[i] = v.real_value();
        break;
      case ValueType::kText:
        fc.texts[i] = &v.text();
        break;
      default:
        break;
    }
  }
  return fc;
}

}  // namespace hedc::db
