// Redo log ("database redo logs ... stored on the A1000 with tape backup",
// §2.3). Append-only file of CRC-framed records; recovery replays them
// into an empty Database. Records belonging to an explicit transaction are
// buffered and only flushed at COMMIT, so an interrupted transaction never
// reaches the log.
#ifndef HEDC_DB_WAL_H_
#define HEDC_DB_WAL_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "core/bytes.h"
#include "core/status.h"
#include "db/schema.h"
#include "db/table.h"
#include "db/value.h"

namespace hedc::db {

enum class WalOp : uint8_t {
  kCreateTable = 1,
  kCreateIndex = 2,
  kDropTable = 3,
  kInsert = 4,
  kUpdate = 5,
  kDelete = 6,
};

struct WalRecord {
  WalOp op;
  std::string table;
  int64_t row_id = 0;
  Row row;               // insert/update payload
  Schema schema;         // create table
  std::string index_name;  // create index
  std::string column;      // create index
  bool hash_index = false;
};

// Value <-> bytes codec shared by the WAL and tests.
void EncodeValue(const Value& v, ByteBuffer* out);
Status DecodeValue(ByteReader* in, Value* out);
void EncodeRow(const Row& row, ByteBuffer* out);
Status DecodeRow(ByteReader* in, Row* out);

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Opens (creating or appending) the log file at `path`.
  Status Open(const std::string& path);
  void Close();
  bool is_open() const { return file_ != nullptr; }

  // Appends one record and flushes.
  Status Append(const WalRecord& record);

  // Reads every valid record from `path`. Stops cleanly at the first torn
  // record (partial trailing write) but fails on mid-file corruption.
  static Status ReadAll(const std::string& path,
                        std::vector<WalRecord>* out);

  static void EncodeRecord(const WalRecord& record, ByteBuffer* out);
  static Status DecodeRecord(ByteReader* in, WalRecord* out);

 private:
  std::FILE* file_ = nullptr;
  std::mutex mu_;
};

}  // namespace hedc::db

#endif  // HEDC_DB_WAL_H_
