// Redo log ("database redo logs ... stored on the A1000 with tape backup",
// §2.3). Append-only file of CRC-framed records; recovery replays them
// into an empty Database. Records belonging to an explicit transaction are
// buffered and only flushed at COMMIT, so an interrupted transaction never
// reaches the log.
//
// Durability is group-committed: concurrent appenders enqueue encoded
// frames and one of them (the leader) drains the queue with a single
// buffered write + fflush + fsync, then wakes the followers. Append()
// returns only once the record is durable (or the log hit an I/O error,
// which is sticky). The on-disk format is unchanged: a batch is just
// consecutive frames, so recovery needs no batch awareness.
#ifndef HEDC_DB_WAL_H_
#define HEDC_DB_WAL_H_

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/bytes.h"
#include "core/status.h"
#include "db/schema.h"
#include "db/table.h"
#include "db/value.h"

namespace hedc::db {

enum class WalOp : uint8_t {
  kCreateTable = 1,
  kCreateIndex = 2,
  kDropTable = 3,
  kInsert = 4,
  kUpdate = 5,
  kDelete = 6,
};

struct WalRecord {
  WalOp op;
  std::string table;
  int64_t row_id = 0;
  Row row;               // insert/update payload
  Schema schema;         // create table
  std::string index_name;  // create index
  std::string column;      // create index
  bool hash_index = false;
};

// Value <-> bytes codec shared by the WAL and tests.
void EncodeValue(const Value& v, ByteBuffer* out);
Status DecodeValue(ByteReader* in, Value* out);
void EncodeRow(const Row& row, ByteBuffer* out);
Status DecodeRow(ByteReader* in, Row* out);

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Opens (creating or appending) the log file at `path`.
  Status Open(const std::string& path);
  // Waits for in-flight appends to drain, then closes the file.
  void Close();
  bool is_open() const;

  // Appends one record; returns once it is durable (fsync'ed).
  Status Append(const WalRecord& record);

  // Appends `records` as one durable unit: the frames are written
  // back-to-back under a single flush+fsync (the COMMIT fast path).
  Status AppendBatch(const std::vector<WalRecord>& records);

  // Reads every valid record from `path`. Stops cleanly at the first torn
  // record (partial trailing write) but fails on mid-file corruption.
  static Status ReadAll(const std::string& path,
                        std::vector<WalRecord>* out);

  static void EncodeRecord(const WalRecord& record, ByteBuffer* out);
  static Status DecodeRecord(ByteReader* in, WalRecord* out);

 private:
  // One enqueued durable unit: `bytes` holds whole frames.
  struct PendingUnit {
    std::string bytes;
    size_t records = 0;
  };

  // Appenders enqueue at most kMaxQueuedUnits units; beyond that they
  // block until the leader drains (bounded memory under write bursts).
  static constexpr size_t kMaxQueuedUnits = 256;

  Status EnqueueAndWait(std::string bytes, size_t records);
  // Called with mu_ held and leader_active_ set; writes `batch` to disk,
  // fsyncs, and returns the I/O status. Drops mu_ for the I/O.
  Status WriteBatch(std::unique_lock<std::mutex>* lock,
                    std::vector<PendingUnit> batch);

  std::FILE* file_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingUnit> queue_;
  uint64_t enqueued_units_ = 0;
  uint64_t durable_units_ = 0;
  bool leader_active_ = false;
  Status io_error_;  // sticky: once the log fails, every append fails
};

}  // namespace hedc::db

#endif  // HEDC_DB_WAL_H_
