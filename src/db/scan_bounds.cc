#include "db/scan_bounds.h"

namespace hedc::db {

void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kBinary && e->bin_op == BinOp::kAnd) {
    CollectConjuncts(e->left.get(), out);
    CollectConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

void ExtractBound(const Expr* e,
                  std::unordered_map<int, ColumnBounds>* bounds) {
  if (e->kind != Expr::Kind::kBinary) return;
  BinOp op = e->bin_op;
  if (op != BinOp::kEq && op != BinOp::kLt && op != BinOp::kLe &&
      op != BinOp::kGt && op != BinOp::kGe) {
    return;
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (e->left->kind == Expr::Kind::kColumn &&
      e->right->kind == Expr::Kind::kLiteral) {
    col = e->left.get();
    lit = e->right.get();
  } else if (e->right->kind == Expr::Kind::kColumn &&
             e->left->kind == Expr::Kind::kLiteral) {
    col = e->right.get();
    lit = e->left.get();
    flipped = true;
  } else {
    return;
  }
  if (lit->literal.is_null()) return;
  if (flipped) {
    // literal < col  ≡  col > literal, etc.
    switch (op) {
      case BinOp::kLt:
        op = BinOp::kGt;
        break;
      case BinOp::kLe:
        op = BinOp::kGe;
        break;
      case BinOp::kGt:
        op = BinOp::kLt;
        break;
      case BinOp::kGe:
        op = BinOp::kLe;
        break;
      default:
        break;
    }
  }
  ColumnBounds& b = (*bounds)[col->column_index];
  switch (op) {
    case BinOp::kEq:
      b.eq = lit->literal;
      break;
    case BinOp::kLt:
      if (!b.hi || lit->literal.Compare(*b.hi) < 0) {
        b.hi = lit->literal;
        b.hi_inclusive = false;
      }
      break;
    case BinOp::kLe:
      if (!b.hi || lit->literal.Compare(*b.hi) < 0) {
        b.hi = lit->literal;
        b.hi_inclusive = true;
      }
      break;
    case BinOp::kGt:
      if (!b.lo || lit->literal.Compare(*b.lo) > 0) {
        b.lo = lit->literal;
        b.lo_inclusive = false;
      }
      break;
    case BinOp::kGe:
      if (!b.lo || lit->literal.Compare(*b.lo) > 0) {
        b.lo = lit->literal;
        b.lo_inclusive = true;
      }
      break;
    default:
      break;
  }
}

std::unordered_map<int, ColumnBounds> ExtractColumnBounds(const Expr* where) {
  std::unordered_map<int, ColumnBounds> bounds;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where, &conjuncts);
  for (const Expr* c : conjuncts) ExtractBound(c, &bounds);
  return bounds;
}

}  // namespace hedc::db
