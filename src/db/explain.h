// Plan explanation: which access path a SELECT would use. The DM's
// query-optimization story (§5.4: "queries may be adapted and optimized
// without system downtime") needs visibility into index usage; tests and
// the admin tooling use this instead of guessing from counters.
#ifndef HEDC_DB_EXPLAIN_H_
#define HEDC_DB_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "db/database.h"

namespace hedc::db {

struct QueryPlan {
  enum class Access { kFullScan, kIndexPoint, kIndexRange };
  Access access = Access::kFullScan;
  std::string table;
  std::string index_name;   // empty for full scans
  std::string column;       // driving column for index access
  bool has_residual = false;  // predicate re-checked after the index

  // Full-scan strategy (meaningful when access == kFullScan).
  bool vectorized = false;    // batched scan-filter path would run
  int64_t morsel_count = 0;   // morsels in the table at plan time
  int64_t morsels_pruned = 0;  // morsels the zone maps would skip
  int parallelism = 1;        // threads the executor would use

  // Joined SELECTs: the pipeline stages the join planner chose (driver
  // scan, hash-join builds, terminal), rendered by ToString as
  // "PIPELINE stage -> stage -> ...". The single-table fields above are
  // not populated for joined plans.
  bool joined = false;
  std::vector<std::string> pipeline;

  std::string ToString() const;
};

// Plans `sql` (must be a SELECT) against the current catalog without
// executing it. Parameters are treated as opaque values for planning.
Result<QueryPlan> ExplainSelect(Database* db, std::string_view sql,
                                const std::vector<Value>& params = {});

}  // namespace hedc::db

#endif  // HEDC_DB_EXPLAIN_H_
