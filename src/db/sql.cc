#include "db/sql.h"

#include <cctype>
#include <cstring>

#include "core/strings.h"

namespace hedc::db {
namespace {

enum class TokKind {
  kEnd,
  kIdent,
  kInt,
  kReal,
  kString,
  kSymbol,  // punctuation / operators
  kParam,   // '?'
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // ident (upper-cased for keywords kept raw), symbol
  int64_t int_val = 0;
  double real_val = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < sql_.size()) {
      char c = sql_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '-' && i + 1 < sql_.size() && sql_[i + 1] == '-') {
        while (i < sql_.size() && sql_[i] != '\n') ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < sql_.size() &&
               (std::isalnum(static_cast<unsigned char>(sql_[i])) ||
                sql_[i] == '_')) {
          ++i;
        }
        Token t;
        t.kind = TokKind::kIdent;
        t.text = std::string(sql_.substr(start, i - start));
        out->push_back(std::move(t));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i + 1 < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[i + 1])))) {
        size_t start = i;
        bool is_real = false;
        while (i < sql_.size() &&
               (std::isdigit(static_cast<unsigned char>(sql_[i])) ||
                sql_[i] == '.' || sql_[i] == 'e' || sql_[i] == 'E' ||
                ((sql_[i] == '+' || sql_[i] == '-') && i > start &&
                 (sql_[i - 1] == 'e' || sql_[i - 1] == 'E')))) {
          if (sql_[i] == '.' || sql_[i] == 'e' || sql_[i] == 'E') {
            is_real = true;
          }
          ++i;
        }
        std::string num(sql_.substr(start, i - start));
        Token t;
        if (is_real) {
          t.kind = TokKind::kReal;
          if (!ParseDouble(num, &t.real_val)) {
            return Status::InvalidArgument("bad numeric literal: " + num);
          }
        } else {
          t.kind = TokKind::kInt;
          if (!ParseInt64(num, &t.int_val)) {
            return Status::InvalidArgument("bad integer literal: " + num);
          }
        }
        out->push_back(std::move(t));
        continue;
      }
      if (c == '\'') {
        ++i;
        std::string s;
        while (true) {
          if (i >= sql_.size()) {
            return Status::InvalidArgument("unterminated string literal");
          }
          if (sql_[i] == '\'') {
            if (i + 1 < sql_.size() && sql_[i + 1] == '\'') {
              s.push_back('\'');
              i += 2;
              continue;
            }
            ++i;
            break;
          }
          s.push_back(sql_[i++]);
        }
        Token t;
        t.kind = TokKind::kString;
        t.text = std::move(s);
        out->push_back(std::move(t));
        continue;
      }
      if (c == '?') {
        Token t;
        t.kind = TokKind::kParam;
        out->push_back(std::move(t));
        ++i;
        continue;
      }
      // Two-char operators first.
      if (i + 1 < sql_.size()) {
        std::string two(sql_.substr(i, 2));
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          Token t;
          t.kind = TokKind::kSymbol;
          t.text = two == "!=" ? "<>" : two;
          out->push_back(std::move(t));
          i += 2;
          continue;
        }
      }
      if (std::strchr("(),*=<>+-/;.", c) != nullptr) {
        Token t;
        t.kind = TokKind::kSymbol;
        t.text = std::string(1, c);
        out->push_back(std::move(t));
        ++i;
        continue;
      }
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' in SQL", c));
    }
    out->push_back(Token{});  // kEnd
    return Status::Ok();
  }

 private:
  std::string_view sql_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> Parse() {
    auto stmt = std::make_unique<Statement>();
    stmt_ = stmt.get();
    if (IsKeyword("SELECT")) {
      stmt->kind = Statement::Kind::kSelect;
      HEDC_RETURN_IF_ERROR(ParseSelect(&stmt->select));
    } else if (IsKeyword("INSERT")) {
      stmt->kind = Statement::Kind::kInsert;
      HEDC_RETURN_IF_ERROR(ParseInsert(&stmt->insert));
    } else if (IsKeyword("UPDATE")) {
      stmt->kind = Statement::Kind::kUpdate;
      HEDC_RETURN_IF_ERROR(ParseUpdate(&stmt->update));
    } else if (IsKeyword("DELETE")) {
      stmt->kind = Statement::Kind::kDelete;
      HEDC_RETURN_IF_ERROR(ParseDelete(&stmt->del));
    } else if (IsKeyword("CREATE")) {
      HEDC_RETURN_IF_ERROR(ParseCreate(stmt.get()));
    } else if (IsKeyword("DROP")) {
      stmt->kind = Statement::Kind::kDropTable;
      HEDC_RETURN_IF_ERROR(ParseDrop(&stmt->drop_table));
    } else if (IsKeyword("BEGIN")) {
      Advance();
      stmt->kind = Statement::Kind::kBegin;
    } else if (IsKeyword("COMMIT")) {
      Advance();
      stmt->kind = Statement::Kind::kCommit;
    } else if (IsKeyword("ROLLBACK")) {
      Advance();
      stmt->kind = Statement::Kind::kRollback;
    } else {
      return Status::InvalidArgument("expected a SQL statement, got '" +
                                     Peek().text + "'");
    }
    if (IsSymbol(";")) Advance();
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing tokens after statement: '" +
                                     Peek().text + "'");
    }
    stmt->num_params = num_params_;
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++pos_; }
  bool IsKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokKind::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  bool IsSymbol(std::string_view s, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokKind::kSymbol && t.text == s;
  }
  Status Expect(std::string_view kw) {
    if (!IsKeyword(kw)) {
      return Status::InvalidArgument(StrFormat(
          "expected %.*s near '%s'", static_cast<int>(kw.size()), kw.data(),
          Peek().text.c_str()));
    }
    Advance();
    return Status::Ok();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!IsSymbol(s)) {
      return Status::InvalidArgument(StrFormat(
          "expected '%.*s' near '%s'", static_cast<int>(s.size()), s.data(),
          Peek().text.c_str()));
    }
    Advance();
    return Status::Ok();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected identifier, got '" +
                                     Peek().text + "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  // Column reference: ident or qualified table.ident.
  Result<std::string> ExpectColumnName() {
    HEDC_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    if (IsSymbol(".")) {
      Advance();
      HEDC_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      name += "." + col;
    }
    return name;
  }

  static std::optional<AggFunc> AggFromName(std::string_view name) {
    if (EqualsIgnoreCase(name, "COUNT")) return AggFunc::kCount;
    if (EqualsIgnoreCase(name, "MIN")) return AggFunc::kMin;
    if (EqualsIgnoreCase(name, "MAX")) return AggFunc::kMax;
    if (EqualsIgnoreCase(name, "SUM")) return AggFunc::kSum;
    if (EqualsIgnoreCase(name, "AVG")) return AggFunc::kAvg;
    return std::nullopt;
  }

  Status ParseSelect(SelectStmt* out) {
    HEDC_RETURN_IF_ERROR(Expect("SELECT"));
    if (IsSymbol("*")) {
      Advance();
      out->star = true;
    } else {
      while (true) {
        SelectItem item;
        if (Peek().kind != TokKind::kIdent) {
          return Status::InvalidArgument("expected select item");
        }
        std::string name = Peek().text;
        auto agg = AggFromName(name);
        if (agg.has_value() && IsSymbol("(", 1)) {
          Advance();  // func name
          Advance();  // '('
          if (IsSymbol("*")) {
            if (*agg != AggFunc::kCount) {
              return Status::InvalidArgument("'*' only valid in COUNT()");
            }
            Advance();
            item.agg = AggFunc::kCountStar;
            item.alias = "COUNT(*)";
          } else {
            HEDC_ASSIGN_OR_RETURN(item.column, ExpectColumnName());
            item.agg = *agg;
            item.alias = ToUpper(name) + "(" + item.column + ")";
          }
          HEDC_RETURN_IF_ERROR(ExpectSymbol(")"));
        } else {
          Advance();
          item.column = name;
          if (IsSymbol(".")) {
            Advance();
            HEDC_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
            item.column += "." + col;
          }
          item.alias = item.column;
        }
        if (IsKeyword("AS")) {
          Advance();
          HEDC_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
        }
        out->items.push_back(std::move(item));
        if (!IsSymbol(",")) break;
        Advance();
      }
    }
    HEDC_RETURN_IF_ERROR(Expect("FROM"));
    HEDC_ASSIGN_OR_RETURN(out->table, ExpectIdent());
    while (IsKeyword("JOIN") || (IsKeyword("INNER") && IsKeyword("JOIN", 1))) {
      if (IsKeyword("INNER")) Advance();
      Advance();  // JOIN
      JoinClause join;
      HEDC_ASSIGN_OR_RETURN(join.table, ExpectIdent());
      HEDC_RETURN_IF_ERROR(Expect("ON"));
      HEDC_ASSIGN_OR_RETURN(join.on, ParseExpr());
      out->joins.push_back(std::move(join));
    }
    if (IsKeyword("WHERE")) {
      Advance();
      HEDC_ASSIGN_OR_RETURN(out->where, ParseExpr());
    }
    if (IsKeyword("GROUP")) {
      Advance();
      HEDC_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        HEDC_ASSIGN_OR_RETURN(std::string col, ExpectColumnName());
        out->group_by.push_back(std::move(col));
        if (!IsSymbol(",")) break;
        Advance();
      }
    }
    if (IsKeyword("ORDER")) {
      Advance();
      HEDC_RETURN_IF_ERROR(Expect("BY"));
      HEDC_ASSIGN_OR_RETURN(out->order_by, ExpectColumnName());
      if (IsKeyword("ASC")) {
        Advance();
      } else if (IsKeyword("DESC")) {
        Advance();
        out->order_desc = true;
      }
    }
    if (IsKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != TokKind::kInt) {
        return Status::InvalidArgument("LIMIT expects an integer");
      }
      out->limit = Peek().int_val;
      Advance();
    }
    return Status::Ok();
  }

  Status ParseInsert(InsertStmt* out) {
    HEDC_RETURN_IF_ERROR(Expect("INSERT"));
    HEDC_RETURN_IF_ERROR(Expect("INTO"));
    HEDC_ASSIGN_OR_RETURN(out->table, ExpectIdent());
    if (IsSymbol("(")) {
      Advance();
      while (true) {
        HEDC_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        out->columns.push_back(std::move(col));
        if (IsSymbol(")")) break;
        HEDC_RETURN_IF_ERROR(ExpectSymbol(","));
      }
      Advance();  // ')'
    }
    HEDC_RETURN_IF_ERROR(Expect("VALUES"));
    while (true) {
      HEDC_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<std::unique_ptr<Expr>> row;
      while (true) {
        HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        row.push_back(std::move(e));
        if (IsSymbol(")")) break;
        HEDC_RETURN_IF_ERROR(ExpectSymbol(","));
      }
      Advance();  // ')'
      out->rows.push_back(std::move(row));
      if (!IsSymbol(",")) break;
      Advance();
    }
    return Status::Ok();
  }

  Status ParseUpdate(UpdateStmt* out) {
    HEDC_RETURN_IF_ERROR(Expect("UPDATE"));
    HEDC_ASSIGN_OR_RETURN(out->table, ExpectIdent());
    HEDC_RETURN_IF_ERROR(Expect("SET"));
    while (true) {
      HEDC_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      HEDC_RETURN_IF_ERROR(ExpectSymbol("="));
      HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
      out->assignments.emplace_back(std::move(col), std::move(e));
      if (!IsSymbol(",")) break;
      Advance();
    }
    if (IsKeyword("WHERE")) {
      Advance();
      HEDC_ASSIGN_OR_RETURN(out->where, ParseExpr());
    }
    return Status::Ok();
  }

  Status ParseDelete(DeleteStmt* out) {
    HEDC_RETURN_IF_ERROR(Expect("DELETE"));
    HEDC_RETURN_IF_ERROR(Expect("FROM"));
    HEDC_ASSIGN_OR_RETURN(out->table, ExpectIdent());
    if (IsKeyword("WHERE")) {
      Advance();
      HEDC_ASSIGN_OR_RETURN(out->where, ParseExpr());
    }
    return Status::Ok();
  }

  Status ParseCreate(Statement* stmt) {
    HEDC_RETURN_IF_ERROR(Expect("CREATE"));
    if (IsKeyword("TABLE")) {
      Advance();
      stmt->kind = Statement::Kind::kCreateTable;
      CreateTableStmt* out = &stmt->create_table;
      if (IsKeyword("IF")) {
        Advance();
        HEDC_RETURN_IF_ERROR(Expect("NOT"));
        HEDC_RETURN_IF_ERROR(Expect("EXISTS"));
        out->if_not_exists = true;
      }
      HEDC_ASSIGN_OR_RETURN(out->table, ExpectIdent());
      HEDC_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ColumnDef> cols;
      while (true) {
        ColumnDef col;
        HEDC_ASSIGN_OR_RETURN(col.name, ExpectIdent());
        HEDC_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
        if (EqualsIgnoreCase(type_name, "INT") ||
            EqualsIgnoreCase(type_name, "INTEGER") ||
            EqualsIgnoreCase(type_name, "BIGINT")) {
          col.type = ValueType::kInt;
        } else if (EqualsIgnoreCase(type_name, "REAL") ||
                   EqualsIgnoreCase(type_name, "DOUBLE") ||
                   EqualsIgnoreCase(type_name, "FLOAT")) {
          col.type = ValueType::kReal;
        } else if (EqualsIgnoreCase(type_name, "TEXT") ||
                   EqualsIgnoreCase(type_name, "VARCHAR") ||
                   EqualsIgnoreCase(type_name, "STRING")) {
          col.type = ValueType::kText;
          // Tolerate VARCHAR(n).
          if (IsSymbol("(")) {
            Advance();
            if (Peek().kind == TokKind::kInt) Advance();
            HEDC_RETURN_IF_ERROR(ExpectSymbol(")"));
          }
        } else if (EqualsIgnoreCase(type_name, "BOOL") ||
                   EqualsIgnoreCase(type_name, "BOOLEAN")) {
          col.type = ValueType::kBool;
        } else if (EqualsIgnoreCase(type_name, "BLOB")) {
          col.type = ValueType::kBlob;
        } else {
          return Status::InvalidArgument("unknown column type: " + type_name);
        }
        while (true) {
          if (IsKeyword("PRIMARY")) {
            Advance();
            HEDC_RETURN_IF_ERROR(Expect("KEY"));
            col.primary_key = true;
          } else if (IsKeyword("NOT")) {
            Advance();
            HEDC_RETURN_IF_ERROR(Expect("NULL"));
            col.not_null = true;
          } else {
            break;
          }
        }
        cols.push_back(std::move(col));
        if (IsSymbol(")")) break;
        HEDC_RETURN_IF_ERROR(ExpectSymbol(","));
      }
      Advance();  // ')'
      out->schema = Schema(std::move(cols));
      return Status::Ok();
    }
    if (IsKeyword("INDEX")) {
      Advance();
      stmt->kind = Statement::Kind::kCreateIndex;
      CreateIndexStmt* out = &stmt->create_index;
      HEDC_ASSIGN_OR_RETURN(out->index_name, ExpectIdent());
      HEDC_RETURN_IF_ERROR(Expect("ON"));
      HEDC_ASSIGN_OR_RETURN(out->table, ExpectIdent());
      HEDC_RETURN_IF_ERROR(ExpectSymbol("("));
      HEDC_ASSIGN_OR_RETURN(out->column, ExpectIdent());
      HEDC_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (IsKeyword("USING")) {
        Advance();
        HEDC_ASSIGN_OR_RETURN(std::string kind, ExpectIdent());
        if (EqualsIgnoreCase(kind, "HASH")) {
          out->hash = true;
        } else if (!EqualsIgnoreCase(kind, "BTREE")) {
          return Status::InvalidArgument("unknown index kind: " + kind);
        }
      }
      return Status::Ok();
    }
    return Status::InvalidArgument("expected TABLE or INDEX after CREATE");
  }

  Status ParseDrop(DropTableStmt* out) {
    HEDC_RETURN_IF_ERROR(Expect("DROP"));
    HEDC_RETURN_IF_ERROR(Expect("TABLE"));
    if (IsKeyword("IF")) {
      Advance();
      HEDC_RETURN_IF_ERROR(Expect("EXISTS"));
      out->if_exists = true;
    }
    HEDC_ASSIGN_OR_RETURN(out->table, ExpectIdent());
    return Status::Ok();
  }

  // Expression grammar: or_expr := and_expr (OR and_expr)*
  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (IsKeyword("OR")) {
      Advance();
      HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseNot());
    while (IsKeyword("AND")) {
      Advance();
      HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseNot());
      lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (IsKeyword("NOT")) {
      Advance();
      HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseNot());
      return Expr::Unary(UnOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());
    // IS [NOT] NULL
    if (IsKeyword("IS")) {
      Advance();
      bool negated = false;
      if (IsKeyword("NOT")) {
        Advance();
        negated = true;
      }
      HEDC_RETURN_IF_ERROR(Expect("NULL"));
      return Expr::Unary(negated ? UnOp::kIsNotNull : UnOp::kIsNull,
                         std::move(lhs));
    }
    // [NOT] BETWEEN a AND b / [NOT] LIKE / [NOT] IN (...)
    bool negated = false;
    if (IsKeyword("NOT") &&
        (IsKeyword("BETWEEN", 1) || IsKeyword("LIKE", 1) ||
         IsKeyword("IN", 1))) {
      Advance();
      negated = true;
    }
    if (IsKeyword("BETWEEN")) {
      Advance();
      HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lo, ParseAdditive());
      HEDC_RETURN_IF_ERROR(Expect("AND"));
      HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> hi, ParseAdditive());
      auto ge = Expr::Binary(BinOp::kGe, lhs->Clone(), std::move(lo));
      auto le = Expr::Binary(BinOp::kLe, std::move(lhs), std::move(hi));
      auto both = Expr::Binary(BinOp::kAnd, std::move(ge), std::move(le));
      if (negated) return Expr::Unary(UnOp::kNot, std::move(both));
      return both;
    }
    if (IsKeyword("LIKE")) {
      Advance();
      HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
      auto like = Expr::Binary(BinOp::kLike, std::move(lhs), std::move(rhs));
      if (negated) return Expr::Unary(UnOp::kNot, std::move(like));
      return like;
    }
    if (IsKeyword("IN")) {
      Advance();
      HEDC_RETURN_IF_ERROR(ExpectSymbol("("));
      auto in = std::make_unique<Expr>();
      in->kind = Expr::Kind::kInList;
      in->left = std::move(lhs);
      while (true) {
        HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> item, ParseAdditive());
        in->list.push_back(std::move(item));
        if (IsSymbol(")")) break;
        HEDC_RETURN_IF_ERROR(ExpectSymbol(","));
      }
      Advance();  // ')'
      if (negated) {
        return Expr::Unary(UnOp::kNot, std::move(in));
      }
      return std::unique_ptr<Expr>(std::move(in));
    }
    static const struct {
      const char* sym;
      BinOp op;
    } kOps[] = {
        {"=", BinOp::kEq}, {"<>", BinOp::kNe}, {"<=", BinOp::kLe},
        {">=", BinOp::kGe}, {"<", BinOp::kLt}, {">", BinOp::kGt},
    };
    for (const auto& candidate : kOps) {
      if (IsSymbol(candidate.sym)) {
        Advance();
        HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
        return Expr::Binary(candidate.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMultiplicative());
    while (IsSymbol("+") || IsSymbol("-")) {
      BinOp op = IsSymbol("+") ? BinOp::kAdd : BinOp::kSub;
      Advance();
      HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParsePrimary());
    while (IsSymbol("*") || IsSymbol("/")) {
      BinOp op = IsSymbol("*") ? BinOp::kMul : BinOp::kDiv;
      Advance();
      HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePrimary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kInt: {
        auto e = Expr::Literal(Value::Int(t.int_val));
        Advance();
        return e;
      }
      case TokKind::kReal: {
        auto e = Expr::Literal(Value::Real(t.real_val));
        Advance();
        return e;
      }
      case TokKind::kString: {
        auto e = Expr::Literal(Value::Text(t.text));
        Advance();
        return e;
      }
      case TokKind::kParam: {
        auto e = Expr::Param(num_params_++);
        Advance();
        return e;
      }
      case TokKind::kIdent: {
        if (EqualsIgnoreCase(t.text, "NULL")) {
          Advance();
          return Expr::Literal(Value::Null());
        }
        if (EqualsIgnoreCase(t.text, "TRUE")) {
          Advance();
          return Expr::Literal(Value::Bool(true));
        }
        if (EqualsIgnoreCase(t.text, "FALSE")) {
          Advance();
          return Expr::Literal(Value::Bool(false));
        }
        std::string name = t.text;
        Advance();
        if (IsSymbol(".")) {
          Advance();
          HEDC_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          name += "." + col;
        }
        return Expr::Column(std::move(name));
      }
      case TokKind::kSymbol:
        if (t.text == "(") {
          Advance();
          HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
          HEDC_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        if (t.text == "-") {
          Advance();
          HEDC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParsePrimary());
          return Expr::Unary(UnOp::kNeg, std::move(operand));
        }
        break;
      default:
        break;
    }
    return Status::InvalidArgument("unexpected token in expression: '" +
                                   t.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int num_params_ = 0;
  Statement* stmt_ = nullptr;
};

}  // namespace

Result<std::unique_ptr<Statement>> ParseSql(std::string_view sql) {
  std::vector<Token> tokens;
  Lexer lexer(sql);
  HEDC_RETURN_IF_ERROR(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace hedc::db
