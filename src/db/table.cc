#include "db/table.h"

#include <algorithm>

#include "core/strings.h"

namespace hedc::db {

Table::Table(std::string name, Schema schema, int64_t rows_per_morsel)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      rows_per_morsel_(std::clamp<int64_t>(rows_per_morsel, 16, 1 << 20)) {}

Table::Morsel* Table::GetOrCreateMorsel(int64_t row_id) {
  int64_t key = row_id / rows_per_morsel_;
  auto it = morsels_.find(key);
  if (it == morsels_.end()) {
    it = morsels_
             .emplace(key, std::make_unique<Morsel>(key * rows_per_morsel_,
                                                    rows_per_morsel_,
                                                    schema_.num_columns()))
             .first;
  }
  return it->second.get();
}

Row* Table::Slot(int64_t row_id) {
  if (row_id < 0) return nullptr;
  auto it = morsels_.find(row_id / rows_per_morsel_);
  if (it == morsels_.end()) return nullptr;
  size_t idx = static_cast<size_t>(row_id - it->second->first_row_id);
  return it->second->occupied[idx] ? &it->second->slots[idx] : nullptr;
}

const Row* Table::Slot(int64_t row_id) const {
  if (row_id < 0) return nullptr;
  auto it = morsels_.find(row_id / rows_per_morsel_);
  if (it == morsels_.end()) return nullptr;
  size_t idx = static_cast<size_t>(row_id - it->second->first_row_id);
  return it->second->occupied[idx] ? &it->second->slots[idx] : nullptr;
}

void Table::WidenZones(Morsel* m, const Row& row) {
  for (size_t c = 0; c < row.size() && c < m->zone_ok.size(); ++c) {
    if (!m->zone_ok[c]) continue;
    const Value& v = row[c];
    if (v.is_null()) continue;
    if (v.type() == ValueType::kBlob) {
      // Blobs are never compared by predicates; keep the zone disabled
      // rather than pretend they order meaningfully.
      m->zone_ok[c] = 0;
      continue;
    }
    if (m->zmin[c].is_null() || v.Compare(m->zmin[c]) < 0) m->zmin[c] = v;
    if (m->zmax[c].is_null() || v.Compare(m->zmax[c]) > 0) m->zmax[c] = v;
  }
}

void Table::Place(int64_t row_id, Row row) {
  Morsel* m = GetOrCreateMorsel(row_id);
  size_t idx = static_cast<size_t>(row_id - m->first_row_id);
  WidenZones(m, row);
  m->slots[idx] = std::move(row);
  m->occupied[idx] = 1;
  ++m->live;
}

Result<int64_t> Table::Insert(Row row) {
  schema_.CoerceRow(&row);
  HEDC_RETURN_IF_ERROR(schema_.ValidateRow(row));
  HEDC_RETURN_IF_ERROR(CheckPrimaryKey(row, /*ignore_row_id=*/-1));
  int64_t row_id = next_row_id_++;
  IndexInsert(row_id, row);
  Place(row_id, std::move(row));
  ++live_rows_;
  return row_id;
}

Status Table::InsertWithId(int64_t row_id, Row row) {
  if (row_id <= 0) {
    return Status::InvalidArgument(
        StrFormat("row id %lld out of range", (long long)row_id));
  }
  schema_.CoerceRow(&row);
  HEDC_RETURN_IF_ERROR(schema_.ValidateRow(row));
  if (Slot(row_id) != nullptr) {
    return Status::AlreadyExists(
        StrFormat("row %lld already present", (long long)row_id));
  }
  IndexInsert(row_id, row);
  Place(row_id, std::move(row));
  ++live_rows_;
  next_row_id_ = std::max(next_row_id_, row_id + 1);
  return Status::Ok();
}

Status Table::Update(int64_t row_id, Row row, Row* old_row) {
  Row* slot = Slot(row_id);
  if (slot == nullptr) {
    return Status::NotFound(
        StrFormat("row %lld in table %s", (long long)row_id, name_.c_str()));
  }
  schema_.CoerceRow(&row);
  HEDC_RETURN_IF_ERROR(schema_.ValidateRow(row));
  HEDC_RETURN_IF_ERROR(CheckPrimaryKey(row, row_id));
  IndexErase(row_id, *slot);
  if (old_row != nullptr) *old_row = std::move(*slot);
  WidenZones(GetOrCreateMorsel(row_id), row);
  *slot = std::move(row);
  IndexInsert(row_id, *slot);
  return Status::Ok();
}

Status Table::Delete(int64_t row_id, Row* old_row) {
  auto it = row_id < 0 ? morsels_.end()
                       : morsels_.find(row_id / rows_per_morsel_);
  if (it == morsels_.end()) {
    return Status::NotFound(
        StrFormat("row %lld in table %s", (long long)row_id, name_.c_str()));
  }
  Morsel* m = it->second.get();
  size_t idx = static_cast<size_t>(row_id - m->first_row_id);
  if (!m->occupied[idx]) {
    return Status::NotFound(
        StrFormat("row %lld in table %s", (long long)row_id, name_.c_str()));
  }
  IndexErase(row_id, m->slots[idx]);
  if (old_row != nullptr) *old_row = std::move(m->slots[idx]);
  m->slots[idx] = Row{};
  m->occupied[idx] = 0;
  --m->live;
  --live_rows_;
  if (m->live == 0) morsels_.erase(it);
  return Status::Ok();
}

Result<Row> Table::Get(int64_t row_id) const {
  const Row* row = Slot(row_id);
  if (row == nullptr) {
    return Status::NotFound(
        StrFormat("row %lld in table %s", (long long)row_id, name_.c_str()));
  }
  return *row;
}

const Row* Table::Find(int64_t row_id) const { return Slot(row_id); }

bool Table::Exists(int64_t row_id) const { return Slot(row_id) != nullptr; }

void Table::Scan(
    const std::function<bool(int64_t, const Row&)>& visit) const {
  for (const auto& [key, m] : morsels_) {
    for (size_t i = 0; i < m->slots.size(); ++i) {
      if (!m->occupied[i]) continue;
      if (!visit(m->first_row_id + static_cast<int64_t>(i), m->slots[i])) {
        return;
      }
    }
  }
}

void Table::ListMorsels(std::vector<const Morsel*>* out) const {
  out->reserve(out->size() + morsels_.size());
  for (const auto& [key, m] : morsels_) out->push_back(m.get());
}

bool Table::ScanChunk(ScanCursor* cursor, DataChunk* chunk,
                      const Morsel** morsel) const {
  auto it = morsels_.lower_bound(cursor->next_key);
  if (it == morsels_.end()) return false;
  cursor->next_key = it->first + 1;
  FillChunk(*it->second, chunk);
  if (morsel != nullptr) *morsel = it->second.get();
  return true;
}

void Table::FillChunk(const Morsel& m, DataChunk* chunk) const {
  chunk->Reset(schema_.num_columns());
  for (size_t i = 0; i < m.slots.size(); ++i) {
    if (!m.occupied[i]) continue;
    chunk->Append(m.first_row_id + static_cast<int64_t>(i), &m.slots[i]);
  }
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::string& column_name, IndexKind kind) {
  for (const IndexDef& def : index_defs_) {
    if (EqualsIgnoreCase(def.name, index_name)) {
      return Status::AlreadyExists("index " + index_name);
    }
  }
  auto col = schema_.ColumnIndex(column_name);
  if (!col.has_value()) {
    return Status::NotFound("column " + column_name + " in " + name_);
  }
  IndexDef def{index_name, *col, kind};
  index_defs_.push_back(def);
  if (kind == IndexKind::kBTree) {
    btrees_.push_back(std::make_unique<BTreeIndex>());
    hashes_.push_back(nullptr);
  } else {
    btrees_.push_back(nullptr);
    hashes_.push_back(std::make_unique<HashIndex>());
  }
  // Backfill from existing rows.
  size_t slot = index_defs_.size() - 1;
  Scan([&](int64_t row_id, const Row& row) {
    const Value& key = row[def.column];
    if (btrees_[slot] != nullptr) {
      btrees_[slot]->Insert(key, row_id);
    } else {
      hashes_[slot]->Insert(key, row_id);
    }
    return true;
  });
  return Status::Ok();
}

const IndexDef* Table::FindIndex(size_t column, bool need_range) const {
  const IndexDef* hash_match = nullptr;
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (index_defs_[i].column != column) continue;
    if (index_defs_[i].kind == IndexKind::kBTree) return &index_defs_[i];
    hash_match = &index_defs_[i];
  }
  return need_range ? nullptr : hash_match;
}

const BTreeIndex* Table::btree(const std::string& index_name) const {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (EqualsIgnoreCase(index_defs_[i].name, index_name)) {
      return btrees_[i].get();
    }
  }
  return nullptr;
}

const HashIndex* Table::hash(const std::string& index_name) const {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (EqualsIgnoreCase(index_defs_[i].name, index_name)) {
      return hashes_[i].get();
    }
  }
  return nullptr;
}

BTreeIndex* Table::mutable_btree(const std::string& index_name) {
  return const_cast<BTreeIndex*>(
      static_cast<const Table*>(this)->btree(index_name));
}

HashIndex* Table::mutable_hash(const std::string& index_name) {
  return const_cast<HashIndex*>(
      static_cast<const Table*>(this)->hash(index_name));
}

void Table::IndexLookup(const IndexDef& def, const Value& key,
                        std::vector<int64_t>* out) const {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (&index_defs_[i] != &def) continue;
    if (btrees_[i] != nullptr) {
      btrees_[i]->Lookup(key, out);
    } else {
      hashes_[i]->Lookup(key, out);
    }
    return;
  }
}

void Table::IndexRange(const IndexDef& def, const std::optional<Value>& lo,
                       bool lo_inclusive, const std::optional<Value>& hi,
                       bool hi_inclusive, std::vector<int64_t>* out) const {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (&index_defs_[i] != &def) continue;
    if (btrees_[i] != nullptr) {
      btrees_[i]->Scan(lo, lo_inclusive, hi, hi_inclusive,
                       [out](const Value&, int64_t row_id) {
                         out->push_back(row_id);
                         return true;
                       });
    }
    return;
  }
}

void Table::IndexInsert(int64_t row_id, const Row& row) {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    const Value& key = row[index_defs_[i].column];
    if (btrees_[i] != nullptr) {
      btrees_[i]->Insert(key, row_id);
    } else {
      hashes_[i]->Insert(key, row_id);
    }
  }
}

void Table::IndexErase(int64_t row_id, const Row& row) {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    const Value& key = row[index_defs_[i].column];
    if (btrees_[i] != nullptr) {
      btrees_[i]->Erase(key, row_id);
    } else {
      hashes_[i]->Erase(key, row_id);
    }
  }
}

Status Table::CheckPrimaryKey(const Row& row, int64_t ignore_row_id) {
  auto pk = schema_.PrimaryKeyIndex();
  if (!pk.has_value()) return Status::Ok();
  const Value& key = row[*pk];
  // Use an index on the pk column when available, else scan.
  const IndexDef* def = FindIndex(*pk, /*need_range=*/false);
  if (def != nullptr) {
    std::vector<int64_t> ids;
    IndexLookup(*def, key, &ids);
    for (int64_t id : ids) {
      if (id != ignore_row_id) {
        return Status::AlreadyExists(
            StrFormat("duplicate primary key %s in table %s",
                      key.AsText().c_str(), name_.c_str()));
      }
    }
    return Status::Ok();
  }
  Status dup = Status::Ok();
  Scan([&](int64_t row_id, const Row& existing) {
    if (row_id != ignore_row_id && existing[*pk] == key) {
      dup = Status::AlreadyExists(
          StrFormat("duplicate primary key %s in table %s",
                    key.AsText().c_str(), name_.c_str()));
      return false;
    }
    return true;
  });
  return dup;
}

}  // namespace hedc::db
