#include "db/table.h"

#include <algorithm>

#include "core/strings.h"

namespace hedc::db {

Result<int64_t> Table::Insert(Row row) {
  schema_.CoerceRow(&row);
  HEDC_RETURN_IF_ERROR(schema_.ValidateRow(row));
  HEDC_RETURN_IF_ERROR(CheckPrimaryKey(row, /*ignore_row_id=*/-1));
  int64_t row_id = next_row_id_++;
  IndexInsert(row_id, row);
  rows_.emplace(row_id, std::move(row));
  ++live_rows_;
  return row_id;
}

Status Table::InsertWithId(int64_t row_id, Row row) {
  schema_.CoerceRow(&row);
  HEDC_RETURN_IF_ERROR(schema_.ValidateRow(row));
  if (rows_.count(row_id) > 0) {
    return Status::AlreadyExists(
        StrFormat("row %lld already present", (long long)row_id));
  }
  IndexInsert(row_id, row);
  rows_.emplace(row_id, std::move(row));
  ++live_rows_;
  next_row_id_ = std::max(next_row_id_, row_id + 1);
  return Status::Ok();
}

Status Table::Update(int64_t row_id, Row row, Row* old_row) {
  auto it = rows_.find(row_id);
  if (it == rows_.end()) {
    return Status::NotFound(
        StrFormat("row %lld in table %s", (long long)row_id, name_.c_str()));
  }
  schema_.CoerceRow(&row);
  HEDC_RETURN_IF_ERROR(schema_.ValidateRow(row));
  HEDC_RETURN_IF_ERROR(CheckPrimaryKey(row, row_id));
  IndexErase(row_id, it->second);
  if (old_row != nullptr) *old_row = std::move(it->second);
  it->second = std::move(row);
  IndexInsert(row_id, it->second);
  return Status::Ok();
}

Status Table::Delete(int64_t row_id, Row* old_row) {
  auto it = rows_.find(row_id);
  if (it == rows_.end()) {
    return Status::NotFound(
        StrFormat("row %lld in table %s", (long long)row_id, name_.c_str()));
  }
  IndexErase(row_id, it->second);
  if (old_row != nullptr) *old_row = std::move(it->second);
  rows_.erase(it);
  --live_rows_;
  return Status::Ok();
}

Result<Row> Table::Get(int64_t row_id) const {
  auto it = rows_.find(row_id);
  if (it == rows_.end()) {
    return Status::NotFound(
        StrFormat("row %lld in table %s", (long long)row_id, name_.c_str()));
  }
  return it->second;
}

bool Table::Exists(int64_t row_id) const { return rows_.count(row_id) > 0; }

void Table::Scan(
    const std::function<bool(int64_t, const Row&)>& visit) const {
  for (const auto& [row_id, row] : rows_) {
    if (!visit(row_id, row)) return;
  }
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::string& column_name, IndexKind kind) {
  for (const IndexDef& def : index_defs_) {
    if (EqualsIgnoreCase(def.name, index_name)) {
      return Status::AlreadyExists("index " + index_name);
    }
  }
  auto col = schema_.ColumnIndex(column_name);
  if (!col.has_value()) {
    return Status::NotFound("column " + column_name + " in " + name_);
  }
  IndexDef def{index_name, *col, kind};
  index_defs_.push_back(def);
  if (kind == IndexKind::kBTree) {
    btrees_.push_back(std::make_unique<BTreeIndex>());
    hashes_.push_back(nullptr);
  } else {
    btrees_.push_back(nullptr);
    hashes_.push_back(std::make_unique<HashIndex>());
  }
  // Backfill from existing rows.
  size_t slot = index_defs_.size() - 1;
  for (const auto& [row_id, row] : rows_) {
    const Value& key = row[def.column];
    if (btrees_[slot] != nullptr) {
      btrees_[slot]->Insert(key, row_id);
    } else {
      hashes_[slot]->Insert(key, row_id);
    }
  }
  return Status::Ok();
}

const IndexDef* Table::FindIndex(size_t column, bool need_range) const {
  const IndexDef* hash_match = nullptr;
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (index_defs_[i].column != column) continue;
    if (index_defs_[i].kind == IndexKind::kBTree) return &index_defs_[i];
    hash_match = &index_defs_[i];
  }
  return need_range ? nullptr : hash_match;
}

const BTreeIndex* Table::btree(const std::string& index_name) const {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (EqualsIgnoreCase(index_defs_[i].name, index_name)) {
      return btrees_[i].get();
    }
  }
  return nullptr;
}

const HashIndex* Table::hash(const std::string& index_name) const {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (EqualsIgnoreCase(index_defs_[i].name, index_name)) {
      return hashes_[i].get();
    }
  }
  return nullptr;
}

void Table::IndexLookup(const IndexDef& def, const Value& key,
                        std::vector<int64_t>* out) const {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (&index_defs_[i] != &def) continue;
    if (btrees_[i] != nullptr) {
      btrees_[i]->Lookup(key, out);
    } else {
      hashes_[i]->Lookup(key, out);
    }
    return;
  }
}

void Table::IndexRange(const IndexDef& def, const std::optional<Value>& lo,
                       bool lo_inclusive, const std::optional<Value>& hi,
                       bool hi_inclusive, std::vector<int64_t>* out) const {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    if (&index_defs_[i] != &def) continue;
    if (btrees_[i] != nullptr) {
      btrees_[i]->Scan(lo, lo_inclusive, hi, hi_inclusive,
                       [out](const Value&, int64_t row_id) {
                         out->push_back(row_id);
                         return true;
                       });
    }
    return;
  }
}

void Table::IndexInsert(int64_t row_id, const Row& row) {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    const Value& key = row[index_defs_[i].column];
    if (btrees_[i] != nullptr) {
      btrees_[i]->Insert(key, row_id);
    } else {
      hashes_[i]->Insert(key, row_id);
    }
  }
}

void Table::IndexErase(int64_t row_id, const Row& row) {
  for (size_t i = 0; i < index_defs_.size(); ++i) {
    const Value& key = row[index_defs_[i].column];
    if (btrees_[i] != nullptr) {
      btrees_[i]->Erase(key, row_id);
    } else {
      hashes_[i]->Erase(key, row_id);
    }
  }
}

Status Table::CheckPrimaryKey(const Row& row, int64_t ignore_row_id) {
  auto pk = schema_.PrimaryKeyIndex();
  if (!pk.has_value()) return Status::Ok();
  const Value& key = row[*pk];
  // Use an index on the pk column when available, else scan.
  const IndexDef* def = FindIndex(*pk, /*need_range=*/false);
  if (def != nullptr) {
    std::vector<int64_t> ids;
    IndexLookup(*def, key, &ids);
    for (int64_t id : ids) {
      if (id != ignore_row_id) {
        return Status::AlreadyExists(
            StrFormat("duplicate primary key %s in table %s",
                      key.AsText().c_str(), name_.c_str()));
      }
    }
    return Status::Ok();
  }
  for (const auto& [row_id, existing] : rows_) {
    if (row_id != ignore_row_id && existing[*pk] == key) {
      return Status::AlreadyExists(
          StrFormat("duplicate primary key %s in table %s",
                    key.AsText().c_str(), name_.c_str()));
    }
  }
  return Status::Ok();
}

}  // namespace hedc::db
