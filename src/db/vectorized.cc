#include "db/vectorized.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>

namespace hedc::db {

namespace {

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

// Mirror the comparison when the literal is on the left (5 > col
// becomes col < 5).
BinOp FlipOp(BinOp op) {
  switch (op) {
    case BinOp::kLt:
      return BinOp::kGt;
    case BinOp::kLe:
      return BinOp::kGe;
    case BinOp::kGt:
      return BinOp::kLt;
    case BinOp::kGe:
      return BinOp::kLe;
    default:
      return op;  // =, != are symmetric
  }
}

bool OpHolds(BinOp op, int cmp) {
  switch (op) {
    case BinOp::kEq:
      return cmp == 0;
    case BinOp::kNe:
      return cmp != 0;
    case BinOp::kLt:
      return cmp < 0;
    case BinOp::kLe:
      return cmp <= 0;
    case BinOp::kGt:
      return cmp > 0;
    case BinOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

// Compiles one AND-conjunct; appends to plan.kernels unless the
// conjunct is a vacuous TRUE literal.
void CompileConjunct(const Expr* e, FilterPlan* plan) {
  FilterKernel k;
  // Constant conjunct: WHERE TRUE disappears, WHERE FALSE (and the
  // bound-parameter equivalents) kills the scan without touching rows.
  if (e->kind == Expr::Kind::kLiteral) {
    if (e->literal.AsBool()) return;
    k.kind = FilterKernel::Kind::kConstFalse;
    plan->kernels.push_back(std::move(k));
    ++plan->typed;
    return;
  }
  if (e->kind == Expr::Kind::kUnary && e->left &&
      e->left->kind == Expr::Kind::kColumn &&
      (e->un_op == UnOp::kIsNull || e->un_op == UnOp::kIsNotNull)) {
    k.kind = e->un_op == UnOp::kIsNull ? FilterKernel::Kind::kIsNull
                                       : FilterKernel::Kind::kIsNotNull;
    k.col = e->left->column_index;
    plan->kernels.push_back(std::move(k));
    ++plan->typed;
    return;
  }
  if (e->kind == Expr::Kind::kBinary && e->left && e->right) {
    const Expr* l = e->left.get();
    const Expr* r = e->right.get();
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    BinOp op = e->bin_op;
    if (l->kind == Expr::Kind::kColumn && r->kind == Expr::Kind::kLiteral) {
      col = l;
      lit = r;
    } else if (l->kind == Expr::Kind::kLiteral &&
               r->kind == Expr::Kind::kColumn &&
               e->bin_op != BinOp::kLike) {  // LIKE is not symmetric
      col = r;
      lit = l;
      op = FlipOp(e->bin_op);
    }
    if (col != nullptr && (IsComparison(op) || op == BinOp::kLike)) {
      if (lit->literal.is_null()) {
        // <anything> <cmp> NULL and <anything> LIKE NULL are false for
        // every row under the interpreter's NULL rules.
        k.kind = FilterKernel::Kind::kConstFalse;
      } else {
        k.kind = op == BinOp::kLike ? FilterKernel::Kind::kLike
                                    : FilterKernel::Kind::kCompare;
        k.col = col->column_index;
        k.op = op;
        k.literal = &lit->literal;
      }
      plan->kernels.push_back(std::move(k));
      ++plan->typed;
      return;
    }
  }
  if (e->kind == Expr::Kind::kInList && e->left &&
      e->left->kind == Expr::Kind::kColumn) {
    bool all_literal = true;
    for (const auto& item : e->list) {
      if (item->kind != Expr::Kind::kLiteral) {
        all_literal = false;
        break;
      }
    }
    if (all_literal) {
      k.col = e->left->column_index;
      for (const auto& item : e->list) {
        // NULL items never match anything; drop them at compile time
        // (the interpreter skips them per row).
        if (!item->literal.is_null()) k.in_values.push_back(&item->literal);
      }
      k.kind = k.in_values.empty() ? FilterKernel::Kind::kConstFalse
                                   : FilterKernel::Kind::kInList;
      plan->kernels.push_back(std::move(k));
      ++plan->typed;
      return;
    }
  }
  k.kind = FilterKernel::Kind::kInterpret;
  k.expr = e;
  plan->kernels.push_back(std::move(k));
  ++plan->interpreted;
}

// Drops unselected entries in place: keep[j] corresponds to (*sel)[j].
void CompactSel(std::vector<uint32_t>* sel, const std::vector<uint8_t>& keep) {
  size_t w = 0;
  for (size_t j = 0; j < sel->size(); ++j) {
    if (keep[j]) (*sel)[w++] = (*sel)[j];
  }
  sel->resize(w);
}

// Per-kernel keep bitmap, reused across morsels (a fresh vector per
// morsel shows up in scan profiles).
std::vector<uint8_t>* KeepScratch(size_t n) {
  static thread_local std::vector<uint8_t> keep;
  keep.assign(n, 0);
  return &keep;
}

// Runs `cmp(value)` over the selected non-null slots of a typed vector,
// with the comparison operator resolved once outside the loop.
template <typename T, typename Cmp>
void CompareLoop(const std::vector<uint32_t>& sel,
                 const std::vector<uint8_t>& nulls, const T* values,
                 Cmp cmp, std::vector<uint8_t>* keep) {
  for (size_t j = 0; j < sel.size(); ++j) {
    const uint32_t i = sel[j];
    if (nulls[i]) continue;
    (*keep)[j] = cmp(values[i]);
  }
}

template <typename T>
void DispatchCompare(BinOp op, const std::vector<uint32_t>& sel,
                     const std::vector<uint8_t>& nulls, const T* values,
                     T rhs, std::vector<uint8_t>* keep) {
  switch (op) {
    case BinOp::kEq:
      CompareLoop(sel, nulls, values, [rhs](T v) { return v == rhs; }, keep);
      break;
    case BinOp::kNe:
      CompareLoop(sel, nulls, values, [rhs](T v) { return v != rhs; }, keep);
      break;
    case BinOp::kLt:
      CompareLoop(sel, nulls, values, [rhs](T v) { return v < rhs; }, keep);
      break;
    case BinOp::kLe:
      CompareLoop(sel, nulls, values, [rhs](T v) { return v <= rhs; }, keep);
      break;
    case BinOp::kGt:
      CompareLoop(sel, nulls, values, [rhs](T v) { return v > rhs; }, keep);
      break;
    case BinOp::kGe:
      CompareLoop(sel, nulls, values, [rhs](T v) { return v >= rhs; }, keep);
      break;
    default:
      break;
  }
}

void ApplyCompare(const FilterKernel& k, DataChunk* chunk,
                  std::vector<uint32_t>* sel) {
  const FlatColumn& fc = chunk->Flatten(static_cast<size_t>(k.col));
  const Value& lit = *k.literal;
  const ValueType lt = lit.type();
  std::vector<uint8_t>* keep = KeepScratch(sel->size());

  // Typed fast paths replicate Value::Compare's coercion exactly:
  // int/int compares exactly; any other numeric pairing on the double
  // axis; text/text lexicographically. Everything else (text column vs
  // numeric literal, blobs, mixed columns) goes through Compare itself.
  if (fc.uniform && fc.tag == ValueType::kInt && lt == ValueType::kInt) {
    DispatchCompare<int64_t>(k.op, *sel, fc.nulls, fc.ints.data(),
                             lit.int_value(), keep);
  } else if (fc.uniform && fc.tag == ValueType::kReal &&
             (lt == ValueType::kInt || lt == ValueType::kBool ||
              lt == ValueType::kReal)) {
    DispatchCompare<double>(k.op, *sel, fc.nulls, fc.reals.data(),
                            lit.AsReal(), keep);
  } else if (fc.uniform &&
             (fc.tag == ValueType::kInt || fc.tag == ValueType::kBool) &&
             (lt == ValueType::kBool || lt == ValueType::kReal)) {
    const double rhs = lit.AsReal();
    for (size_t j = 0; j < sel->size(); ++j) {
      const uint32_t i = (*sel)[j];
      if (fc.nulls[i]) continue;
      (*keep)[j] =
          OpHolds(k.op, [&] {
            const double v = static_cast<double>(fc.ints[i]);
            return v < rhs ? -1 : (v > rhs ? 1 : 0);
          }());
    }
  } else if (fc.uniform && fc.tag == ValueType::kText &&
             lt == ValueType::kText) {
    const std::string& rhs = lit.text();
    for (size_t j = 0; j < sel->size(); ++j) {
      const uint32_t i = (*sel)[j];
      if (fc.nulls[i]) continue;
      (*keep)[j] = OpHolds(k.op, fc.texts[i]->compare(rhs));
    }
  } else {
    for (size_t j = 0; j < sel->size(); ++j) {
      const uint32_t i = (*sel)[j];
      const Value& v = chunk->row(i)[static_cast<size_t>(k.col)];
      if (v.is_null()) continue;
      (*keep)[j] = OpHolds(k.op, v.Compare(lit));
    }
  }
  CompactSel(sel, *keep);
}

void ApplyLike(const FilterKernel& k, DataChunk* chunk,
               std::vector<uint32_t>* sel) {
  const FlatColumn& fc = chunk->Flatten(static_cast<size_t>(k.col));
  const std::string pattern = k.literal->AsText();
  std::vector<uint8_t>* keep = KeepScratch(sel->size());
  if (fc.uniform && fc.tag == ValueType::kText) {
    for (size_t j = 0; j < sel->size(); ++j) {
      const uint32_t i = (*sel)[j];
      if (fc.nulls[i]) continue;
      (*keep)[j] = LikeMatch(*fc.texts[i], pattern);
    }
  } else {
    // The interpreter LIKEs the printable rendering of non-text values.
    for (size_t j = 0; j < sel->size(); ++j) {
      const uint32_t i = (*sel)[j];
      const Value& v = chunk->row(i)[static_cast<size_t>(k.col)];
      if (v.is_null()) continue;
      (*keep)[j] = LikeMatch(v.AsText(), pattern);
    }
  }
  CompactSel(sel, *keep);
}

void ApplyInList(const FilterKernel& k, DataChunk* chunk,
                 std::vector<uint32_t>* sel) {
  const FlatColumn& fc = chunk->Flatten(static_cast<size_t>(k.col));
  std::vector<uint8_t>* keep = KeepScratch(sel->size());

  bool all_int = fc.uniform && fc.tag == ValueType::kInt;
  if (all_int) {
    for (const Value* v : k.in_values) {
      if (v->type() != ValueType::kInt) {
        all_int = false;
        break;
      }
    }
  }
  if (all_int) {
    std::vector<int64_t> items;
    items.reserve(k.in_values.size());
    for (const Value* v : k.in_values) items.push_back(v->AsInt());
    for (size_t j = 0; j < sel->size(); ++j) {
      const uint32_t i = (*sel)[j];
      if (fc.nulls[i]) continue;
      const int64_t v = fc.ints[i];
      for (int64_t item : items) {
        if (v == item) {
          (*keep)[j] = 1;
          break;
        }
      }
    }
  } else {
    for (size_t j = 0; j < sel->size(); ++j) {
      const uint32_t i = (*sel)[j];
      const Value& v = chunk->row(i)[static_cast<size_t>(k.col)];
      if (v.is_null()) continue;
      for (const Value* item : k.in_values) {
        if (v.Compare(*item) == 0) {
          (*keep)[j] = 1;
          break;
        }
      }
    }
  }
  CompactSel(sel, *keep);
}

void ApplyNullTest(const FilterKernel& k, DataChunk* chunk,
                   std::vector<uint32_t>* sel) {
  const FlatColumn& fc = chunk->Flatten(static_cast<size_t>(k.col));
  const uint8_t want = k.kind == FilterKernel::Kind::kIsNull ? 1 : 0;
  std::vector<uint8_t>* keep = KeepScratch(sel->size());
  for (size_t j = 0; j < sel->size(); ++j) {
    (*keep)[j] = fc.nulls[(*sel)[j]] == want;
  }
  CompactSel(sel, *keep);
}

Status ApplyInterpret(const FilterKernel& k, DataChunk* chunk,
                      std::vector<uint32_t>* sel) {
  std::vector<uint8_t>* keep = KeepScratch(sel->size());
  for (size_t j = 0; j < sel->size(); ++j) {
    const uint32_t i = (*sel)[j];
    auto v = EvalExpr(*k.expr, chunk->row(i));
    if (!v.ok()) return v.status();
    (*keep)[j] = v.value().AsBool();
  }
  CompactSel(sel, *keep);
  return Status::Ok();
}

// True if `probe` orders consistently against a zone endpoint of
// `zone`'s type under Value::Compare. Numeric zones (int/real/bool)
// compare on the double axis against any non-blob probe — int64-to-
// double narrowing is monotone, so interval logic stays sound. Text
// zones order lexicographically, but Compare coerces text to a number
// when probed with a numeric, which does NOT respect lexicographic
// order — only text probes may prune a text zone.
bool ZoneComparable(const Value& zone, const Value& probe) {
  if (probe.is_null() || probe.type() == ValueType::kBlob) return false;
  switch (zone.type()) {
    case ValueType::kInt:
    case ValueType::kReal:
    case ValueType::kBool:
      return true;
    case ValueType::kText:
      return probe.type() == ValueType::kText;
    default:
      return false;
  }
}

}  // namespace

FilterPlan CompileFilter(const Expr* where) {
  FilterPlan plan;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(where, &conjuncts);
  plan.kernels.reserve(conjuncts.size());
  for (const Expr* e : conjuncts) CompileConjunct(e, &plan);
  return plan;
}

Status ApplyFilter(const FilterPlan& plan, DataChunk* chunk,
                   std::vector<uint32_t>* sel) {
  for (const FilterKernel& k : plan.kernels) {
    if (sel->empty()) break;
    switch (k.kind) {
      case FilterKernel::Kind::kCompare:
        ApplyCompare(k, chunk, sel);
        break;
      case FilterKernel::Kind::kLike:
        ApplyLike(k, chunk, sel);
        break;
      case FilterKernel::Kind::kInList:
        ApplyInList(k, chunk, sel);
        break;
      case FilterKernel::Kind::kIsNull:
      case FilterKernel::Kind::kIsNotNull:
        ApplyNullTest(k, chunk, sel);
        break;
      case FilterKernel::Kind::kConstFalse:
        sel->clear();
        break;
      case FilterKernel::Kind::kInterpret: {
        Status s = ApplyInterpret(k, chunk, sel);
        if (!s.ok()) return s;
        break;
      }
    }
  }
  return Status::Ok();
}

bool MorselMayMatch(const Table::Morsel& m, size_t col,
                    const ColumnBounds& b) {
  if (col >= m.zmin.size() || !m.zone_ok[col]) return true;
  if (!b.eq.has_value() && !b.has_range()) return true;
  const Value& zmin = m.zmin[col];
  const Value& zmax = m.zmax[col];
  // No non-null value was ever placed in this morsel's column: every
  // live value is NULL and no sargable bound matches NULL.
  if (zmin.is_null()) return false;

  auto excluded_below = [&](const Value& lo, bool inclusive) {
    if (!ZoneComparable(zmax, lo)) return false;
    const int c = zmax.Compare(lo);
    return c < 0 || (c == 0 && !inclusive);
  };
  auto excluded_above = [&](const Value& hi, bool inclusive) {
    if (!ZoneComparable(zmin, hi)) return false;
    const int c = zmin.Compare(hi);
    return c > 0 || (c == 0 && !inclusive);
  };

  if (b.eq.has_value() &&
      (excluded_below(*b.eq, true) || excluded_above(*b.eq, true))) {
    return false;
  }
  if (b.lo.has_value() && excluded_below(*b.lo, b.lo_inclusive)) return false;
  if (b.hi.has_value() && excluded_above(*b.hi, b.hi_inclusive)) return false;
  return true;
}

void PruneMorsels(const Table& table,
                  const std::unordered_map<int, ColumnBounds>& bounds,
                  std::vector<const Table::Morsel*>* out, int64_t* pruned) {
  std::vector<const Table::Morsel*> all;
  table.ListMorsels(&all);
  for (const Table::Morsel* m : all) {
    bool may_match = true;
    for (const auto& [col, b] : bounds) {
      if (col < 0) continue;
      if (!MorselMayMatch(*m, static_cast<size_t>(col), b)) {
        may_match = false;
        break;
      }
    }
    if (may_match) {
      out->push_back(m);
    } else if (pruned != nullptr) {
      ++(*pruned);
    }
  }
}

int PlannedScanThreads(const Table& table, const ScanOptions& opts) {
  if (opts.threads <= 1) return 1;
  if (static_cast<int64_t>(table.num_rows()) < opts.min_parallel_rows) {
    return 1;
  }
  const int64_t morsels = static_cast<int64_t>(table.num_morsels());
  const int64_t t = std::min<int64_t>(opts.threads, morsels);
  return t < 1 ? 1 : static_cast<int>(t);
}

namespace {

// Runs `plan` over one morsel; appends survivors to `out`.
Status FilterMorsel(const Table& table, const Table::Morsel& m,
                    const FilterPlan& plan, DataChunk* chunk,
                    std::vector<uint32_t>* sel, std::vector<ScanMatch>* out,
                    int64_t* scanned, int64_t* matched) {
  table.FillChunk(m, chunk);
  sel->resize(chunk->size());
  std::iota(sel->begin(), sel->end(), 0);
  HEDC_RETURN_IF_ERROR(ApplyFilter(plan, chunk, sel));
  *scanned += static_cast<int64_t>(chunk->size());
  *matched += static_cast<int64_t>(sel->size());
  // No reserve here: exact-fit reserve per morsel would defeat
  // push_back's geometric growth and turn large result sets quadratic.
  for (uint32_t i : *sel) {
    out->push_back(ScanMatch{chunk->row_id(i), chunk->row_ptr(i)});
  }
  return Status::Ok();
}

}  // namespace

Status ScanFilter(const Table& table, const Expr* where,
                  const ScanOptions& opts, std::vector<ScanMatch>* out,
                  ScanStats* stats) {
  const FilterPlan plan = CompileFilter(where);

  stats->morsels_total = static_cast<int64_t>(table.num_morsels());
  std::vector<const Table::Morsel*> morsels;
  if (opts.zone_maps && where != nullptr) {
    const auto bounds = ExtractColumnBounds(where);
    if (!bounds.empty()) {
      PruneMorsels(table, bounds, &morsels, &stats->morsels_pruned);
    } else {
      table.ListMorsels(&morsels);
    }
  } else {
    table.ListMorsels(&morsels);
  }

  const int threads =
      opts.pool != nullptr ? PlannedScanThreads(table, opts) : 1;
  if (threads <= 1 || morsels.size() <= 1) {
    stats->threads_used = 1;
    DataChunk chunk;
    std::vector<uint32_t> sel;
    for (const Table::Morsel* m : morsels) {
      HEDC_RETURN_IF_ERROR(FilterMorsel(table, *m, plan, &chunk, &sel, out,
                                        &stats->rows_scanned,
                                        &stats->rows_matched));
    }
    return Status::Ok();
  }

  // Morsel-driven dispatch: workers claim the next unprocessed morsel
  // off a shared counter, so fast workers absorb skew instead of
  // waiting on a static partition. Survivors land in per-morsel slots
  // and are merged afterwards, keeping ascending row-id output order.
  // Note: a worker may evaluate rows the serial path would never reach
  // past an interpreter error, so WHICH error surfaces (not whether)
  // can differ from the serial path.
  std::atomic<size_t> next{0};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> scanned{0}, matched{0};
  std::vector<std::vector<ScanMatch>> slots(morsels.size());
  std::mutex err_mu;
  Status first_error = Status::Ok();

  auto worker = [&] {
    DataChunk chunk;
    std::vector<uint32_t> sel;
    int64_t local_scanned = 0, local_matched = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= morsels.size()) break;
      Status s = FilterMorsel(table, *morsels[i], plan, &chunk, &sel,
                              &slots[i], &local_scanned, &local_matched);
      if (!s.ok()) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.ok()) first_error = std::move(s);
        }
        stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
    scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    matched.fetch_add(local_matched, std::memory_order_relaxed);
  };

  // Helpers are best-effort: if the pool is saturated the claim loop
  // still drains every morsel on whoever did start (at minimum the
  // caller, which always participates).
  std::mutex done_mu;
  std::condition_variable done_cv;
  int launched = 0;
  int done = 0;
  for (int t = 1; t < threads; ++t) {
    const bool ok = opts.pool->TrySubmit([&] {
      worker();
      std::lock_guard<std::mutex> lock(done_mu);
      ++done;
      done_cv.notify_all();
    });
    if (ok) ++launched;
  }
  worker();
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == launched; });
  }

  stats->threads_used = launched + 1;
  stats->rows_scanned = scanned.load();
  stats->rows_matched = matched.load();
  if (!first_error.ok()) return first_error;
  size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  out->reserve(out->size() + total);
  for (auto& slot : slots) {
    out->insert(out->end(), slot.begin(), slot.end());
  }
  return Status::Ok();
}

// ---- Grouped aggregation ----

namespace {
// Group-key column separator: unlikely in data, and single-column keys
// (the common case) carry no separator at all, matching the historical
// AsText group keys byte for byte.
constexpr char kKeySep = '\x1f';
}  // namespace

GroupedAggregator::GroupedAggregator(std::vector<int> group_cols,
                                     std::vector<AggSpec> specs)
    : group_cols_(std::move(group_cols)), specs_(std::move(specs)) {}

GroupedAggregator GroupedAggregator::Fork() const {
  return GroupedAggregator(group_cols_, specs_);
}

size_t GroupedAggregator::Intern(const std::string& key, int64_t seq,
                                 const Value* kv, size_t nkv) {
  auto [it, inserted] = index_.try_emplace(key, groups_.size());
  if (inserted) {
    Group g;
    g.key = key;
    g.key_vals.assign(kv, kv + nkv);
    g.first_seen = seq;
    g.items.resize(specs_.size());
    groups_.push_back(std::move(g));
  } else if (seq < groups_[it->second].first_seen) {
    groups_[it->second].first_seen = seq;
  }
  return it->second;
}

std::string GroupedAggregator::BuildKey(const Row& row) const {
  std::string key;
  for (size_t i = 0; i < group_cols_.size(); ++i) {
    if (i > 0) key.push_back(kKeySep);
    key += row[static_cast<size_t>(group_cols_[i])].AsText();
  }
  return key;
}

void GroupedAggregator::UpdateMinMax(ItemAgg* a, const Value& v) {
  if (!a->any) {
    a->vmin = v;
    a->vmax = v;
    return;
  }
  if (v.Compare(a->vmin) < 0) a->vmin = v;
  if (v.Compare(a->vmax) > 0) a->vmax = v;
}

void GroupedAggregator::AccumulateItems(Group* g, const Row& row) {
  ++g->rows;
  for (size_t k = 0; k < specs_.size(); ++k) {
    const AggSpec& spec = specs_[k];
    if (spec.col < 0) continue;
    const Value& v = row[static_cast<size_t>(spec.col)];
    if (v.is_null()) continue;
    ItemAgg& a = g->items[k];
    a.sum += v.AsReal();
    UpdateMinMax(&a, v);
    ++a.nonnull;
    a.any = true;
  }
}

void GroupedAggregator::AccumulateRow(const Row& row, int64_t seq) {
  size_t slot;
  if (group_cols_.empty()) {
    slot = Intern(std::string(), seq, nullptr, 0);
  } else {
    std::vector<Value> kv;
    kv.reserve(group_cols_.size());
    for (int c : group_cols_) kv.push_back(row[static_cast<size_t>(c)]);
    slot = Intern(BuildKey(row), seq, kv.data(), kv.size());
  }
  AccumulateItems(&groups_[slot], row);
}

void GroupedAggregator::AccumulateChunk(DataChunk* chunk,
                                        const std::vector<uint32_t>& sel) {
  if (sel.empty()) return;
  gids_.resize(sel.size());

  // Pass 1: group-id per selected row.
  if (group_cols_.empty()) {
    const size_t slot = Intern(std::string(), chunk->row_id(sel[0]), nullptr, 0);
    std::fill(gids_.begin(), gids_.end(), static_cast<uint32_t>(slot));
  } else if (group_cols_.size() == 1) {
    const size_t gc = static_cast<size_t>(group_cols_[0]);
    const FlatColumn& fc = chunk->Flatten(gc);
    auto generic = [&](size_t j, uint32_t i) {
      const Value& v = chunk->row(i)[gc];
      gids_[j] = static_cast<uint32_t>(
          Intern(v.AsText(), chunk->row_id(i), &v, 1));
    };
    if (fc.uniform && fc.tag == ValueType::kInt) {
      for (size_t j = 0; j < sel.size(); ++j) {
        const uint32_t i = sel[j];
        if (fc.nulls[i]) {
          generic(j, i);
          continue;
        }
        const int64_t v = fc.ints[i];
        auto it = int_memo_.find(v);
        if (it == int_memo_.end()) {
          const Value& boxed = chunk->row(i)[gc];
          it = int_memo_
                   .emplace(v, Intern(std::to_string(v), chunk->row_id(i),
                                      &boxed, 1))
                   .first;
        } else if (chunk->row_id(i) < groups_[it->second].first_seen) {
          groups_[it->second].first_seen = chunk->row_id(i);
        }
        gids_[j] = static_cast<uint32_t>(it->second);
      }
    } else if (fc.uniform && fc.tag == ValueType::kText) {
      for (size_t j = 0; j < sel.size(); ++j) {
        const uint32_t i = sel[j];
        if (fc.nulls[i]) {
          generic(j, i);
          continue;
        }
        const Value& boxed = chunk->row(i)[gc];
        gids_[j] = static_cast<uint32_t>(
            Intern(*fc.texts[i], chunk->row_id(i), &boxed, 1));
      }
    } else {
      for (size_t j = 0; j < sel.size(); ++j) generic(j, sel[j]);
    }
  } else {
    std::vector<Value> kv;
    for (size_t j = 0; j < sel.size(); ++j) {
      const uint32_t i = sel[j];
      const Row& row = chunk->row(i);
      kv.clear();
      for (int c : group_cols_) kv.push_back(row[static_cast<size_t>(c)]);
      gids_[j] = static_cast<uint32_t>(
          Intern(BuildKey(row), chunk->row_id(i), kv.data(), kv.size()));
    }
  }

  // Pass 2: COUNT(*) bookkeeping.
  for (size_t j = 0; j < sel.size(); ++j) ++groups_[gids_[j]].rows;

  // Pass 3: one typed kernel per aggregate column.
  for (size_t k = 0; k < specs_.size(); ++k) {
    const AggSpec& spec = specs_[k];
    if (spec.col < 0) continue;
    const size_t col = static_cast<size_t>(spec.col);
    const FlatColumn& fc = chunk->Flatten(col);
    if (fc.uniform && fc.tag == ValueType::kInt) {
      for (size_t j = 0; j < sel.size(); ++j) {
        const uint32_t i = sel[j];
        if (fc.nulls[i]) continue;
        ItemAgg& a = groups_[gids_[j]].items[k];
        a.sum += static_cast<double>(fc.ints[i]);
        UpdateMinMax(&a, chunk->row(i)[col]);
        ++a.nonnull;
        a.any = true;
      }
    } else if (fc.uniform && fc.tag == ValueType::kReal) {
      for (size_t j = 0; j < sel.size(); ++j) {
        const uint32_t i = sel[j];
        if (fc.nulls[i]) continue;
        ItemAgg& a = groups_[gids_[j]].items[k];
        a.sum += fc.reals[i];
        UpdateMinMax(&a, chunk->row(i)[col]);
        ++a.nonnull;
        a.any = true;
      }
    } else {
      for (size_t j = 0; j < sel.size(); ++j) {
        const uint32_t i = sel[j];
        const Value& v = chunk->row(i)[col];
        if (v.is_null()) continue;
        ItemAgg& a = groups_[gids_[j]].items[k];
        a.sum += v.AsReal();
        UpdateMinMax(&a, v);
        ++a.nonnull;
        a.any = true;
      }
    }
  }
}

void GroupedAggregator::MergeFrom(const GroupedAggregator& other) {
  for (const Group& og : other.groups_) {
    const size_t slot =
        Intern(og.key, og.first_seen, og.key_vals.data(), og.key_vals.size());
    Group& g = groups_[slot];
    g.rows += og.rows;
    for (size_t k = 0; k < specs_.size(); ++k) {
      const ItemAgg& oa = og.items[k];
      if (oa.nonnull == 0 && !oa.any) continue;
      ItemAgg& a = g.items[k];
      a.nonnull += oa.nonnull;
      a.sum += oa.sum;
      if (oa.any) {
        UpdateMinMax(&a, oa.vmin);
        UpdateMinMax(&a, oa.vmax);
        a.any = true;
      }
    }
  }
}

void GroupedAggregator::Emit(const std::vector<OutputSlot>& layout,
                             bool empty_input_row,
                             std::vector<Row>* out) const {
  if (groups_.empty()) {
    if (!empty_input_row || !group_cols_.empty()) return;
    Row row;
    row.reserve(layout.size());
    for (const OutputSlot& slot : layout) {
      const bool is_count =
          !slot.group_key && (specs_[slot.index].func == AggFunc::kCount ||
                              specs_[slot.index].func == AggFunc::kCountStar);
      row.push_back(is_count ? Value::Int(0) : Value::Null());
    }
    out->push_back(std::move(row));
    return;
  }
  std::vector<size_t> order(groups_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return groups_[a].first_seen < groups_[b].first_seen;
  });
  out->reserve(out->size() + order.size());
  for (size_t gi : order) {
    const Group& g = groups_[gi];
    Row row;
    row.reserve(layout.size());
    for (const OutputSlot& slot : layout) {
      if (slot.group_key) {
        row.push_back(g.key_vals[slot.index]);
        continue;
      }
      const ItemAgg& a = g.items[slot.index];
      switch (specs_[slot.index].func) {
        case AggFunc::kCountStar:
          row.push_back(Value::Int(g.rows));
          break;
        case AggFunc::kCount:
          row.push_back(Value::Int(a.nonnull));
          break;
        case AggFunc::kMin:
          row.push_back(a.any ? a.vmin : Value::Null());
          break;
        case AggFunc::kMax:
          row.push_back(a.any ? a.vmax : Value::Null());
          break;
        case AggFunc::kSum:
          row.push_back(a.any ? Value::Real(a.sum) : Value::Null());
          break;
        case AggFunc::kAvg:
          row.push_back(a.nonnull > 0
                            ? Value::Real(a.sum /
                                          static_cast<double>(a.nonnull))
                            : Value::Null());
          break;
        case AggFunc::kNone:
          row.push_back(Value::Null());  // unreachable: layout maps kNone
          break;                         // items to group-key slots
      }
    }
    out->push_back(std::move(row));
  }
}

Status ScanAggregate(const Table& table, const Expr* where,
                     const ScanOptions& opts, GroupedAggregator* agg,
                     ScanStats* stats) {
  const FilterPlan plan = CompileFilter(where);

  stats->morsels_total = static_cast<int64_t>(table.num_morsels());
  std::vector<const Table::Morsel*> morsels;
  if (opts.zone_maps && where != nullptr) {
    const auto bounds = ExtractColumnBounds(where);
    if (!bounds.empty()) {
      PruneMorsels(table, bounds, &morsels, &stats->morsels_pruned);
    } else {
      table.ListMorsels(&morsels);
    }
  } else {
    table.ListMorsels(&morsels);
  }

  auto aggregate_morsel = [&](const Table::Morsel& m, DataChunk* chunk,
                              std::vector<uint32_t>* sel,
                              GroupedAggregator* into, int64_t* scanned,
                              int64_t* matched) -> Status {
    table.FillChunk(m, chunk);
    sel->resize(chunk->size());
    std::iota(sel->begin(), sel->end(), 0);
    HEDC_RETURN_IF_ERROR(ApplyFilter(plan, chunk, sel));
    *scanned += static_cast<int64_t>(chunk->size());
    *matched += static_cast<int64_t>(sel->size());
    into->AccumulateChunk(chunk, *sel);
    return Status::Ok();
  };

  const int threads =
      opts.pool != nullptr ? PlannedScanThreads(table, opts) : 1;
  if (threads <= 1 || morsels.size() <= 1) {
    stats->threads_used = 1;
    DataChunk chunk;
    std::vector<uint32_t> sel;
    for (const Table::Morsel* m : morsels) {
      HEDC_RETURN_IF_ERROR(aggregate_morsel(*m, &chunk, &sel, agg,
                                            &stats->rows_scanned,
                                            &stats->rows_matched));
    }
    return Status::Ok();
  }

  // Morsel-driven claim loop as in ScanFilter; each worker owns a
  // partial aggregator merged into `agg` once every claim is drained.
  std::atomic<size_t> next{0};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> scanned{0}, matched{0};
  std::vector<GroupedAggregator> partials;
  partials.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) partials.push_back(agg->Fork());
  std::mutex err_mu;
  Status first_error = Status::Ok();

  auto worker = [&](int t) {
    DataChunk chunk;
    std::vector<uint32_t> sel;
    int64_t local_scanned = 0, local_matched = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= morsels.size()) break;
      Status s = aggregate_morsel(*morsels[i], &chunk, &sel, &partials[t],
                                  &local_scanned, &local_matched);
      if (!s.ok()) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.ok()) first_error = std::move(s);
        }
        stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
    scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    matched.fetch_add(local_matched, std::memory_order_relaxed);
  };

  std::mutex done_mu;
  std::condition_variable done_cv;
  int launched = 0;
  int done = 0;
  for (int t = 1; t < threads; ++t) {
    const bool ok = opts.pool->TrySubmit([&, t] {
      worker(t);
      std::lock_guard<std::mutex> lock(done_mu);
      ++done;
      done_cv.notify_all();
    });
    if (ok) ++launched;
  }
  worker(0);
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done == launched; });
  }

  stats->threads_used = launched + 1;
  stats->rows_scanned = scanned.load();
  stats->rows_matched = matched.load();
  if (!first_error.ok()) return first_error;
  for (const GroupedAggregator& partial : partials) agg->MergeFrom(partial);
  return Status::Ok();
}

}  // namespace hedc::db
