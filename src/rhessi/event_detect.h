// Automatic event detection over raw photon lists.
//
// §2.2: when raw data units reach HEDC "they are once more searched for
// interesting events, using programs that detect a wider range of events
// such as solar flares, gamma ray bursts, or quiet periods". The detector
// is rate-threshold based over 1-second bins with a hardness-ratio test
// to separate GRBs (hard, short) from flares (soft, long).
#ifndef HEDC_RHESSI_EVENT_DETECT_H_
#define HEDC_RHESSI_EVENT_DETECT_H_

#include <vector>

#include "rhessi/photon.h"
#include "rhessi/telemetry.h"

namespace hedc::rhessi {

struct DetectedEvent {
  EventKind kind = EventKind::kFlare;
  double t_start = 0;
  double t_end = 0;
  double peak_rate = 0;       // photons/s in the peak bin
  double peak_energy_kev = 0; // mean energy over the event
  int64_t photon_count = 0;
};

struct DetectOptions {
  double bin_sec = 1.0;
  // Rate must exceed background * threshold_factor to open an event.
  double threshold_factor = 3.0;
  // Events shorter than this are GRB candidates (if hard).
  double grb_max_duration_sec = 20.0;
  // Hardness: fraction of photons above 100 keV for a GRB call.
  double grb_hard_fraction = 0.5;
  // Gaps below threshold longer than this close an event.
  double close_gap_sec = 10.0;
  // Stretches below background*quiet_factor at least this long become
  // quiet-period events.
  double quiet_min_duration_sec = 300.0;
  double quiet_factor = 0.5;
};

// `photons` must be time-sorted. Background is estimated as the median
// bin rate.
std::vector<DetectedEvent> DetectEvents(const PhotonList& photons,
                                        const DetectOptions& options = {});

// Matching score against ground truth: fraction of injected flare/GRB
// events overlapped by a detection of the same kind.
double DetectionRecall(const std::vector<InjectedEvent>& truth,
                       const std::vector<DetectedEvent>& detected);

}  // namespace hedc::rhessi

#endif  // HEDC_RHESSI_EVENT_DETECT_H_
