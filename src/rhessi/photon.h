// Photon-event data model.
//
// §3.4: RHESSI raw data "is a list of photon impacts on the detectors,
// with an energy and a time tag attached to each record". RHESSI has 9
// rotating modulation collimators, each with front/rear germanium
// detector segments, covering 3 keV .. 20 MeV (§2.1).
#ifndef HEDC_RHESSI_PHOTON_H_
#define HEDC_RHESSI_PHOTON_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace hedc::rhessi {

constexpr int kNumCollimators = 9;
constexpr double kMinEnergyKev = 3.0;       // soft X-ray end
constexpr double kMaxEnergyKev = 20000.0;   // 20 MeV in keV
// Spacecraft spin: ~15 rpm => 4 s rotation period.
constexpr double kSpinPeriodSec = 4.0;

struct PhotonEvent {
  double time_sec = 0;      // seconds since observation start
  float energy_kev = 0;     // photon energy
  uint8_t detector = 0;     // collimator index [0, 9)
  uint8_t segment = 0;      // 0 = front, 1 = rear
};

using PhotonList = std::vector<PhotonEvent>;

// Compact binary codec (delta-coded times, quantized to microseconds).
std::vector<uint8_t> EncodePhotons(const PhotonList& photons);
Result<PhotonList> DecodePhotons(const std::vector<uint8_t>& bytes);

// Counts photons whose time lies in [t0, t1) and energy in [e0, e1).
int64_t CountInWindow(const PhotonList& photons, double t0, double t1,
                      double e0, double e1);

}  // namespace hedc::rhessi

#endif  // HEDC_RHESSI_PHOTON_H_
