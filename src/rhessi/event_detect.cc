#include "rhessi/event_detect.h"

#include <algorithm>
#include <cmath>

namespace hedc::rhessi {

std::vector<DetectedEvent> DetectEvents(const PhotonList& photons,
                                        const DetectOptions& options) {
  std::vector<DetectedEvent> out;
  if (photons.empty()) return out;

  double t_end = photons.back().time_sec;
  size_t num_bins =
      static_cast<size_t>(std::ceil(t_end / options.bin_sec)) + 1;
  std::vector<int64_t> counts(num_bins, 0);
  std::vector<double> energy_sum(num_bins, 0.0);
  std::vector<int64_t> hard_counts(num_bins, 0);
  for (const PhotonEvent& p : photons) {
    size_t b = static_cast<size_t>(p.time_sec / options.bin_sec);
    if (b >= num_bins) b = num_bins - 1;
    ++counts[b];
    energy_sum[b] += p.energy_kev;
    if (p.energy_kev > 100.0) ++hard_counts[b];
  }

  // Background estimate: median bin rate.
  std::vector<int64_t> sorted = counts;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  double background =
      static_cast<double>(sorted[sorted.size() / 2]) / options.bin_sec;
  if (background <= 0) background = 1.0 / options.bin_sec;
  double threshold = background * options.threshold_factor;
  double quiet_level = background * options.quiet_factor;

  size_t close_gap_bins = static_cast<size_t>(
      std::max(1.0, options.close_gap_sec / options.bin_sec));

  // Burst detection: open at threshold crossing, close after a sustained
  // sub-threshold gap.
  size_t i = 0;
  while (i < num_bins) {
    double rate = static_cast<double>(counts[i]) / options.bin_sec;
    if (rate <= threshold) {
      ++i;
      continue;
    }
    size_t start = i;
    size_t last_active = i;
    size_t j = i + 1;
    while (j < num_bins) {
      double r = static_cast<double>(counts[j]) / options.bin_sec;
      if (r > threshold) {
        last_active = j;
      } else if (j - last_active > close_gap_bins) {
        break;
      }
      ++j;
    }
    DetectedEvent event;
    event.t_start = static_cast<double>(start) * options.bin_sec;
    event.t_end = static_cast<double>(last_active + 1) * options.bin_sec;
    int64_t total = 0, hard = 0;
    double e_sum = 0;
    double peak = 0;
    for (size_t b = start; b <= last_active; ++b) {
      total += counts[b];
      hard += hard_counts[b];
      e_sum += energy_sum[b];
      peak = std::max(peak,
                      static_cast<double>(counts[b]) / options.bin_sec);
    }
    event.photon_count = total;
    event.peak_rate = peak;
    event.peak_energy_kev = total > 0 ? e_sum / static_cast<double>(total) : 0;
    double duration = event.t_end - event.t_start;
    double hard_fraction =
        total > 0 ? static_cast<double>(hard) / static_cast<double>(total)
                  : 0;
    event.kind = (duration <= options.grb_max_duration_sec &&
                  hard_fraction >= options.grb_hard_fraction)
                     ? EventKind::kGammaRayBurst
                     : EventKind::kFlare;
    out.push_back(event);
    i = j;
  }

  // Quiet periods: sustained stretches below quiet_level.
  size_t quiet_min_bins = static_cast<size_t>(
      options.quiet_min_duration_sec / options.bin_sec);
  size_t run_start = 0;
  bool in_run = false;
  for (size_t b = 0; b <= num_bins; ++b) {
    bool quiet = b < num_bins &&
                 static_cast<double>(counts[b]) / options.bin_sec <=
                     quiet_level;
    if (quiet && !in_run) {
      in_run = true;
      run_start = b;
    } else if (!quiet && in_run) {
      in_run = false;
      if (b - run_start >= quiet_min_bins) {
        DetectedEvent event;
        event.kind = EventKind::kQuiet;
        event.t_start = static_cast<double>(run_start) * options.bin_sec;
        event.t_end = static_cast<double>(b) * options.bin_sec;
        out.push_back(event);
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const DetectedEvent& a, const DetectedEvent& b) {
              return a.t_start < b.t_start;
            });
  return out;
}

double DetectionRecall(const std::vector<InjectedEvent>& truth,
                       const std::vector<DetectedEvent>& detected) {
  int64_t relevant = 0, hit = 0;
  for (const InjectedEvent& t : truth) {
    if (t.kind != EventKind::kFlare && t.kind != EventKind::kGammaRayBurst) {
      continue;
    }
    ++relevant;
    for (const DetectedEvent& d : detected) {
      if (d.kind != t.kind) continue;
      double overlap_lo = std::max(t.t_start, d.t_start);
      double overlap_hi = std::min(t.t_end, d.t_end);
      if (overlap_hi > overlap_lo) {
        ++hit;
        break;
      }
    }
  }
  return relevant == 0 ? 1.0
                       : static_cast<double>(hit) /
                             static_cast<double>(relevant);
}

}  // namespace hedc::rhessi
