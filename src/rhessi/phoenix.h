// Phoenix-2 broadband radio spectrometer support (§2.2).
//
// "around 25 GB of measurements taken by the Phoenix-2 Broadband
// Spectrometer in Bleien, Switzerland are available at HEDC. The Phoenix
// catalog contains spectrograms for around 3000 identified solar events
// and is part of the extended catalog."
//
// A second, structurally different instrument: data are
// frequency x time dynamic spectra rather than photon lists. Its
// presence exercises the paper's central claim — a new data source needs
// only a new domain-specific schema slice and loader; the generic parts
// (name mapping, catalogs, access control, archives) are untouched.
#ifndef HEDC_RHESSI_PHOENIX_H_
#define HEDC_RHESSI_PHOENIX_H_

#include <cstdint>
#include <vector>

#include "archive/fits.h"
#include "core/rng.h"
#include "core/status.h"

namespace hedc::rhessi {

struct PhoenixSpectrogram {
  int64_t spectrum_id = 0;
  double t_start = 0;          // observation window [s]
  double t_end = 0;
  double freq_lo_mhz = 100;    // Phoenix-2 band: 0.1 - 4 GHz
  double freq_hi_mhz = 4000;
  size_t time_bins = 0;
  size_t freq_channels = 0;
  std::vector<float> intensity;  // row-major [freq][time], arbitrary units

  float At(size_t freq, size_t time) const {
    return intensity[freq * time_bins + time];
  }

  archive::FitsFile ToFits() const;
  static Result<PhoenixSpectrogram> FromFits(const archive::FitsFile& fits);
};

struct PhoenixOptions {
  double t_start = 0;
  double duration_sec = 900;
  size_t time_bins = 256;
  size_t freq_channels = 64;
  int num_bursts = 2;          // type-III-like drifting radio bursts
  double background_level = 1.0;
  uint64_t seed = 1;
};

// Synthesizes a dynamic spectrum with frequency-drifting solar radio
// bursts over a noisy background.
PhoenixSpectrogram GeneratePhoenixSpectrogram(const PhoenixOptions& options);

// Detected radio burst: time interval + drift.
struct RadioBurst {
  double t_start = 0;
  double t_end = 0;
  double peak_intensity = 0;
};

// Simple burst finder: time bins whose band-integrated intensity exceeds
// `threshold_factor` times the median.
std::vector<RadioBurst> DetectRadioBursts(const PhoenixSpectrogram& spectrum,
                                          double threshold_factor = 3.0);

}  // namespace hedc::rhessi

#endif  // HEDC_RHESSI_PHOENIX_H_
