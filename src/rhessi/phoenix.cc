#include "rhessi/phoenix.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/bytes.h"
#include "core/strings.h"

namespace hedc::rhessi {

archive::FitsFile PhoenixSpectrogram::ToFits() const {
  archive::FitsFile fits;
  archive::FitsHdu& primary = fits.primary();
  primary.SetCard("TELESCOP", "PHOENIX-2", "Bleien broadband spectrometer");
  primary.SetCard("SPEC_ID", std::to_string(spectrum_id), "");
  primary.SetCard("TSTART", StrFormat("%.6f", t_start), "");
  primary.SetCard("TSTOP", StrFormat("%.6f", t_end), "");
  primary.SetCard("FREQ_LO", StrFormat("%.3f", freq_lo_mhz), "MHz");
  primary.SetCard("FREQ_HI", StrFormat("%.3f", freq_hi_mhz), "MHz");
  primary.SetCard("NTIME", std::to_string(time_bins), "");
  primary.SetCard("NFREQ", std::to_string(freq_channels), "");
  archive::FitsHdu& data = fits.AddHdu("SPECTRUM");
  ByteBuffer buffer;
  for (float v : intensity) {
    buffer.PutU32(std::bit_cast<uint32_t>(v));
  }
  data.data = std::move(buffer).TakeData();
  return fits;
}

Result<PhoenixSpectrogram> PhoenixSpectrogram::FromFits(
    const archive::FitsFile& fits) {
  if (fits.hdus().empty()) {
    return Status::Corruption("Phoenix FITS has no primary HDU");
  }
  const archive::FitsHdu& primary = fits.hdus().front();
  const archive::FitsCard* telescope = primary.FindCard("TELESCOP");
  if (telescope == nullptr || telescope->value != "PHOENIX-2") {
    return Status::InvalidArgument("not a Phoenix-2 spectrogram");
  }
  PhoenixSpectrogram spectrum;
  spectrum.spectrum_id = primary.GetIntCard("SPEC_ID");
  spectrum.t_start = primary.GetRealCard("TSTART");
  spectrum.t_end = primary.GetRealCard("TSTOP");
  spectrum.freq_lo_mhz = primary.GetRealCard("FREQ_LO");
  spectrum.freq_hi_mhz = primary.GetRealCard("FREQ_HI");
  spectrum.time_bins = static_cast<size_t>(primary.GetIntCard("NTIME"));
  spectrum.freq_channels =
      static_cast<size_t>(primary.GetIntCard("NFREQ"));
  const archive::FitsHdu* data = fits.FindHdu("SPECTRUM");
  if (data == nullptr) {
    return Status::Corruption("Phoenix FITS missing SPECTRUM HDU");
  }
  size_t expected = spectrum.time_bins * spectrum.freq_channels;
  if (data->data.size() != expected * 4) {
    return Status::Corruption("Phoenix spectrum size mismatch");
  }
  ByteReader reader(data->data);
  spectrum.intensity.resize(expected);
  for (size_t i = 0; i < expected; ++i) {
    uint32_t bits = 0;
    HEDC_RETURN_IF_ERROR(reader.GetU32(&bits));
    spectrum.intensity[i] = std::bit_cast<float>(bits);
  }
  return spectrum;
}

PhoenixSpectrogram GeneratePhoenixSpectrogram(const PhoenixOptions& options) {
  Rng rng(options.seed);
  PhoenixSpectrogram spectrum;
  spectrum.t_start = options.t_start;
  spectrum.t_end = options.t_start + options.duration_sec;
  spectrum.time_bins = options.time_bins;
  spectrum.freq_channels = options.freq_channels;
  spectrum.intensity.assign(options.time_bins * options.freq_channels, 0);

  // Noisy background.
  for (float& v : spectrum.intensity) {
    v = static_cast<float>(
        std::max(0.0, rng.Normal(options.background_level,
                                 options.background_level * 0.15)));
  }
  // Type-III-like bursts: start at high frequency, drift to low over a
  // few seconds (plasma emission moving outward).
  for (int b = 0; b < options.num_bursts; ++b) {
    size_t t0 = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(options.time_bins) * 3 / 4));
    double drift_bins = rng.Uniform(5, 25);  // time bins to cross the band
    double amplitude = options.background_level * rng.Uniform(8, 25);
    for (size_t f = 0; f < options.freq_channels; ++f) {
      // Higher channel index = lower frequency; the burst reaches it
      // later.
      double center = static_cast<double>(t0) +
                      drift_bins * static_cast<double>(f) /
                          static_cast<double>(options.freq_channels);
      for (size_t t = 0; t < options.time_bins; ++t) {
        double d = (static_cast<double>(t) - center) / 2.0;
        spectrum.intensity[f * options.time_bins + t] +=
            static_cast<float>(amplitude * std::exp(-d * d));
      }
    }
  }
  return spectrum;
}

std::vector<RadioBurst> DetectRadioBursts(const PhoenixSpectrogram& spectrum,
                                          double threshold_factor) {
  std::vector<RadioBurst> out;
  if (spectrum.time_bins == 0 || spectrum.freq_channels == 0) return out;
  // Band-integrated lightcurve.
  std::vector<double> total(spectrum.time_bins, 0.0);
  for (size_t f = 0; f < spectrum.freq_channels; ++f) {
    for (size_t t = 0; t < spectrum.time_bins; ++t) {
      total[t] += spectrum.At(f, t);
    }
  }
  std::vector<double> sorted = total;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  double median = sorted[sorted.size() / 2];
  double threshold = median * threshold_factor;
  double bin_sec = (spectrum.t_end - spectrum.t_start) /
                   static_cast<double>(spectrum.time_bins);

  size_t t = 0;
  while (t < spectrum.time_bins) {
    if (total[t] <= threshold) {
      ++t;
      continue;
    }
    size_t start = t;
    double peak = 0;
    while (t < spectrum.time_bins && total[t] > threshold) {
      peak = std::max(peak, total[t]);
      ++t;
    }
    out.push_back(RadioBurst{
        spectrum.t_start + static_cast<double>(start) * bin_sec,
        spectrum.t_start + static_cast<double>(t) * bin_sec, peak});
  }
  return out;
}

}  // namespace hedc::rhessi
