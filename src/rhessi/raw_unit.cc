#include "rhessi/raw_unit.h"

#include <algorithm>

#include "archive/compression.h"
#include "core/strings.h"

namespace hedc::rhessi {

archive::FitsFile RawDataUnit::ToFits() const {
  archive::FitsFile fits;
  archive::FitsHdu& primary = fits.primary();
  primary.SetCard("TELESCOP", "RHESSI", "synthetic reproduction");
  primary.SetCard("UNIT_ID", std::to_string(unit_id), "raw data unit id");
  primary.SetCard("TSTART", StrFormat("%.6f", t_start),
                  "observation start [s]");
  primary.SetCard("TSTOP", StrFormat("%.6f", t_stop),
                  "observation stop [s]");
  primary.SetCard("NPHOTONS", std::to_string(photons.size()),
                  "photon count");
  primary.SetCard("CALVER", std::to_string(calibration_version),
                  "calibration version");
  archive::FitsHdu& data = fits.AddHdu("PHOTONS");
  data.data = EncodePhotons(photons);
  data.SetCard("ENCODING", "HPH1", "delta-coded photon list");
  return fits;
}

Result<RawDataUnit> RawDataUnit::FromFits(const archive::FitsFile& fits) {
  if (fits.hdus().empty()) {
    return Status::Corruption("raw unit FITS has no primary HDU");
  }
  const archive::FitsHdu& primary = fits.hdus().front();
  RawDataUnit unit;
  unit.unit_id = primary.GetIntCard("UNIT_ID", -1);
  unit.t_start = primary.GetRealCard("TSTART");
  unit.t_stop = primary.GetRealCard("TSTOP");
  unit.calibration_version =
      static_cast<int>(primary.GetIntCard("CALVER", 1));
  const archive::FitsHdu* data = fits.FindHdu("PHOTONS");
  if (data == nullptr) {
    return Status::Corruption("raw unit FITS missing PHOTONS HDU");
  }
  HEDC_ASSIGN_OR_RETURN(unit.photons, DecodePhotons(data->data));
  int64_t declared = primary.GetIntCard("NPHOTONS", -1);
  if (declared >= 0 &&
      declared != static_cast<int64_t>(unit.photons.size())) {
    return Status::Corruption(
        StrFormat("photon count mismatch: header %lld vs payload %zu",
                  static_cast<long long>(declared), unit.photons.size()));
  }
  return unit;
}

std::vector<uint8_t> RawDataUnit::Pack() const {
  return archive::Compress(ToFits().Serialize());
}

Result<RawDataUnit> RawDataUnit::Unpack(const std::vector<uint8_t>& bytes) {
  HEDC_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                        archive::Decompress(bytes));
  HEDC_ASSIGN_OR_RETURN(archive::FitsFile fits, archive::FitsFile::Parse(raw));
  return FromFits(fits);
}

std::vector<RawDataUnit> SegmentIntoUnits(const PhotonList& photons,
                                          size_t max_photons_per_unit,
                                          int64_t first_unit_id,
                                          int calibration_version) {
  std::vector<RawDataUnit> units;
  if (max_photons_per_unit == 0) max_photons_per_unit = 1;
  for (size_t off = 0; off < photons.size();
       off += max_photons_per_unit) {
    size_t n = std::min(max_photons_per_unit, photons.size() - off);
    RawDataUnit unit;
    unit.unit_id = first_unit_id++;
    unit.calibration_version = calibration_version;
    unit.photons.assign(photons.begin() + off, photons.begin() + off + n);
    unit.t_start = unit.photons.front().time_sec;
    unit.t_stop = unit.photons.back().time_sec;
    units.push_back(std::move(unit));
  }
  return units;
}

}  // namespace hedc::rhessi
