// Calibration versions and lineage (§3.1): "it is to be expected that the
// raw data will be recalibrated several times. Accordingly, the raw data
// and all the derived data based on it must be versioned. In addition,
// data and analysis algorithms need support for lineage tracking."
#ifndef HEDC_RHESSI_CALIBRATION_H_
#define HEDC_RHESSI_CALIBRATION_H_

#include <map>
#include <string>
#include <vector>

#include "core/status.h"
#include "rhessi/photon.h"

namespace hedc::rhessi {

// Per-detector linear energy correction: e' = gain * e + offset_kev.
struct CalibrationVersion {
  int version = 1;
  std::string description;
  double gain[kNumCollimators] = {1, 1, 1, 1, 1, 1, 1, 1, 1};
  double offset_kev[kNumCollimators] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
};

// Lineage record: how a data item was derived.
struct LineageRecord {
  int64_t item_id = 0;          // derived item
  int64_t source_item_id = 0;   // input item (0 = external)
  std::string operation;        // e.g. "recalibrate", "imaging"
  int calibration_version = 0;
  std::string parameters;
};

class CalibrationTable {
 public:
  CalibrationTable();  // seeds version 1 = identity

  Status Register(CalibrationVersion version);
  Result<CalibrationVersion> Get(int version) const;
  int LatestVersion() const;
  std::vector<int> Versions() const;

  // Recalibrates photons from `from_version` to `to_version` by undoing
  // the old correction and applying the new one.
  Result<PhotonList> Recalibrate(const PhotonList& photons, int from_version,
                                 int to_version) const;

 private:
  std::map<int, CalibrationVersion> versions_;
};

}  // namespace hedc::rhessi

#endif  // HEDC_RHESSI_CALIBRATION_H_
