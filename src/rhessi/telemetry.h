// Synthetic telemetry generator.
//
// Substitute for the real RHESSI downlink (DESIGN.md §2): produces photon
// lists whose statistical structure — Poisson background, solar flares
// (FRED profiles, soft spectra), gamma-ray bursts (short, hard spectra),
// quiet periods and SAA transits with detectors off — drives the same
// event detection, analysis and wavelet-view code paths the real data
// would.
#ifndef HEDC_RHESSI_TELEMETRY_H_
#define HEDC_RHESSI_TELEMETRY_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "rhessi/photon.h"

namespace hedc::rhessi {

enum class EventKind { kFlare, kGammaRayBurst, kQuiet, kSaaTransit };

const char* EventKindName(EventKind kind);

// Ground-truth injected event (for detector validation).
struct InjectedEvent {
  EventKind kind;
  double t_start = 0;
  double t_end = 0;
  double peak_rate = 0;       // photons/s above background at peak
  double peak_energy_kev = 0; // characteristic energy
};

struct TelemetryOptions {
  double duration_sec = 3600.0;
  double background_rate = 80.0;   // photons/s across all detectors
  double flares_per_hour = 4.0;
  double grbs_per_hour = 1.0;
  double saa_per_hour = 0.5;       // South Atlantic Anomaly transits
  uint64_t seed = 1;
};

struct Telemetry {
  PhotonList photons;              // time-sorted
  std::vector<InjectedEvent> truth;
};

// Generates one contiguous observation.
Telemetry GenerateTelemetry(const TelemetryOptions& options);

}  // namespace hedc::rhessi

#endif  // HEDC_RHESSI_TELEMETRY_H_
