#include "rhessi/photon.h"

#include <cmath>

#include "core/bytes.h"

namespace hedc::rhessi {

namespace {
constexpr uint32_t kPhotonMagic = 0x48504831;  // "HPH1"
}  // namespace

std::vector<uint8_t> EncodePhotons(const PhotonList& photons) {
  ByteBuffer out;
  out.PutU32(kPhotonMagic);
  out.PutVarint(photons.size());
  int64_t prev_micros = 0;
  for (const PhotonEvent& p : photons) {
    int64_t t = static_cast<int64_t>(std::llround(p.time_sec * 1e6));
    out.PutSignedVarint(t - prev_micros);
    prev_micros = t;
    // Energy quantized to 0.1 keV (well under the 1 keV instrument
    // resolution, §2.1).
    out.PutVarint(static_cast<uint64_t>(
        std::llround(static_cast<double>(p.energy_kev) * 10.0)));
    out.PutU8(static_cast<uint8_t>((p.detector & 0x0f) |
                                   (p.segment << 4)));
  }
  return std::move(out).TakeData();
}

Result<PhotonList> DecodePhotons(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kPhotonMagic) {
    return Status::Corruption("not a photon list (bad magic)");
  }
  uint64_t n = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&n));
  PhotonList out;
  out.reserve(n);
  int64_t prev_micros = 0;
  for (uint64_t i = 0; i < n; ++i) {
    int64_t dt = 0;
    uint64_t energy_deci = 0;
    uint8_t packed = 0;
    HEDC_RETURN_IF_ERROR(reader.GetSignedVarint(&dt));
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&energy_deci));
    HEDC_RETURN_IF_ERROR(reader.GetU8(&packed));
    prev_micros += dt;
    PhotonEvent p;
    p.time_sec = static_cast<double>(prev_micros) * 1e-6;
    p.energy_kev = static_cast<float>(energy_deci) / 10.0f;
    p.detector = packed & 0x0f;
    p.segment = packed >> 4;
    out.push_back(p);
  }
  return out;
}

int64_t CountInWindow(const PhotonList& photons, double t0, double t1,
                      double e0, double e1) {
  int64_t count = 0;
  for (const PhotonEvent& p : photons) {
    if (p.time_sec >= t0 && p.time_sec < t1 && p.energy_kev >= e0 &&
        p.energy_kev < e1) {
      ++count;
    }
  }
  return count;
}

}  // namespace hedc::rhessi
