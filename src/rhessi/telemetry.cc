#include "rhessi/telemetry.h"

#include <algorithm>
#include <cmath>

namespace hedc::rhessi {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kFlare:
      return "flare";
    case EventKind::kGammaRayBurst:
      return "grb";
    case EventKind::kQuiet:
      return "quiet";
    case EventKind::kSaaTransit:
      return "saa";
  }
  return "?";
}

namespace {

// Draws a photon energy from a power-law dN/dE ~ E^-gamma between
// [lo, hi] keV via inverse-CDF sampling.
double PowerLawEnergy(Rng* rng, double gamma, double lo, double hi) {
  double u = rng->NextDouble();
  double one_minus = 1.0 - gamma;
  if (std::fabs(one_minus) < 1e-9) {
    return lo * std::pow(hi / lo, u);
  }
  double a = std::pow(lo, one_minus);
  double b = std::pow(hi, one_minus);
  return std::pow(a + u * (b - a), 1.0 / one_minus);
}

void EmitPhotons(Rng* rng, double t0, double t1, double rate, double gamma,
                 double e_lo, double e_hi, PhotonList* out) {
  if (rate <= 0 || t1 <= t0) return;
  double t = t0;
  while (true) {
    t += rng->Exponential(1.0 / rate);
    if (t >= t1) break;
    PhotonEvent p;
    p.time_sec = t;
    p.energy_kev = static_cast<float>(PowerLawEnergy(rng, gamma, e_lo, e_hi));
    p.detector = static_cast<uint8_t>(rng->UniformInt(0, kNumCollimators - 1));
    p.segment = rng->Bernoulli(0.7) ? 0 : 1;
    out->push_back(p);
  }
}

// Fast-rise-exponential-decay flare profile emitted as piecewise-constant
// Poisson segments of `step` seconds.
void EmitFred(Rng* rng, double t_start, double rise, double decay,
              double peak_rate, double gamma, double e_lo, double e_hi,
              double duration, PhotonList* out) {
  const double step = 0.5;
  for (double t = 0; t < duration; t += step) {
    double rate;
    if (t < rise) {
      rate = peak_rate * (t / rise);
    } else {
      rate = peak_rate * std::exp(-(t - rise) / decay);
    }
    EmitPhotons(rng, t_start + t, t_start + std::min(t + step, duration),
                rate, gamma, e_lo, e_hi, out);
  }
}

}  // namespace

Telemetry GenerateTelemetry(const TelemetryOptions& options) {
  Rng rng(options.seed);
  Telemetry telemetry;

  // SAA transit windows first: detectors are effectively off inside them
  // ("transits through the South Atlantic Anomaly", §3.2).
  std::vector<std::pair<double, double>> saa_windows;
  int64_t num_saa =
      rng.Poisson(options.saa_per_hour * options.duration_sec / 3600.0);
  for (int64_t i = 0; i < num_saa; ++i) {
    double start = rng.Uniform(0, options.duration_sec);
    double len = rng.Uniform(300, 900);  // 5-15 minute transits
    double end = std::min(start + len, options.duration_sec);
    saa_windows.emplace_back(start, end);
    telemetry.truth.push_back(
        InjectedEvent{EventKind::kSaaTransit, start, end, 0, 0});
  }
  auto in_saa = [&saa_windows](double t) {
    for (const auto& [s, e] : saa_windows) {
      if (t >= s && t < e) return true;
    }
    return false;
  };

  // Quiet background over the whole observation (soft power law).
  EmitPhotons(&rng, 0, options.duration_sec, options.background_rate,
              /*gamma=*/2.0, kMinEnergyKev, 300.0, &telemetry.photons);

  // Solar flares: minutes-long FRED profiles, soft spectra (3-100 keV).
  int64_t num_flares =
      rng.Poisson(options.flares_per_hour * options.duration_sec / 3600.0);
  for (int64_t i = 0; i < num_flares; ++i) {
    double start = rng.Uniform(0, options.duration_sec * 0.95);
    double rise = rng.Uniform(5, 30);
    double decay = rng.Uniform(30, 180);
    double duration = std::min(rise + 5 * decay,
                               options.duration_sec - start);
    double peak = options.background_rate * rng.Uniform(5, 40);
    EmitFred(&rng, start, rise, decay, peak, /*gamma=*/3.0, kMinEnergyKev,
             100.0, duration, &telemetry.photons);
    telemetry.truth.push_back(InjectedEvent{EventKind::kFlare, start,
                                            start + duration, peak, 25.0});
  }

  // Gamma-ray bursts: short, hard (non-solar, §3.2).
  int64_t num_grbs =
      rng.Poisson(options.grbs_per_hour * options.duration_sec / 3600.0);
  for (int64_t i = 0; i < num_grbs; ++i) {
    double start = rng.Uniform(0, options.duration_sec * 0.99);
    double duration = rng.Uniform(0.2, 15.0);
    double peak = options.background_rate * rng.Uniform(10, 60);
    EmitFred(&rng, start, duration * 0.2, duration * 0.3, peak,
             /*gamma=*/1.5, 100.0, kMaxEnergyKev,
             std::min(duration, options.duration_sec - start),
             &telemetry.photons);
    telemetry.truth.push_back(InjectedEvent{EventKind::kGammaRayBurst, start,
                                            start + duration, peak, 800.0});
  }

  // Apply SAA blackouts and time-sort.
  PhotonList kept;
  kept.reserve(telemetry.photons.size());
  for (const PhotonEvent& p : telemetry.photons) {
    if (!in_saa(p.time_sec)) kept.push_back(p);
  }
  telemetry.photons = std::move(kept);
  std::sort(telemetry.photons.begin(), telemetry.photons.end(),
            [](const PhotonEvent& a, const PhotonEvent& b) {
              return a.time_sec < b.time_sec;
            });
  std::sort(telemetry.truth.begin(), telemetry.truth.end(),
            [](const InjectedEvent& a, const InjectedEvent& b) {
              return a.t_start < b.t_start;
            });
  return telemetry;
}

}  // namespace hedc::rhessi
