// Raw data units: telemetry segmented along the time axis and packaged
// into FITS files, compressed with hzip (§2.1's "units of roughly 40 MB
// ... formatted as FITS and compressed using gnu-zip", scaled down).
#ifndef HEDC_RHESSI_RAW_UNIT_H_
#define HEDC_RHESSI_RAW_UNIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "archive/fits.h"
#include "core/status.h"
#include "rhessi/photon.h"

namespace hedc::rhessi {

struct RawDataUnit {
  int64_t unit_id = 0;
  double t_start = 0;
  double t_stop = 0;
  int calibration_version = 1;
  PhotonList photons;

  // Packages into a FITS-lite container (header cards: UNIT_ID, TSTART,
  // TSTOP, NPHOTONS, CALVER; "PHOTONS" HDU holds the encoded list).
  archive::FitsFile ToFits() const;
  static Result<RawDataUnit> FromFits(const archive::FitsFile& fits);

  // Serialize-and-compress / decompress-and-parse round trip.
  std::vector<uint8_t> Pack() const;
  static Result<RawDataUnit> Unpack(const std::vector<uint8_t>& bytes);
};

// Splits telemetry into units of at most `max_photons_per_unit` photons,
// cutting on the time axis. Unit ids start at `first_unit_id`.
std::vector<RawDataUnit> SegmentIntoUnits(const PhotonList& photons,
                                          size_t max_photons_per_unit,
                                          int64_t first_unit_id = 1,
                                          int calibration_version = 1);

}  // namespace hedc::rhessi

#endif  // HEDC_RHESSI_RAW_UNIT_H_
