#include "rhessi/calibration.h"

#include <algorithm>

#include "core/strings.h"

namespace hedc::rhessi {

CalibrationTable::CalibrationTable() {
  CalibrationVersion identity;
  identity.version = 1;
  identity.description = "launch calibration (identity)";
  versions_[1] = identity;
}

Status CalibrationTable::Register(CalibrationVersion version) {
  if (version.version <= 0) {
    return Status::InvalidArgument("calibration versions are positive");
  }
  if (versions_.count(version.version) > 0) {
    return Status::AlreadyExists(
        StrFormat("calibration version %d", version.version));
  }
  for (int d = 0; d < kNumCollimators; ++d) {
    if (version.gain[d] == 0) {
      return Status::InvalidArgument("zero gain is not invertible");
    }
  }
  versions_[version.version] = std::move(version);
  return Status::Ok();
}

Result<CalibrationVersion> CalibrationTable::Get(int version) const {
  auto it = versions_.find(version);
  if (it == versions_.end()) {
    return Status::NotFound(StrFormat("calibration version %d", version));
  }
  return it->second;
}

int CalibrationTable::LatestVersion() const {
  return versions_.empty() ? 0 : versions_.rbegin()->first;
}

std::vector<int> CalibrationTable::Versions() const {
  std::vector<int> out;
  out.reserve(versions_.size());
  for (const auto& [v, cal] : versions_) out.push_back(v);
  return out;
}

Result<PhotonList> CalibrationTable::Recalibrate(const PhotonList& photons,
                                                 int from_version,
                                                 int to_version) const {
  HEDC_ASSIGN_OR_RETURN(CalibrationVersion from, Get(from_version));
  HEDC_ASSIGN_OR_RETURN(CalibrationVersion to, Get(to_version));
  PhotonList out = photons;
  for (PhotonEvent& p : out) {
    int d = p.detector % kNumCollimators;
    // Undo the old correction to recover the raw pulse height, then apply
    // the new one.
    double raw = (static_cast<double>(p.energy_kev) - from.offset_kev[d]) /
                 from.gain[d];
    double corrected = raw * to.gain[d] + to.offset_kev[d];
    p.energy_kev = static_cast<float>(
        std::clamp(corrected, kMinEnergyKev, kMaxEnergyKev));
  }
  return out;
}

}  // namespace hedc::rhessi
