#include "archive/archive.h"

#include <algorithm>
#include <cstring>

namespace hedc::archive {

Result<uint64_t> Archive::SizeOf(const std::string& path) {
  HEDC_ASSIGN_OR_RETURN(std::vector<uint8_t> data, Read(path));
  return static_cast<uint64_t>(data.size());
}

Result<size_t> Archive::ReadRange(const std::string& path, uint64_t offset,
                                  uint8_t* out, size_t len) {
  HEDC_ASSIGN_OR_RETURN(std::vector<uint8_t> data, Read(path));
  if (offset >= data.size()) return static_cast<size_t>(0);
  size_t n = std::min(len, data.size() - static_cast<size_t>(offset));
  std::memcpy(out, data.data() + offset, n);
  return n;
}

const char* ArchiveTypeName(ArchiveType type) {
  switch (type) {
    case ArchiveType::kDisk:
      return "disk";
    case ArchiveType::kTape:
      return "tape";
    case ArchiveType::kRemote:
      return "remote";
  }
  return "?";
}

DiskArchive::DiskArchive(Clock* clock, Costs costs)
    : clock_(clock), costs_(costs) {}

Status DiskArchive::Write(const std::string& path,
                          const std::vector<uint8_t>& data) {
  if (clock_ != nullptr) {
    clock_->SleepFor(costs_.write_latency +
                     static_cast<Micros>(costs_.write_micros_per_kb *
                                         (data.size() / 1024.0)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) bytes_ -= it->second.size();
  bytes_ += data.size();
  files_[path] = data;
  return Status::Ok();
}

Result<std::vector<uint8_t>> DiskArchive::Read(const std::string& path) {
  std::vector<uint8_t> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("file " + path);
    data = it->second;
  }
  if (clock_ != nullptr) {
    clock_->SleepFor(costs_.read_latency +
                     static_cast<Micros>(costs_.read_micros_per_kb *
                                         (data.size() / 1024.0)));
  }
  return data;
}

bool DiskArchive::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status DiskArchive::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("file " + path);
  bytes_ -= it->second.size();
  files_.erase(it);
  return Status::Ok();
}

std::vector<std::string> DiskArchive::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, data] : files_) out.push_back(path);
  return out;
}

Result<uint64_t> DiskArchive::SizeOf(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("file " + path);
  return static_cast<uint64_t>(it->second.size());
}

Result<size_t> DiskArchive::ReadRange(const std::string& path,
                                      uint64_t offset, uint8_t* out,
                                      size_t len) {
  size_t n = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("file " + path);
    const std::vector<uint8_t>& data = it->second;
    if (offset >= data.size()) return static_cast<size_t>(0);
    n = std::min(len, data.size() - static_cast<size_t>(offset));
    std::memcpy(out, data.data() + offset, n);
  }
  if (clock_ != nullptr && n > 0) {
    // Latency is charged once per file, on the first chunk.
    Micros latency = offset == 0 ? costs_.read_latency : 0;
    clock_->SleepFor(latency +
                     static_cast<Micros>(costs_.read_micros_per_kb *
                                         (n / 1024.0)));
  }
  return n;
}

uint64_t DiskArchive::BytesStored() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

TapeArchive::TapeArchive(std::unique_ptr<Archive> inner, Clock* clock,
                         Costs costs)
    : inner_(std::move(inner)), clock_(clock), costs_(costs) {}

void TapeArchive::ChargeAccess(size_t bytes) {
  if (clock_ == nullptr) return;
  Micros cost = 0;
  if (!mounted_) {
    cost += costs_.mount_cost;
    mounted_ = true;
  }
  cost += costs_.seek_cost;
  cost += static_cast<Micros>(costs_.read_micros_per_kb * (bytes / 1024.0));
  clock_->SleepFor(cost);
}

Status TapeArchive::Write(const std::string& path,
                          const std::vector<uint8_t>& data) {
  ChargeAccess(data.size());
  return inner_->Write(path, data);
}

Result<std::vector<uint8_t>> TapeArchive::Read(const std::string& path) {
  if (!inner_->Exists(path)) return Status::NotFound("file " + path);
  Result<std::vector<uint8_t>> r = inner_->Read(path);
  if (r.ok()) ChargeAccess(r.value().size());
  return r;
}

bool TapeArchive::Exists(const std::string& path) const {
  return inner_->Exists(path);
}

Status TapeArchive::Delete(const std::string& path) {
  return inner_->Delete(path);
}

std::vector<std::string> TapeArchive::List() const { return inner_->List(); }

Result<uint64_t> TapeArchive::SizeOf(const std::string& path) {
  return inner_->SizeOf(path);
}

Result<size_t> TapeArchive::ReadRange(const std::string& path,
                                      uint64_t offset, uint8_t* out,
                                      size_t len) {
  if (!inner_->Exists(path)) return Status::NotFound("file " + path);
  HEDC_ASSIGN_OR_RETURN(size_t n, inner_->ReadRange(path, offset, out, len));
  if (clock_ != nullptr && n > 0) {
    Micros cost = 0;
    if (offset == 0) {
      // Sequential medium: mount + seek are paid once per file, then the
      // stream reads at tape bandwidth.
      if (!mounted_) {
        cost += costs_.mount_cost;
        mounted_ = true;
      }
      cost += costs_.seek_cost;
    }
    cost += static_cast<Micros>(costs_.read_micros_per_kb * (n / 1024.0));
    clock_->SleepFor(cost);
  }
  return n;
}

uint64_t TapeArchive::BytesStored() const { return inner_->BytesStored(); }

RemoteArchive::RemoteArchive(std::unique_ptr<Archive> inner, Clock* clock,
                             Costs costs)
    : inner_(std::move(inner)), clock_(clock), costs_(costs) {}

void RemoteArchive::ChargeAccess(size_t bytes) {
  if (clock_ == nullptr) return;
  clock_->SleepFor(costs_.round_trip +
                   static_cast<Micros>(costs_.transfer_micros_per_kb *
                                       (bytes / 1024.0)));
}

Status RemoteArchive::Write(const std::string& path,
                            const std::vector<uint8_t>& data) {
  if (!online_) return Status::Unavailable("remote archive offline");
  ChargeAccess(data.size());
  return inner_->Write(path, data);
}

Result<std::vector<uint8_t>> RemoteArchive::Read(const std::string& path) {
  if (!online_) return Status::Unavailable("remote archive offline");
  Result<std::vector<uint8_t>> r = inner_->Read(path);
  if (r.ok()) ChargeAccess(r.value().size());
  return r;
}

bool RemoteArchive::Exists(const std::string& path) const {
  return online_ && inner_->Exists(path);
}

Status RemoteArchive::Delete(const std::string& path) {
  if (!online_) return Status::Unavailable("remote archive offline");
  return inner_->Delete(path);
}

std::vector<std::string> RemoteArchive::List() const {
  if (!online_) return {};
  return inner_->List();
}

Result<uint64_t> RemoteArchive::SizeOf(const std::string& path) {
  if (!online_) return Status::Unavailable("remote archive offline");
  return inner_->SizeOf(path);
}

Result<size_t> RemoteArchive::ReadRange(const std::string& path,
                                        uint64_t offset, uint8_t* out,
                                        size_t len) {
  if (!online_) return Status::Unavailable("remote archive offline");
  HEDC_ASSIGN_OR_RETURN(size_t n, inner_->ReadRange(path, offset, out, len));
  if (clock_ != nullptr && n > 0) {
    // One round trip per file (request setup), then bandwidth per chunk.
    Micros latency = offset == 0 ? costs_.round_trip : 0;
    clock_->SleepFor(latency +
                     static_cast<Micros>(costs_.transfer_micros_per_kb *
                                         (n / 1024.0)));
  }
  return n;
}

uint64_t RemoteArchive::BytesStored() const { return inner_->BytesStored(); }

void ArchiveManager::Register(Info info, std::unique_ptr<Archive> archive) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t id = info.archive_id;
  archives_[id] = std::make_pair(std::move(info), std::move(archive));
}

Archive* ArchiveManager::Get(int64_t archive_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = archives_.find(archive_id);
  if (it == archives_.end()) return nullptr;
  if (!it->second.first.online) return nullptr;
  return it->second.second.get();
}

const ArchiveManager::Info* ArchiveManager::GetInfo(
    int64_t archive_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = archives_.find(archive_id);
  return it == archives_.end() ? nullptr : &it->second.first;
}

Status ArchiveManager::SetOnline(int64_t archive_id, bool online) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = archives_.find(archive_id);
  if (it == archives_.end()) {
    return Status::NotFound("archive " + std::to_string(archive_id));
  }
  it->second.first.online = online;
  return Status::Ok();
}

std::vector<ArchiveManager::Info> ArchiveManager::ListArchives() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Info> out;
  out.reserve(archives_.size());
  for (const auto& [id, entry] : archives_) out.push_back(entry.first);
  return out;
}

}  // namespace hedc::archive
