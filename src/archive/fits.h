// FITS-lite: a Flexible-Image-Transport-System-style container.
//
// RHESSI raw data units are "packaged into units of roughly 40 MB,
// formatted as FITS files and compressed using gnu-zip" (§2.1). This
// module provides the same code path: ASCII header cards describing the
// payload plus one or more binary header-data units (HDUs), serialized
// with CRC framing.
#ifndef HEDC_ARCHIVE_FITS_H_
#define HEDC_ARCHIVE_FITS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"

namespace hedc::archive {

// One "KEY = value / comment" header card.
struct FitsCard {
  std::string key;
  std::string value;
  std::string comment;
};

// A header-data unit: named card list + raw binary payload.
struct FitsHdu {
  std::string name;
  std::vector<FitsCard> cards;
  std::vector<uint8_t> data;

  const FitsCard* FindCard(const std::string& key) const;
  void SetCard(const std::string& key, const std::string& value,
               const std::string& comment = "");
  int64_t GetIntCard(const std::string& key, int64_t fallback = 0) const;
  double GetRealCard(const std::string& key, double fallback = 0.0) const;
};

class FitsFile {
 public:
  FitsFile() = default;

  // The primary HDU is created on first access.
  FitsHdu& primary();
  const std::vector<FitsHdu>& hdus() const { return hdus_; }
  std::vector<FitsHdu>& hdus() { return hdus_; }
  FitsHdu& AddHdu(const std::string& name);
  const FitsHdu* FindHdu(const std::string& name) const;

  // Total payload bytes across HDUs.
  size_t DataSize() const;

  // Binary serialization (magic + per-HDU CRC).
  std::vector<uint8_t> Serialize() const;
  static Result<FitsFile> Parse(const std::vector<uint8_t>& bytes);

 private:
  std::vector<FitsHdu> hdus_;
};

}  // namespace hedc::archive

#endif  // HEDC_ARCHIVE_FITS_H_
