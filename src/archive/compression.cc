#include "archive/compression.h"

#include <algorithm>
#include <cstring>

#include "core/bytes.h"

namespace hedc::archive {

namespace {

constexpr uint32_t kHzipMagic = 0x485a4950;  // "HZIP"
constexpr size_t kWindowSize = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 16;
constexpr size_t kHashBuckets = 1 << 16;

// Token stream grammar:
//   0x00 <varint n> <n raw bytes>        literal run
//   0x01 <varint dist> <varint len>      back-reference
uint32_t HashQuad(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 16;
}

}  // namespace

std::vector<uint8_t> Compress(const std::vector<uint8_t>& input) {
  ByteBuffer out;
  out.PutU32(kHzipMagic);
  out.PutVarint(input.size());

  // Chained hash table over 4-byte prefixes.
  std::vector<int64_t> head(kHashBuckets, -1);
  std::vector<int64_t> prev(input.size(), -1);

  size_t literal_start = 0;
  auto flush_literals = [&](size_t end) {
    if (end > literal_start) {
      out.PutU8(0x00);
      out.PutVarint(end - literal_start);
      out.PutBytes(input.data() + literal_start, end - literal_start);
    }
  };

  size_t i = 0;
  while (i < input.size()) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= input.size()) {
      uint32_t h = HashQuad(input.data() + i);
      int64_t candidate = head[h];
      int chain = 0;
      while (candidate >= 0 && chain < 32) {
        size_t dist = i - static_cast<size_t>(candidate);
        if (dist > kWindowSize) break;
        // Extend match.
        size_t len = 0;
        size_t max_len = std::min(kMaxMatch, input.size() - i);
        const uint8_t* a = input.data() + candidate;
        const uint8_t* b = input.data() + i;
        while (len < max_len && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
        }
        candidate = prev[candidate];
        ++chain;
      }
      // Insert current position into the chain.
      prev[i] = head[h];
      head[h] = static_cast<int64_t>(i);
    }
    if (best_len >= kMinMatch) {
      flush_literals(i);
      out.PutU8(0x01);
      out.PutVarint(best_dist);
      out.PutVarint(best_len);
      // Register skipped positions sparsely (every 2nd) to bound cost.
      for (size_t j = i + 1; j < i + best_len && j + 4 <= input.size();
           j += 2) {
        uint32_t h = HashQuad(input.data() + j);
        prev[j] = head[h];
        head[h] = static_cast<int64_t>(j);
      }
      i += best_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(input.size());
  return std::move(out).TakeData();
}

Result<std::vector<uint8_t>> Decompress(const std::vector<uint8_t>& input) {
  ByteReader reader(input);
  uint32_t magic = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kHzipMagic) {
    return Status::Corruption("not an hzip stream (bad magic)");
  }
  uint64_t original_size = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&original_size));
  std::vector<uint8_t> out;
  out.reserve(original_size);
  while (!reader.AtEnd()) {
    uint8_t tag = 0;
    HEDC_RETURN_IF_ERROR(reader.GetU8(&tag));
    if (tag == 0x00) {
      uint64_t n = 0;
      HEDC_RETURN_IF_ERROR(reader.GetVarint(&n));
      if (n > reader.remaining()) {
        return Status::Corruption("hzip literal run past end");
      }
      size_t old = out.size();
      out.resize(old + n);
      HEDC_RETURN_IF_ERROR(reader.GetBytes(out.data() + old, n));
    } else if (tag == 0x01) {
      uint64_t dist = 0, len = 0;
      HEDC_RETURN_IF_ERROR(reader.GetVarint(&dist));
      HEDC_RETURN_IF_ERROR(reader.GetVarint(&len));
      if (dist == 0 || dist > out.size()) {
        return Status::Corruption("hzip back-reference out of window");
      }
      size_t src = out.size() - dist;
      for (uint64_t k = 0; k < len; ++k) {
        out.push_back(out[src + k]);  // may overlap (run-length style)
      }
    } else {
      return Status::Corruption("hzip bad token tag");
    }
  }
  if (out.size() != original_size) {
    return Status::Corruption("hzip size mismatch after decode");
  }
  return out;
}

bool IsCompressed(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4) return false;
  ByteReader reader(bytes);
  uint32_t magic = 0;
  return reader.GetU32(&magic).ok() && magic == kHzipMagic;
}

}  // namespace hedc::archive
