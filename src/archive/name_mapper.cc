#include "archive/name_mapper.h"

#include <algorithm>

#include "core/ids.h"
#include "core/strings.h"

namespace hedc::archive {

namespace {

IdGenerator* EntryIds() {
  static IdGenerator* const kIds = new IdGenerator(1);
  return kIds;
}

Result<NameType> NameTypeFromText(const std::string& text) {
  if (text == "filename") return NameType::kFilename;
  if (text == "tuple") return NameType::kTupleId;
  if (text == "url") return NameType::kUrl;
  return Status::Corruption("unknown name type: " + text);
}

}  // namespace

const char* NameTypeName(NameType type) {
  switch (type) {
    case NameType::kFilename:
      return "filename";
    case NameType::kTupleId:
      return "tuple";
    case NameType::kUrl:
      return "url";
  }
  return "?";
}

NameMapper::NameMapper(db::Database* db, Config config)
    : db_(db), config_(std::move(config)) {
  joined_resolve_ = config_.GetBool("name_mapper.joined_resolve", true);
  int64_t capacity = config_.GetInt("name_mapper.cache_capacity", 1024);
  if (capacity > 0) {
    cache_capacity_per_shard_ = std::max<size_t>(
        1, static_cast<size_t>(capacity) / kCacheShards);
  }
  MetricsRegistry* metrics = MetricsRegistry::Default();
  resolutions_ = metrics->GetCounter("namemap.resolutions");
  misses_ = metrics->GetCounter("namemap.misses");
  db_queries_ = metrics->GetCounter("namemap.db_queries");
  resolve_us_ = metrics->GetHistogram("namemap.resolve_us");
  cache_hits_ = metrics->GetCounter("name_mapper.cache_hits");
  cache_misses_ = metrics->GetCounter("name_mapper.cache_misses");
  cache_invalidations_ =
      metrics->GetCounter("name_mapper.cache_invalidations");
}

uint64_t NameMapper::CacheKey(int64_t item_id, NameType type) {
  return static_cast<uint64_t>(item_id) * 4 +
         static_cast<uint64_t>(type);
}

NameMapper::CacheShard& NameMapper::ShardFor(int64_t item_id) {
  return cache_shards_[static_cast<uint64_t>(item_id) % kCacheShards];
}

bool NameMapper::CacheGet(int64_t item_id, NameType type,
                          ResolvedName* out) {
  if (cache_capacity_per_shard_ == 0) return false;
  CacheShard& shard = ShardFor(item_id);
  uint64_t key = CacheKey(item_id, type);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->value;
  return true;
}

void NameMapper::CachePut(uint64_t gen_snapshot, int64_t item_id,
                          NameType type, const ResolvedName& value) {
  if (cache_capacity_per_shard_ == 0) return;
  CacheShard& shard = ShardFor(item_id);
  uint64_t key = CacheKey(item_id, type);
  std::lock_guard<std::mutex> lock(shard.mu);
  // A relocation may have landed between our DB queries and now; its
  // invalidation already ran, so installing this result would cache a
  // stale path. The generation check is made under the shard lock,
  // ordering it against the eraser's locked pass.
  if (cache_gen_.load(std::memory_order_acquire) != gen_snapshot) return;
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(CacheEntry{key, value});
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > cache_capacity_per_shard_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

void NameMapper::CacheEraseItem(int64_t item_id) {
  if (cache_capacity_per_shard_ == 0) return;
  cache_gen_.fetch_add(1, std::memory_order_acq_rel);
  cache_invalidations_->Add();
  CacheShard& shard = ShardFor(item_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (int t = 0; t < 3; ++t) {
    auto it = shard.index.find(CacheKey(item_id, static_cast<NameType>(t)));
    if (it == shard.index.end()) continue;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
}

void NameMapper::InvalidateCache() {
  if (cache_capacity_per_shard_ == 0) return;
  cache_gen_.fetch_add(1, std::memory_order_acq_rel);
  cache_invalidations_->Add();
  for (CacheShard& shard : cache_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

Status NameMapper::Init() {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r1,
      db_->Execute("CREATE TABLE IF NOT EXISTS archives ("
                   "archive_id INT PRIMARY KEY, archive_type TEXT, "
                   "path_prefix TEXT, online BOOL)"));
  (void)r1;
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r2,
      db_->Execute("CREATE TABLE IF NOT EXISTS location_entries ("
                   "entry_id INT PRIMARY KEY, item_id INT NOT NULL, "
                   "name_type TEXT NOT NULL, archive_id INT NOT NULL, "
                   "rel_path TEXT)"));
  (void)r2;
  for (const char* sql :
       {"CREATE INDEX archives_by_id ON archives (archive_id) USING HASH",
        "CREATE INDEX loc_by_item ON location_entries (item_id) USING HASH",
        "CREATE INDEX loc_by_archive ON location_entries (archive_id) "
        "USING HASH"}) {
    Result<db::ResultSet> r = db_->Execute(sql);
    if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
      return r.status();
    }
  }
  return Status::Ok();
}

Status NameMapper::RegisterArchive(int64_t archive_id,
                                   const std::string& type,
                                   const std::string& path_prefix) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      db_->Execute("INSERT INTO archives VALUES (?, ?, ?, TRUE)",
                   {db::Value::Int(archive_id), db::Value::Text(type),
                    db::Value::Text(path_prefix)}));
  (void)r;
  return Status::Ok();
}

Status NameMapper::AddLocation(int64_t item_id, NameType type,
                               int64_t archive_id,
                               const std::string& rel_path) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      db_->Execute(
          "INSERT INTO location_entries VALUES (?, ?, ?, ?, ?)",
          {db::Value::Int(EntryIds()->Next()), db::Value::Int(item_id),
           db::Value::Text(NameTypeName(type)), db::Value::Int(archive_id),
           db::Value::Text(rel_path)}));
  (void)r;
  CacheEraseItem(item_id);
  return Status::Ok();
}

std::string NameMapper::RootFor(NameType type) const {
  switch (type) {
    case NameType::kFilename:
      return config_.GetString("root.filename", "");
    case NameType::kUrl:
      return config_.GetString("root.url", "http://hedc/data");
    case NameType::kTupleId:
      return config_.GetString("root.tuple", "hedc://tuple");
  }
  return "";
}

Result<ResolvedName> NameMapper::ResolveUncached(int64_t item_id,
                                                 NameType type) {
  int64_t archive_id = 0;
  std::string rel_path;
  std::string prefix;
  bool online = false;

  if (joined_resolve_) {
    // One statement: the location entry hash-joined to its archive. The
    // planner drives the (small) archives table and builds the hash
    // side from the item_id index, so the big table is never scanned.
    db_queries_->Add();
    HEDC_ASSIGN_OR_RETURN(
        db::ResultSet joined,
        db_->Execute(
            "SELECT location_entries.archive_id AS archive_id, "
            "location_entries.rel_path AS rel_path, "
            "archives.path_prefix AS path_prefix, "
            "archives.online AS online "
            "FROM location_entries "
            "JOIN archives "
            "ON location_entries.archive_id = archives.archive_id "
            "WHERE location_entries.item_id = ? "
            "AND location_entries.name_type = ?",
            {db::Value::Int(item_id),
             db::Value::Text(NameTypeName(type))}));
    if (joined.rows.empty()) {
      // The inner join hides which side was missing; one extra indexed
      // query (miss path only) keeps the NotFound/Corruption split.
      db_queries_->Add();
      HEDC_ASSIGN_OR_RETURN(
          db::ResultSet entries,
          db_->Execute("SELECT archive_id FROM location_entries "
                       "WHERE item_id = ? AND name_type = ?",
                       {db::Value::Int(item_id),
                        db::Value::Text(NameTypeName(type))}));
      if (entries.rows.empty()) {
        return Status::NotFound(
            StrFormat("no %s location for item %lld", NameTypeName(type),
                      static_cast<long long>(item_id)));
      }
      return Status::Corruption(
          StrFormat("location entry references unknown archive %lld",
                    static_cast<long long>(
                        entries.Get(0, "archive_id").AsInt())));
    }
    archive_id = joined.Get(0, "archive_id").AsInt();
    rel_path = joined.Get(0, "rel_path").AsText();
    prefix = joined.Get(0, "path_prefix").AsText();
    online = joined.Get(0, "online").AsBool();
  } else {
    // Legacy plan: two indexed point queries.
    db_queries_->Add();
    HEDC_ASSIGN_OR_RETURN(
        db::ResultSet entries,
        db_->Execute("SELECT archive_id, rel_path FROM location_entries "
                     "WHERE item_id = ? AND name_type = ?",
                     {db::Value::Int(item_id),
                      db::Value::Text(NameTypeName(type))}));
    if (entries.rows.empty()) {
      return Status::NotFound(
          StrFormat("no %s location for item %lld", NameTypeName(type),
                    static_cast<long long>(item_id)));
    }
    archive_id = entries.Get(0, "archive_id").AsInt();
    rel_path = entries.Get(0, "rel_path").AsText();

    db_queries_->Add();
    HEDC_ASSIGN_OR_RETURN(
        db::ResultSet arch,
        db_->Execute("SELECT path_prefix, online FROM archives "
                     "WHERE archive_id = ?",
                     {db::Value::Int(archive_id)}));
    if (arch.rows.empty()) {
      return Status::Corruption(
          StrFormat("location entry references unknown archive %lld",
                    static_cast<long long>(archive_id)));
    }
    prefix = arch.Get(0, "path_prefix").AsText();
    online = arch.Get(0, "online").AsBool();
  }

  if (!online) {
    return Status::Unavailable(
        StrFormat("archive %lld is offline",
                  static_cast<long long>(archive_id)));
  }

  ResolvedName out;
  out.type = type;
  out.archive_id = archive_id;
  out.rel_path = rel_path + "/" + std::to_string(item_id);
  std::string root = RootFor(type);
  out.name = root;
  if (!out.name.empty() && !prefix.empty()) out.name += "/";
  out.name += prefix;
  if (!out.name.empty()) out.name += "/";
  out.name += out.rel_path;
  return out;
}

Result<ResolvedName> NameMapper::Resolve(int64_t item_id, NameType type) {
  resolutions_->Add();
  ScopedTimer timer(resolve_us_);

  ResolvedName cached;
  if (CacheGet(item_id, type, &cached)) {
    cache_hits_->Add();
    return cached;
  }
  cache_misses_->Add();
  // Snapshot before the queries: if a relocation bumps the generation
  // while we read, CachePut refuses to install the (possibly stale)
  // result. Misses and offline archives are never cached.
  uint64_t gen = cache_gen_.load(std::memory_order_acquire);

  Result<ResolvedName> resolved = ResolveUncached(item_id, type);
  if (!resolved.ok()) {
    misses_->Add();
    return resolved;
  }
  CachePut(gen, item_id, type, resolved.value());
  return resolved;
}

Result<std::vector<ResolvedName>> NameMapper::ResolveAll(int64_t item_id) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet entries,
      db_->Execute("SELECT name_type FROM location_entries WHERE item_id = ?",
                   {db::Value::Int(item_id)}));
  std::vector<ResolvedName> out;
  for (size_t i = 0; i < entries.num_rows(); ++i) {
    HEDC_ASSIGN_OR_RETURN(
        NameType type,
        NameTypeFromText(entries.Get(i, "name_type").AsText()));
    HEDC_ASSIGN_OR_RETURN(ResolvedName name, Resolve(item_id, type));
    out.push_back(std::move(name));
  }
  return out;
}

Status NameMapper::RelocateArchive(int64_t from_archive,
                                   int64_t to_archive) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      db_->Execute("UPDATE location_entries SET archive_id = ? "
                   "WHERE archive_id = ?",
                   {db::Value::Int(to_archive),
                    db::Value::Int(from_archive)}));
  (void)r;
  // Any cached name may point into the old archive; drop everything.
  InvalidateCache();
  return Status::Ok();
}

Status NameMapper::Remount(int64_t archive_id,
                           const std::string& new_prefix) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      db_->Execute("UPDATE archives SET path_prefix = ? WHERE archive_id = ?",
                   {db::Value::Text(new_prefix),
                    db::Value::Int(archive_id)}));
  if (r.affected_rows == 0) {
    return Status::NotFound("archive " + std::to_string(archive_id));
  }
  // The cache has no archive→item reverse index; drop everything.
  InvalidateCache();
  return Status::Ok();
}

Status NameMapper::MoveItem(int64_t item_id, NameType type,
                            int64_t new_archive,
                            const std::string& new_rel_path) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      db_->Execute("UPDATE location_entries SET archive_id = ?, "
                   "rel_path = ? WHERE item_id = ? AND name_type = ?",
                   {db::Value::Int(new_archive),
                    db::Value::Text(new_rel_path), db::Value::Int(item_id),
                    db::Value::Text(NameTypeName(type))}));
  if (r.affected_rows == 0) {
    return Status::NotFound(
        StrFormat("no %s location for item %lld", NameTypeName(type),
                  static_cast<long long>(item_id)));
  }
  CacheEraseItem(item_id);
  return Status::Ok();
}

Status NameMapper::RemoveLocations(int64_t item_id) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      db_->Execute("DELETE FROM location_entries WHERE item_id = ?",
                   {db::Value::Int(item_id)}));
  (void)r;
  CacheEraseItem(item_id);
  return Status::Ok();
}

}  // namespace hedc::archive
