// Dynamic name mapping (§4.3).
//
// Every data item is located by constructing a name of the form
//   [type] [root] [path] [item_id]
// where each element is determined dynamically per request:
//  * the location table, queried by item id (indexed), yields the entries
//    (name type, archive id, relative path) associated with the item;
//  * the archive table, queried by archive id (indexed), yields the
//    current archive type and path prefix;
//  * the root comes from system configuration.
// The cost is exactly two extra indexed queries; the payoff is that
// administrators relocate files (disk repair, disk→tape migration, data
// reorganization) by updating location tuples only, at run time.
//
// A sharded read-through LRU cache elides the two queries on warm
// resolutions. Relocation primitives invalidate strictly: they update the
// database first, then bump a generation counter, then drop the affected
// entries; readers snapshot the generation before querying and only
// install a result if the generation is unchanged, so a resolution racing
// a relocation can never pin a stale path into the cache.
#ifndef HEDC_ARCHIVE_NAME_MAPPER_H_
#define HEDC_ARCHIVE_NAME_MAPPER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/status.h"
#include "db/database.h"

namespace hedc::archive {

enum class NameType { kFilename, kTupleId, kUrl };

const char* NameTypeName(NameType type);

struct ResolvedName {
  NameType type = NameType::kFilename;
  std::string name;       // fully constructed name
  int64_t archive_id = 0;
  std::string rel_path;   // [path][item_id] part, relative to the archive
};

class NameMapper {
 public:
  // `config` supplies the [root] elements: keys "root.filename",
  // "root.url", "root.tuple" (defaults: "", "http://hedc/data",
  // "hedc://tuple").
  NameMapper(db::Database* db, Config config);

  // Creates the location-section tables (idempotent):
  //   archives(archive_id, archive_type, path_prefix, online)
  //   location_entries(entry_id, item_id, name_type, archive_id, rel_path)
  Status Init();

  Status RegisterArchive(int64_t archive_id, const std::string& type,
                         const std::string& path_prefix);

  // Associates a name of `type` for `item_id`, stored in `archive_id`
  // under `rel_path`.
  Status AddLocation(int64_t item_id, NameType type, int64_t archive_id,
                     const std::string& rel_path);

  // Resolves one name. Cold resolutions run a single joined query
  // (location entry hash-joined to its archive); set
  // "name_mapper.joined_resolve" to false to fall back to the
  // historical two-indexed-queries plan.
  Result<ResolvedName> Resolve(int64_t item_id, NameType type);

  // All names registered for an item.
  Result<std::vector<ResolvedName>> ResolveAll(int64_t item_id);

  // Relocation primitives — none of them touch domain-specific tuples.
  // Moves every location entry from one archive to another.
  Status RelocateArchive(int64_t from_archive, int64_t to_archive);
  // Changes an archive's path prefix (e.g. new mount point).
  Status Remount(int64_t archive_id, const std::string& new_prefix);
  // Moves a single item's entry of `type` to a new archive/path.
  Status MoveItem(int64_t item_id, NameType type, int64_t new_archive,
                  const std::string& new_rel_path);

  Status RemoveLocations(int64_t item_id);

  // Drops every cached resolution and bumps the generation (admin paths
  // that mutate the location tables behind the mapper's back).
  void InvalidateCache();

 private:
  static constexpr size_t kCacheShards = 8;

  struct CacheEntry {
    uint64_t key = 0;
    ResolvedName value;
  };
  // Entries for one slice of the item-id space. All name types of an item
  // hash to the same shard, so per-item invalidation locks one shard.
  struct CacheShard {
    std::mutex mu;
    std::list<CacheEntry> lru;  // front = most recently used
    std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> index;
  };

  std::string RootFor(NameType type) const;

  static uint64_t CacheKey(int64_t item_id, NameType type);
  CacheShard& ShardFor(int64_t item_id);
  bool CacheGet(int64_t item_id, NameType type, ResolvedName* out);
  // Installs `value` unless the generation moved past `gen_snapshot`
  // (a relocation landed during the DB queries).
  void CachePut(uint64_t gen_snapshot, int64_t item_id, NameType type,
                const ResolvedName& value);
  void CacheEraseItem(int64_t item_id);

  // Uncached resolution: the entry/archive row for (item_id, type),
  // fetched joined (one statement) or via the legacy two queries.
  Result<ResolvedName> ResolveUncached(int64_t item_id, NameType type);

  db::Database* db_;
  Config config_;
  bool joined_resolve_ = true;
  size_t cache_capacity_per_shard_ = 0;  // 0 disables the cache
  std::atomic<uint64_t> cache_gen_{0};
  std::array<CacheShard, kCacheShards> cache_shards_;

  // namemap.* metrics: resolution volume/latency, miss breakdown, and the
  // two-extra-indexed-queries cost the paper trades for relocatability.
  Counter* resolutions_;
  Counter* misses_;
  Counter* db_queries_;
  Histogram* resolve_us_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* cache_invalidations_;
};

}  // namespace hedc::archive

#endif  // HEDC_ARCHIVE_NAME_MAPPER_H_
