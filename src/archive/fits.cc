#include "archive/fits.h"

#include "core/bytes.h"
#include "core/crc32.h"
#include "core/strings.h"

namespace hedc::archive {

namespace {
constexpr uint32_t kFitsMagic = 0x48465453;  // "HFTS"
constexpr uint32_t kFitsVersion = 1;
}  // namespace

const FitsCard* FitsHdu::FindCard(const std::string& key) const {
  for (const FitsCard& card : cards) {
    if (EqualsIgnoreCase(card.key, key)) return &card;
  }
  return nullptr;
}

void FitsHdu::SetCard(const std::string& key, const std::string& value,
                      const std::string& comment) {
  for (FitsCard& card : cards) {
    if (EqualsIgnoreCase(card.key, key)) {
      card.value = value;
      card.comment = comment;
      return;
    }
  }
  cards.push_back(FitsCard{key, value, comment});
}

int64_t FitsHdu::GetIntCard(const std::string& key, int64_t fallback) const {
  const FitsCard* card = FindCard(key);
  if (card == nullptr) return fallback;
  int64_t v;
  return ParseInt64(card->value, &v) ? v : fallback;
}

double FitsHdu::GetRealCard(const std::string& key, double fallback) const {
  const FitsCard* card = FindCard(key);
  if (card == nullptr) return fallback;
  double v;
  return ParseDouble(card->value, &v) ? v : fallback;
}

FitsHdu& FitsFile::primary() {
  if (hdus_.empty()) {
    hdus_.push_back(FitsHdu{"PRIMARY", {}, {}});
  }
  return hdus_.front();
}

FitsHdu& FitsFile::AddHdu(const std::string& name) {
  primary();  // ensure the primary exists first
  hdus_.push_back(FitsHdu{name, {}, {}});
  return hdus_.back();
}

const FitsHdu* FitsFile::FindHdu(const std::string& name) const {
  for (const FitsHdu& hdu : hdus_) {
    if (EqualsIgnoreCase(hdu.name, name)) return &hdu;
  }
  return nullptr;
}

size_t FitsFile::DataSize() const {
  size_t total = 0;
  for (const FitsHdu& hdu : hdus_) total += hdu.data.size();
  return total;
}

std::vector<uint8_t> FitsFile::Serialize() const {
  ByteBuffer out;
  out.PutU32(kFitsMagic);
  out.PutU32(kFitsVersion);
  out.PutVarint(hdus_.size());
  for (const FitsHdu& hdu : hdus_) {
    ByteBuffer body;
    body.PutString(hdu.name);
    body.PutVarint(hdu.cards.size());
    for (const FitsCard& card : hdu.cards) {
      body.PutString(card.key);
      body.PutString(card.value);
      body.PutString(card.comment);
    }
    body.PutVarint(hdu.data.size());
    body.PutBytes(hdu.data.data(), hdu.data.size());
    out.PutU32(Crc32(body.data()));
    out.PutVarint(body.size());
    out.PutBytes(body.data().data(), body.size());
  }
  return std::move(out).TakeData();
}

Result<FitsFile> FitsFile::Parse(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  uint32_t magic = 0, version = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kFitsMagic) {
    return Status::Corruption("not a FITS-lite file (bad magic)");
  }
  HEDC_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kFitsVersion) {
    return Status::Corruption(
        StrFormat("unsupported FITS-lite version %u", version));
  }
  uint64_t num_hdus = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&num_hdus));
  FitsFile file;
  for (uint64_t h = 0; h < num_hdus; ++h) {
    uint32_t crc = 0;
    uint64_t len = 0;
    HEDC_RETURN_IF_ERROR(reader.GetU32(&crc));
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&len));
    if (len > reader.remaining()) {
      return Status::Corruption("truncated HDU");
    }
    std::vector<uint8_t> body(len);
    HEDC_RETURN_IF_ERROR(reader.GetBytes(body.data(), len));
    if (Crc32(body) != crc) {
      return Status::Corruption(StrFormat("HDU %llu CRC mismatch",
                                          static_cast<unsigned long long>(h)));
    }
    ByteReader body_reader(body);
    FitsHdu hdu;
    HEDC_RETURN_IF_ERROR(body_reader.GetString(&hdu.name));
    uint64_t num_cards = 0;
    HEDC_RETURN_IF_ERROR(body_reader.GetVarint(&num_cards));
    for (uint64_t c = 0; c < num_cards; ++c) {
      FitsCard card;
      HEDC_RETURN_IF_ERROR(body_reader.GetString(&card.key));
      HEDC_RETURN_IF_ERROR(body_reader.GetString(&card.value));
      HEDC_RETURN_IF_ERROR(body_reader.GetString(&card.comment));
      hdu.cards.push_back(std::move(card));
    }
    uint64_t data_len = 0;
    HEDC_RETURN_IF_ERROR(body_reader.GetVarint(&data_len));
    hdu.data.resize(data_len);
    HEDC_RETURN_IF_ERROR(body_reader.GetBytes(hdu.data.data(), data_len));
    file.hdus_.push_back(std::move(hdu));
  }
  return file;
}

}  // namespace hedc::archive
