// "hzip": the gnu-zip stand-in used on raw data units (§2.1).
//
// LZSS-style codec: greedy longest-match against a 64 KiB sliding window,
// emitting literal runs and (distance, length) back-references with varint
// coding. Not deflate-compatible, but exercises the identical code path
// (decompress-on-load, compress-on-archive) with real ratio/speed
// trade-offs on the photon-list payloads.
#ifndef HEDC_ARCHIVE_COMPRESSION_H_
#define HEDC_ARCHIVE_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace hedc::archive {

// Compresses `input`; output starts with a magic/size header and is always
// decodable by Decompress (worst case ~ input + small overhead).
std::vector<uint8_t> Compress(const std::vector<uint8_t>& input);

Result<std::vector<uint8_t>> Decompress(const std::vector<uint8_t>& input);

// True if `bytes` begins with the hzip magic.
bool IsCompressed(const std::vector<uint8_t>& bytes);

}  // namespace hedc::archive

#endif  // HEDC_ARCHIVE_COMPRESSION_H_
