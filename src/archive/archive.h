// Archive backends: where the actual data files live.
//
// §2.3: raw data on hard disks archived to CDs, secondary data on RAID5,
// remote archives over NFS, and a tape archive for files "not needed
// on-line". Each backend has a distinct access profile which the clock
// models: disks are fast, tapes pay a mount+seek penalty per read, remote
// archives pay latency + bandwidth.
#ifndef HEDC_ARCHIVE_ARCHIVE_H_
#define HEDC_ARCHIVE_ARCHIVE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/status.h"

namespace hedc::archive {

enum class ArchiveType { kDisk, kTape, kRemote };

const char* ArchiveTypeName(ArchiveType type);

class Archive {
 public:
  virtual ~Archive() = default;

  virtual ArchiveType type() const = 0;

  virtual Status Write(const std::string& path,
                       const std::vector<uint8_t>& data) = 0;
  virtual Result<std::vector<uint8_t>> Read(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) const = 0;
  virtual Status Delete(const std::string& path) = 0;
  virtual std::vector<std::string> List() const = 0;

  // Size of one stored file, for chunked readers planning their loop.
  // The base implementation reads the whole file; backends override with
  // a metadata lookup.
  virtual Result<uint64_t> SizeOf(const std::string& path);

  // Reads up to `len` bytes starting at `offset` into `out`; returns the
  // number of bytes copied (0 exactly at EOF). The base implementation
  // slurps and slices — backends override so large files never
  // materialize wholesale on the read path.
  virtual Result<size_t> ReadRange(const std::string& path, uint64_t offset,
                                   uint8_t* out, size_t len);

  // Total bytes stored.
  virtual uint64_t BytesStored() const = 0;
};

// In-memory "disk" archive: path -> bytes. (The metadata DB provides the
// durable record; file payloads are regenerable from raw units, matching
// the paper's "no-backup RAID5" tier.) An optional byte cost per access is
// charged to `clock` to model disk bandwidth.
class DiskArchive : public Archive {
 public:
  struct Costs {
    Micros read_latency = 0;
    double read_micros_per_kb = 0;
    Micros write_latency = 0;
    double write_micros_per_kb = 0;
  };

  DiskArchive() : DiskArchive(nullptr, Costs()) {}
  explicit DiskArchive(Clock* clock) : DiskArchive(clock, Costs()) {}
  DiskArchive(Clock* clock, Costs costs);

  ArchiveType type() const override { return ArchiveType::kDisk; }
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override;
  Result<std::vector<uint8_t>> Read(const std::string& path) override;
  bool Exists(const std::string& path) const override;
  Status Delete(const std::string& path) override;
  std::vector<std::string> List() const override;
  Result<uint64_t> SizeOf(const std::string& path) override;
  Result<size_t> ReadRange(const std::string& path, uint64_t offset,
                           uint8_t* out, size_t len) override;
  uint64_t BytesStored() const override;

 private:
  Clock* clock_;
  Costs costs_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<uint8_t>> files_;
  uint64_t bytes_ = 0;
};

// Tape archive: wraps an inner archive, charging a mount penalty on the
// first access and a seek penalty per read (sequential medium).
class TapeArchive : public Archive {
 public:
  struct Costs {
    Micros mount_cost = 30 * kMicrosPerSecond;
    Micros seek_cost = 5 * kMicrosPerSecond;
    double read_micros_per_kb = 100.0;
  };

  TapeArchive(std::unique_ptr<Archive> inner, Clock* clock)
      : TapeArchive(std::move(inner), clock, Costs()) {}
  TapeArchive(std::unique_ptr<Archive> inner, Clock* clock, Costs costs);

  ArchiveType type() const override { return ArchiveType::kTape; }
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override;
  Result<std::vector<uint8_t>> Read(const std::string& path) override;
  bool Exists(const std::string& path) const override;
  Status Delete(const std::string& path) override;
  std::vector<std::string> List() const override;
  Result<uint64_t> SizeOf(const std::string& path) override;
  // Charges mount+seek once (at offset 0) and bandwidth per chunk — a
  // streamed sequential read costs the same as one whole-file read.
  Result<size_t> ReadRange(const std::string& path, uint64_t offset,
                           uint8_t* out, size_t len) override;
  uint64_t BytesStored() const override;

  bool mounted() const { return mounted_; }
  void Unmount() { mounted_ = false; }

 private:
  void ChargeAccess(size_t bytes);

  std::unique_ptr<Archive> inner_;
  Clock* clock_;
  Costs costs_;
  bool mounted_ = false;
};

// Remote (NFS/HTTP) archive: latency + bandwidth costs; can be marked
// offline, after which accesses fail with kUnavailable (synoptic search is
// "best effort ... if a query to a remote archive times out, no results
// are available", §6.4).
class RemoteArchive : public Archive {
 public:
  struct Costs {
    Micros round_trip = 20 * kMicrosPerMilli;
    double transfer_micros_per_kb = 500.0;  // ~2 MB/s, §8.1
  };

  RemoteArchive(std::unique_ptr<Archive> inner, Clock* clock)
      : RemoteArchive(std::move(inner), clock, Costs()) {}
  RemoteArchive(std::unique_ptr<Archive> inner, Clock* clock, Costs costs);

  ArchiveType type() const override { return ArchiveType::kRemote; }
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override;
  Result<std::vector<uint8_t>> Read(const std::string& path) override;
  bool Exists(const std::string& path) const override;
  Status Delete(const std::string& path) override;
  std::vector<std::string> List() const override;
  Result<uint64_t> SizeOf(const std::string& path) override;
  // Charges the round trip once (at offset 0) and transfer per chunk.
  Result<size_t> ReadRange(const std::string& path, uint64_t offset,
                           uint8_t* out, size_t len) override;
  uint64_t BytesStored() const override;

  void set_online(bool online) { online_ = online; }
  bool online() const { return online_; }

 private:
  void ChargeAccess(size_t bytes);

  std::unique_ptr<Archive> inner_;
  Clock* clock_;
  Costs costs_;
  bool online_ = true;
};

// Registry mapping archive ids to backends plus online/capacity metadata.
class ArchiveManager {
 public:
  struct Info {
    int64_t archive_id = 0;
    ArchiveType type = ArchiveType::kDisk;
    std::string root;      // mount point / URL prefix
    bool online = true;
  };

  // Registers `archive` under `info.archive_id`; replaces any previous
  // registration with that id.
  void Register(Info info, std::unique_ptr<Archive> archive);

  Archive* Get(int64_t archive_id);
  const Info* GetInfo(int64_t archive_id) const;
  Status SetOnline(int64_t archive_id, bool online);
  std::vector<Info> ListArchives() const;

 private:
  mutable std::mutex mu_;
  std::map<int64_t, std::pair<Info, std::unique_ptr<Archive>>> archives_;
};

}  // namespace hedc::archive

#endif  // HEDC_ARCHIVE_ARCHIVE_H_
