#include "dm/remote.h"

#include "core/bytes.h"
#include "db/wal.h"  // value/row codec

namespace hedc::dm {

namespace {

enum class RmiOp : uint8_t {
  kQuery = 1,       // sql + params -> ResultSet
  kExecute = 2,     // sql + params -> ResultSet (update pool)
  kReadFile = 3,    // item_id -> bytes
  kLog = 4,         // component + message -> ok
};

enum class RmiResult : uint8_t { kOk = 0, kError = 1 };

const char* OpName(uint8_t op) {
  switch (static_cast<RmiOp>(op)) {
    case RmiOp::kQuery:
      return "query";
    case RmiOp::kExecute:
      return "execute";
    case RmiOp::kReadFile:
      return "read_file";
    case RmiOp::kLog:
      return "log";
  }
  return "unknown";
}

void EncodeParams(const std::vector<db::Value>& params, ByteBuffer* out) {
  out->PutVarint(params.size());
  for (const db::Value& v : params) db::EncodeValue(v, out);
}

Status DecodeParams(ByteReader* in, std::vector<db::Value>* out) {
  uint64_t n = 0;
  HEDC_RETURN_IF_ERROR(in->GetVarint(&n));
  out->clear();
  for (uint64_t i = 0; i < n; ++i) {
    db::Value v;
    HEDC_RETURN_IF_ERROR(db::DecodeValue(in, &v));
    out->push_back(std::move(v));
  }
  return Status::Ok();
}

std::vector<uint8_t> ErrorFrame(const Status& status) {
  ByteBuffer out;
  out.PutU8(static_cast<uint8_t>(RmiResult::kError));
  out.PutU8(static_cast<uint8_t>(status.code()));
  out.PutString(status.message());
  return std::move(out).TakeData();
}

// Decodes a response frame into either a payload reader position or an
// error status.
Status CheckResponse(ByteReader* reader) {
  uint8_t tag = 0;
  HEDC_RETURN_IF_ERROR(reader->GetU8(&tag));
  if (tag == static_cast<uint8_t>(RmiResult::kOk)) return Status::Ok();
  uint8_t code = 0;
  std::string message;
  HEDC_RETURN_IF_ERROR(reader->GetU8(&code));
  HEDC_RETURN_IF_ERROR(reader->GetString(&message));
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace

void EncodeCallHeader(const CallHeader& header, ByteBuffer* out) {
  out->PutU8(kRmiFrameMagic);
  out->PutU8(kRmiFrameVersion);
  out->PutSignedVarint(header.trace_id);
  out->PutU8(header.op);
}

Status DecodeCallHeader(ByteReader* in, CallHeader* out) {
  uint8_t magic = 0;
  uint8_t version = 0;
  HEDC_RETURN_IF_ERROR(in->GetU8(&magic));
  if (magic != kRmiFrameMagic) {
    return Status::Corruption("bad RMI frame magic");
  }
  HEDC_RETURN_IF_ERROR(in->GetU8(&version));
  if (version != kRmiFrameVersion) {
    return Status::Corruption("unsupported RMI frame version " +
                              std::to_string(version));
  }
  HEDC_RETURN_IF_ERROR(in->GetSignedVarint(&out->trace_id));
  return in->GetU8(&out->op);
}

void EncodeResultSet(const db::ResultSet& rs, ByteBuffer* out) {
  out->PutVarint(rs.columns.size());
  for (const std::string& c : rs.columns) out->PutString(c);
  out->PutVarint(rs.rows.size());
  for (const db::Row& row : rs.rows) db::EncodeRow(row, out);
  out->PutSignedVarint(rs.affected_rows);
  out->PutSignedVarint(rs.last_insert_row_id);
}

Status DecodeResultSet(ByteReader* in, db::ResultSet* out) {
  uint64_t num_cols = 0;
  HEDC_RETURN_IF_ERROR(in->GetVarint(&num_cols));
  out->columns.clear();
  for (uint64_t i = 0; i < num_cols; ++i) {
    std::string c;
    HEDC_RETURN_IF_ERROR(in->GetString(&c));
    out->columns.push_back(std::move(c));
  }
  uint64_t num_rows = 0;
  HEDC_RETURN_IF_ERROR(in->GetVarint(&num_rows));
  out->rows.clear();
  for (uint64_t i = 0; i < num_rows; ++i) {
    db::Row row;
    HEDC_RETURN_IF_ERROR(db::DecodeRow(in, &row));
    out->rows.push_back(std::move(row));
  }
  HEDC_RETURN_IF_ERROR(in->GetSignedVarint(&out->affected_rows));
  HEDC_RETURN_IF_ERROR(in->GetSignedVarint(&out->last_insert_row_id));
  return Status::Ok();
}

std::vector<uint8_t> RmiServer::Handle(const std::vector<uint8_t>& request) {
  calls_handled_.fetch_add(1, std::memory_order_relaxed);
  dm_->CountRequest();
  metrics_->GetCounter("remote.server.calls")->Add();
  ByteReader reader(request);
  CallHeader header;
  Status header_status = DecodeCallHeader(&reader, &header);
  if (!header_status.ok()) {
    metrics_->GetCounter("remote.server.bad_frames")->Add();
    return ErrorFrame(header_status);
  }
  uint8_t op = header.op;
  TraceSpan span(header.trace_id, "dm-remote", OpName(op), metrics_);

  switch (static_cast<RmiOp>(op)) {
    case RmiOp::kQuery:
    case RmiOp::kExecute: {
      std::string sql;
      std::vector<db::Value> params;
      Status s = reader.GetString(&sql);
      if (s.ok()) s = DecodeParams(&reader, &params);
      if (!s.ok()) return ErrorFrame(s);
      Result<db::ResultSet> rs = dm_->database()->Execute(sql, params);
      if (!rs.ok()) return ErrorFrame(rs.status());
      ByteBuffer out;
      out.PutU8(static_cast<uint8_t>(RmiResult::kOk));
      EncodeResultSet(rs.value(), &out);
      return std::move(out).TakeData();
    }
    case RmiOp::kReadFile: {
      int64_t item_id = 0;
      Status s = reader.GetSignedVarint(&item_id);
      if (!s.ok()) return ErrorFrame(s);
      Result<std::vector<uint8_t>> data = dm_->io().ReadItemFile(item_id);
      if (!data.ok()) return ErrorFrame(data.status());
      ByteBuffer out;
      out.PutU8(static_cast<uint8_t>(RmiResult::kOk));
      out.PutVarint(data.value().size());
      out.PutBytes(data.value().data(), data.value().size());
      return std::move(out).TakeData();
    }
    case RmiOp::kLog: {
      std::string component, message;
      Status s = reader.GetString(&component);
      if (s.ok()) s = reader.GetString(&message);
      if (s.ok()) s = dm_->LogOperational(component, message);
      if (!s.ok()) return ErrorFrame(s);
      ByteBuffer out;
      out.PutU8(static_cast<uint8_t>(RmiResult::kOk));
      return std::move(out).TakeData();
    }
  }
  return ErrorFrame(Status::Corruption("unknown RMI opcode"));
}

Result<std::vector<uint8_t>> InProcessChannel::Call(
    const std::vector<uint8_t>& request) {
  if (!connected_) return Status::Unavailable("channel disconnected");
  std::vector<uint8_t> response = server_->Handle(request);
  if (clock_ != nullptr) {
    clock_->SleepFor(per_call_latency_ +
                     static_cast<Micros>(
                         micros_per_kb_ *
                         static_cast<double>(request.size() +
                                             response.size()) /
                         1024.0));
  }
  return response;
}

Result<db::ResultSet> RemoteDm::Query(const QuerySpec& spec) {
  std::vector<db::Value> params;
  HEDC_ASSIGN_OR_RETURN(std::string sql, spec.ToSql(&params));
  return Execute(sql, params);
}

Result<std::vector<uint8_t>> RemoteDm::Roundtrip(uint8_t op,
                                                 const char* span_name,
                                                 ByteBuffer payload) {
  ByteBuffer request;
  EncodeCallHeader({trace_id_, op}, &request);
  request.PutBytes(payload.data().data(), payload.size());
  TraceSpan span(trace_id_, "remote-client", span_name, metrics_);
  return channel_->Call(request.data());
}

Result<db::ResultSet> RemoteDm::Execute(
    const std::string& sql, const std::vector<db::Value>& params) {
  ByteBuffer payload;
  payload.PutString(sql);
  EncodeParams(params, &payload);
  HEDC_ASSIGN_OR_RETURN(
      std::vector<uint8_t> response,
      Roundtrip(static_cast<uint8_t>(RmiOp::kQuery), "query",
                std::move(payload)));
  ByteReader reader(response);
  HEDC_RETURN_IF_ERROR(CheckResponse(&reader));
  db::ResultSet rs;
  HEDC_RETURN_IF_ERROR(DecodeResultSet(&reader, &rs));
  return rs;
}

Result<std::vector<uint8_t>> RemoteDm::ReadItemFile(int64_t item_id) {
  ByteBuffer payload;
  payload.PutSignedVarint(item_id);
  HEDC_ASSIGN_OR_RETURN(
      std::vector<uint8_t> response,
      Roundtrip(static_cast<uint8_t>(RmiOp::kReadFile), "read_file",
                std::move(payload)));
  ByteReader reader(response);
  HEDC_RETURN_IF_ERROR(CheckResponse(&reader));
  uint64_t n = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&n));
  if (n > reader.remaining()) {
    return Status::Corruption("file payload length past end of frame");
  }
  std::vector<uint8_t> data(n);
  HEDC_RETURN_IF_ERROR(reader.GetBytes(data.data(), n));
  return data;
}

Status RemoteDm::LogOperational(const std::string& component,
                                const std::string& message) {
  ByteBuffer payload;
  payload.PutString(component);
  payload.PutString(message);
  HEDC_ASSIGN_OR_RETURN(
      std::vector<uint8_t> response,
      Roundtrip(static_cast<uint8_t>(RmiOp::kLog), "log",
                std::move(payload)));
  ByteReader reader(response);
  return CheckResponse(&reader);
}

}  // namespace hedc::dm
