#include "dm/process_layer.h"

#include <set>

#include "core/strings.h"
#include "wavelet/codec.h"

namespace hedc::dm {

ProcessLayer::ProcessLayer(DataManager* dm, int64_t raw_archive_id)
    : dm_(dm), raw_archive_id_(raw_archive_id) {}

bool ProcessLayer::WriteViewFile(const rhessi::RawDataUnit& unit) {
  // One 1024-bin signal per aggregate: photon counts for COUNT-style
  // browse queries, summed keV for energy SUMs. Each is stored as a
  // prefix-decodable progressive stream, so any byte prefix of the HDU
  // serves a coarser resolution of the same view.
  std::vector<double> counts(1024, 0.0);
  std::vector<double> energies(1024, 0.0);
  double lo = unit.t_start;
  double hi = unit.t_stop + 1e-6;
  if (hi <= lo) return false;
  double width = (hi - lo) / static_cast<double>(counts.size());
  for (const rhessi::PhotonEvent& p : unit.photons) {
    if (p.time_sec < lo || p.time_sec >= hi) continue;
    size_t b = static_cast<size_t>((p.time_sec - lo) / width);
    if (b >= counts.size()) b = counts.size() - 1;
    counts[b] += 1.0;
    energies[b] += p.energy_kev;
  }

  archive::FitsFile fits;
  fits.primary().SetCard("UNIT_ID", std::to_string(unit.unit_id),
                         "wavelet view of raw unit");
  fits.primary().SetCard("KIND", "wavelet-view", "");
  fits.primary().SetCard("CALVER", std::to_string(unit.calibration_version),
                         "calibration version the view derives from");
  fits.AddHdu("VIEW").data = wavelet::EncodeSignalProgressive(counts);
  fits.AddHdu("VIEW_E").data = wavelet::EncodeSignalProgressive(energies);
  std::vector<uint8_t> bytes = fits.Serialize();

  int64_t item_id = ViewItemId(unit.unit_id);
  Result<archive::ResolvedName> name =
      dm_->io().name_mapper()->Resolve(item_id, archive::NameType::kFilename);
  if (name.ok()) {
    // Rebuild (recalibration): overwrite in place, the location tuple
    // stays valid.
    archive::Archive* arch = dm_->io().archives()->Get(name.value().archive_id);
    return arch != nullptr && arch->Write(name.value().rel_path, bytes).ok();
  }
  return dm_->io()
      .WriteItemFile(item_id, raw_archive_id_, "views", bytes)
      .ok();
}

Result<int64_t> ProcessLayer::InsertRawUnitTuple(
    const rhessi::RawDataUnit& unit, size_t file_bytes) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      dm_->io().Update(
          "raw_units",
          "INSERT INTO raw_units VALUES (?, ?, ?, ?, ?, ?, 'FITS', ?, "
          "'online')",
          {db::Value::Int(unit.unit_id), db::Value::Real(unit.t_start),
           db::Value::Real(unit.t_stop),
           db::Value::Int(static_cast<int64_t>(unit.photons.size())),
           db::Value::Int(unit.calibration_version),
           db::Value::Int(static_cast<int64_t>(file_bytes)),
           db::Value::Real(static_cast<double>(dm_->clock()->Now()) /
                           kMicrosPerSecond)}));
  (void)r;
  return unit.unit_id;
}

Result<DataLoadReport> ProcessLayer::LoadRawUnit(
    const Session& import_session, const std::vector<uint8_t>& packed) {
  // Step 1: unpack & validate.
  HEDC_ASSIGN_OR_RETURN(rhessi::RawDataUnit unit,
                        rhessi::RawDataUnit::Unpack(packed));
  if (unit.unit_id <= 0) {
    return Status::InvalidArgument("raw unit has no id");
  }

  DataLoadReport report;
  report.unit_id = unit.unit_id;
  report.photons = unit.photons.size();
  report.file_bytes = packed.size();

  // Compensation state.
  bool file_written = false;
  bool tuple_written = false;
  bool view_written = false;
  auto compensate = [&]() {
    if (view_written) {
      dm_->io().DeleteItemFile(ViewItemId(unit.unit_id));
    }
    if (file_written) {
      dm_->io().DeleteItemFile(unit.unit_id);
    }
    if (tuple_written) {
      dm_->io().Update("raw_units", "DELETE FROM raw_units WHERE unit_id = ?",
                       {db::Value::Int(unit.unit_id)});
    }
    dm_->LogOperational("ProcessLayer",
                        StrFormat("load of unit %lld compensated",
                                  static_cast<long long>(unit.unit_id)));
  };

  // Step 2: store file + tuple + locations.
  Status write = dm_->io().WriteItemFile(unit.unit_id, raw_archive_id_,
                                         "raw", packed);
  if (!write.ok()) {
    compensate();
    return write;
  }
  file_written = true;
  Result<int64_t> tuple = InsertRawUnitTuple(unit, packed.size());
  if (!tuple.ok()) {
    compensate();
    return tuple.status();
  }
  tuple_written = true;

  // Step 3: event detection.
  std::vector<rhessi::DetectedEvent> events =
      rhessi::DetectEvents(unit.photons);

  // Step 4: HLEs + standard catalog.
  Result<CatalogRecord> standard =
      dm_->semantics().GetCatalogByName(import_session, "standard");
  int64_t catalog_id;
  if (standard.ok()) {
    catalog_id = standard.value().catalog_id;
  } else {
    Result<int64_t> created = dm_->semantics().CreateCatalog(
        import_session, "standard", "auto-generated event catalog", true);
    if (!created.ok()) {
      compensate();
      return created.status();
    }
    catalog_id = created.value();
  }
  report.standard_catalog_id = catalog_id;

  for (const rhessi::DetectedEvent& event : events) {
    HleRecord hle;
    hle.is_public = true;
    hle.event_type = rhessi::EventKindName(event.kind);
    hle.t_start = event.t_start;
    hle.t_end = event.t_end;
    hle.e_min = rhessi::kMinEnergyKev;
    hle.e_max = rhessi::kMaxEnergyKev;
    hle.peak_rate = event.peak_rate;
    hle.peak_energy = event.peak_energy_kev;
    hle.photon_count = event.photon_count;
    hle.unit_id = unit.unit_id;
    hle.calibration_version = unit.calibration_version;
    hle.source = "auto-detect";
    Result<int64_t> hle_id = dm_->semantics().CreateHle(import_session, hle);
    if (!hle_id.ok()) {
      compensate();
      return hle_id.status();
    }
    Status member = dm_->semantics().AddToCatalog(import_session, catalog_id,
                                                  hle_id.value());
    if (!member.ok()) {
      compensate();
      return member;
    }
    dm_->semantics().RecordLineage(hle_id.value(), unit.unit_id,
                                   "event-detect", unit.calibration_version,
                                   "");
    report.hle_ids.push_back(hle_id.value());
  }

  // Step 5: wavelet-preprocessed progressive views (count + energy).
  view_written = WriteViewFile(unit);

  // Step 6: log.
  dm_->LogOperational(
      "ProcessLayer",
      StrFormat("loaded unit %lld: %zu photons, %zu events",
                static_cast<long long>(unit.unit_id), unit.photons.size(),
                events.size()));
  return report;
}

Status ProcessLayer::RelocateItems(const std::vector<int64_t>& item_ids,
                                   int64_t from_archive, int64_t to_archive,
                                   const std::string& new_rel_path) {
  archive::Archive* src = dm_->io().archives()->Get(from_archive);
  archive::Archive* dst = dm_->io().archives()->Get(to_archive);
  if (src == nullptr || dst == nullptr) {
    return Status::Unavailable("relocation endpoints must be online");
  }
  struct Moved {
    int64_t item_id;
    std::string old_rel_path;  // resolved path relative to the archive
    std::string new_path;
  };
  std::vector<Moved> moved;
  auto compensate = [&]() {
    for (auto it = moved.rbegin(); it != moved.rend(); ++it) {
      // Restore the bytes at the source before dropping the copy, then
      // repoint the location tuple back.
      Result<std::vector<uint8_t>> data = dst->Read(it->new_path);
      if (data.ok()) {
        src->Write(it->old_rel_path, data.value());
      }
      dst->Delete(it->new_path);
      dm_->io().name_mapper()->MoveItem(
          it->item_id, archive::NameType::kFilename, from_archive,
          // strip the trailing "/<item_id>" to recover the stored prefix
          it->old_rel_path.substr(
              0, it->old_rel_path.rfind('/')));
    }
    dm_->LogOperational("ProcessLayer", "relocation compensated");
  };

  for (int64_t item_id : item_ids) {
    // Step 1: query + alter the location tuple last (after the copy), so
    // readers never see a dangling name.
    Result<archive::ResolvedName> name = dm_->io().name_mapper()->Resolve(
        item_id, archive::NameType::kFilename);
    if (!name.ok()) {
      compensate();
      return name.status();
    }
    Result<std::vector<uint8_t>> data = src->Read(name.value().rel_path);
    if (!data.ok()) {
      compensate();
      return data.status();
    }
    std::string new_path = new_rel_path + "/" + std::to_string(item_id);
    Status copy = dst->Write(new_path, data.value());
    if (!copy.ok()) {
      compensate();
      return copy;
    }
    Status repoint = dm_->io().name_mapper()->MoveItem(
        item_id, archive::NameType::kFilename, to_archive, new_rel_path);
    if (!repoint.ok()) {
      dst->Delete(new_path);
      compensate();
      return repoint;
    }
    src->Delete(name.value().rel_path);
    moved.push_back(Moved{item_id, name.value().rel_path, new_path});
  }
  dm_->LogOperational(
      "ProcessLayer",
      StrFormat("relocated %zu items from archive %lld to %lld",
                moved.size(), static_cast<long long>(from_archive),
                static_cast<long long>(to_archive)));
  return Status::Ok();
}

Result<DataLoadReport> ProcessLayer::RecalibrateUnit(
    const Session& session, int64_t unit_id,
    const rhessi::CalibrationTable& calibrations, int new_version) {
  // Fetch the current unit file.
  HEDC_ASSIGN_OR_RETURN(std::vector<uint8_t> packed,
                        dm_->io().ReadItemFile(unit_id));
  HEDC_ASSIGN_OR_RETURN(rhessi::RawDataUnit unit,
                        rhessi::RawDataUnit::Unpack(packed));
  HEDC_ASSIGN_OR_RETURN(
      rhessi::PhotonList recalibrated,
      calibrations.Recalibrate(unit.photons, unit.calibration_version,
                               new_version));
  rhessi::RawDataUnit new_unit = unit;
  new_unit.photons = std::move(recalibrated);
  int old_version = unit.calibration_version;
  new_unit.calibration_version = new_version;

  // Overwrite the file in place (same item id — the raw unit identity is
  // stable; version is tracked in the tuple + lineage).
  HEDC_ASSIGN_OR_RETURN(
      archive::ResolvedName name,
      dm_->io().name_mapper()->Resolve(unit_id,
                                       archive::NameType::kFilename));
  archive::Archive* arch = dm_->io().archives()->Get(name.archive_id);
  if (arch == nullptr) return Status::Unavailable("raw archive offline");
  std::vector<uint8_t> new_packed = new_unit.Pack();
  HEDC_RETURN_IF_ERROR(arch->Write(name.rel_path, new_packed));
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet upd,
      dm_->io().Update(
          "raw_units",
          "UPDATE raw_units SET calibration_version = ?, file_bytes = ? "
          "WHERE unit_id = ?",
          {db::Value::Int(new_version),
           db::Value::Int(static_cast<int64_t>(new_packed.size())),
           db::Value::Int(unit_id)}));
  (void)upd;
  dm_->semantics().RecordLineage(
      unit_id, unit_id, "recalibrate", new_version,
      StrFormat("from_version=%d", old_version));
  // Version bump is durable: dependent derived products are now stale.
  if (unit_invalidator_) unit_invalidator_(unit_id);
  // Re-derive the progressive views from the recalibrated photons so a
  // post-invalidation prefix request rebuilds against fresh data.
  WriteViewFile(new_unit);

  // Supersede HLEs derived from this unit: re-detect on the new photons.
  DataLoadReport report;
  report.unit_id = unit_id;
  report.photons = new_unit.photons.size();
  report.file_bytes = new_packed.size();

  QuerySpec affected("hle");
  affected.Where("unit_id", CondOp::kEq, db::Value::Int(unit_id))
      .Where("superseded_by", CondOp::kEq, db::Value::Int(0));
  HEDC_ASSIGN_OR_RETURN(db::ResultSet old_hles, dm_->io().Query(affected));

  std::vector<rhessi::DetectedEvent> events =
      rhessi::DetectEvents(new_unit.photons);
  for (size_t i = 0; i < old_hles.num_rows(); ++i) {
    int64_t old_id = old_hles.Get(i, "hle_id").AsInt();
    // The re-detected event overlapping the old HLE becomes its successor.
    double old_start = old_hles.Get(i, "t_start").AsReal();
    double old_end = old_hles.Get(i, "t_end").AsReal();
    const rhessi::DetectedEvent* match = nullptr;
    for (const rhessi::DetectedEvent& e : events) {
      if (e.t_start < old_end && e.t_end > old_start) {
        match = &e;
        break;
      }
    }
    if (match == nullptr) continue;  // event vanished under recalibration
    HleRecord successor;
    successor.is_public = old_hles.Get(i, "is_public").AsBool();
    successor.event_type = rhessi::EventKindName(match->kind);
    successor.t_start = match->t_start;
    successor.t_end = match->t_end;
    successor.e_min = rhessi::kMinEnergyKev;
    successor.e_max = rhessi::kMaxEnergyKev;
    successor.peak_rate = match->peak_rate;
    successor.peak_energy = match->peak_energy_kev;
    successor.photon_count = match->photon_count;
    successor.unit_id = unit_id;
    successor.calibration_version = new_version;
    successor.source = "recalibration";
    Result<int64_t> new_id =
        dm_->semantics().SupersedeHle(session, old_id, successor);
    if (new_id.ok()) report.hle_ids.push_back(new_id.value());
  }
  dm_->LogOperational(
      "ProcessLayer",
      StrFormat("recalibrated unit %lld to version %d (%zu HLEs superseded)",
                static_cast<long long>(unit_id), new_version,
                report.hle_ids.size()));
  return report;
}

Result<int64_t> ProcessLayer::LoadPhoenixSpectrogram(
    const Session& session, const rhessi::PhoenixSpectrogram& spectrum) {
  // Domain-slice DDL on demand; the generic sections are untouched.
  db::Database* db = dm_->io().DatabaseFor("phoenix_spectra");
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet ddl,
      db->Execute("CREATE TABLE IF NOT EXISTS phoenix_spectra ("
                  "spectrum_id INT PRIMARY KEY, t_start REAL, t_end REAL, "
                  "freq_lo REAL, freq_hi REAL, time_bins INT, "
                  "freq_channels INT, file_bytes INT)"));
  (void)ddl;
  Result<db::ResultSet> idx = db->Execute(
      "CREATE INDEX phoenix_by_id ON phoenix_spectra (spectrum_id) "
      "USING HASH");
  if (!idx.ok() && idx.status().code() != StatusCode::kAlreadyExists) {
    return idx.status();
  }
  if (spectrum.spectrum_id <= 0) {
    return Status::InvalidArgument("spectrum needs a positive id");
  }

  std::vector<uint8_t> bytes = spectrum.ToFits().Serialize();
  HEDC_RETURN_IF_ERROR(dm_->io().WriteItemFile(
      PhoenixItemId(spectrum.spectrum_id), raw_archive_id_, "phoenix",
      bytes));
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet ins,
      dm_->io().Update(
          "phoenix_spectra",
          "INSERT INTO phoenix_spectra VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
          {db::Value::Int(spectrum.spectrum_id),
           db::Value::Real(spectrum.t_start),
           db::Value::Real(spectrum.t_end),
           db::Value::Real(spectrum.freq_lo_mhz),
           db::Value::Real(spectrum.freq_hi_mhz),
           db::Value::Int(static_cast<int64_t>(spectrum.time_bins)),
           db::Value::Int(static_cast<int64_t>(spectrum.freq_channels)),
           db::Value::Int(static_cast<int64_t>(bytes.size()))}));
  (void)ins;

  // Radio bursts become HLEs in the "phoenix" part of the extended
  // catalog.
  Result<CatalogRecord> existing =
      dm_->semantics().GetCatalogByName(session, "phoenix");
  int64_t catalog_id;
  if (existing.ok()) {
    catalog_id = existing.value().catalog_id;
  } else {
    HEDC_ASSIGN_OR_RETURN(
        catalog_id,
        dm_->semantics().CreateCatalog(session, "phoenix",
                                       "Phoenix-2 radio events", true));
  }
  for (const rhessi::RadioBurst& burst :
       rhessi::DetectRadioBursts(spectrum)) {
    HleRecord hle;
    hle.is_public = true;
    hle.event_type = "radio_burst";
    hle.t_start = burst.t_start;
    hle.t_end = burst.t_end;
    hle.e_min = spectrum.freq_lo_mhz;  // frequency band, not keV
    hle.e_max = spectrum.freq_hi_mhz;
    hle.peak_rate = burst.peak_intensity;
    hle.unit_id = PhoenixItemId(spectrum.spectrum_id);
    hle.source = "phoenix-2";
    HEDC_ASSIGN_OR_RETURN(int64_t hle_id,
                          dm_->semantics().CreateHle(session, hle));
    HEDC_RETURN_IF_ERROR(
        dm_->semantics().AddToCatalog(session, catalog_id, hle_id));
    dm_->semantics().RecordLineage(hle_id,
                                   PhoenixItemId(spectrum.spectrum_id),
                                   "radio-burst-detect", 0, "");
  }
  dm_->LogOperational(
      "ProcessLayer",
      StrFormat("loaded phoenix spectrum %lld (%zu bytes)",
                static_cast<long long>(spectrum.spectrum_id),
                bytes.size()));
  return spectrum.spectrum_id;
}

Result<int64_t> ProcessLayer::PurgeStaleAnalyses(const Session& session,
                                                 double older_than_sec) {
  if (!session.profile.is_super) {
    return Status::PermissionDenied("purging requires a super account");
  }
  QuerySpec spec("ana");
  spec.Select("ana_id")
      .Where("created_time", CondOp::kLt, db::Value::Real(older_than_sec))
      .Where("is_public", CondOp::kEq, db::Value::Bool(false))
      .Where("superseded_by", CondOp::kEq, db::Value::Int(0));
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, dm_->io().Query(spec));
  int64_t purged = 0;
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    int64_t ana_id = rs.Get(i, "ana_id").AsInt();
    // Files first (a tuple without a file is recoverable; the reverse
    // dangles).
    Status drop_file = dm_->io().DeleteItemFile(2000000000 + ana_id);
    if (!drop_file.ok() && !drop_file.IsNotFound()) return drop_file;
    HEDC_ASSIGN_OR_RETURN(
        db::ResultSet del,
        dm_->io().Update("ana", "DELETE FROM ana WHERE ana_id = ?",
                         {db::Value::Int(ana_id)}));
    (void)del;
    HEDC_ASSIGN_OR_RETURN(
        db::ResultSet lineage,
        dm_->io().Update("lineage", "DELETE FROM lineage WHERE item_id = ?",
                         {db::Value::Int(ana_id)}));
    (void)lineage;
    if (ana_purge_listener_) ana_purge_listener_(ana_id);
    ++purged;
  }
  dm_->LogOperational(
      "ProcessLayer",
      StrFormat("purged %lld stale private analyses",
                static_cast<long long>(purged)));
  return purged;
}

Result<int64_t> ProcessLayer::GenerateCatalog(const Session& session,
                                              const std::string& catalog_name,
                                              const std::string& event_type) {
  Result<CatalogRecord> existing =
      dm_->semantics().GetCatalogByName(session, catalog_name);
  int64_t catalog_id;
  if (existing.ok()) {
    catalog_id = existing.value().catalog_id;
  } else {
    HEDC_ASSIGN_OR_RETURN(
        catalog_id,
        dm_->semantics().CreateCatalog(
            session, catalog_name,
            "generated: event_type = " + event_type, false));
  }
  QuerySpec spec("hle");
  spec.Select("hle_id")
      .Where("event_type", CondOp::kEq, db::Value::Text(event_type))
      .Where("superseded_by", CondOp::kEq, db::Value::Int(0));
  if (!session.view_predicate.empty()) {
    spec.RawPredicate(session.view_predicate);
  }
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, dm_->io().Query(spec));
  // Skip HLEs already in the catalog (idempotent regeneration).
  HEDC_ASSIGN_OR_RETURN(std::vector<int64_t> members,
                        dm_->semantics().ListCatalogHles(session, catalog_id));
  std::set<int64_t> present(members.begin(), members.end());
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    int64_t hle_id = rs.Get(i, "hle_id").AsInt();
    if (present.count(hle_id) > 0) continue;
    HEDC_RETURN_IF_ERROR(
        dm_->semantics().AddToCatalog(session, catalog_id, hle_id));
  }
  return catalog_id;
}

}  // namespace hedc::dm
