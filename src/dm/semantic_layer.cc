#include "dm/semantic_layer.h"

#include "core/strings.h"

namespace hedc::dm {

namespace {

HleRecord HleFromRow(const db::ResultSet& rs, size_t row) {
  HleRecord r;
  r.hle_id = rs.Get(row, "hle_id").AsInt();
  r.owner_id = rs.Get(row, "owner_id").AsInt();
  r.is_public = rs.Get(row, "is_public").AsBool();
  r.event_type = rs.Get(row, "event_type").AsText();
  r.t_start = rs.Get(row, "t_start").AsReal();
  r.t_end = rs.Get(row, "t_end").AsReal();
  r.e_min = rs.Get(row, "e_min").AsReal();
  r.e_max = rs.Get(row, "e_max").AsReal();
  r.peak_rate = rs.Get(row, "peak_rate").AsReal();
  r.peak_energy = rs.Get(row, "peak_energy").AsReal();
  r.photon_count = rs.Get(row, "photon_count").AsInt();
  r.unit_id = rs.Get(row, "unit_id").AsInt();
  r.calibration_version =
      static_cast<int>(rs.Get(row, "calibration_version").AsInt());
  r.version = static_cast<int>(rs.Get(row, "version").AsInt());
  r.superseded_by = rs.Get(row, "superseded_by").AsInt();
  r.label = rs.Get(row, "label").AsText();
  r.notes = rs.Get(row, "notes").AsText();
  r.created_time = rs.Get(row, "created_time").AsReal();
  r.source = rs.Get(row, "source").AsText();
  r.quality = rs.Get(row, "quality").AsReal();
  return r;
}

AnaRecord AnaFromRow(const db::ResultSet& rs, size_t row) {
  AnaRecord r;
  r.ana_id = rs.Get(row, "ana_id").AsInt();
  r.hle_id = rs.Get(row, "hle_id").AsInt();
  r.owner_id = rs.Get(row, "owner_id").AsInt();
  r.is_public = rs.Get(row, "is_public").AsBool();
  r.routine = rs.Get(row, "routine").AsText();
  r.parameters = rs.Get(row, "parameters").AsText();
  r.param_hash = rs.Get(row, "param_hash").AsInt();
  r.status = rs.Get(row, "status").AsText();
  r.quality = rs.Get(row, "quality").AsReal();
  r.t_start = rs.Get(row, "t_start").AsReal();
  r.t_end = rs.Get(row, "t_end").AsReal();
  r.e_min = rs.Get(row, "e_min").AsReal();
  r.e_max = rs.Get(row, "e_max").AsReal();
  r.photon_count = rs.Get(row, "photon_count").AsInt();
  r.image_bytes = rs.Get(row, "image_bytes").AsInt();
  r.log_excerpt = rs.Get(row, "log_excerpt").AsText();
  r.calibration_version =
      static_cast<int>(rs.Get(row, "calibration_version").AsInt());
  r.version = static_cast<int>(rs.Get(row, "version").AsInt());
  r.superseded_by = rs.Get(row, "superseded_by").AsInt();
  r.created_time = rs.Get(row, "created_time").AsReal();
  r.duration_ms = rs.Get(row, "duration_ms").AsReal();
  r.peak_value = rs.Get(row, "peak_value").AsReal();
  r.pixels = rs.Get(row, "pixels").AsInt();
  r.notes = rs.Get(row, "notes").AsText();
  return r;
}

CatalogRecord CatalogFromRow(const db::ResultSet& rs, size_t row) {
  CatalogRecord r;
  r.catalog_id = rs.Get(row, "catalog_id").AsInt();
  r.owner_id = rs.Get(row, "owner_id").AsInt();
  r.is_public = rs.Get(row, "is_public").AsBool();
  r.name = rs.Get(row, "name").AsText();
  r.description = rs.Get(row, "description").AsText();
  r.created_time = rs.Get(row, "created_time").AsReal();
  return r;
}

// Seeds an id generator past the current MAX(column) so multiple DM
// nodes sharing one DBMS do not collide.
void SeedIds(IoLayer* io, const std::string& table,
             const std::string& column, IdGenerator* ids) {
  QuerySpec spec(table);
  Result<db::ResultSet> rs =
      io->DatabaseFor(table)->Execute("SELECT MAX(" + column + ") FROM " +
                                      table);
  if (rs.ok() && !rs.value().rows.empty()) {
    ids->AdvancePast(rs.value().rows[0][0].AsInt());
  }
}

}  // namespace

SemanticLayer::SemanticLayer(IoLayer* io, Clock* clock)
    : io_(io), clock_(clock) {
  SeedIds(io_, "hle", "hle_id", &hle_ids_);
  SeedIds(io_, "ana", "ana_id", &ana_ids_);
  SeedIds(io_, "catalogs", "catalog_id", &catalog_ids_);
  SeedIds(io_, "catalog_members", "member_id", &member_ids_);
  SeedIds(io_, "lineage", "lineage_id", &lineage_ids_);
}

double SemanticLayer::NowSeconds() const {
  return static_cast<double>(clock_->Now()) / kMicrosPerSecond;
}

bool SemanticLayer::Visible(const Session& session, int64_t owner_id,
                            bool is_public) {
  return is_public || session.profile.is_super ||
         session.profile.user_id == owner_id;
}

Status SemanticLayer::RequireOwnership(const Session& session,
                                       int64_t owner_id) {
  if (session.profile.is_super || session.profile.user_id == owner_id) {
    return Status::Ok();
  }
  return Status::PermissionDenied("only the owner may modify this entity");
}

int64_t SemanticLayer::HashParams(const std::string& routine,
                                  const std::string& canonical_params) {
  uint64_t h = 1469598103934665603ull;
  for (char c : routine) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= '|';
  h *= 1099511628211ull;
  for (char c : canonical_params) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<int64_t>(h & 0x7fffffffffffffffull);
}

Result<int64_t> SemanticLayer::CreateHle(const Session& session,
                                         HleRecord record) {
  record.hle_id = hle_ids_.Next();
  record.owner_id = session.profile.user_id;
  if (record.created_time == 0) record.created_time = NowSeconds();
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update(
          "hle",
          "INSERT INTO hle VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
          "?, ?, ?, ?, ?, ?, ?)",
          {db::Value::Int(record.hle_id), db::Value::Int(record.owner_id),
           db::Value::Bool(record.is_public),
           db::Value::Text(record.event_type),
           db::Value::Real(record.t_start), db::Value::Real(record.t_end),
           db::Value::Real(record.e_min), db::Value::Real(record.e_max),
           db::Value::Real(record.peak_rate),
           db::Value::Real(record.peak_energy),
           db::Value::Int(record.photon_count),
           db::Value::Int(record.unit_id),
           db::Value::Int(record.calibration_version),
           db::Value::Int(record.version),
           db::Value::Int(record.superseded_by),
           db::Value::Text(record.label), db::Value::Text(record.notes),
           db::Value::Real(record.created_time),
           db::Value::Text(record.source),
           db::Value::Real(record.quality)}));
  (void)r;
  return record.hle_id;
}

Result<HleRecord> SemanticLayer::GetHle(const Session& session,
                                        int64_t hle_id) {
  QuerySpec spec("hle");
  spec.Where("hle_id", CondOp::kEq, db::Value::Int(hle_id));
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, io_->Query(spec));
  if (rs.rows.empty()) {
    return Status::NotFound(StrFormat("HLE %lld",
                                      static_cast<long long>(hle_id)));
  }
  HleRecord record = HleFromRow(rs, 0);
  if (!Visible(session, record.owner_id, record.is_public)) {
    // Indistinguishable from absent: privacy constraint (§5.3).
    return Status::NotFound(StrFormat("HLE %lld",
                                      static_cast<long long>(hle_id)));
  }
  return record;
}

Result<std::vector<HleRecord>> SemanticLayer::ListHles(
    const Session& session, double t_lo, double t_hi, int64_t limit) {
  QuerySpec spec("hle");
  spec.Where("t_start", CondOp::kGe, db::Value::Real(t_lo))
      .Where("t_start", CondOp::kLe, db::Value::Real(t_hi))
      .OrderBy("t_start");
  if (limit >= 0) spec.Limit(limit);
  if (!session.view_predicate.empty()) {
    spec.RawPredicate(session.view_predicate);
  }
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, io_->Query(spec));
  std::vector<HleRecord> out;
  out.reserve(rs.num_rows());
  for (size_t i = 0; i < rs.num_rows(); ++i) out.push_back(HleFromRow(rs, i));
  return out;
}

Status SemanticLayer::SetHlePublic(const Session& session, int64_t hle_id,
                                   bool value) {
  HEDC_ASSIGN_OR_RETURN(HleRecord record, GetHle(session, hle_id));
  HEDC_RETURN_IF_ERROR(RequireOwnership(session, record.owner_id));
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update("hle", "UPDATE hle SET is_public = ? WHERE hle_id = ?",
                  {db::Value::Bool(value), db::Value::Int(hle_id)}));
  (void)r;
  return Status::Ok();
}

Status SemanticLayer::DeleteHle(const Session& session, int64_t hle_id) {
  HEDC_ASSIGN_OR_RETURN(HleRecord record, GetHle(session, hle_id));
  HEDC_RETURN_IF_ERROR(RequireOwnership(session, record.owner_id));
  // Integrity constraint (§5.3): "tuples belonging to an entity may not
  // be deleted if data dependencies exist".
  QuerySpec deps("ana");
  deps.CountOnly().Where("hle_id", CondOp::kEq, db::Value::Int(hle_id));
  HEDC_ASSIGN_OR_RETURN(db::ResultSet count, io_->Query(deps));
  if (count.rows[0][0].AsInt() > 0) {
    return Status::FailedPrecondition(
        StrFormat("HLE %lld still has %lld analyses",
                  static_cast<long long>(hle_id),
                  static_cast<long long>(count.rows[0][0].AsInt())));
  }
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update("hle", "DELETE FROM hle WHERE hle_id = ?",
                  {db::Value::Int(hle_id)}));
  (void)r;
  // Membership rows and files follow the entity.
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet m,
      io_->Update("catalog_members",
                  "DELETE FROM catalog_members WHERE hle_id = ?",
                  {db::Value::Int(hle_id)}));
  (void)m;
  return Status::Ok();
}

Result<int64_t> SemanticLayer::SupersedeHle(const Session& session,
                                            int64_t old_hle_id,
                                            HleRecord new_record) {
  HEDC_ASSIGN_OR_RETURN(HleRecord old_record, GetHle(session, old_hle_id));
  HEDC_RETURN_IF_ERROR(RequireOwnership(session, old_record.owner_id));
  new_record.version = old_record.version + 1;
  HEDC_ASSIGN_OR_RETURN(int64_t new_id, CreateHle(session, new_record));
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update("hle", "UPDATE hle SET superseded_by = ? WHERE hle_id = ?",
                  {db::Value::Int(new_id), db::Value::Int(old_hle_id)}));
  (void)r;
  HEDC_RETURN_IF_ERROR(RecordLineage(new_id, old_hle_id, "supersede",
                                     new_record.calibration_version, ""));
  return new_id;
}

Result<int64_t> SemanticLayer::CreateAna(const Session& session,
                                         AnaRecord record) {
  // Referential integrity: the HLE must exist and be visible.
  HEDC_ASSIGN_OR_RETURN(HleRecord hle, GetHle(session, record.hle_id));
  record.ana_id = ana_ids_.Next();
  record.owner_id = session.profile.user_id;
  if (record.created_time == 0) record.created_time = NowSeconds();
  if (record.param_hash == 0) {
    record.param_hash = HashParams(record.routine, record.parameters);
  }
  // Entity transaction (§4.4): the ANA tuple and its lineage record
  // commit together.
  db::Database* target = io_->DatabaseFor("ana");
  HEDC_RETURN_IF_ERROR(target->Begin());
  Result<db::ResultSet> ins = target->Execute(
      "INSERT INTO ana VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
      "?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
      {db::Value::Int(record.ana_id), db::Value::Int(record.hle_id),
       db::Value::Int(record.owner_id), db::Value::Bool(record.is_public),
       db::Value::Text(record.routine), db::Value::Text(record.parameters),
       db::Value::Int(record.param_hash), db::Value::Text(record.status),
       db::Value::Real(record.quality), db::Value::Real(record.t_start),
       db::Value::Real(record.t_end), db::Value::Real(record.e_min),
       db::Value::Real(record.e_max), db::Value::Int(record.photon_count),
       db::Value::Int(record.image_bytes),
       db::Value::Text(record.log_excerpt),
       db::Value::Int(record.calibration_version),
       db::Value::Int(record.version), db::Value::Int(record.superseded_by),
       db::Value::Real(record.created_time),
       db::Value::Real(record.duration_ms),
       db::Value::Real(record.peak_value), db::Value::Int(record.pixels),
       db::Value::Text(record.notes)});
  if (!ins.ok()) {
    target->Rollback();
    return ins.status();
  }
  Result<db::ResultSet> lin = target->Execute(
      "INSERT INTO lineage VALUES (?, ?, ?, ?, ?, ?)",
      {db::Value::Int(lineage_ids_.Next()), db::Value::Int(record.ana_id),
       db::Value::Int(record.hle_id), db::Value::Text(record.routine),
       db::Value::Int(record.calibration_version),
       db::Value::Text(record.parameters)});
  if (!lin.ok()) {
    target->Rollback();
    return lin.status();
  }
  HEDC_RETURN_IF_ERROR(target->Commit());
  (void)hle;
  return record.ana_id;
}

Result<AnaRecord> SemanticLayer::GetAna(const Session& session,
                                        int64_t ana_id) {
  QuerySpec spec("ana");
  spec.Where("ana_id", CondOp::kEq, db::Value::Int(ana_id));
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, io_->Query(spec));
  if (rs.rows.empty()) {
    return Status::NotFound(StrFormat("ANA %lld",
                                      static_cast<long long>(ana_id)));
  }
  AnaRecord record = AnaFromRow(rs, 0);
  if (!Visible(session, record.owner_id, record.is_public)) {
    return Status::NotFound(StrFormat("ANA %lld",
                                      static_cast<long long>(ana_id)));
  }
  return record;
}

Result<std::vector<AnaRecord>> SemanticLayer::ListAnalyses(
    const Session& session, int64_t hle_id) {
  QuerySpec spec("ana");
  spec.Where("hle_id", CondOp::kEq, db::Value::Int(hle_id))
      .OrderBy("ana_id");
  if (!session.view_predicate.empty()) {
    spec.RawPredicate(session.view_predicate);
  }
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, io_->Query(spec));
  std::vector<AnaRecord> out;
  out.reserve(rs.num_rows());
  for (size_t i = 0; i < rs.num_rows(); ++i) out.push_back(AnaFromRow(rs, i));
  return out;
}

Status SemanticLayer::SetAnaPublic(const Session& session, int64_t ana_id,
                                   bool value) {
  HEDC_ASSIGN_OR_RETURN(AnaRecord record, GetAna(session, ana_id));
  HEDC_RETURN_IF_ERROR(RequireOwnership(session, record.owner_id));
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update("ana", "UPDATE ana SET is_public = ? WHERE ana_id = ?",
                  {db::Value::Bool(value), db::Value::Int(ana_id)}));
  (void)r;
  return Status::Ok();
}

Status SemanticLayer::DeleteAna(const Session& session, int64_t ana_id) {
  HEDC_ASSIGN_OR_RETURN(AnaRecord record, GetAna(session, ana_id));
  HEDC_RETURN_IF_ERROR(RequireOwnership(session, record.owner_id));
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update("ana", "DELETE FROM ana WHERE ana_id = ?",
                  {db::Value::Int(ana_id)}));
  (void)r;
  return Status::Ok();
}

Result<std::optional<AnaRecord>> SemanticLayer::FindExistingAnalysis(
    const Session& session, int64_t hle_id, const std::string& routine,
    const std::string& canonical_params) {
  int64_t hash = HashParams(routine, canonical_params);
  QuerySpec spec("ana");
  spec.Where("param_hash", CondOp::kEq, db::Value::Int(hash))
      .Where("hle_id", CondOp::kEq, db::Value::Int(hle_id));
  if (!session.view_predicate.empty()) {
    spec.RawPredicate(session.view_predicate);
  }
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, io_->Query(spec));
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    AnaRecord record = AnaFromRow(rs, i);
    // The hash is an index accelerator; confirm the actual parameters.
    if (record.routine == routine &&
        record.parameters == canonical_params &&
        record.status == "done" && record.superseded_by == 0) {
      return std::optional<AnaRecord>(std::move(record));
    }
  }
  return std::optional<AnaRecord>();
}

Result<int64_t> SemanticLayer::CreateCatalog(const Session& session,
                                             std::string name,
                                             std::string description,
                                             bool is_public) {
  QuerySpec existing("catalogs");
  existing.CountOnly().Where("name", CondOp::kEq, db::Value::Text(name));
  HEDC_ASSIGN_OR_RETURN(db::ResultSet count, io_->Query(existing));
  if (count.rows[0][0].AsInt() > 0) {
    return Status::AlreadyExists("catalog " + name);
  }
  int64_t catalog_id = catalog_ids_.Next();
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update("catalogs", "INSERT INTO catalogs VALUES (?, ?, ?, ?, ?, ?)",
                  {db::Value::Int(catalog_id),
                   db::Value::Int(session.profile.user_id),
                   db::Value::Bool(is_public), db::Value::Text(name),
                   db::Value::Text(description),
                   db::Value::Real(NowSeconds())}));
  (void)r;
  return catalog_id;
}

Result<CatalogRecord> SemanticLayer::GetCatalogByName(
    const Session& session, const std::string& name) {
  QuerySpec spec("catalogs");
  spec.Where("name", CondOp::kEq, db::Value::Text(name));
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, io_->Query(spec));
  if (rs.rows.empty()) return Status::NotFound("catalog " + name);
  CatalogRecord record = CatalogFromRow(rs, 0);
  if (!Visible(session, record.owner_id, record.is_public)) {
    return Status::NotFound("catalog " + name);
  }
  return record;
}

Status SemanticLayer::AddToCatalog(const Session& session,
                                   int64_t catalog_id, int64_t hle_id) {
  // Both endpoints must exist and be visible (referential consistency).
  QuerySpec cat("catalogs");
  cat.Where("catalog_id", CondOp::kEq, db::Value::Int(catalog_id));
  HEDC_ASSIGN_OR_RETURN(db::ResultSet cat_rs, io_->Query(cat));
  if (cat_rs.rows.empty()) {
    return Status::NotFound(StrFormat("catalog %lld",
                                      static_cast<long long>(catalog_id)));
  }
  CatalogRecord record = CatalogFromRow(cat_rs, 0);
  HEDC_RETURN_IF_ERROR(RequireOwnership(session, record.owner_id));
  HEDC_ASSIGN_OR_RETURN(HleRecord hle, GetHle(session, hle_id));
  (void)hle;
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update("catalog_members",
                  "INSERT INTO catalog_members VALUES (?, ?, ?)",
                  {db::Value::Int(member_ids_.Next()),
                   db::Value::Int(catalog_id), db::Value::Int(hle_id)}));
  (void)r;
  return Status::Ok();
}

Result<std::vector<int64_t>> SemanticLayer::ListCatalogHles(
    const Session& session, int64_t catalog_id) {
  QuerySpec spec("catalog_members");
  spec.Select("hle_id")
      .Where("catalog_id", CondOp::kEq, db::Value::Int(catalog_id))
      .OrderBy("hle_id");
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, io_->Query(spec));
  std::vector<int64_t> out;
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    int64_t hle_id = rs.Get(i, "hle_id").AsInt();
    // Only visible HLEs are listed.
    if (GetHle(session, hle_id).ok()) out.push_back(hle_id);
  }
  return out;
}

Status SemanticLayer::RecordLineage(int64_t item_id, int64_t source_item_id,
                                    const std::string& operation,
                                    int calibration_version,
                                    const std::string& parameters) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update("lineage", "INSERT INTO lineage VALUES (?, ?, ?, ?, ?, ?)",
                  {db::Value::Int(lineage_ids_.Next()),
                   db::Value::Int(item_id), db::Value::Int(source_item_id),
                   db::Value::Text(operation),
                   db::Value::Int(calibration_version),
                   db::Value::Text(parameters)}));
  (void)r;
  return Status::Ok();
}

Result<std::vector<int64_t>> SemanticLayer::LineageSources(int64_t item_id) {
  QuerySpec spec("lineage");
  spec.Select("source_item_id")
      .Where("item_id", CondOp::kEq, db::Value::Int(item_id));
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rs, io_->Query(spec));
  std::vector<int64_t> out;
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    out.push_back(rs.Get(i, "source_item_id").AsInt());
  }
  return out;
}

}  // namespace hedc::dm
