// ChaosChannel: seeded fault injection for the RMI transport.
//
// Decorates a ByteChannel and injects the failure modes a networked
// deployment exhibits — dropped calls, delivery delays, duplicated
// requests (at-least-once delivery), truncated and garbled responses —
// with probabilities driven by a seeded Rng, so a failing schedule is
// reproducible from (seed, call sequence). This is the test backbone for
// ResilientChannel: drops/timeouts exercise retries and the breaker,
// truncation/garbling exercise the kCorruption path, duplicates exercise
// server-side idempotence assumptions.
//
// Determinism: every call draws the same number of primary Rng values (one
// Bernoulli per fault class plus one delay magnitude) regardless of which
// faults fire, so the fault schedule for call N does not depend on the
// outcomes of calls 1..N-1. Byte-level draws (garbled positions)
// additionally depend on the inner response size.
#ifndef HEDC_DM_CHAOS_CHANNEL_H_
#define HEDC_DM_CHAOS_CHANNEL_H_

#include <cstdint>
#include <mutex>

#include "core/clock.h"
#include "core/rng.h"
#include "dm/remote.h"

namespace hedc::dm {

struct ChaosOptions {
  double drop_p = 0.0;       // call never reaches the peer -> kUnavailable
  double delay_p = 0.0;      // delivery delayed by [delay_min, delay_max]
  double duplicate_p = 0.0;  // request delivered (and handled) twice
  double truncate_p = 0.0;   // response cut short in transit -> kCorruption
  double garble_p = 0.0;     // random response bytes flipped
  Micros delay_min = kMicrosPerMilli;
  Micros delay_max = 20 * kMicrosPerMilli;
  uint64_t seed = 42;
};

class ChaosChannel : public ByteChannel {
 public:
  struct Counts {
    int64_t calls = 0;
    int64_t drops = 0;
    int64_t delays = 0;
    int64_t duplicates = 0;
    int64_t truncations = 0;
    int64_t garbles = 0;
  };

  // `clock` is charged for injected delays; may be null to skip delays.
  ChaosChannel(ByteChannel* inner, Clock* clock, ChaosOptions options)
      : inner_(inner), clock_(clock), options_(options), rng_(options.seed) {}

  Result<std::vector<uint8_t>> Call(
      const std::vector<uint8_t>& request) override;

  Counts counts() const;

 private:
  ByteChannel* inner_;
  Clock* clock_;
  ChaosOptions options_;

  mutable std::mutex mu_;
  Rng rng_;
  Counts counts_;
};

}  // namespace hedc::dm

#endif  // HEDC_DM_CHAOS_CHANNEL_H_
