// Collection-style query API (§5.4).
//
// "The DM API has no provisions for regular SQL calls. It uses Java
// collection objects instead. During query processing these objects are
// parsed, analyzed, verified and transformed into regular SQL queries
// suitable for the target database and schema." QuerySpec is that
// collection object: validated against an allowlist of tables and
// rendered to parameterized SQL, so queries can be adapted without
// touching the API.
#ifndef HEDC_DM_QUERY_SPEC_H_
#define HEDC_DM_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "db/database.h"

namespace hedc::dm {

enum class CondOp { kEq, kNe, kLt, kLe, kGt, kGe, kLike };

struct Condition {
  std::string field;
  CondOp op = CondOp::kEq;
  db::Value value;
};

class QuerySpec {
 public:
  explicit QuerySpec(std::string table) : table_(std::move(table)) {}

  QuerySpec& Select(std::string field) {
    fields_.push_back(std::move(field));
    return *this;
  }
  QuerySpec& Where(std::string field, CondOp op, db::Value value) {
    conditions_.push_back({std::move(field), op, std::move(value)});
    return *this;
  }
  QuerySpec& OrderBy(std::string field, bool descending = false) {
    order_by_ = std::move(field);
    order_desc_ = descending;
    return *this;
  }
  QuerySpec& Limit(int64_t n) {
    limit_ = n;
    return *this;
  }
  QuerySpec& CountOnly() {
    count_only_ = true;
    return *this;
  }
  // Extra raw predicate AND-ed in (used for session view predicates).
  QuerySpec& RawPredicate(std::string predicate) {
    raw_predicate_ = std::move(predicate);
    return *this;
  }

  const std::string& table() const { return table_; }

  // Verifies field names (identifier charset) and renders SQL with '?'
  // parameters; the bound values come out through `params`.
  Result<std::string> ToSql(std::vector<db::Value>* params) const;

 private:
  std::string table_;
  std::vector<std::string> fields_;  // empty = *
  std::vector<Condition> conditions_;
  std::string order_by_;
  bool order_desc_ = false;
  int64_t limit_ = -1;
  bool count_only_ = false;
  std::string raw_predicate_;
};

}  // namespace hedc::dm

#endif  // HEDC_DM_QUERY_SPEC_H_
