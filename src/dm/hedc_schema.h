// The HEDC metadata schema (§4.1).
//
// Two independent parts:
//  * GENERIC — administrative section (configuration, services, clients,
//    predefined queries, users), operational section (logs, lineage,
//    archive status, usage statistics), location section (owned by
//    archive::NameMapper).
//  * DOMAIN-SPECIFIC (RHESSI) — raw data units, high-level events (HLE),
//    analyses (ANA), catalogs and catalog membership. "It is
//    straightforward to change the RHESSI specific part of the schema"
//    without touching the generic part.
#ifndef HEDC_DM_HEDC_SCHEMA_H_
#define HEDC_DM_HEDC_SCHEMA_H_

#include "core/status.h"
#include "db/database.h"

namespace hedc::dm {

// Creates the generic schema part: users, services, clients,
// predefined_queries, config_params (administrative); op_logs, lineage,
// archive_status, usage_stats (operational). Idempotent.
Status CreateGenericSchema(db::Database* db);

// Creates the RHESSI-specific part: raw_units, hle, ana, catalogs,
// catalog_members, plus their indexes. Idempotent.
Status CreateRhessiSchema(db::Database* db);

// Both parts.
Status CreateFullSchema(db::Database* db);

}  // namespace hedc::dm

#endif  // HEDC_DM_HEDC_SCHEMA_H_
