// The DM process layer (§5.2): multi-step workflows with compensation.
//
// "One such process defines, e.g., the workflow during physical archive
// relocation. First, tuples referenced or referencing an entity are
// queried and altered, then the corresponding files are copied,
// compensating actions are taken if failures occur, and finally logs are
// generated. Other processes implement raw data preparation, event
// filtering, entity association, and catalog generation."
#ifndef HEDC_DM_PROCESS_LAYER_H_
#define HEDC_DM_PROCESS_LAYER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "dm/dm.h"
#include "rhessi/calibration.h"
#include "rhessi/phoenix.h"
#include "rhessi/event_detect.h"
#include "rhessi/raw_unit.h"
#include "wavelet/views.h"

namespace hedc::dm {

struct DataLoadReport {
  int64_t unit_id = 0;
  size_t photons = 0;
  size_t file_bytes = 0;
  std::vector<int64_t> hle_ids;       // events entered into the catalog
  int64_t standard_catalog_id = 0;
};

class ProcessLayer {
 public:
  // `raw_archive_id` is where raw data unit files are stored.
  ProcessLayer(DataManager* dm, int64_t raw_archive_id);

  // Raw data preparation + event filtering + entity association +
  // catalog generation, as one workflow:
  //  1. unpack & validate the packed raw unit,
  //  2. store the file, register its locations, insert the raw_units
  //     tuple,
  //  3. run event detection over the photons,
  //  4. create an HLE per detected event (owned by the import session),
  //     made public, grouped into the "standard" catalog,
  //  5. write the wavelet-preprocessed view alongside (progressive
  //     access path, §3.4),
  //  6. log the load.
  // Compensation: on failure, previously-written files/tuples of this
  // load are removed.
  Result<DataLoadReport> LoadRawUnit(const Session& import_session,
                                     const std::vector<uint8_t>& packed);

  // Physical archive relocation: move every file of `item_ids` from
  // `from_archive` to `to_archive`, updating only location tuples. On a
  // copy failure, already-moved entries are compensated back.
  Status RelocateItems(const std::vector<int64_t>& item_ids,
                       int64_t from_archive, int64_t to_archive,
                       const std::string& new_rel_path);

  // Recalibration (§3.1): re-derives a raw unit's photons under a new
  // calibration, writes a new versioned file, updates the unit tuple, and
  // supersedes affected HLEs with re-detected events.
  Result<DataLoadReport> RecalibrateUnit(
      const Session& session, int64_t unit_id,
      const rhessi::CalibrationTable& calibrations, int new_version);

  // Catalog generation: groups visible HLEs matching an event type into
  // a (new or existing) catalog owned by the session user.
  Result<int64_t> GenerateCatalog(const Session& session,
                                  const std::string& catalog_name,
                                  const std::string& event_type);

  // --- Phoenix-2 extension (§2.2) ---------------------------------------
  // Loads a Phoenix-2 spectrogram: creates the phoenix_spectra domain
  // slice on first use (the generic schema part is untouched), stores the
  // FITS file, registers locations, detects radio bursts and enters them
  // as HLEs in the "phoenix" catalog. Returns the spectrum id.
  Result<int64_t> LoadPhoenixSpectrogram(
      const Session& session, const rhessi::PhoenixSpectrogram& spectrum);

  // --- purging (administrative "data refresh and purging rules") --------
  // Deletes private, non-superseding analyses created before
  // `older_than_sec` (session seconds), removing their tuples, lineage
  // and image files. Super-user only. Returns the number purged.
  Result<int64_t> PurgeStaleAnalyses(const Session& session,
                                     double older_than_sec);

  // --- derived-product invalidation hooks --------------------------------
  // Recalibration changes a unit's content: derived-product caches (see
  // pl::ProductCache) register here to drop dependent entries. Invoked
  // after the version bump is durable in raw_units, so a racing cache
  // miss keyed on the old version can never survive the drop.
  using UnitInvalidator = std::function<void(int64_t unit_id)>;
  void SetDerivedProductInvalidator(UnitInvalidator fn) {
    unit_invalidator_ = std::move(fn);
  }
  // Purge hook: invoked once per analysis removed by PurgeStaleAnalyses,
  // after its tuple/file are gone, so caches sharing the ana id drop it.
  using AnaPurgeListener = std::function<void(int64_t ana_id)>;
  void SetAnaPurgeListener(AnaPurgeListener fn) {
    ana_purge_listener_ = std::move(fn);
  }

  // The wavelet view id space: item id under which a unit's progressive
  // view file is registered.
  static int64_t ViewItemId(int64_t unit_id) { return 1000000000 + unit_id; }
  // Item-id space for Phoenix spectrogram files.
  static int64_t PhoenixItemId(int64_t spectrum_id) {
    return 3000000000 + spectrum_id;
  }

 private:
  Result<int64_t> InsertRawUnitTuple(const rhessi::RawDataUnit& unit,
                                     size_t file_bytes);
  // Builds and stores the unit's progressive view file: a FITS-lite
  // container with a "VIEW" HDU (photon counts per bin) and a "VIEW_E"
  // HDU (summed keV per bin), both prefix-decodable HWV3 streams.
  // Overwrites in place when the view item already exists (recalibration).
  bool WriteViewFile(const rhessi::RawDataUnit& unit);

  DataManager* dm_;
  int64_t raw_archive_id_;
  UnitInvalidator unit_invalidator_;
  AnaPurgeListener ana_purge_listener_;
};

}  // namespace hedc::dm

#endif  // HEDC_DM_PROCESS_LAYER_H_
