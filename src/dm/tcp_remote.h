// TCP transport for remote DM calls (§2.3 "RMI and HTTP", §5.4).
//
// TcpRmiServer accepts loopback connections and serves length-delimited,
// CRC-checked call frames (web/tcp.h) against an RmiServer; TcpChannel is
// the matching client-side ByteChannel. One connection carries a sequence
// of request/response frames; a TcpChannel serializes its calls and
// reconnects lazily after any transport error, so a ResilientChannel
// layered on top can simply retry.
//
// The server has two interchangeable engines, selected by
// Options::use_reactor (config `net.reactor`):
//  * blocking (default): an accept thread plus one thread per connection
//    — simple, but caps concurrency at thread scale;
//  * reactor: connections are parsed by a per-connection frame state
//    machine on a shared epoll loop (net/reactor.h) and frames execute on
//    its worker pool — C10K-capable, and many servers can share one
//    Reactor (Options::shared_reactor), which is how a whole cluster's
//    nodes serve without thread explosion.
// Client-visible semantics are identical by construction and locked down
// by tests/net_conformance_test.cc: framing errors drop the connection
// (peers observe kUnavailable), valid frames always get a response, and
// Stop() kills in-flight calls.
#ifndef HEDC_DM_TCP_REMOTE_H_
#define HEDC_DM_TCP_REMOTE_H_

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "dm/remote.h"
#include "net/reactor.h"
#include "web/tcp.h"

namespace hedc::dm {

// Serves RMI frames over TCP. Start() after Stop() reboots the server (on
// a fresh ephemeral port when port 0 is used), which is how a cluster
// node restarts. In blocking mode Stop() joins the accept and connection
// threads; in reactor mode it drains this server's listener (an owned
// reactor keeps running for the next Start(); a shared one is untouched).
class TcpRmiServer {
 public:
  struct Options {
    // Serve through an epoll reactor instead of thread-per-connection.
    bool use_reactor = false;
    // Reactor tuning when this server owns its reactor.
    net::Reactor::Options reactor;
    // Serve on an existing (already started) reactor instead; not owned.
    net::Reactor* shared_reactor = nullptr;
    // Frames whose header claims more than this are rejected before any
    // payload allocation and the connection dropped (both engines).
    size_t max_frame = 64u << 20;
    // Blocking mode: per-recv silence deadline on each connection
    // (0 = wait forever) — the counterpart of reactor idle reaping.
    Micros blocking_idle_timeout = 0;

    // Reads net.reactor plus the net.* reactor knobs (see
    // net::Reactor::Options::FromConfig); net.idle_timeout_ms applies to
    // both engines so the knob flips implementation, not policy.
    static Options FromConfig(const Config& config);
  };

  explicit TcpRmiServer(RmiHandler* rmi, MetricsRegistry* metrics = nullptr)
      : TcpRmiServer(rmi, metrics, Options()) {}
  TcpRmiServer(RmiHandler* rmi, MetricsRegistry* metrics, Options options)
      : rmi_(rmi),
        metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()),
        options_(options) {}
  ~TcpRmiServer();
  TcpRmiServer(const TcpRmiServer&) = delete;
  TcpRmiServer& operator=(const TcpRmiServer&) = delete;

  // Port 0 picks an ephemeral port; see port().
  Status Start(int port = 0);
  // Locked: a restart (Stop + Start) rebinds the listener, and clients
  // may read the port concurrently with the rebind.
  int port() const;
  bool running() const;
  // Idempotent; kills in-flight calls mid-frame (clients observe a reset).
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(net::TcpSocket socket);
  // The serving reactor (shared or lazily created owned instance).
  net::Reactor* reactor();

  RmiHandler* rmi_;
  MetricsRegistry* metrics_;
  Options options_;
  net::TcpListener listener_;
  std::thread accept_thread_;
  std::unique_ptr<net::Reactor> own_reactor_;

  mutable std::mutex mu_;
  bool running_ = false;
  bool stopping_ = false;
  net::Reactor::ListenerInfo reactor_listener_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> live_connection_fds_;
};

// Client-side channel: connects on first use, one in-flight call at a
// time, reconnects after errors. Transport failures map to kUnavailable
// (connect/reset/EOF), kTimeout (receive deadline) or kCorruption (bad
// frame checksum), which is exactly the retryable set of
// ResilientChannel.
class TcpChannel : public ByteChannel {
 public:
  TcpChannel(std::string host, int port,
             Micros recv_timeout = 2 * kMicrosPerSecond)
      : host_(std::move(host)), port_(port), recv_timeout_(recv_timeout) {}

  Result<std::vector<uint8_t>> Call(
      const std::vector<uint8_t>& request) override;

  void set_recv_timeout(Micros timeout) {
    std::lock_guard<std::mutex> lock(mu_);
    recv_timeout_ = timeout;
  }

 private:
  // Every transport error funnels through here before the next call may
  // reconnect, so an error can never strand the old fd (regression:
  // tests/net_adversarial_test.cc reconnect hammer).
  void DisconnectLocked() { socket_.Close(); }

  std::string host_;
  int port_;

  std::mutex mu_;
  Micros recv_timeout_;
  net::TcpSocket socket_;  // invalid when disconnected
};

}  // namespace hedc::dm

#endif  // HEDC_DM_TCP_REMOTE_H_
