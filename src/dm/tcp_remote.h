// TCP transport for remote DM calls (§2.3 "RMI and HTTP", §5.4).
//
// TcpRmiServer accepts loopback connections and serves length-delimited,
// CRC-checked call frames (web/tcp.h) against an RmiServer; TcpChannel is
// the matching client-side ByteChannel. One connection carries a sequence
// of request/response frames; a TcpChannel serializes its calls and
// reconnects lazily after any transport error, so a ResilientChannel
// layered on top can simply retry.
#ifndef HEDC_DM_TCP_REMOTE_H_
#define HEDC_DM_TCP_REMOTE_H_

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "dm/remote.h"
#include "web/tcp.h"

namespace hedc::dm {

// Serves RMI frames over TCP. Start() spawns an accept thread and one
// thread per connection; Stop() shuts the listener and all live
// connections down (failing any in-flight calls) and joins the threads.
// Start() after Stop() reboots the server (on a fresh ephemeral port when
// port 0 is used), which is how a cluster node restarts.
class TcpRmiServer {
 public:
  explicit TcpRmiServer(RmiHandler* rmi, MetricsRegistry* metrics = nullptr)
      : rmi_(rmi),
        metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()) {}
  ~TcpRmiServer() { Stop(); }
  TcpRmiServer(const TcpRmiServer&) = delete;
  TcpRmiServer& operator=(const TcpRmiServer&) = delete;

  // Port 0 picks an ephemeral port; see port().
  Status Start(int port = 0);
  // Locked: a restart (Stop + Start) rebinds the listener, and clients
  // may read the port concurrently with the rebind.
  int port() const {
    std::lock_guard<std::mutex> lock(mu_);
    return listener_.port();
  }
  bool running() const;
  // Idempotent; kills in-flight calls mid-frame (clients observe a reset).
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(net::TcpSocket socket);

  RmiHandler* rmi_;
  MetricsRegistry* metrics_;
  net::TcpListener listener_;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  bool running_ = false;
  bool stopping_ = false;
  std::vector<std::thread> connection_threads_;
  std::vector<int> live_connection_fds_;
};

// Client-side channel: connects on first use, one in-flight call at a
// time, reconnects after errors. Transport failures map to kUnavailable
// (connect/reset/EOF), kTimeout (receive deadline) or kCorruption (bad
// frame checksum), which is exactly the retryable set of
// ResilientChannel.
class TcpChannel : public ByteChannel {
 public:
  TcpChannel(std::string host, int port,
             Micros recv_timeout = 2 * kMicrosPerSecond)
      : host_(std::move(host)), port_(port), recv_timeout_(recv_timeout) {}

  Result<std::vector<uint8_t>> Call(
      const std::vector<uint8_t>& request) override;

  void set_recv_timeout(Micros timeout) {
    std::lock_guard<std::mutex> lock(mu_);
    recv_timeout_ = timeout;
  }

 private:
  std::string host_;
  int port_;

  std::mutex mu_;
  Micros recv_timeout_;
  net::TcpSocket socket_;  // invalid when disconnected
};

}  // namespace hedc::dm

#endif  // HEDC_DM_TCP_REMOTE_H_
