#include "dm/dm.h"

namespace hedc::dm {

DataManager::DataManager(std::string name, db::Database* db,
                         archive::ArchiveManager* archives,
                         archive::NameMapper* mapper, Clock* clock,
                         Options options)
    : name_(std::move(name)), db_(db), clock_(clock), options_(options) {
  pool_ = std::make_unique<db::ConnectionPool>(db_, clock_, options_.pool);
  io_ = std::make_unique<IoLayer>(db_, pool_.get(), archives, mapper);
  semantics_ = std::make_unique<SemanticLayer>(io_.get(), clock_);
  sessions_ = std::make_unique<SessionManager>(clock_, options_.sessions);
  users_ = std::make_unique<UserManager>(db_);
  async_pool_ = std::make_unique<ThreadPool>(options_.async_workers);
}

DataManager::~DataManager() { async_pool_->Shutdown(); }

void DataManager::AddPeer(DataManager* peer) {
  if (peer != this) peers_.push_back(peer);
}

DataManager* DataManager::Route(bool force_local) {
  if (force_local || !options_.redirect_enabled || peers_.empty()) {
    return this;
  }
  size_t n = peers_.size() + 1;
  size_t pick = route_counter_.fetch_add(1, std::memory_order_relaxed) % n;
  return pick == 0 ? this : peers_[pick - 1];
}

bool DataManager::SubmitAsync(std::function<void()> work) {
  return async_pool_->Submit(std::move(work));
}

void DataManager::DrainAsync() { async_pool_->Wait(); }

Status DataManager::LogOperational(const std::string& component,
                                   const std::string& message) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      io_->Update(
          "op_logs", "INSERT INTO op_logs VALUES (?, ?, 'INFO', ?, ?)",
          {db::Value::Int(log_ids_.Next()),
           db::Value::Real(static_cast<double>(clock_->Now()) /
                           kMicrosPerSecond),
           db::Value::Text(component), db::Value::Text(message)}));
  (void)r;
  return Status::Ok();
}

Status DataManager::MirrorMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) registry = MetricsRegistry::Default();
  double now_seconds =
      static_cast<double>(clock_->Now()) / kMicrosPerSecond;

  // Keep only the latest snapshot so readers can SELECT without MAX().
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet cleared,
      io_->Update("metric_snapshots", "DELETE FROM metric_snapshots", {}));
  (void)cleared;
  for (const MetricsRegistry::MetricValue& m : registry->SnapshotValues()) {
    HEDC_ASSIGN_OR_RETURN(
        db::ResultSet r,
        io_->Update("metric_snapshots",
                    "INSERT INTO metric_snapshots VALUES (?, ?, ?, ?, ?)",
                    {db::Value::Int(snap_ids_.Next()),
                     db::Value::Real(now_seconds), db::Value::Text(m.name),
                     db::Value::Text(m.kind), db::Value::Real(m.value)}));
    (void)r;
  }

  for (const TraceEvent& event : registry->traces().Drain()) {
    HEDC_ASSIGN_OR_RETURN(
        db::ResultSet r,
        io_->Update("request_traces",
                    "INSERT INTO request_traces VALUES (?, ?, ?, ?, ?, ?, ?)",
                    {db::Value::Int(trace_row_ids_.Next()),
                     db::Value::Int(event.trace_id),
                     db::Value::Text(event.component),
                     db::Value::Text(event.span),
                     db::Value::Int(event.start_us),
                     db::Value::Int(event.end_us),
                     db::Value::Text(event.note)}));
    (void)r;
  }
  return Status::Ok();
}

}  // namespace hedc::dm
