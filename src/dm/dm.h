// DataManager: the DM component facade (§5.2, §5.4).
//
// Wires the I/O layer, semantic layer, sessions, users and connection
// pools into one component, and implements call redirection: a DM node
// keeps a list of peers and can route work to them ("In general, the
// calling methods do not know where the code is actually executed, but
// can use overwrites to, e.g., force local execution.").
#ifndef HEDC_DM_DM_H_
#define HEDC_DM_DM_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/name_mapper.h"
#include "core/clock.h"
#include "core/metrics.h"
#include "core/thread_pool.h"
#include "db/connection.h"
#include "db/database.h"
#include "dm/io_layer.h"
#include "dm/semantic_layer.h"
#include "dm/session.h"
#include "dm/users.h"

namespace hedc::dm {

class DataManager {
 public:
  struct Options {
    db::ConnectionPool::Options pool;
    SessionManager::Options sessions;
    size_t async_workers = 2;
    bool redirect_enabled = true;
  };

  // All borrowed pointers must outlive the DataManager. `db` is the
  // metadata DBMS this node talks to by default.
  DataManager(std::string name, db::Database* db,
              archive::ArchiveManager* archives,
              archive::NameMapper* mapper, Clock* clock, Options options);
  ~DataManager();

  DataManager(const DataManager&) = delete;
  DataManager& operator=(const DataManager&) = delete;

  const std::string& name() const { return name_; }
  Clock* clock() { return clock_; }

  IoLayer& io() { return *io_; }
  SemanticLayer& semantics() { return *semantics_; }
  SessionManager& sessions() { return *sessions_; }
  UserManager& users() { return *users_; }
  db::ConnectionPool& pool() { return *pool_; }
  db::Database* database() { return db_; }

  // --- call redirection (§5.4) ----------------------------------------
  void AddPeer(DataManager* peer);
  size_t num_peers() const { return peers_.size(); }
  // Picks the execution node for the next call: round-robin over self and
  // peers when redirection is enabled, else self. `force_local` is the
  // per-call overwrite.
  DataManager* Route(bool force_local = false);

  // --- asynchronous execution -------------------------------------------
  // "a DM might decide to place a request in an execution queue, send the
  // request to a pool of worker threads for asynchronous execution or
  // execute the call directly."
  bool SubmitAsync(std::function<void()> work);
  void DrainAsync();

  // Operational logging into the op_logs table.
  Status LogOperational(const std::string& component,
                        const std::string& message);

  // Mirrors the registry into the operational schema: replaces the
  // metric_snapshots table with the current snapshot and drains buffered
  // trace spans into request_traces. nullptr = the process-wide registry.
  Status MirrorMetrics(MetricsRegistry* registry = nullptr);

  int64_t requests_handled() const {
    return requests_handled_.load(std::memory_order_relaxed);
  }
  void CountRequest() {
    requests_handled_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  db::Database* db_;
  Clock* clock_;
  Options options_;

  std::unique_ptr<db::ConnectionPool> pool_;
  std::unique_ptr<IoLayer> io_;
  std::unique_ptr<SemanticLayer> semantics_;
  std::unique_ptr<SessionManager> sessions_;
  std::unique_ptr<UserManager> users_;
  std::unique_ptr<ThreadPool> async_pool_;

  std::vector<DataManager*> peers_;
  std::atomic<size_t> route_counter_{0};
  std::atomic<int64_t> requests_handled_{0};
  IdGenerator log_ids_{1};
  IdGenerator snap_ids_{1};
  IdGenerator trace_row_ids_{1};
};

}  // namespace hedc::dm

#endif  // HEDC_DM_DM_H_
