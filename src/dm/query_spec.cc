#include "dm/query_spec.h"

#include <cctype>

namespace hedc::dm {

namespace {

bool IsSafeIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

const char* OpToSql(CondOp op) {
  switch (op) {
    case CondOp::kEq:
      return "=";
    case CondOp::kNe:
      return "<>";
    case CondOp::kLt:
      return "<";
    case CondOp::kLe:
      return "<=";
    case CondOp::kGt:
      return ">";
    case CondOp::kGe:
      return ">=";
    case CondOp::kLike:
      return "LIKE";
  }
  return "=";
}

}  // namespace

Result<std::string> QuerySpec::ToSql(std::vector<db::Value>* params) const {
  if (!IsSafeIdentifier(table_)) {
    return Status::InvalidArgument("unsafe table name: " + table_);
  }
  std::string sql = "SELECT ";
  if (count_only_) {
    sql += "COUNT(*)";
  } else if (fields_.empty()) {
    sql += "*";
  } else {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (!IsSafeIdentifier(fields_[i])) {
        return Status::InvalidArgument("unsafe field name: " + fields_[i]);
      }
      if (i > 0) sql += ", ";
      sql += fields_[i];
    }
  }
  sql += " FROM ";
  sql += table_;

  params->clear();
  bool first = true;
  for (const Condition& cond : conditions_) {
    if (!IsSafeIdentifier(cond.field)) {
      return Status::InvalidArgument("unsafe field name: " + cond.field);
    }
    sql += first ? " WHERE " : " AND ";
    first = false;
    sql += cond.field;
    sql += ' ';
    sql += OpToSql(cond.op);
    sql += " ?";
    params->push_back(cond.value);
  }
  if (!raw_predicate_.empty()) {
    sql += first ? " WHERE " : " AND ";
    first = false;
    sql += "(";
    sql += raw_predicate_;
    sql += ")";
  }
  if (!order_by_.empty()) {
    if (!IsSafeIdentifier(order_by_)) {
      return Status::InvalidArgument("unsafe order field: " + order_by_);
    }
    sql += " ORDER BY ";
    sql += order_by_;
    if (order_desc_) sql += " DESC";
  }
  if (limit_ >= 0) {
    sql += " LIMIT ";
    sql += std::to_string(limit_);
  }
  return sql;
}

}  // namespace hedc::dm
