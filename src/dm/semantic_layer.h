// The DM semantic layer (§5.2): services over entities.
//
// "It enforces access rules, ensures referential consistency, and
// determines data dependencies. ... This layer ensures that all images
// produced during an analysis are properly referenced in the system."
// Access control follows §5.5: derived data is private to its owner until
// flagged public; the user id is appended to all queries.
#ifndef HEDC_DM_SEMANTIC_LAYER_H_
#define HEDC_DM_SEMANTIC_LAYER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/ids.h"
#include "core/status.h"
#include "dm/io_layer.h"
#include "dm/session.h"

namespace hedc::dm {

// High-level event: "an observation period that has some meaning to a
// particular user" (§3.3). No fixed event types — event_type is a label.
struct HleRecord {
  int64_t hle_id = 0;
  int64_t owner_id = 0;
  bool is_public = false;
  std::string event_type;  // free-form: "flare", "grb", "quiet", ...
  double t_start = 0;
  double t_end = 0;
  double e_min = 0;
  double e_max = 0;
  double peak_rate = 0;
  double peak_energy = 0;
  int64_t photon_count = 0;
  int64_t unit_id = 0;      // raw data unit the event was found in
  int calibration_version = 1;
  int version = 1;
  int64_t superseded_by = 0;  // versioning: newer HLE id, 0 = current
  std::string label;
  std::string notes;
  double created_time = 0;
  std::string source;       // "auto-detect", "user", "import"
  double quality = 0;
};

// One analysis run attached to an HLE.
struct AnaRecord {
  int64_t ana_id = 0;
  int64_t hle_id = 0;
  int64_t owner_id = 0;
  bool is_public = false;
  std::string routine;      // registry name, e.g. "imaging"
  std::string parameters;   // canonical parameter string
  int64_t param_hash = 0;
  std::string status;       // "done", "failed", "running"
  double quality = 0;
  double t_start = 0;
  double t_end = 0;
  double e_min = 0;
  double e_max = 0;
  int64_t photon_count = 0;
  int64_t image_bytes = 0;
  std::string log_excerpt;
  int calibration_version = 1;
  int version = 1;
  int64_t superseded_by = 0;
  double created_time = 0;
  double duration_ms = 0;
  double peak_value = 0;
  int64_t pixels = 0;
  std::string notes;
};

struct CatalogRecord {
  int64_t catalog_id = 0;
  int64_t owner_id = 0;
  bool is_public = false;
  std::string name;
  std::string description;
  double created_time = 0;
};

class SemanticLayer {
 public:
  SemanticLayer(IoLayer* io, Clock* clock);

  // --- HLE -----------------------------------------------------------
  // Inserts; assigns hle_id. Owner comes from the session.
  Result<int64_t> CreateHle(const Session& session, HleRecord record);
  Result<HleRecord> GetHle(const Session& session, int64_t hle_id);
  // Time-range listing scoped by the session view.
  Result<std::vector<HleRecord>> ListHles(const Session& session,
                                          double t_lo, double t_hi,
                                          int64_t limit = -1);
  Status SetHlePublic(const Session& session, int64_t hle_id, bool value);
  // Integrity: refuses while analyses reference the HLE.
  Status DeleteHle(const Session& session, int64_t hle_id);
  // Versioning (§3.1): inserts the new record and marks the old one
  // superseded; both remain queryable.
  Result<int64_t> SupersedeHle(const Session& session, int64_t old_hle_id,
                               HleRecord new_record);

  // --- ANA -----------------------------------------------------------
  // Inserts the analysis tuple and its lineage record in one transaction.
  Result<int64_t> CreateAna(const Session& session, AnaRecord record);
  Result<AnaRecord> GetAna(const Session& session, int64_t ana_id);
  Result<std::vector<AnaRecord>> ListAnalyses(const Session& session,
                                              int64_t hle_id);
  Status SetAnaPublic(const Session& session, int64_t ana_id, bool value);
  Status DeleteAna(const Session& session, int64_t ana_id);

  // Redundant-work detection (§3.5): an existing, visible analysis of
  // the same routine+parameters on the same HLE.
  Result<std::optional<AnaRecord>> FindExistingAnalysis(
      const Session& session, int64_t hle_id, const std::string& routine,
      const std::string& canonical_params);

  // --- catalogs --------------------------------------------------------
  Result<int64_t> CreateCatalog(const Session& session, std::string name,
                                std::string description, bool is_public);
  Result<CatalogRecord> GetCatalogByName(const Session& session,
                                         const std::string& name);
  // Membership requires the HLE to exist and be visible to the session.
  Status AddToCatalog(const Session& session, int64_t catalog_id,
                      int64_t hle_id);
  Result<std::vector<int64_t>> ListCatalogHles(const Session& session,
                                               int64_t catalog_id);

  // Lineage helper used by processes and the PL commit phase.
  Status RecordLineage(int64_t item_id, int64_t source_item_id,
                       const std::string& operation, int calibration_version,
                       const std::string& parameters);
  Result<std::vector<int64_t>> LineageSources(int64_t item_id);

  IoLayer* io() { return io_; }

  // Parameter hash used for overlap detection.
  static int64_t HashParams(const std::string& routine,
                            const std::string& canonical_params);

 private:
  // Visibility predicate: owner, public flag, super user.
  static bool Visible(const Session& session, int64_t owner_id,
                      bool is_public);
  static Status RequireOwnership(const Session& session, int64_t owner_id);

  double NowSeconds() const;

  IoLayer* io_;
  Clock* clock_;
  IdGenerator hle_ids_{1};
  IdGenerator ana_ids_{1};
  IdGenerator catalog_ids_{1};
  IdGenerator member_ids_{1};
  IdGenerator lineage_ids_{1};
};

}  // namespace hedc::dm

#endif  // HEDC_DM_SEMANTIC_LAYER_H_
