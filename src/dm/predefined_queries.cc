#include "dm/predefined_queries.h"

#include "db/sql.h"

namespace hedc::dm {

PredefinedQueryService::PredefinedQueryService(db::Database* db) : db_(db) {
  // Seed past existing registrations (shared DBMS across nodes).
  Result<db::ResultSet> max =
      db_->Execute("SELECT MAX(query_id) FROM predefined_queries");
  if (max.ok() && !max.value().rows.empty()) {
    ids_.AdvancePast(max.value().rows[0][0].AsInt());
  }
}

Status PredefinedQueryService::ValidateSelectOnly(const std::string& sql) {
  HEDC_ASSIGN_OR_RETURN(std::unique_ptr<db::Statement> stmt,
                        db::ParseSql(sql));
  if (stmt->kind != db::Statement::Kind::kSelect) {
    return Status::InvalidArgument(
        "predefined queries must be SELECT statements");
  }
  return Status::Ok();
}

Result<int64_t> PredefinedQueryService::Register(
    const std::string& name, const std::string& description,
    const std::string& sql) {
  HEDC_RETURN_IF_ERROR(ValidateSelectOnly(sql));
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet existing,
      db_->Execute("SELECT COUNT(*) FROM predefined_queries WHERE name = ?",
                   {db::Value::Text(name)}));
  if (existing.rows[0][0].AsInt() > 0) {
    return Status::AlreadyExists("predefined query " + name);
  }
  int64_t id = ids_.Next();
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      db_->Execute("INSERT INTO predefined_queries VALUES (?, ?, ?, ?)",
                   {db::Value::Int(id), db::Value::Text(name),
                    db::Value::Text(description), db::Value::Text(sql)}));
  (void)r;
  return id;
}

Result<PredefinedQuery> PredefinedQueryService::Get(const std::string& name) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet rs,
      db_->Execute("SELECT * FROM predefined_queries WHERE name = ?",
                   {db::Value::Text(name)}));
  if (rs.rows.empty()) {
    return Status::NotFound("predefined query " + name);
  }
  PredefinedQuery q;
  q.query_id = rs.Get(0, "query_id").AsInt();
  q.name = rs.Get(0, "name").AsText();
  q.description = rs.Get(0, "description").AsText();
  q.sql = rs.Get(0, "sql").AsText();
  return q;
}

Result<std::vector<PredefinedQuery>> PredefinedQueryService::List() {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet rs,
      db_->Execute("SELECT * FROM predefined_queries ORDER BY name"));
  std::vector<PredefinedQuery> out;
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    PredefinedQuery q;
    q.query_id = rs.Get(i, "query_id").AsInt();
    q.name = rs.Get(i, "name").AsText();
    q.description = rs.Get(i, "description").AsText();
    q.sql = rs.Get(i, "sql").AsText();
    out.push_back(std::move(q));
  }
  return out;
}

Result<db::ResultSet> PredefinedQueryService::Run(
    const Session& session, const std::string& name,
    const std::vector<db::Value>& params) {
  if (!session.profile.can_browse) {
    return Status::PermissionDenied("browse rights required");
  }
  HEDC_ASSIGN_OR_RETURN(PredefinedQuery q, Get(name));
  return db_->Execute(q.sql, params);
}

Result<db::ResultSet> PredefinedQueryService::RunAdHoc(
    const Session& session, const std::string& sql,
    const std::vector<db::Value>& params) {
  if (!session.profile.is_super) {
    return Status::PermissionDenied("ad-hoc SQL requires a super account");
  }
  HEDC_RETURN_IF_ERROR(ValidateSelectOnly(sql));
  return db_->Execute(sql, params);
}

}  // namespace hedc::dm
