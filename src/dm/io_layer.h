// The DM I/O layer (§5.2): "abstracts from the actual storage type and
// location. All data accesses happen through this layer. It manages
// database access, file system manipulation, database connections and
// performs general resource management. Operations like dynamic name
// construction are also done at this layer. ... The layer supports
// dynamic partitioning of the load so that, e.g., data requests for
// certain parts of a database schema are routed to a different DBMS."
#ifndef HEDC_DM_IO_LAYER_H_
#define HEDC_DM_IO_LAYER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/name_mapper.h"
#include "core/metrics.h"
#include "core/status.h"
#include "db/connection.h"
#include "db/database.h"
#include "dm/query_spec.h"

namespace hedc::dm {

class IoLayer {
 public:
  // `db` is the default metadata DBMS; `archives` and `mapper` serve the
  // file side. All pointers are borrowed and must outlive the layer.
  IoLayer(db::Database* db, db::ConnectionPool* pool,
          archive::ArchiveManager* archives, archive::NameMapper* mapper);

  // --- vertical partitioning -------------------------------------------
  // Routes all accesses for `table` to another DBMS (e.g. "separate
  // processing from browsing clients", §5.2).
  void RouteTable(const std::string& table, db::Database* target,
                  db::ConnectionPool* target_pool);
  db::Database* DatabaseFor(const std::string& table) const;

  // --- database access --------------------------------------------------
  // Executes a verified QuerySpec through the query connection pool.
  Result<db::ResultSet> Query(const QuerySpec& spec);
  // Raw SQL update path through the update pool (inserts/updates/deletes).
  Result<db::ResultSet> Update(const std::string& table,
                               std::string_view sql,
                               const std::vector<db::Value>& params);

  // --- file access -------------------------------------------------------
  // Receives one fixed-size chunk of a streamed item file. `offset` is the
  // chunk's position in the file; the last chunk may be short.
  using ChunkSink =
      std::function<Status(uint64_t offset, const uint8_t* data, size_t n)>;

  // Default chunk size for streamed reads (64 KiB).
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  // Streams the file registered for `item_id` through `sink` in
  // `chunk_bytes`-sized pieces: one name resolution, then bounded-memory
  // ReadRange loops against the archive — large items never materialize
  // as a single allocation in this layer. Returns the total bytes
  // streamed. A sink error aborts the stream and is returned verbatim.
  Result<uint64_t> StreamItemFile(int64_t item_id, const ChunkSink& sink,
                                  size_t chunk_bytes = kDefaultChunkBytes);

  // Reads the file registered for `item_id` (name mapping + archive read).
  // Implemented over StreamItemFile; callers needing bounded memory use
  // the streamed form directly.
  Result<std::vector<uint8_t>> ReadItemFile(int64_t item_id);
  // Stores `data` on `archive_id` under `rel_path` and registers the
  // filename location for `item_id`.
  Status WriteItemFile(int64_t item_id, int64_t archive_id,
                       const std::string& rel_path,
                       const std::vector<uint8_t>& data);
  Status DeleteItemFile(int64_t item_id);

  archive::NameMapper* name_mapper() { return mapper_; }
  archive::ArchiveManager* archives() { return archives_; }

  // I/O statistics for the evaluation harness.
  int64_t queries_executed() const { return queries_; }
  int64_t updates_executed() const { return updates_; }
  int64_t files_read() const { return file_reads_; }
  int64_t files_written() const { return file_writes_; }
  int64_t bytes_read() const { return bytes_read_; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  db::Database* db_;
  db::ConnectionPool* pool_;
  archive::ArchiveManager* archives_;
  archive::NameMapper* mapper_;
  std::map<std::string, std::pair<db::Database*, db::ConnectionPool*>>
      routes_;

  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> updates_{0};
  std::atomic<int64_t> file_reads_{0};
  std::atomic<int64_t> file_writes_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> bytes_written_{0};

  // io.* metrics: file traffic through the layer, visible on /metrics
  // alongside the per-instance stats above.
  Counter* files_read_metric_;
  Counter* files_written_metric_;
  Counter* bytes_read_metric_;
  Counter* bytes_written_metric_;
};

}  // namespace hedc::dm

#endif  // HEDC_DM_IO_LAYER_H_
