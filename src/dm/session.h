// Sessions and the session cache (§5.3).
//
// "Profile, status information and view are stored in sessions. ...
// Creating database connections and user sessions are the two most
// expensive parts of request processing. ... The DM caches up to three
// sessions per user (one for analysis, HLEs, and catalogues each). The
// cache lookup algorithm uses the network IP and cookies to match clients
// with their sessions."
#ifndef HEDC_DM_SESSION_H_
#define HEDC_DM_SESSION_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "core/clock.h"
#include "core/ids.h"
#include "core/status.h"
#include "dm/users.h"

namespace hedc::dm {

enum class SessionKind { kAnalysis = 0, kHle = 1, kCatalog = 2 };

const char* SessionKindName(SessionKind kind);

struct Session {
  int64_t session_id = 0;
  UserProfile profile;
  SessionKind kind = SessionKind::kHle;
  std::string client_ip;
  std::string cookie;
  Micros created_at = 0;
  Micros last_used = 0;
  // The "temporary view (to speed up subsequent data access)": the query
  // predicate fragment this session's reads are scoped by.
  std::string view_predicate;
  // Request-tracing id for the request currently using this session copy.
  // Set per request by the caller (not cached); 0 = untraced.
  int64_t trace_id = 0;
};

class SessionManager {
 public:
  struct Options {
    Micros session_setup_cost = 30 * kMicrosPerMilli;
    size_t max_sessions = 1024;  // global LRU bound
    bool caching_enabled = true;
  };

  SessionManager(Clock* clock, Options options)
      : clock_(clock), options_(options) {}

  // Returns a cached session for (ip, cookie, kind) or creates one,
  // charging the setup cost. The profile is only consulted on creation.
  Result<Session> GetOrCreate(const UserProfile& profile,
                              const std::string& client_ip,
                              const std::string& cookie, SessionKind kind);

  // Explicitly drops all sessions for a cookie (logout).
  void Invalidate(const std::string& client_ip, const std::string& cookie);

  size_t CacheSize() const;
  int64_t sessions_created() const { return sessions_created_; }
  int64_t cache_hits() const { return cache_hits_; }

 private:
  std::string KeyOf(const std::string& ip, const std::string& cookie,
                    SessionKind kind) const;
  void EvictIfNeeded();

  Clock* clock_;
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Session> cache_;
  std::list<std::string> lru_;  // front = most recent
  IdGenerator ids_{1};
  int64_t sessions_created_ = 0;
  int64_t cache_hits_ = 0;
};

}  // namespace hedc::dm

#endif  // HEDC_DM_SESSION_H_
