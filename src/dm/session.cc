#include "dm/session.h"

#include <algorithm>

#include "core/metrics.h"
#include "core/strings.h"

namespace hedc::dm {

namespace {

struct SessionMetrics {
  Counter* hits;
  Counter* creates;
  Gauge* cache_size;
  Histogram* get_us;
};

const SessionMetrics& Metrics() {
  static const SessionMetrics kMetrics = [] {
    MetricsRegistry* registry = MetricsRegistry::Default();
    return SessionMetrics{registry->GetCounter("dm.sessions.hits"),
                          registry->GetCounter("dm.sessions.creates"),
                          registry->GetGauge("dm.sessions.cache_size"),
                          registry->GetHistogram("dm.sessions.get_us")};
  }();
  return kMetrics;
}

}  // namespace

const char* SessionKindName(SessionKind kind) {
  switch (kind) {
    case SessionKind::kAnalysis:
      return "analysis";
    case SessionKind::kHle:
      return "hle";
    case SessionKind::kCatalog:
      return "catalog";
  }
  return "?";
}

std::string SessionManager::KeyOf(const std::string& ip,
                                  const std::string& cookie,
                                  SessionKind kind) const {
  return ip + "|" + cookie + "|" + SessionKindName(kind);
}

Result<Session> SessionManager::GetOrCreate(const UserProfile& profile,
                                            const std::string& client_ip,
                                            const std::string& cookie,
                                            SessionKind kind) {
  std::string key = KeyOf(client_ip, cookie, kind);
  ScopedTimer timer(Metrics().get_us);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.caching_enabled) {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++cache_hits_;
        Metrics().hits->Add();
        it->second.last_used = clock_->Now();
        lru_.remove(key);
        lru_.push_front(key);
        return it->second;
      }
    }
  }

  // Creation pays the setup cost (outside the lock: it is the dominant
  // cost and must not serialize unrelated lookups).
  clock_->SleepFor(options_.session_setup_cost);
  Session session;
  session.session_id = ids_.Next();
  session.profile = profile;
  session.kind = kind;
  session.client_ip = client_ip;
  session.cookie = cookie;
  session.created_at = clock_->Now();
  session.last_used = session.created_at;
  // Scope reads: non-super users see public tuples or their own (§5.5:
  // "the system typically appends the user id to all queries").
  if (profile.is_super) {
    session.view_predicate = "";
  } else {
    session.view_predicate = StrFormat(
        "(is_public = TRUE OR owner_id = %lld)",
        static_cast<long long>(profile.user_id));
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++sessions_created_;
  Metrics().creates->Add();
  if (options_.caching_enabled) {
    cache_[key] = session;
    lru_.push_front(key);
    EvictIfNeeded();
    Metrics().cache_size->Set(static_cast<int64_t>(cache_.size()));
  }
  return session;
}

void SessionManager::Invalidate(const std::string& client_ip,
                                const std::string& cookie) {
  std::lock_guard<std::mutex> lock(mu_);
  for (SessionKind kind : {SessionKind::kAnalysis, SessionKind::kHle,
                           SessionKind::kCatalog}) {
    std::string key = KeyOf(client_ip, cookie, kind);
    cache_.erase(key);
    lru_.remove(key);
  }
  Metrics().cache_size->Set(static_cast<int64_t>(cache_.size()));
}

size_t SessionManager::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void SessionManager::EvictIfNeeded() {
  while (cache_.size() > options_.max_sessions && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace hedc::dm
