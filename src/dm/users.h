// User profiles and access control (§5.5).
//
// "HEDC requires an account to access its more advanced features. Non
// authorized users may only browse public data. Depending on their user
// profile, authorized users may in addition download, analyse and upload
// data." Authentication costs one DBMS query plus one update (§7.2).
#ifndef HEDC_DM_USERS_H_
#define HEDC_DM_USERS_H_

#include <cstdint>
#include <string>

#include "core/ids.h"
#include "core/status.h"
#include "db/database.h"

namespace hedc::dm {

struct UserProfile {
  int64_t user_id = 0;
  std::string name;
  bool can_browse = true;
  bool can_download = false;
  bool can_analyze = false;
  bool can_upload = false;
  bool is_super = false;  // may see/edit all committed data (§6.1)
};

// The anonymous profile: public browsing only.
UserProfile AnonymousUser();

// Deterministic (non-cryptographic) password hash for the repo.
std::string HashPassword(const std::string& password);

class UserManager {
 public:
  explicit UserManager(db::Database* db) : db_(db) {}

  // Creates a user; fails on duplicate names.
  Result<int64_t> CreateUser(const std::string& name,
                             const std::string& password,
                             const UserProfile& rights);

  // One indexed query (profile fetch) + one update (session counter), as
  // in the paper's measurement methodology.
  Result<UserProfile> Authenticate(const std::string& name,
                                   const std::string& password);

  Result<UserProfile> GetProfile(int64_t user_id);

 private:
  db::Database* db_;
  IdGenerator ids_{1};
};

}  // namespace hedc::dm

#endif  // HEDC_DM_USERS_H_
