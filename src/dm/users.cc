#include "dm/users.h"

#include "core/strings.h"

namespace hedc::dm {

UserProfile AnonymousUser() {
  UserProfile profile;
  profile.user_id = 0;
  profile.name = "anonymous";
  profile.can_browse = true;
  return profile;
}

std::string HashPassword(const std::string& password) {
  // FNV-1a, hex-encoded. Placeholder for a real KDF; uniform across the
  // repo so tests are deterministic.
  uint64_t h = 1469598103934665603ull;
  for (char c : password) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return StrFormat("%016llx", static_cast<unsigned long long>(h));
}

namespace {

UserProfile ProfileFromRow(const db::ResultSet& rs, size_t row) {
  UserProfile profile;
  profile.user_id = rs.Get(row, "user_id").AsInt();
  profile.name = rs.Get(row, "name").AsText();
  profile.can_browse = rs.Get(row, "can_browse").AsBool();
  profile.can_download = rs.Get(row, "can_download").AsBool();
  profile.can_analyze = rs.Get(row, "can_analyze").AsBool();
  profile.can_upload = rs.Get(row, "can_upload").AsBool();
  profile.is_super = rs.Get(row, "is_super").AsBool();
  return profile;
}

}  // namespace

Result<int64_t> UserManager::CreateUser(const std::string& name,
                                        const std::string& password,
                                        const UserProfile& rights) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet existing,
      db_->Execute("SELECT COUNT(*) FROM users WHERE name = ?",
                   {db::Value::Text(name)}));
  if (existing.rows[0][0].AsInt() > 0) {
    return Status::AlreadyExists("user " + name);
  }
  int64_t user_id = ids_.Next();
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      db_->Execute(
          "INSERT INTO users VALUES (?, ?, ?, ?, ?, ?, ?, ?, 'active', 0)",
          {db::Value::Int(user_id), db::Value::Text(name),
           db::Value::Text(HashPassword(password)),
           db::Value::Bool(rights.can_browse),
           db::Value::Bool(rights.can_download),
           db::Value::Bool(rights.can_analyze),
           db::Value::Bool(rights.can_upload),
           db::Value::Bool(rights.is_super)}));
  (void)r;
  return user_id;
}

Result<UserProfile> UserManager::Authenticate(const std::string& name,
                                              const std::string& password) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet rs,
      db_->Execute("SELECT * FROM users WHERE name = ?",
                   {db::Value::Text(name)}));
  if (rs.rows.empty()) {
    return Status::PermissionDenied("unknown user " + name);
  }
  if (rs.Get(0, "password_hash").AsText() != HashPassword(password)) {
    return Status::PermissionDenied("bad password for " + name);
  }
  if (rs.Get(0, "status").AsText() != "active") {
    return Status::PermissionDenied("account disabled: " + name);
  }
  UserProfile profile = ProfileFromRow(rs, 0);
  // The paper's authentication path performs one update (session
  // bookkeeping) alongside the profile query.
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet upd,
      db_->Execute(
          "UPDATE users SET sessions_open = sessions_open + 1 "
          "WHERE user_id = ?",
          {db::Value::Int(profile.user_id)}));
  (void)upd;
  return profile;
}

Result<UserProfile> UserManager::GetProfile(int64_t user_id) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet rs,
      db_->Execute("SELECT * FROM users WHERE user_id = ?",
                   {db::Value::Int(user_id)}));
  if (rs.rows.empty()) {
    return Status::NotFound(StrFormat("user %lld",
                                      static_cast<long long>(user_id)));
  }
  return ProfileFromRow(rs, 0);
}

}  // namespace hedc::dm
