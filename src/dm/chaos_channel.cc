#include "dm/chaos_channel.h"

namespace hedc::dm {

Result<std::vector<uint8_t>> ChaosChannel::Call(
    const std::vector<uint8_t>& request) {
  // Draw the full fault plan up front under the lock (fixed draw count per
  // call — see header) and release it before touching the inner channel,
  // so concurrent callers serialize only on the Rng.
  bool drop, delay, duplicate, truncate, garble;
  Micros delay_us;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_.calls;
    drop = rng_.Bernoulli(options_.drop_p);
    delay = rng_.Bernoulli(options_.delay_p);
    duplicate = rng_.Bernoulli(options_.duplicate_p);
    truncate = rng_.Bernoulli(options_.truncate_p);
    garble = rng_.Bernoulli(options_.garble_p);
    delay_us = rng_.UniformInt(options_.delay_min, options_.delay_max);
    if (drop) ++counts_.drops;
    if (delay && !drop) ++counts_.delays;
    if (duplicate && !drop) ++counts_.duplicates;
  }

  if (drop) return Status::Unavailable("chaos: call dropped");
  if (delay && clock_ != nullptr) clock_->SleepFor(delay_us);

  if (duplicate) {
    // At-least-once delivery: the peer handles the request twice; the
    // first response is lost in transit.
    (void)inner_->Call(request);
  }
  Result<std::vector<uint8_t>> response = inner_->Call(request);
  if (!response.ok()) return response;
  std::vector<uint8_t> bytes = std::move(response).value();

  if (truncate && !bytes.empty()) {
    // A checksummed transport (the TCP framing carries a CRC32) detects a
    // short frame and surfaces it as corruption rather than delivering it.
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_.truncations;
    return Status::Corruption("chaos: response truncated in transit");
  }
  if (garble && !bytes.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_.garbles;
    int64_t flips = 1 + static_cast<int64_t>(bytes.size()) / 64;
    for (int64_t i = 0; i < flips; ++i) {
      size_t pos = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<uint8_t>(rng_.UniformInt(1, 255));
    }
  }
  return bytes;
}

ChaosChannel::Counts ChaosChannel::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

}  // namespace hedc::dm
