#include "dm/io_layer.h"

#include "core/strings.h"

namespace hedc::dm {

IoLayer::IoLayer(db::Database* db, db::ConnectionPool* pool,
                 archive::ArchiveManager* archives,
                 archive::NameMapper* mapper)
    : db_(db), pool_(pool), archives_(archives), mapper_(mapper) {
  MetricsRegistry* metrics = MetricsRegistry::Default();
  files_read_metric_ = metrics->GetCounter("io.files_read");
  files_written_metric_ = metrics->GetCounter("io.files_written");
  bytes_read_metric_ = metrics->GetCounter("io.bytes_read");
  bytes_written_metric_ = metrics->GetCounter("io.bytes_written");
}

void IoLayer::RouteTable(const std::string& table, db::Database* target,
                         db::ConnectionPool* target_pool) {
  routes_[ToLower(table)] = {target, target_pool};
}

db::Database* IoLayer::DatabaseFor(const std::string& table) const {
  auto it = routes_.find(ToLower(table));
  return it == routes_.end() ? db_ : it->second.first;
}

Result<db::ResultSet> IoLayer::Query(const QuerySpec& spec) {
  std::vector<db::Value> params;
  HEDC_ASSIGN_OR_RETURN(std::string sql, spec.ToSql(&params));
  queries_.fetch_add(1, std::memory_order_relaxed);
  auto it = routes_.find(ToLower(spec.table()));
  db::ConnectionPool* pool = it == routes_.end() ? pool_ : it->second.second;
  if (pool != nullptr) {
    db::PooledConnection conn = pool->Acquire(db::PoolKind::kQuery);
    Result<db::ResultSet> result = conn->Execute(sql, params);
    // "Connections are immediately released by sessions after the result
    // set has been copied" (§5.3) — PooledConnection does that on scope
    // exit; Release() documents the intent.
    conn.Release();
    return result;
  }
  return DatabaseFor(spec.table())->Execute(sql, params);
}

Result<db::ResultSet> IoLayer::Update(const std::string& table,
                                      std::string_view sql,
                                      const std::vector<db::Value>& params) {
  updates_.fetch_add(1, std::memory_order_relaxed);
  auto it = routes_.find(ToLower(table));
  db::ConnectionPool* pool = it == routes_.end() ? pool_ : it->second.second;
  if (pool != nullptr) {
    db::PooledConnection conn = pool->Acquire(db::PoolKind::kUpdate);
    return conn->Execute(sql, params);
  }
  return DatabaseFor(table)->Execute(sql, params);
}

Result<uint64_t> IoLayer::StreamItemFile(int64_t item_id,
                                         const ChunkSink& sink,
                                         size_t chunk_bytes) {
  if (chunk_bytes == 0) chunk_bytes = kDefaultChunkBytes;
  HEDC_ASSIGN_OR_RETURN(
      archive::ResolvedName name,
      mapper_->Resolve(item_id, archive::NameType::kFilename));
  archive::Archive* arch = archives_->Get(name.archive_id);
  if (arch == nullptr) {
    return Status::Unavailable(
        StrFormat("archive %lld offline or unknown",
                  static_cast<long long>(name.archive_id)));
  }
  std::vector<uint8_t> chunk(chunk_bytes);
  uint64_t offset = 0;
  while (true) {
    HEDC_ASSIGN_OR_RETURN(
        size_t n, arch->ReadRange(name.rel_path, offset, chunk.data(),
                                  chunk.size()));
    if (n == 0) break;
    bytes_read_.fetch_add(static_cast<int64_t>(n),
                          std::memory_order_relaxed);
    bytes_read_metric_->Add(static_cast<int64_t>(n));
    HEDC_RETURN_IF_ERROR(sink(offset, chunk.data(), n));
    offset += n;
    if (n < chunk.size()) break;  // short chunk: end of file
  }
  file_reads_.fetch_add(1, std::memory_order_relaxed);
  files_read_metric_->Add();
  return offset;
}

Result<std::vector<uint8_t>> IoLayer::ReadItemFile(int64_t item_id) {
  std::vector<uint8_t> data;
  HEDC_ASSIGN_OR_RETURN(
      uint64_t total,
      StreamItemFile(item_id,
                     [&data](uint64_t, const uint8_t* p, size_t n) {
                       data.insert(data.end(), p, p + n);
                       return Status::Ok();
                     }));
  (void)total;
  return data;
}

Status IoLayer::WriteItemFile(int64_t item_id, int64_t archive_id,
                              const std::string& rel_path,
                              const std::vector<uint8_t>& data) {
  archive::Archive* arch = archives_->Get(archive_id);
  if (arch == nullptr) {
    return Status::Unavailable(
        StrFormat("archive %lld offline or unknown",
                  static_cast<long long>(archive_id)));
  }
  // Physical path mirrors the name-mapping scheme: rel_path/item_id.
  std::string path = rel_path + "/" + std::to_string(item_id);
  HEDC_RETURN_IF_ERROR(arch->Write(path, data));
  HEDC_RETURN_IF_ERROR(mapper_->AddLocation(
      item_id, archive::NameType::kFilename, archive_id, rel_path));
  file_writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(static_cast<int64_t>(data.size()),
                           std::memory_order_relaxed);
  files_written_metric_->Add();
  bytes_written_metric_->Add(static_cast<int64_t>(data.size()));
  return Status::Ok();
}

Status IoLayer::DeleteItemFile(int64_t item_id) {
  HEDC_ASSIGN_OR_RETURN(
      archive::ResolvedName name,
      mapper_->Resolve(item_id, archive::NameType::kFilename));
  archive::Archive* arch = archives_->Get(name.archive_id);
  if (arch != nullptr) {
    Status s = arch->Delete(name.rel_path);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  return mapper_->RemoveLocations(item_id);
}

}  // namespace hedc::dm
