// Remote DM access over a byte channel (§2.3: the application-logic
// components "communicate through RMI and HTTP"; §5.4 call redirection).
//
// A DM call is marshalled into a length-delimited byte frame, carried by
// a Channel (in-process with optional simulated latency here; a socket in
// a networked deployment), handled by an RmiServer wrapping the target
// DataManager, and the response unmarshalled on the caller's side. The
// RemoteDm client therefore exercises exactly the serialization work a
// networked redirection would.
#ifndef HEDC_DM_REMOTE_H_
#define HEDC_DM_REMOTE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/metrics.h"
#include "core/status.h"
#include "dm/dm.h"
#include "dm/query_spec.h"

namespace hedc::dm {

// Transport abstraction: one request frame in, one response frame out.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;
  virtual Result<std::vector<uint8_t>> Call(
      const std::vector<uint8_t>& request) = 0;
};

// Call-frame header (version 2). Every request frame starts with a magic
// byte and version, then the originating request's trace id — so one
// analysis request can be followed across the node boundary — then the
// opcode. Frames with a bad magic/version decode as kCorruption.
struct CallHeader {
  int64_t trace_id = 0;
  uint8_t op = 0;
};

inline constexpr uint8_t kRmiFrameMagic = 0xDA;
inline constexpr uint8_t kRmiFrameVersion = 2;

void EncodeCallHeader(const CallHeader& header, ByteBuffer* out);
Status DecodeCallHeader(ByteReader* in, CallHeader* out);

// Server side of the transport: anything that can turn one request frame
// into one response frame. TcpRmiServer serves any RmiHandler, so a
// cluster node can interpose capacity gates or instrumentation between
// the socket and the RmiServer proper.
class RmiHandler {
 public:
  virtual ~RmiHandler() = default;
  virtual std::vector<uint8_t> Handle(const std::vector<uint8_t>& request) = 0;
};

// Server side: decodes call frames and executes them against a DM node.
// Thread-safe: concurrent channels may Handle() in parallel (the DM and
// database below do their own locking).
class RmiServer : public RmiHandler {
 public:
  explicit RmiServer(DataManager* dm, MetricsRegistry* metrics = nullptr)
      : dm_(dm),
        metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()) {}

  // Handles one frame; the response encodes either a result or an error
  // status. Malformed frames yield a kCorruption response, never a crash.
  std::vector<uint8_t> Handle(const std::vector<uint8_t>& request) override;

  int64_t calls_handled() const {
    return calls_handled_.load(std::memory_order_relaxed);
  }

 private:
  DataManager* dm_;
  MetricsRegistry* metrics_;
  std::atomic<int64_t> calls_handled_{0};
};

// In-process channel with optional per-call latency and payload bandwidth
// cost charged to a clock (models the RMI hop).
class InProcessChannel : public ByteChannel {
 public:
  InProcessChannel(RmiServer* server, Clock* clock = nullptr,
                   Micros per_call_latency = 0,
                   double micros_per_kb = 0.0)
      : server_(server),
        clock_(clock),
        per_call_latency_(per_call_latency),
        micros_per_kb_(micros_per_kb) {}

  Result<std::vector<uint8_t>> Call(
      const std::vector<uint8_t>& request) override;

  void set_connected(bool connected) { connected_ = connected; }

 private:
  RmiServer* server_;
  Clock* clock_;
  Micros per_call_latency_;
  double micros_per_kb_;
  bool connected_ = true;
};

// Client-side stub: the DM operations a peer node exposes.
class RemoteDm {
 public:
  explicit RemoteDm(ByteChannel* channel, MetricsRegistry* metrics = nullptr)
      : channel_(channel),
        metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()) {}

  // Trace id stamped into the call-frame header of subsequent calls (0 =
  // untraced); the server side opens its spans under the same id.
  void set_trace_id(int64_t trace_id) { trace_id_ = trace_id; }
  int64_t trace_id() const { return trace_id_; }

  // Executes a verified QuerySpec on the remote node.
  Result<db::ResultSet> Query(const QuerySpec& spec);
  // Raw parameterized SQL (update path).
  Result<db::ResultSet> Execute(const std::string& sql,
                                const std::vector<db::Value>& params);
  // File access through the remote node's I/O layer.
  Result<std::vector<uint8_t>> ReadItemFile(int64_t item_id);
  Status LogOperational(const std::string& component,
                        const std::string& message);

 private:
  // Builds the request frame for `op` (header + payload already encoded
  // into `request`), sends it, and validates the response envelope.
  Result<std::vector<uint8_t>> Roundtrip(uint8_t op, const char* span_name,
                                         ByteBuffer request);

  ByteChannel* channel_;
  MetricsRegistry* metrics_;
  int64_t trace_id_ = 0;
};

// Frame codec, exposed for tests.
void EncodeResultSet(const db::ResultSet& rs, ByteBuffer* out);
Status DecodeResultSet(ByteReader* in, db::ResultSet* out);

}  // namespace hedc::dm

#endif  // HEDC_DM_REMOTE_H_
