#include "dm/tcp_remote.h"

#include <sys/socket.h>

#include "core/crc32.h"

namespace hedc::dm {

namespace {

// Per-connection state machine for [u32 len][payload][u32 crc32] frames on
// the reactor. Mirrors the blocking server's semantics exactly: a hostile
// length or checksum mismatch drops the connection without a response
// (peers observe kUnavailable on their next read); a valid frame executes
// on the worker pool and always produces a response frame.
class RmiFrameProtocol : public net::ReactorProtocol {
 public:
  RmiFrameProtocol(RmiHandler* rmi, MetricsRegistry* metrics,
                   size_t max_frame)
      : rmi_(rmi), metrics_(metrics), max_frame_(max_frame) {}

  size_t OnData(const uint8_t* data, size_t n,
                net::ReactorContext* ctx) override {
    if (n < 4) return 0;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(data[i]) << (8 * i);
    }
    if (len > max_frame_) {
      // Rejected on the 4 header bytes alone — no payload-sized
      // allocation ever happens for a hostile length.
      metrics_->GetCounter("net.oversized_frames")->Add();
      ctx->Close();
      return 0;
    }
    size_t total = 4 + static_cast<size_t>(len) + 4;
    if (n < total) return 0;
    uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      crc |= static_cast<uint32_t>(data[4 + len + i]) << (8 * i);
    }
    std::vector<uint8_t> payload(data + 4, data + 4 + len);
    if (crc != Crc32(payload)) {
      ctx->Close();
      return 0;
    }
    // Transport-level frame count; the RMI codec layer above counts
    // remote.server.calls (one per decoded call, either engine).
    metrics_->GetCounter("remote.server.frames")->Add();
    ctx->Dispatch([rmi = rmi_, payload = std::move(payload)]() mutable {
      return net::ReactorReply{net::EncodeFrame(rmi->Handle(payload)),
                               /*close_after=*/false};
    });
    return total;
  }

 private:
  RmiHandler* rmi_;
  MetricsRegistry* metrics_;
  size_t max_frame_;
};

}  // namespace

TcpRmiServer::Options TcpRmiServer::Options::FromConfig(
    const Config& config) {
  Options options;
  // Reactor engine is the default since the PR-8 soak; net.reactor=false
  // selects the thread-per-connection engine.
  options.use_reactor = config.GetBool("net.reactor", true);
  options.reactor = net::Reactor::Options::FromConfig(config);
  options.max_frame = static_cast<size_t>(
      config.GetInt("net.max_frame_bytes",
                    static_cast<int64_t>(options.max_frame)));
  // One knob governs idle policy in both engines.
  options.blocking_idle_timeout = options.reactor.idle_timeout;
  return options;
}

TcpRmiServer::~TcpRmiServer() {
  Stop();
  if (own_reactor_ != nullptr) own_reactor_->Stop();
}

net::Reactor* TcpRmiServer::reactor() {
  if (options_.shared_reactor != nullptr) return options_.shared_reactor;
  if (own_reactor_ == nullptr) {
    net::Reactor::Options reactor_options = options_.reactor;
    if (reactor_options.metrics == nullptr) reactor_options.metrics = metrics_;
    own_reactor_ = std::make_unique<net::Reactor>(reactor_options);
  }
  return own_reactor_.get();
}

Status TcpRmiServer::Start(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::FailedPrecondition("server already running");
  if (options_.use_reactor) {
    net::Reactor* r = reactor();
    if (!r->running()) {
      // Owned reactor: boots on first Start and survives Stop/Start
      // cycles (only this server's listener is drained on Stop).
      HEDC_RETURN_IF_ERROR(r->Start());
    }
    RmiHandler* rmi = rmi_;
    MetricsRegistry* metrics = metrics_;
    size_t max_frame = options_.max_frame;
    Result<net::Reactor::ListenerInfo> listener =
        r->AddListener(port, [rmi, metrics, max_frame] {
          metrics->GetCounter("remote.server.connections")->Add();
          return std::make_unique<RmiFrameProtocol>(rmi, metrics, max_frame);
        });
    if (!listener.ok()) return listener.status();
    reactor_listener_ = listener.value();
    running_ = true;
    return Status::Ok();
  }
  HEDC_RETURN_IF_ERROR(listener_.Listen(port));
  running_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

int TcpRmiServer::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.use_reactor) return reactor_listener_.port;
  return listener_.port();
}

bool TcpRmiServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void TcpRmiServer::AcceptLoop() {
  while (true) {
    Result<net::TcpSocket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // listener closed (Stop) or fatal error
    metrics_->GetCounter("remote.server.connections")->Add();
    net::TcpSocket socket = std::move(accepted).value();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    live_connection_fds_.push_back(socket.fd());
    connection_threads_.emplace_back(
        [this, sock = std::move(socket)]() mutable {
          ServeConnection(std::move(sock));
        });
  }
}

void TcpRmiServer::ServeConnection(net::TcpSocket socket) {
  if (options_.blocking_idle_timeout > 0) {
    // Parity with the reactor's idle reaper: a silent connection is
    // dropped instead of parking this thread forever.
    socket.SetRecvTimeout(options_.blocking_idle_timeout);
  }
  while (true) {
    Result<std::vector<uint8_t>> request =
        net::RecvFrame(socket, options_.max_frame);
    if (!request.ok()) break;  // peer closed, reset, idle, or corrupt
    metrics_->GetCounter("remote.server.frames")->Add();
    std::vector<uint8_t> response = rmi_->Handle(request.value());
    if (!net::SendFrame(socket, response).ok()) break;
  }
  int fd = socket.fd();
  socket.Close();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < live_connection_fds_.size(); ++i) {
    if (live_connection_fds_[i] == fd) {
      live_connection_fds_.erase(live_connection_fds_.begin() +
                                 static_cast<long>(i));
      break;
    }
  }
}

void TcpRmiServer::Stop() {
  int reactor_listener_id = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    if (options_.use_reactor) {
      reactor_listener_id = reactor_listener_.id;
      reactor_listener_ = net::Reactor::ListenerInfo{};
    } else {
      stopping_ = true;
      // Shut down live connections so blocked reads fail; the fds are
      // closed by their owning ServeConnection threads.
      for (int fd : live_connection_fds_) ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (reactor_listener_id >= 0) {
    // Drains this listener's connections and in-flight frames; must run
    // outside mu_ (port() readers proceed meanwhile).
    reactor()->CloseListener(reactor_listener_id);
    return;
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // After the accept thread exits no new connection threads appear.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

Result<std::vector<uint8_t>> TcpChannel::Call(
    const std::vector<uint8_t>& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!socket_.valid()) {
    Result<net::TcpSocket> connected = net::TcpConnect(host_, port_);
    if (!connected.ok()) return connected.status();
    // Adopt the fresh socket only once the old one is provably gone —
    // move-assignment closes it, but the explicit disconnect keeps the
    // no-two-fds invariant local to this function.
    DisconnectLocked();
    socket_ = std::move(connected).value();
    Status s = socket_.SetRecvTimeout(recv_timeout_);
    if (!s.ok()) {
      DisconnectLocked();
      return s;
    }
  }
  Status sent = net::SendFrame(socket_, request);
  if (!sent.ok()) {
    DisconnectLocked();
    return sent;
  }
  Result<std::vector<uint8_t>> response = net::RecvFrame(socket_);
  if (!response.ok()) {
    // Timeout or corruption leaves the stream desynchronized; reconnect on
    // the next call rather than trying to resynchronize mid-stream.
    DisconnectLocked();
  }
  return response;
}

}  // namespace hedc::dm
