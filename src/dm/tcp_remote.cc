#include "dm/tcp_remote.h"

#include <sys/socket.h>

namespace hedc::dm {

Status TcpRmiServer::Start(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::FailedPrecondition("server already running");
  HEDC_RETURN_IF_ERROR(listener_.Listen(port));
  running_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

bool TcpRmiServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void TcpRmiServer::AcceptLoop() {
  while (true) {
    Result<net::TcpSocket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // listener closed (Stop) or fatal error
    metrics_->GetCounter("remote.server.connections")->Add();
    net::TcpSocket socket = std::move(accepted).value();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    live_connection_fds_.push_back(socket.fd());
    connection_threads_.emplace_back(
        [this, sock = std::move(socket)]() mutable {
          ServeConnection(std::move(sock));
        });
  }
}

void TcpRmiServer::ServeConnection(net::TcpSocket socket) {
  while (true) {
    Result<std::vector<uint8_t>> request = net::RecvFrame(socket);
    if (!request.ok()) break;  // peer closed, reset, or corrupt stream
    std::vector<uint8_t> response = rmi_->Handle(request.value());
    if (!net::SendFrame(socket, response).ok()) break;
  }
  int fd = socket.fd();
  socket.Close();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < live_connection_fds_.size(); ++i) {
    if (live_connection_fds_[i] == fd) {
      live_connection_fds_.erase(live_connection_fds_.begin() +
                                 static_cast<long>(i));
      break;
    }
  }
}

void TcpRmiServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    stopping_ = true;
    // Shut down live connections so blocked reads fail; the fds are closed
    // by their owning ServeConnection threads.
    for (int fd : live_connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // After the accept thread exits no new connection threads appear.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

Result<std::vector<uint8_t>> TcpChannel::Call(
    const std::vector<uint8_t>& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!socket_.valid()) {
    Result<net::TcpSocket> connected = net::TcpConnect(host_, port_);
    if (!connected.ok()) return connected.status();
    socket_ = std::move(connected).value();
    Status s = socket_.SetRecvTimeout(recv_timeout_);
    if (!s.ok()) {
      socket_.Close();
      return s;
    }
  }
  Status sent = net::SendFrame(socket_, request);
  if (!sent.ok()) {
    socket_.Close();
    return sent;
  }
  Result<std::vector<uint8_t>> response = net::RecvFrame(socket_);
  if (!response.ok()) {
    // Timeout or corruption leaves the stream desynchronized; reconnect on
    // the next call rather than trying to resynchronize mid-stream.
    socket_.Close();
  }
  return response;
}

}  // namespace hedc::dm
