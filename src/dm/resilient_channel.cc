#include "dm/resilient_channel.h"

namespace hedc::dm {

ResilientChannel::ResilientChannel(ByteChannel* primary,
                                   std::vector<ByteChannel*> fallbacks,
                                   Clock* clock, Options options,
                                   MetricsRegistry* metrics)
    : primary_(primary),
      fallbacks_(std::move(fallbacks)),
      clock_(clock),
      options_(std::move(options)),
      metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()),
      rng_(options_.rng_seed) {}

ResilientChannel::ResilientChannel(ByteChannel* primary, ByteChannel* fallback,
                                   Clock* clock, Options options,
                                   MetricsRegistry* metrics)
    : ResilientChannel(primary,
                       fallback != nullptr ? std::vector<ByteChannel*>{fallback}
                                           : std::vector<ByteChannel*>{},
                       clock, std::move(options), metrics) {}

bool ResilientChannel::IsTransportFailure(const Status& status) {
  return status.IsUnavailable() || status.IsTimeout() ||
         status.code() == StatusCode::kCorruption;
}

ResilientChannel::Target ResilientChannel::PickTarget() {
  std::lock_guard<std::mutex> lock(mu_);
  Target target;
  auto fallback_target = [this]() -> Target {
    if (fallbacks_.empty()) return {nullptr, false, false, -1};
    return {fallbacks_[active_fallback_], false, false,
            static_cast<int>(active_fallback_)};
  };
  switch (state_) {
    case BreakerState::kClosed:
      target = {primary_, /*is_primary=*/true, /*is_probe=*/false, -1};
      break;
    case BreakerState::kOpen:
      if (clock_->Now() >= open_until_) {
        state_ = BreakerState::kHalfOpen;
        probe_in_flight_ = false;
        // fall through to the half-open logic below
      } else {
        target = fallback_target();
        break;
      }
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        target = {primary_, true, /*is_probe=*/true, -1};
      } else {
        target = fallback_target();
      }
      break;
  }
  if (!target.is_primary) {
    ++stats_.redirects;
    metrics_->GetCounter("remote.redirects")->Add();
  }
  return target;
}

void ResilientChannel::RecordOutcome(const Target& target, bool success) {
  bool notify = false;
  BreakerState notify_state = BreakerState::kClosed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (target.is_probe) probe_in_flight_ = false;
    if (!target.is_primary) {
      // Fallback outcomes don't move the breaker, but a failing fallback
      // rotates open-breaker traffic to the next node in preference order.
      if (!success && target.fallback_index >= 0 &&
          static_cast<size_t>(target.fallback_index) == active_fallback_ &&
          fallbacks_.size() > 1) {
        active_fallback_ = (active_fallback_ + 1) % fallbacks_.size();
        ++stats_.fallback_rotations;
        metrics_->GetCounter("remote.fallback_rotations")->Add();
      }
      return;
    }
    if (success) {
      consecutive_failures_ = 0;
      if (state_ != BreakerState::kClosed) {
        state_ = BreakerState::kClosed;
        active_fallback_ = 0;  // recovered: prefer the front of the list again
        ++stats_.breaker_closes;
        metrics_->GetCounter("remote.breaker_closes")->Add();
        notify = true;
        notify_state = BreakerState::kClosed;
      }
    } else {
      ++consecutive_failures_;
      bool trip = target.is_probe ||
                  (state_ == BreakerState::kClosed &&
                   consecutive_failures_ >= options_.failure_threshold);
      if (trip) {
        bool was_closed = state_ == BreakerState::kClosed;
        state_ = BreakerState::kOpen;
        open_until_ = clock_->Now() + options_.cooldown;
        ++stats_.breaker_opens;
        metrics_->GetCounter("remote.breaker_opens")->Add();
        if (was_closed) {
          notify = true;
          notify_state = BreakerState::kOpen;
        }
      }
    }
  }
  if (notify && options_.on_state_change) options_.on_state_change(notify_state);
}

Result<std::vector<uint8_t>> ResilientChannel::Call(
    const std::vector<uint8_t>& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.calls;
  }
  metrics_->GetCounter("remote.calls")->Add();
  Histogram* call_us = metrics_->GetHistogram("remote.call_us");

  Status last_error = Status::Unavailable("no attempt made");
  int max_attempts = options_.retry.max_attempts < 1
                         ? 1
                         : options_.retry.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    Target target = PickTarget();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.attempts;
    }
    metrics_->GetCounter("remote.attempts")->Add();

    Status status;
    Result<std::vector<uint8_t>> response =
        Status::Unavailable("breaker open and no fallback configured");
    if (target.channel != nullptr) {
      Micros start = clock_->Now();
      response = target.channel->Call(request);
      Micros elapsed = clock_->Now() - start;
      status = response.status();
      if (status.ok() && options_.call_deadline > 0 &&
          elapsed > options_.call_deadline) {
        status = Status::Timeout("call exceeded deadline of " +
                                 std::to_string(options_.call_deadline) +
                                 "us");
      }
      if (status.ok()) call_us->Observe(elapsed);
      RecordOutcome(target, status.ok());
    } else {
      status = response.status();
    }

    if (status.ok()) return response;
    if (!IsTransportFailure(status)) return status;  // application error
    last_error = status;

    if (attempt == max_attempts) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
    }
    metrics_->GetCounter("remote.retries")->Add();
    Micros delay;
    {
      std::lock_guard<std::mutex> lock(mu_);
      delay = BackoffDelay(options_.retry, attempt, &rng_);
    }
    clock_->SleepFor(delay);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
  }
  metrics_->GetCounter("remote.failures")->Add();
  return last_error;
}

ResilientChannel::BreakerState ResilientChannel::breaker_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

ResilientChannel::Stats ResilientChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ResilientChannel::active_fallback() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_fallback_;
}

}  // namespace hedc::dm
