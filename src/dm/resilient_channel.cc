#include "dm/resilient_channel.h"

namespace hedc::dm {

ResilientChannel::ResilientChannel(ByteChannel* primary, ByteChannel* fallback,
                                   Clock* clock, Options options,
                                   MetricsRegistry* metrics)
    : primary_(primary),
      fallback_(fallback),
      clock_(clock),
      options_(options),
      metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()),
      rng_(options.rng_seed) {}

bool ResilientChannel::IsTransportFailure(const Status& status) {
  return status.IsUnavailable() || status.IsTimeout() ||
         status.code() == StatusCode::kCorruption;
}

ResilientChannel::Target ResilientChannel::PickTarget() {
  std::lock_guard<std::mutex> lock(mu_);
  Target target;
  switch (state_) {
    case BreakerState::kClosed:
      target = {primary_, /*is_primary=*/true, /*is_probe=*/false};
      break;
    case BreakerState::kOpen:
      if (clock_->Now() >= open_until_) {
        state_ = BreakerState::kHalfOpen;
        probe_in_flight_ = false;
        // fall through to the half-open logic below
      } else {
        target = {fallback_, false, false};
        break;
      }
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        target = {primary_, true, /*is_probe=*/true};
      } else {
        target = {fallback_, false, false};
      }
      break;
  }
  if (!target.is_primary) {
    ++stats_.redirects;
    metrics_->GetCounter("remote.redirects")->Add();
  }
  return target;
}

void ResilientChannel::RecordOutcome(const Target& target, bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  if (target.is_probe) probe_in_flight_ = false;
  if (!target.is_primary) return;  // fallback outcomes don't move the breaker
  if (success) {
    consecutive_failures_ = 0;
    if (state_ != BreakerState::kClosed) {
      state_ = BreakerState::kClosed;
      ++stats_.breaker_closes;
      metrics_->GetCounter("remote.breaker_closes")->Add();
    }
    return;
  }
  ++consecutive_failures_;
  bool trip = target.is_probe ||
              (state_ == BreakerState::kClosed &&
               consecutive_failures_ >= options_.failure_threshold);
  if (trip) {
    state_ = BreakerState::kOpen;
    open_until_ = clock_->Now() + options_.cooldown;
    ++stats_.breaker_opens;
    metrics_->GetCounter("remote.breaker_opens")->Add();
  }
}

Result<std::vector<uint8_t>> ResilientChannel::Call(
    const std::vector<uint8_t>& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.calls;
  }
  metrics_->GetCounter("remote.calls")->Add();
  Histogram* call_us = metrics_->GetHistogram("remote.call_us");

  Status last_error = Status::Unavailable("no attempt made");
  int max_attempts = options_.retry.max_attempts < 1
                         ? 1
                         : options_.retry.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    Target target = PickTarget();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.attempts;
    }
    metrics_->GetCounter("remote.attempts")->Add();

    Status status;
    Result<std::vector<uint8_t>> response =
        Status::Unavailable("breaker open and no fallback configured");
    if (target.channel != nullptr) {
      Micros start = clock_->Now();
      response = target.channel->Call(request);
      Micros elapsed = clock_->Now() - start;
      status = response.status();
      if (status.ok() && options_.call_deadline > 0 &&
          elapsed > options_.call_deadline) {
        status = Status::Timeout("call exceeded deadline of " +
                                 std::to_string(options_.call_deadline) +
                                 "us");
      }
      if (status.ok()) call_us->Observe(elapsed);
      RecordOutcome(target, status.ok());
    } else {
      status = response.status();
    }

    if (status.ok()) return response;
    if (!IsTransportFailure(status)) return status;  // application error
    last_error = status;

    if (attempt == max_attempts) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
    }
    metrics_->GetCounter("remote.retries")->Add();
    Micros delay;
    {
      std::lock_guard<std::mutex> lock(mu_);
      delay = BackoffDelay(options_.retry, attempt, &rng_);
    }
    clock_->SleepFor(delay);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failures;
  }
  metrics_->GetCounter("remote.failures")->Add();
  return last_error;
}

ResilientChannel::BreakerState ResilientChannel::breaker_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

ResilientChannel::Stats ResilientChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hedc::dm
