#include "dm/hedc_schema.h"

namespace hedc::dm {

namespace {

Status ExecAll(db::Database* db, const char* const* statements, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    Result<db::ResultSet> r = db->Execute(statements[i]);
    if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
      return r.status();
    }
  }
  return Status::Ok();
}

}  // namespace

Status CreateGenericSchema(db::Database* db) {
  static const char* const kStatements[] = {
      // --- administrative section ---
      "CREATE TABLE IF NOT EXISTS users ("
      "user_id INT PRIMARY KEY, name TEXT NOT NULL, password_hash TEXT, "
      "can_browse BOOL, can_download BOOL, can_analyze BOOL, "
      "can_upload BOOL, is_super BOOL, status TEXT, sessions_open INT)",
      "CREATE INDEX users_by_id ON users (user_id) USING HASH",
      "CREATE INDEX users_by_name ON users (name) USING HASH",

      "CREATE TABLE IF NOT EXISTS services ("
      "service_id INT PRIMARY KEY, service_type TEXT, location TEXT, "
      "prerequisites TEXT, status TEXT)",
      "CREATE INDEX services_by_id ON services (service_id) USING HASH",

      "CREATE TABLE IF NOT EXISTS clients ("
      "client_id INT PRIMARY KEY, client_type TEXT, ip TEXT, status TEXT)",

      "CREATE TABLE IF NOT EXISTS predefined_queries ("
      "query_id INT PRIMARY KEY, name TEXT, description TEXT, sql TEXT)",

      "CREATE TABLE IF NOT EXISTS config_params ("
      "param_key TEXT NOT NULL, param_value TEXT)",
      "CREATE INDEX config_by_key ON config_params (param_key) USING HASH",

      // --- operational section ---
      "CREATE TABLE IF NOT EXISTS op_logs ("
      "log_id INT PRIMARY KEY, log_time REAL, level TEXT, component TEXT, "
      "message TEXT)",

      "CREATE TABLE IF NOT EXISTS lineage ("
      "lineage_id INT PRIMARY KEY, item_id INT, source_item_id INT, "
      "operation TEXT, calibration_version INT, parameters TEXT)",
      "CREATE INDEX lineage_by_item ON lineage (item_id) USING HASH",

      "CREATE TABLE IF NOT EXISTS archive_status ("
      "archive_id INT PRIMARY KEY, online BOOL, capacity_left INT, "
      "archive_type TEXT)",

      "CREATE TABLE IF NOT EXISTS usage_stats ("
      "stat_id INT PRIMARY KEY, stat_time REAL, user_id INT, "
      "operation TEXT, duration_ms REAL)",

      // Mirrored metrics: the latest MetricsRegistry snapshot, one row per
      // counter/gauge/histogram facet (see DataManager::MirrorMetrics).
      "CREATE TABLE IF NOT EXISTS metric_snapshots ("
      "snap_id INT PRIMARY KEY, snap_time REAL, metric TEXT, kind TEXT, "
      "value REAL)",

      // Drained trace spans: one row per completed span of a traced
      // request, queryable by trace id.
      "CREATE TABLE IF NOT EXISTS request_traces ("
      "trace_row_id INT PRIMARY KEY, trace_id INT, component TEXT, "
      "span TEXT, start_us INT, end_us INT, note TEXT)",
      "CREATE INDEX traces_by_id ON request_traces (trace_id) USING HASH",

      // Derived-product cache directory (pl::ProductCache): one row per
      // persisted entry, content-addressed by the FNV-1a of the canonical
      // (routine, parameters, input units + calibration versions) form.
      // The blob itself lives in an archive under the item id, resolvable
      // via the name mapper like any other file. unit_ids /
      // calibration_versions are comma-separated lineage material the
      // recalibration and purge workflows scan for invalidation.
      "CREATE TABLE IF NOT EXISTS product_cache ("
      "cache_key INT PRIMARY KEY, item_id INT, routine TEXT, "
      "parameters TEXT, unit_ids TEXT, calibration_versions TEXT, "
      "size_bytes INT, cost_seconds REAL, ana_id INT, created_time REAL)",
      "CREATE INDEX product_cache_by_key ON product_cache (cache_key) "
      "USING HASH",
  };
  return ExecAll(db, kStatements,
                 sizeof(kStatements) / sizeof(kStatements[0]));
}

Status CreateRhessiSchema(db::Database* db) {
  static const char* const kStatements[] = {
      "CREATE TABLE IF NOT EXISTS raw_units ("
      "unit_id INT PRIMARY KEY, t_start REAL, t_stop REAL, "
      "n_photons INT, calibration_version INT, file_bytes INT, "
      "format TEXT, received_time REAL, status TEXT)",
      "CREATE INDEX raw_units_by_id ON raw_units (unit_id) USING HASH",
      "CREATE INDEX raw_units_by_time ON raw_units (t_start)",

      // High-level events: "roughly a period of time and range of energy
      // that has been determined to be relevant by a specific user".
      "CREATE TABLE IF NOT EXISTS hle ("
      "hle_id INT PRIMARY KEY, owner_id INT NOT NULL, is_public BOOL, "
      "event_type TEXT, t_start REAL, t_end REAL, e_min REAL, e_max REAL, "
      "peak_rate REAL, peak_energy REAL, photon_count INT, "
      "unit_id INT, calibration_version INT, version INT, "
      "superseded_by INT, label TEXT, notes TEXT, created_time REAL, "
      "source TEXT, quality REAL)",
      "CREATE INDEX hle_by_id ON hle (hle_id) USING HASH",
      "CREATE INDEX hle_by_time ON hle (t_start)",
      "CREATE INDEX hle_by_type ON hle (event_type) USING HASH",
      "CREATE INDEX hle_by_owner ON hle (owner_id) USING HASH",

      // Analyses: parameters, logs and derived images hang off an HLE.
      "CREATE TABLE IF NOT EXISTS ana ("
      "ana_id INT PRIMARY KEY, hle_id INT NOT NULL, owner_id INT NOT NULL, "
      "is_public BOOL, routine TEXT, parameters TEXT, param_hash INT, "
      "status TEXT, quality REAL, t_start REAL, t_end REAL, "
      "e_min REAL, e_max REAL, photon_count INT, image_bytes INT, "
      "log_excerpt TEXT, calibration_version INT, version INT, "
      "superseded_by INT, created_time REAL, duration_ms REAL, "
      "peak_value REAL, pixels INT, notes TEXT)",
      "CREATE INDEX ana_by_id ON ana (ana_id) USING HASH",
      "CREATE INDEX ana_by_hle ON ana (hle_id) USING HASH",
      "CREATE INDEX ana_by_param ON ana (param_hash) USING HASH",
      "CREATE INDEX ana_by_owner ON ana (owner_id) USING HASH",

      // Catalogs group HLEs: the standard/extended catalogs plus private
      // user workspaces.
      "CREATE TABLE IF NOT EXISTS catalogs ("
      "catalog_id INT PRIMARY KEY, owner_id INT NOT NULL, is_public BOOL, "
      "name TEXT NOT NULL, description TEXT, created_time REAL)",
      "CREATE INDEX catalogs_by_id ON catalogs (catalog_id) USING HASH",
      "CREATE INDEX catalogs_by_name ON catalogs (name) USING HASH",

      "CREATE TABLE IF NOT EXISTS catalog_members ("
      "member_id INT PRIMARY KEY, catalog_id INT NOT NULL, "
      "hle_id INT NOT NULL)",
      "CREATE INDEX members_by_catalog ON catalog_members (catalog_id) "
      "USING HASH",
      "CREATE INDEX members_by_hle ON catalog_members (hle_id) USING HASH",
  };
  return ExecAll(db, kStatements,
                 sizeof(kStatements) / sizeof(kStatements[0]));
}

Status CreateFullSchema(db::Database* db) {
  HEDC_RETURN_IF_ERROR(CreateGenericSchema(db));
  return CreateRhessiSchema(db);
}

}  // namespace hedc::dm
