// Predefined queries (§1: "For searching the meta data, users can use
// either visual tools ..., predefined queries, or their own SQL
// queries"). Administrators register vetted, parameterized SELECTs in
// the administrative schema section; users run them by name with bound
// parameters. Arbitrary user SQL is allowed read-only for super users.
#ifndef HEDC_DM_PREDEFINED_QUERIES_H_
#define HEDC_DM_PREDEFINED_QUERIES_H_

#include <string>
#include <vector>

#include "core/ids.h"
#include "core/status.h"
#include "db/database.h"
#include "dm/session.h"

namespace hedc::dm {

struct PredefinedQuery {
  int64_t query_id = 0;
  std::string name;
  std::string description;
  std::string sql;  // SELECT with '?' parameters
};

class PredefinedQueryService {
 public:
  explicit PredefinedQueryService(db::Database* db);

  // Registers a query; only SELECT statements are accepted (the service
  // must never become a write channel). Fails on duplicate names.
  Result<int64_t> Register(const std::string& name,
                           const std::string& description,
                           const std::string& sql);

  Result<PredefinedQuery> Get(const std::string& name);
  Result<std::vector<PredefinedQuery>> List();

  // Runs the named query with bound parameters. Requires browse rights.
  Result<db::ResultSet> Run(const Session& session, const std::string& name,
                            const std::vector<db::Value>& params);

  // "their own SQL queries": free-form read-only SQL for super users
  // (the paper exposes raw SQL only to advanced accounts).
  Result<db::ResultSet> RunAdHoc(const Session& session,
                                 const std::string& sql,
                                 const std::vector<db::Value>& params);

 private:
  static Status ValidateSelectOnly(const std::string& sql);

  db::Database* db_;
  IdGenerator ids_{1};
};

}  // namespace hedc::dm

#endif  // HEDC_DM_PREDEFINED_QUERIES_H_
