// ResilientChannel: fault-tolerant call redirection (§5.4).
//
// Decorates any ByteChannel with the policies a networked middle tier
// needs: per-attempt deadlines, bounded retries with exponential backoff
// and jitter, and a circuit breaker that redirects traffic to a fallback
// node after consecutive primary failures. All timing flows through an
// injected Clock and all randomness through a seeded Rng, so retry counts,
// the backoff schedule and breaker transitions are reproducible in tests.
//
// Breaker state machine:
//   kClosed    -- calls go to the primary; `failure_threshold` consecutive
//                 transport failures open the breaker.
//   kOpen      -- calls redirect to the active fallback (or fail
//                 kUnavailable when none is configured) until `cooldown`
//                 elapses.
//   kHalfOpen  -- after the cooldown one probe call is allowed through to
//                 the primary; success closes the breaker, failure reopens
//                 it for another cooldown. Non-probe calls keep using the
//                 fallback meanwhile.
//
// Fallbacks form an ordered list (the cluster router hands over the ring
// successors of the primary). While the breaker is open, traffic goes to
// the first fallback; a transport failure there rotates to the next one
// in order, and closing the breaker (primary recovered) resets the
// rotation to the front, so traffic always returns to the preferred
// node first.
//
// Only transport-class failures count: kUnavailable (peer down/reset),
// kTimeout (deadline), kCorruption (garbled frame). Application errors
// (kNotFound, kInvalidArgument, ...) pass through untouched — the call
// reached the peer and was answered.
#ifndef HEDC_DM_RESILIENT_CHANNEL_H_
#define HEDC_DM_RESILIENT_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/backoff.h"
#include "core/clock.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "dm/remote.h"

namespace hedc::dm {

class ResilientChannel : public ByteChannel {
 public:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  struct Options {
    RetryPolicy retry;
    // Per-attempt latency budget; an attempt whose response arrives after
    // the deadline counts as kTimeout. 0 disables the check.
    Micros call_deadline = 0;
    // Consecutive primary failures before the breaker opens.
    int failure_threshold = 5;
    // Open duration before a half-open probe is allowed.
    Micros cooldown = 5 * kMicrosPerSecond;
    uint64_t rng_seed = 1;
    // Invoked (outside the channel lock) when the breaker trips open or
    // recloses — the membership registry's health feed. Half-open probing
    // is internal and not reported.
    std::function<void(BreakerState)> on_state_change;
  };

  struct Stats {
    int64_t calls = 0;
    int64_t attempts = 0;
    int64_t retries = 0;
    int64_t redirects = 0;   // attempts served by a fallback channel
    int64_t failures = 0;    // calls that exhausted every attempt
    int64_t breaker_opens = 0;
    int64_t breaker_closes = 0;
    int64_t fallback_rotations = 0;  // advances to the next fallback
  };

  // Ordered fallback list (may be empty: no redirect target). Borrowed
  // pointers must outlive the channel. `metrics` defaults to the process
  // registry.
  ResilientChannel(ByteChannel* primary, std::vector<ByteChannel*> fallbacks,
                   Clock* clock, Options options,
                   MetricsRegistry* metrics = nullptr);
  // Single-fallback convenience (`fallback` may be null).
  ResilientChannel(ByteChannel* primary, ByteChannel* fallback, Clock* clock,
                   Options options, MetricsRegistry* metrics = nullptr);

  Result<std::vector<uint8_t>> Call(
      const std::vector<uint8_t>& request) override;

  BreakerState breaker_state() const;
  Stats stats() const;
  // Index into the fallback list that open-breaker traffic currently
  // uses; 0 after recovery. Exposed for routing tests.
  size_t active_fallback() const;

 private:
  struct Target {
    ByteChannel* channel = nullptr;
    bool is_primary = false;
    bool is_probe = false;
    int fallback_index = -1;
  };

  // Picks primary or fallback per the breaker state (locks mu_).
  Target PickTarget();
  // Feeds an attempt outcome back into the breaker (locks mu_, notifies
  // on_state_change outside it).
  void RecordOutcome(const Target& target, bool success);

  static bool IsTransportFailure(const Status& status);

  ByteChannel* primary_;
  std::vector<ByteChannel*> fallbacks_;
  Clock* clock_;
  Options options_;
  MetricsRegistry* metrics_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  Micros open_until_ = 0;
  bool probe_in_flight_ = false;
  size_t active_fallback_ = 0;
  Rng rng_;
  Stats stats_;
};

}  // namespace hedc::dm

#endif  // HEDC_DM_RESILIENT_CHANNEL_H_
