#include "web/template.h"

namespace hedc::web {

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

// Renders tmpl[pos, end) into *out; returns the position just past the
// consumed input. `stop_tag` is the section close tag to stop at ("" for
// top level).
Result<size_t> RenderRange(const std::string& tmpl, size_t pos, size_t end,
                           const TemplateContext& context,
                           const std::string& stop_tag, std::string* out) {
  while (pos < end) {
    size_t open = tmpl.find("{{", pos);
    if (open == std::string::npos || open >= end) {
      if (!stop_tag.empty()) {
        return Status::InvalidArgument("missing {{/" + stop_tag + "}}");
      }
      out->append(tmpl, pos, end - pos);
      return end;
    }
    out->append(tmpl, pos, open - pos);
    size_t close = tmpl.find("}}", open + 2);
    if (close == std::string::npos || close + 2 > end) {
      return Status::InvalidArgument("unterminated {{ tag");
    }
    std::string tag = tmpl.substr(open + 2, close - open - 2);
    pos = close + 2;
    if (tag.empty()) continue;
    if (tag[0] == '/') {
      std::string name = tag.substr(1);
      if (name != stop_tag) {
        return Status::InvalidArgument("unexpected closing tag {{/" + name +
                                       "}}");
      }
      // Signal to the caller: consumed up to here.
      *out += "";  // no-op; placement marker
      return pos;
    }
    if (tag[0] == '#') {
      std::string name = tag.substr(1);
      // Find the body extent by rendering each row; the first row render
      // discovers the end position.
      auto section_it = context.sections.find(name);
      size_t body_start = pos;
      size_t after_section = 0;
      if (section_it == context.sections.end() ||
          section_it->second.empty()) {
        // Render into a scratch buffer with an empty context just to
        // locate the closing tag.
        std::string scratch;
        TemplateContext empty;
        HEDC_ASSIGN_OR_RETURN(
            after_section,
            RenderRange(tmpl, body_start, end, empty, name, &scratch));
      } else {
        for (size_t row = 0; row < section_it->second.size(); ++row) {
          HEDC_ASSIGN_OR_RETURN(
              after_section,
              RenderRange(tmpl, body_start, end, section_it->second[row],
                          name, out));
        }
      }
      pos = after_section;
      continue;
    }
    bool raw = tag[0] == '&';
    std::string name = raw ? tag.substr(1) : tag;
    auto it = context.scalars.find(name);
    if (it != context.scalars.end()) {
      out->append(raw ? it->second : HtmlEscape(it->second));
    }
  }
  if (!stop_tag.empty()) {
    return Status::InvalidArgument("missing {{/" + stop_tag + "}}");
  }
  return pos;
}

}  // namespace

Result<std::string> RenderTemplate(const std::string& tmpl,
                                   const TemplateContext& context) {
  std::string out;
  HEDC_ASSIGN_OR_RETURN(size_t consumed,
                        RenderRange(tmpl, 0, tmpl.size(), context, "", &out));
  (void)consumed;
  return out;
}

}  // namespace hedc::web
