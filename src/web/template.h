// HTML template engine (§6.1): "a response may involve a combination of
// multiple HTML template files, which are populated during query
// processing. Each template contains dynamic and static images, Java
// Script, CSS style sheets and plain text."
//
// Syntax:
//   {{name}}                 scalar substitution (HTML-escaped)
//   {{&name}}                raw substitution (no escaping)
//   {{#rows}} ... {{/rows}}  section repeated per row context
// Unknown scalars render empty; unknown sections render zero times.
#ifndef HEDC_WEB_TEMPLATE_H_
#define HEDC_WEB_TEMPLATE_H_

#include <map>
#include <string>
#include <vector>

#include "core/status.h"

namespace hedc::web {

struct TemplateContext {
  std::map<std::string, std::string> scalars;
  std::map<std::string, std::vector<TemplateContext>> sections;

  void Set(const std::string& key, const std::string& value) {
    scalars[key] = value;
  }
  TemplateContext& AddRow(const std::string& section) {
    sections[section].emplace_back();
    return sections[section].back();
  }
};

// Escapes &, <, >, " for HTML bodies.
std::string HtmlEscape(const std::string& text);

// Renders `tmpl` against `context`. Fails on unbalanced sections.
Result<std::string> RenderTemplate(const std::string& tmpl,
                                   const TemplateContext& context);

}  // namespace hedc::web

#endif  // HEDC_WEB_TEMPLATE_H_
