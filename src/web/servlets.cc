// Standard servlets: login/logout, catalog browsing, HLE pages, analysis
// pages, image download, analysis submission, progressive view delivery,
// approximate aggregates.
#include <memory>

#include "analysis/approx.h"
#include "analysis/product.h"
#include "archive/fits.h"
#include "core/metrics.h"
#include "core/strings.h"
#include "dm/predefined_queries.h"
#include "dm/process_layer.h"
#include "rhessi/raw_unit.h"
#include "wavelet/codec.h"
#include "wavelet/views.h"
#include "web/web_server.h"

namespace hedc::web {

namespace {

// Shared page templates (static text + dynamic slots, §6.1).
constexpr const char kPageHeader[] =
    "<html><head><title>{{title}} - HEDC</title>"
    "<link rel='stylesheet' href='/static/hedc.css'></head><body>"
    "<img src='/static/logo.gif' alt='HEDC'>"
    "<h1>{{title}}</h1><div class='nav'><a href='/catalog?name=standard'>"
    "standard catalog</a></div>";

constexpr const char kPageFooter[] =
    "<div class='footer'>RHESSI Experimental Data Center</div>"
    "</body></html>";

constexpr const char kHleTemplate[] =
    "<div class='hle'><h2>HLE {{hle_id}} ({{event_type}})</h2>"
    "<table><tr><td>time</td><td>{{t_start}} .. {{t_end}} s</td></tr>"
    "<tr><td>energy</td><td>{{e_min}} .. {{e_max}} keV</td></tr>"
    "<tr><td>peak rate</td><td>{{peak_rate}} /s</td></tr>"
    "<tr><td>photons</td><td>{{photon_count}}</td></tr>"
    "<tr><td>calibration</td><td>v{{calibration}}</td></tr></table>"
    "<p>{{analysis_count}} analyses, {{catalog_count}} catalog entries</p>";

constexpr const char kAnaRowTemplate[] =
    "{{#analyses}}<div class='ana'><a href='/ana?id={{ana_id}}'>"
    "{{routine}}</a> <span class='params'>{{parameters}}</span> "
    "<img src='/image?item={{image_item}}' width='128'></div>{{/analyses}}";

std::string RenderPage(const std::string& title, const std::string& inner) {
  TemplateContext header_ctx;
  header_ctx.Set("title", title);
  std::string out =
      RenderTemplate(kPageHeader, header_ctx).value_or("<html><body>");
  out += inner;
  out += kPageFooter;
  return out;
}

dm::Session BrowseSession(dm::DataManager* dm, WebServer* server,
                          const HttpRequest& request,
                          dm::SessionKind kind) {
  dm::UserProfile profile = server->ProfileFor(request);
  Result<dm::Session> session = dm->sessions().GetOrCreate(
      profile, request.client_ip, request.GetCookie("hedc_session"), kind);
  dm::Session out = session.ok() ? session.value() : dm::Session{};
  // Propagate the request's trace id through this per-request session
  // copy (the cached session stays untraced).
  out.trace_id = request.trace_id;
  return out;
}

class LoginServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    std::string user = request.GetQuery("user");
    std::string password = request.GetQuery("password");
    if (user.empty()) return HttpResponse::BadRequest("user required");
    Result<dm::UserProfile> profile =
        dm->users().Authenticate(user, password);
    if (!profile.ok()) {
      return HttpResponse::Forbidden(profile.status().ToString());
    }
    HttpResponse response;
    std::string token = server->IssueToken(profile.value());
    response.set_cookies["hedc_session"] = token;
    response.body = RenderPage(
        "Welcome", "<p>Logged in as " + HtmlEscape(user) + "</p>");
    return response;
  }
};

class LogoutServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    std::string token = request.GetCookie("hedc_session");
    server->RevokeToken(token);
    dm->sessions().Invalidate(request.client_ip, token);
    HttpResponse response;
    response.body = RenderPage("Goodbye", "<p>Logged out.</p>");
    return response;
  }
};

class CatalogServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    dm::Session session =
        BrowseSession(dm, server, request, dm::SessionKind::kCatalog);
    std::string name = request.GetQuery("name", "standard");
    Result<dm::CatalogRecord> catalog =
        dm->semantics().GetCatalogByName(session, name);
    if (!catalog.ok()) return HttpResponse::NotFound("catalog " + name);
    Result<std::vector<int64_t>> hles = dm->semantics().ListCatalogHles(
        session, catalog.value().catalog_id);
    if (!hles.ok()) return HttpResponse::NotFound(hles.status().ToString());

    TemplateContext ctx;
    for (int64_t hle_id : hles.value()) {
      TemplateContext& row = ctx.AddRow("hles");
      row.Set("hle_id", std::to_string(hle_id));
    }
    std::string list =
        RenderTemplate("<ul>{{#hles}}<li><a href='/hle?id={{hle_id}}'>HLE "
                       "{{hle_id}}</a></li>{{/hles}}</ul>",
                       ctx)
            .value_or("");
    return HttpResponse{
        200, "text/html",
        RenderPage("Catalog " + name,
                   StrFormat("<p>%zu events</p>", hles.value().size()) +
                       list),
        {}, {}};
  }
};

// The §6.1 workload: HLE header/footer + one analysis template per ANA;
// ~7 DB queries per page (HLE fetch, analyses list, two count queries,
// session/image lookups).
class HlePageServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    dm::Session session =
        BrowseSession(dm, server, request, dm::SessionKind::kHle);
    int64_t hle_id = 0;
    if (!ParseInt64(request.GetQuery("id"), &hle_id)) {
      return HttpResponse::BadRequest("id required");
    }
    Result<dm::HleRecord> hle = dm->semantics().GetHle(session, hle_id);
    if (!hle.ok()) {
      return HttpResponse::NotFound(StrFormat("HLE %lld",
                                              (long long)hle_id));
    }
    Result<std::vector<dm::AnaRecord>> analyses =
        dm->semantics().ListAnalyses(session, hle_id);
    if (!analyses.ok()) {
      return HttpResponse::NotFound(analyses.status().ToString());
    }
    // Count queries (full workload shape: "two are count queries").
    dm::QuerySpec ana_count("ana");
    ana_count.CountOnly().Where("hle_id", dm::CondOp::kEq,
                                db::Value::Int(hle_id));
    Result<db::ResultSet> n_ana = dm->io().Query(ana_count);
    dm::QuerySpec member_count("catalog_members");
    member_count.CountOnly().Where("hle_id", dm::CondOp::kEq,
                                   db::Value::Int(hle_id));
    Result<db::ResultSet> n_members = dm->io().Query(member_count);

    const dm::HleRecord& record = hle.value();
    TemplateContext ctx;
    ctx.Set("hle_id", std::to_string(record.hle_id));
    ctx.Set("event_type", record.event_type);
    ctx.Set("t_start", StrFormat("%.2f", record.t_start));
    ctx.Set("t_end", StrFormat("%.2f", record.t_end));
    ctx.Set("e_min", StrFormat("%.1f", record.e_min));
    ctx.Set("e_max", StrFormat("%.1f", record.e_max));
    ctx.Set("peak_rate", StrFormat("%.1f", record.peak_rate));
    ctx.Set("photon_count", std::to_string(record.photon_count));
    ctx.Set("calibration", std::to_string(record.calibration_version));
    ctx.Set("analysis_count",
            n_ana.ok() ? n_ana.value().rows[0][0].AsText() : "0");
    ctx.Set("catalog_count",
            n_members.ok() ? n_members.value().rows[0][0].AsText() : "0");
    std::string inner = RenderTemplate(kHleTemplate, ctx).value_or("");

    TemplateContext list_ctx;
    for (const dm::AnaRecord& ana : analyses.value()) {
      TemplateContext& row = list_ctx.AddRow("analyses");
      row.Set("ana_id", std::to_string(ana.ana_id));
      row.Set("routine", ana.routine);
      row.Set("parameters", ana.parameters);
      row.Set("image_item", std::to_string(2000000000 + ana.ana_id));
    }
    inner += RenderTemplate(kAnaRowTemplate, list_ctx).value_or("");
    return HttpResponse{200, "text/html",
                        RenderPage(StrFormat("HLE %lld", (long long)hle_id),
                                   inner),
                        {}, {}};
  }
};

class AnaPageServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    dm::Session session =
        BrowseSession(dm, server, request, dm::SessionKind::kAnalysis);
    int64_t ana_id = 0;
    if (!ParseInt64(request.GetQuery("id"), &ana_id)) {
      return HttpResponse::BadRequest("id required");
    }
    Result<dm::AnaRecord> ana = dm->semantics().GetAna(session, ana_id);
    if (!ana.ok()) {
      return HttpResponse::NotFound(StrFormat("ANA %lld",
                                              (long long)ana_id));
    }
    const dm::AnaRecord& record = ana.value();
    std::string inner = StrFormat(
        "<div class='ana-detail'><h2>%s on HLE %lld</h2>"
        "<p>parameters: %s</p><p>status: %s</p>"
        "<img src='/image?item=%lld'>"
        "<pre class='log'>%s</pre>"
        "<p><a href='/hle?id=%lld'>back to HLE</a></p></div>",
        HtmlEscape(record.routine).c_str(), (long long)record.hle_id,
        HtmlEscape(record.parameters).c_str(),
        HtmlEscape(record.status).c_str(),
        (long long)(2000000000 + record.ana_id),
        HtmlEscape(record.log_excerpt).c_str(), (long long)record.hle_id);
    return HttpResponse{
        200, "text/html",
        RenderPage(StrFormat("Analysis %lld", (long long)ana_id), inner),
        {}, {}};
  }
};

class ImageServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer*) override {
    int64_t item_id = 0;
    if (!ParseInt64(request.GetQuery("item"), &item_id)) {
      return HttpResponse::BadRequest("item required");
    }
    Result<std::vector<uint8_t>> bytes = dm->io().ReadItemFile(item_id);
    if (!bytes.ok()) {
      return HttpResponse::NotFound(StrFormat("image item %lld",
                                              (long long)item_id));
    }
    HttpResponse response;
    response.content_type = "image/gif";
    response.binary_body = std::move(bytes).value();
    return response;
  }
};

// Analysis submission: checks rights, reuses an existing identical
// analysis when present (§3.5), else drives the PL request workflow.
class AnalyzeServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    dm::Session session =
        BrowseSession(dm, server, request, dm::SessionKind::kAnalysis);
    if (!session.profile.can_analyze) {
      return HttpResponse::Forbidden("analysis rights required");
    }
    int64_t hle_id = 0;
    if (!ParseInt64(request.GetQuery("hle_id"), &hle_id)) {
      return HttpResponse::BadRequest("hle_id required");
    }
    std::string routine = request.GetQuery("routine", "lightcurve");
    Result<dm::HleRecord> hle = dm->semantics().GetHle(session, hle_id);
    if (!hle.ok()) {
      return HttpResponse::NotFound(StrFormat("HLE %lld",
                                              (long long)hle_id));
    }
    analysis::AnalysisParams params;
    for (const auto& [key, value] : request.query) {
      if (key != "hle_id" && key != "routine") params.Set(key, value);
    }
    // The analysis window is part of the request identity.
    params.SetDouble("t_start", hle.value().t_start);
    params.SetDouble("t_end", hle.value().t_end);

    // Overlap detection: offer the precomputed result.
    Result<std::optional<dm::AnaRecord>> existing =
        dm->semantics().FindExistingAnalysis(session, hle_id, routine,
                                             params.Canonical());
    if (existing.ok() && existing.value().has_value()) {
      HttpResponse response;
      response.body = RenderPage(
          "Analysis exists",
          StrFormat("<p>Identical analysis already available: "
                    "<a href='/ana?id=%lld'>ANA %lld</a></p>",
                    (long long)existing.value()->ana_id,
                    (long long)existing.value()->ana_id));
      return response;
    }

    if (server->frontend() == nullptr) {
      return HttpResponse::NotFound("processing logic not attached");
    }
    // Fetch the raw photons of the event's unit and window them.
    Result<std::vector<uint8_t>> packed =
        dm->io().ReadItemFile(hle.value().unit_id);
    if (!packed.ok()) {
      return HttpResponse::NotFound("raw unit unavailable: " +
                                    packed.status().ToString());
    }
    Result<rhessi::RawDataUnit> unit =
        rhessi::RawDataUnit::Unpack(packed.value());
    if (!unit.ok()) {
      return HttpResponse::NotFound(unit.status().ToString());
    }

    pl::ProcessingRequest processing;
    processing.trace_id = session.trace_id;
    processing.hle_id = hle_id;
    processing.routine = routine;
    processing.params = params;
    // Photon lineage for the derived-product cache: the event's raw unit
    // at its current calibration version.
    processing.input_units = {
        {hle.value().unit_id, unit.value().calibration_version}};
    processing.photons = std::move(unit.value().photons);
    Result<int64_t> id = server->frontend()->Submit(std::move(processing));
    if (!id.ok()) return HttpResponse::NotFound(id.status().ToString());
    pl::RequestOutcome outcome = server->frontend()->Wait(id.value());
    if (outcome.state != pl::RequestState::kCommitted &&
        outcome.state != pl::RequestState::kDelivered) {
      return HttpResponse::NotFound("analysis failed: " +
                                    outcome.status.ToString());
    }
    HttpResponse response;
    response.body = RenderPage(
        "Analysis complete",
        StrFormat("<p>%s finished; result stored as "
                  "<a href='/ana?id=%lld'>ANA %lld</a></p>",
                  HtmlEscape(routine).c_str(),
                  (long long)outcome.committed_ana_id,
                  (long long)outcome.committed_ana_id));
    return response;
  }
};

// The "visual tools to graphically render the search space" (§1):
// density and extent plots over the visible HLEs, returned as rendered
// images (interactive database visualization, §6.3).
class ExploreServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    dm::Session session =
        BrowseSession(dm, server, request, dm::SessionKind::kCatalog);
    double t_lo = 0, t_hi = 1e12;
    ParseDouble(request.GetQuery("t_lo", "0"), &t_lo);
    ParseDouble(request.GetQuery("t_hi", "1000000000000"), &t_hi);
    int64_t bins = 32;
    ParseInt64(request.GetQuery("bins", "32"), &bins);
    bins = std::clamp<int64_t>(bins, 4, 512);

    Result<std::vector<dm::HleRecord>> hles =
        dm->semantics().ListHles(session, t_lo, t_hi);
    if (!hles.ok()) return HttpResponse::NotFound(hles.status().ToString());
    std::vector<std::pair<double, double>> points;
    double max_energy = 1;
    double max_time = t_lo + 1;
    for (const dm::HleRecord& hle : hles.value()) {
      points.emplace_back(hle.t_start, hle.peak_energy);
      max_energy = std::max(max_energy, hle.peak_energy * 1.01);
      max_time = std::max(max_time, hle.t_start * 1.01);
    }
    double hi = std::min(t_hi, max_time);
    wavelet::DensityPlot density = wavelet::BuildDensityPlot(
        points, static_cast<size_t>(bins), static_cast<size_t>(bins), t_lo,
        hi, 0, max_energy);

    if (request.GetQuery("format") == "image") {
      analysis::Image image;
      image.width = density.x_bins;
      image.height = density.y_bins;
      image.pixels = density.counts;
      HttpResponse response;
      response.content_type = "image/gif";
      response.binary_body = analysis::RenderImage(image);
      return response;
    }
    // HTML summary: per-cluster extents.
    auto extents = wavelet::BuildExtentPlot(
        points, static_cast<size_t>(bins), t_lo, hi, 0, max_energy);
    TemplateContext ctx;
    for (const wavelet::Extent& e : extents) {
      TemplateContext& row = ctx.AddRow("extents");
      row.Set("t_lo", StrFormat("%.1f", e.x_lo));
      row.Set("t_hi", StrFormat("%.1f", e.x_hi));
      row.Set("e_lo", StrFormat("%.1f", e.y_lo));
      row.Set("e_hi", StrFormat("%.1f", e.y_hi));
      row.Set("n", std::to_string(e.tuple_count));
    }
    std::string table =
        RenderTemplate(
            "<img src='/explore?format=image&t_lo={{t_lo}}&t_hi={{t_hi}}'>"
            "<table><tr><th>time</th><th>energy</th><th>events</th></tr>"
            "{{#extents}}<tr><td>{{t_lo}}..{{t_hi}} s</td>"
            "<td>{{e_lo}}..{{e_hi}}</td><td>{{n}}</td></tr>{{/extents}}"
            "</table>",
            ctx)
            .value_or("");
    return HttpResponse{
        200, "text/html",
        RenderPage("Explore",
                   StrFormat("<p>%zu events, %zu clusters</p>",
                             points.size(), extents.size()) +
                       table),
        {}, {}};
  }
};

// Predefined queries (§1): run a vetted named query with parameters
// q0, q1, ... bound positionally.
class QueryServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    dm::Session session =
        BrowseSession(dm, server, request, dm::SessionKind::kCatalog);
    std::string name = request.GetQuery("name");
    if (name.empty()) return HttpResponse::BadRequest("name required");
    dm::PredefinedQueryService service(dm->database());
    std::vector<db::Value> params;
    for (int i = 0;; ++i) {
      std::string key = "q" + std::to_string(i);
      if (request.query.count(key) == 0) break;
      params.push_back(db::Value::Text(request.GetQuery(key)));
    }
    Result<db::ResultSet> rs = service.Run(session, name, params);
    if (!rs.ok()) {
      return rs.status().IsPermissionDenied()
                 ? HttpResponse::Forbidden(rs.status().ToString())
                 : HttpResponse::NotFound(rs.status().ToString());
    }
    TemplateContext ctx;
    for (const db::Row& row : rs.value().rows) {
      TemplateContext& out_row = ctx.AddRow("rows");
      std::string line;
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) line += " | ";
        line += row[i].AsText();
      }
      out_row.Set("line", line);
    }
    std::string header;
    for (size_t i = 0; i < rs.value().columns.size(); ++i) {
      if (i > 0) header += " | ";
      header += rs.value().columns[i];
    }
    std::string body =
        RenderTemplate("<pre>" + HtmlEscape(header) +
                           "\n{{#rows}}{{line}}\n{{/rows}}</pre>",
                       ctx)
            .value_or("");
    return HttpResponse{
        200, "text/html",
        RenderPage("Query " + name,
                   StrFormat("<p>%zu rows</p>", rs.value().num_rows()) +
                       body),
        {}, {}};
  }
};

// --- progressive view delivery + approximate aggregates (§3.4, §6.3) ----

// A unit's serving geometry, from its raw_units tuple.
struct UnitMeta {
  double t_start = 0;
  double t_stop = 0;
  int calibration_version = 0;
};

Result<UnitMeta> LookupUnit(dm::DataManager* dm, int64_t unit_id) {
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet rs,
      dm->database()->Execute(
          "SELECT t_start, t_stop, calibration_version FROM raw_units "
          "WHERE unit_id = ?",
          {db::Value::Int(unit_id)}));
  if (rs.num_rows() == 0) {
    return Status::NotFound(StrFormat("unknown raw unit %lld",
                                      static_cast<long long>(unit_id)));
  }
  UnitMeta meta;
  meta.t_start = rs.Get(0, "t_start").AsReal();
  meta.t_stop = rs.Get(0, "t_stop").AsReal();
  meta.calibration_version =
      static_cast<int>(rs.Get(0, "calibration_version").AsInt());
  return meta;
}

// Reads the stored view file and slices the byte prefix covering
// resolution levels 0..level from the requested signal ("count" = photon
// counts HDU, "energy" = summed keV HDU). level < 0 ships the full
// stream.
Result<std::vector<uint8_t>> BuildViewPrefix(dm::DataManager* dm,
                                             int64_t unit_id,
                                             const std::string& kind,
                                             int64_t level) {
  HEDC_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      dm->io().ReadItemFile(dm::ProcessLayer::ViewItemId(unit_id)));
  HEDC_ASSIGN_OR_RETURN(archive::FitsFile fits,
                        archive::FitsFile::Parse(bytes));
  const archive::FitsHdu* hdu =
      fits.FindHdu(kind == "energy" ? "VIEW_E" : "VIEW");
  if (hdu == nullptr) {
    return Status::NotFound("view file missing " + kind + " HDU");
  }
  if (level < 0) return hdu->data;
  return wavelet::SlicePrefixForLevel(hdu->data,
                                      static_cast<size_t>(level));
}

// Serves a per-resolution prefix through the derived-product cache,
// keyed on (routine "__view_prefix__", {resolution, kind},
// unit@calibration_version): a cached coarse prefix is returned without
// re-reading or re-slicing the stored view (web.view.builds counts the
// real builds), and recalibration invalidates every resolution of the
// unit at once through the ordinary lineage hook.
Result<std::vector<uint8_t>> FetchViewPrefix(dm::DataManager* dm,
                                             WebServer* server,
                                             int64_t unit_id,
                                             const std::string& kind,
                                             int64_t level) {
  HEDC_ASSIGN_OR_RETURN(UnitMeta meta, LookupUnit(dm, unit_id));
  pl::ProductCache* cache = server->frontend() != nullptr
                                ? server->frontend()->product_cache()
                                : nullptr;
  pl::ProductCache::Ticket ticket;
  if (cache != nullptr) {
    analysis::AnalysisParams params;
    params.SetInt("resolution", level);
    params.Set("kind", kind);
    ticket = cache->Admit(pl::MakeProductCacheKey(
        "__view_prefix__", params, {{unit_id, meta.calibration_version}}));
    if (ticket.role == pl::ProductCache::Role::kHit) {
      Result<analysis::AnalysisProduct> product =
          pl::DecodeProduct(ticket.hit.bytes);
      if (product.ok()) return std::move(product.value().rendered);
      // Corrupt entry: fall through to an uncached rebuild.
    } else if (ticket.role == pl::ProductCache::Role::kFollower) {
      Result<pl::ProductCache::CachedProduct> waited = cache->Await(ticket);
      if (waited.ok()) {
        Result<analysis::AnalysisProduct> product =
            pl::DecodeProduct(waited.value().bytes);
        if (product.ok()) return std::move(product.value().rendered);
      }
      // Leader failed (or decode did): rebuild locally.
    }
  }

  MetricsRegistry::Default()->GetCounter("web.view.builds")->Add();
  Result<std::vector<uint8_t>> prefix =
      BuildViewPrefix(dm, unit_id, kind, level);
  if (ticket.role == pl::ProductCache::Role::kLeader) {
    if (prefix.ok()) {
      analysis::AnalysisProduct product;
      product.routine = "__view_prefix__";
      product.metadata["kind"] = kind;
      product.metadata["resolution"] = std::to_string(level);
      product.rendered = prefix.value();
      cache->CompleteSuccess(ticket, product, /*cost_seconds=*/1e-3,
                             /*ana_id=*/0);
    } else {
      cache->CompleteFailure(ticket, prefix.status());
    }
  }
  return prefix;
}

// /view?unit=ID[&resolution=R][&kind=count|energy]: progressive wavelet
// delivery. Ships the prefix of the unit's stored HWV3 stream covering
// resolution levels 0..R; absent R uses wavelet.default_resolution
// (-1 = full fidelity). Clients decode any prefix with
// DecodeSignalPrefix and refine coarse-to-fine by re-requesting at
// higher R — each refinement is a cache-served byte slice, never a
// rebuild.
class ViewServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    int64_t unit_id = 0;
    if (!ParseInt64(request.GetQuery("unit"), &unit_id)) {
      return HttpResponse::BadRequest("unit required");
    }
    int64_t level = server->delivery_options().default_view_resolution;
    std::string resolution = request.GetQuery("resolution");
    if (!resolution.empty() && !ParseInt64(resolution, &level)) {
      return HttpResponse::BadRequest("bad resolution");
    }
    std::string kind = request.GetQuery("kind", "count");
    if (kind != "count" && kind != "energy") {
      return HttpResponse::BadRequest("kind must be count or energy");
    }
    Result<std::vector<uint8_t>> prefix =
        FetchViewPrefix(dm, server, unit_id, kind, level);
    if (!prefix.ok()) {
      return HttpResponse::NotFound(prefix.status().ToString());
    }
    MetricsRegistry::Default()
        ->GetCounter("web.view.bytes")
        ->Add(static_cast<int64_t>(prefix.value().size()));
    HttpResponse response;
    response.content_type = "application/x-hedc-wavelet";
    response.binary_body = std::move(prefix).value();
    return response;
  }
};

// /approx?unit=ID[&agg=count|sum][&t_lo=..][&t_hi=..][&resolution=R]:
// error-bounded approximate aggregate over the unit's time range,
// answered from a coarse view prefix (deterministic ± bars, see
// PrefixInfo in wavelet/codec.h) so dashboard queries never touch the
// raw photon list. agg=count sums the binned photon counts; agg=sum the
// binned keV. When the unit has no stored view, a seeded
// reservoir-sampling scan of the raw photons answers instead
// (probabilistic ~95% bars, method "reservoir").
class ApproxServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    const WebServer::DeliveryOptions& opts = server->delivery_options();
    if (!opts.approx_enabled) {
      return HttpResponse::Forbidden("approximate aggregates disabled");
    }
    int64_t unit_id = 0;
    if (!ParseInt64(request.GetQuery("unit"), &unit_id)) {
      return HttpResponse::BadRequest("unit required");
    }
    std::string agg = request.GetQuery("agg", "count");
    if (agg != "count" && agg != "sum") {
      return HttpResponse::BadRequest("agg must be count or sum");
    }
    Result<UnitMeta> meta = LookupUnit(dm, unit_id);
    if (!meta.ok()) return HttpResponse::NotFound(meta.status().ToString());
    double domain_lo = meta.value().t_start;
    double domain_hi = meta.value().t_stop + 1e-6;
    double t_lo = domain_lo, t_hi = domain_hi;
    ParseDouble(request.GetQuery("t_lo"), &t_lo);
    ParseDouble(request.GetQuery("t_hi"), &t_hi);
    if (t_hi < t_lo) return HttpResponse::BadRequest("inverted time range");
    int64_t level = opts.approx_default_resolution;
    std::string resolution = request.GetQuery("resolution");
    if (!resolution.empty() && !ParseInt64(resolution, &level)) {
      return HttpResponse::BadRequest("bad resolution");
    }

    std::string kind = agg == "sum" ? "energy" : "count";
    analysis::ApproxAnswer answer;
    std::string method;
    Result<std::vector<uint8_t>> prefix =
        FetchViewPrefix(dm, server, unit_id, kind, level);
    if (prefix.ok()) {
      double span = domain_hi - domain_lo;
      Result<analysis::ApproxAnswer> from_prefix =
          analysis::ApproxSumFromPrefix(prefix.value().data(),
                                        prefix.value().size(),
                                        (t_lo - domain_lo) / span,
                                        (t_hi - domain_lo) / span);
      if (from_prefix.ok()) {
        answer = from_prefix.value();
        method = "wavelet-prefix";
      }
    }
    if (method.empty()) {
      // No view (or an undecodable one): one sequential pass over the
      // raw photons through a fixed-size reservoir.
      Result<std::vector<uint8_t>> packed = dm->io().ReadItemFile(unit_id);
      if (!packed.ok()) {
        return HttpResponse::NotFound(packed.status().ToString());
      }
      Result<rhessi::RawDataUnit> unit =
          rhessi::RawDataUnit::Unpack(packed.value());
      if (!unit.ok()) {
        return HttpResponse::NotFound(unit.status().ToString());
      }
      analysis::ReservoirSampler sampler(
          static_cast<size_t>(std::max<int64_t>(opts.approx_reservoir_size,
                                                1)),
          /*seed=*/static_cast<uint64_t>(unit_id) * 1000003 +
              static_cast<uint64_t>(meta.value().calibration_version));
      for (const rhessi::PhotonEvent& p : unit.value().photons) {
        sampler.Add(p.time_sec, p.energy_kev);
      }
      answer = agg == "sum" ? sampler.EstimateSumInRange(t_lo, t_hi)
                            : sampler.EstimateCountInRange(t_lo, t_hi);
      method = "reservoir";
    }
    MetricsRegistry::Default()->GetCounter("web.approx.requests")->Add();
    HttpResponse response;
    response.content_type = "application/json";
    response.body = StrFormat(
        "{\"unit\":%lld,\"agg\":\"%s\",\"estimate\":%.6f,"
        "\"error_bound\":%.6f,\"bins\":%zu,\"bytes_read\":%zu,"
        "\"resolution\":%lld,\"method\":\"%s\"}",
        static_cast<long long>(unit_id), agg.c_str(), answer.estimate,
        answer.error_bound, answer.bins, answer.bytes_read,
        static_cast<long long>(level), method.c_str());
    return response;
  }
};

// Admin status page: archives, usage statistics, operational state
// ("monitoring information such as usage statistics or audit trails",
// §4.1).
class StatusServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest& request, dm::DataManager* dm,
                      WebServer* server) override {
    dm::UserProfile profile = server->ProfileFor(request);
    if (!profile.is_super) {
      return HttpResponse::Forbidden("status page requires a super account");
    }
    TemplateContext ctx;
    ctx.Set("node", dm->name());
    ctx.Set("requests",
            std::to_string(dm->requests_handled()));
    for (const archive::ArchiveManager::Info& info :
         dm->io().archives()->ListArchives()) {
      TemplateContext& row = ctx.AddRow("archives");
      row.Set("id", std::to_string(info.archive_id));
      row.Set("type", archive::ArchiveTypeName(info.type));
      row.Set("root", info.root);
      row.Set("online", info.online ? "online" : "OFFLINE");
    }
    Result<db::ResultSet> usage = dm->database()->Execute(
        "SELECT operation, COUNT(*) FROM usage_stats GROUP BY operation");
    if (usage.ok()) {
      for (size_t i = 0; i < usage.value().num_rows(); ++i) {
        TemplateContext& row = ctx.AddRow("usage");
        row.Set("op", usage.value().rows[i][0].AsText());
        row.Set("count", usage.value().rows[i][1].AsText());
      }
    }
    // Derived-product cache directory (operational schema).
    Result<db::ResultSet> cache_rows = dm->database()->Execute(
        "SELECT COUNT(*) FROM product_cache");
    ctx.Set("cache_entries",
            cache_rows.ok() && cache_rows.value().num_rows() > 0
                ? cache_rows.value().rows[0][0].AsText()
                : "0");
    // Metrics section from the operational schema: refresh the mirror,
    // then render the snapshot rows.
    dm->MirrorMetrics();
    Result<db::ResultSet> metrics = dm->database()->Execute(
        "SELECT metric, kind, value FROM metric_snapshots ORDER BY metric");
    if (metrics.ok()) {
      for (size_t i = 0; i < metrics.value().num_rows(); ++i) {
        TemplateContext& row = ctx.AddRow("metrics");
        row.Set("metric", metrics.value().rows[i][0].AsText());
        row.Set("kind", metrics.value().rows[i][1].AsText());
        row.Set("value",
                StrFormat("%.1f", metrics.value().rows[i][2].AsReal()));
      }
    }
    std::string inner =
        RenderTemplate(
            "<h2>Node {{node}} ({{requests}} requests)</h2>"
            "<h3>Archives</h3><ul>{{#archives}}<li>#{{id}} {{type}} "
            "{{root}}: {{online}}</li>{{/archives}}</ul>"
            "<h3>Usage</h3><ul>{{#usage}}<li>{{op}}: {{count}}</li>"
            "{{/usage}}</ul>"
            "<h3>Product cache</h3><p>{{cache_entries}} persisted "
            "entries</p>"
            "<h3>Metrics</h3><table>{{#metrics}}<tr><td>{{metric}}</td>"
            "<td>{{kind}}</td><td>{{value}}</td></tr>{{/metrics}}</table>",
            ctx)
            .value_or("");
    return HttpResponse{200, "text/html", RenderPage("Status", inner),
                        {}, {}};
  }
};

// Text exposition of the process-wide registry; also refreshes the
// operational-schema mirror so DB readers see the same snapshot.
class MetricsServlet : public Servlet {
 public:
  HttpResponse Handle(const HttpRequest&, dm::DataManager* dm,
                      WebServer*) override {
    dm->MirrorMetrics();
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = MetricsRegistry::Default()->RenderText();
    return response;
  }
};

}  // namespace

WebServer::WebServer(dm::DataManager* dm, pl::Frontend* frontend)
    : dm_(dm), frontend_(frontend) {}

void WebServer::RegisterStandardServlets() {
  Register("/login", std::make_unique<LoginServlet>());
  Register("/logout", std::make_unique<LogoutServlet>());
  Register("/catalog", std::make_unique<CatalogServlet>());
  Register("/hle", std::make_unique<HlePageServlet>());
  Register("/ana", std::make_unique<AnaPageServlet>());
  Register("/image", std::make_unique<ImageServlet>());
  Register("/analyze", std::make_unique<AnalyzeServlet>());
  Register("/explore", std::make_unique<ExploreServlet>());
  Register("/query", std::make_unique<QueryServlet>());
  Register("/status", std::make_unique<StatusServlet>());
  Register("/metrics", std::make_unique<MetricsServlet>());
  Register("/view", std::make_unique<ViewServlet>());
  Register("/approx", std::make_unique<ApproxServlet>());
}

WebServer::DeliveryOptions WebServer::DeliveryOptions::FromConfig(
    const Config& config) {
  DeliveryOptions out;
  out.default_view_resolution =
      config.GetInt("wavelet.default_resolution", out.default_view_resolution);
  out.approx_enabled = config.GetBool("approx.enabled", out.approx_enabled);
  out.approx_default_resolution =
      config.GetInt("approx.resolution", out.approx_default_resolution);
  out.approx_reservoir_size =
      config.GetInt("approx.reservoir_size", out.approx_reservoir_size);
  return out;
}

void WebServer::Register(const std::string& path,
                         std::unique_ptr<Servlet> servlet) {
  servlets_[path] = std::move(servlet);
}

HttpResponse WebServer::Dispatch(const HttpRequest& request) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry* metrics = MetricsRegistry::Default();
  auto it = servlets_.find(request.path);
  if (it == servlets_.end()) {
    metrics->GetCounter("web.status.404")->Add();
    return HttpResponse::NotFound("no servlet for " + request.path);
  }
  // Every dispatched request gets a trace id; servlets thread it through
  // their session into the PL so the whole request is followable.
  if (request.trace_id == 0) {
    request.trace_id = metrics->traces().NewTraceId();
  }
  metrics->GetCounter("web.requests" + request.path)->Add();
  // Call redirection: the request may execute on a peer DM node (§5.4).
  // A cluster router (when installed) owns the choice; otherwise the
  // primary node's peer round-robin decides.
  dm::DataManager* node = node_router_ ? node_router_(request) : nullptr;
  if (node == nullptr) node = dm_->Route();
  node->CountRequest();
  Micros start = node->clock()->Now();
  HttpResponse response = [&] {
    ScopedTimer timer(
        metrics->GetHistogram("web.latency_us" + request.path));
    TraceSpan span(request.trace_id, "web", request.path);
    return it->second->Handle(request, node, this);
  }();
  metrics->GetCounter("web.status." + std::to_string(response.status_code))
      ->Add();
  if (record_usage_) {
    // Operational section: usage statistics / audit trail (§4.1).
    dm::UserProfile profile = ProfileFor(request);
    node->io().Update(
        "usage_stats", "INSERT INTO usage_stats VALUES (?, ?, ?, ?, ?)",
        {db::Value::Int(stat_counter_.fetch_add(1)),
         db::Value::Real(static_cast<double>(start) / kMicrosPerSecond),
         db::Value::Int(profile.user_id), db::Value::Text(request.path),
         db::Value::Real(
             static_cast<double>(node->clock()->Now() - start) /
             kMicrosPerMilli)});
  }
  return response;
}

dm::UserProfile WebServer::ProfileFor(const HttpRequest& request) {
  std::string token = request.GetCookie("hedc_session");
  if (!token.empty()) {
    std::lock_guard<std::mutex> lock(token_mu_);
    auto it = tokens_.find(token);
    if (it != tokens_.end()) return it->second;
  }
  return dm::AnonymousUser();
}

std::string WebServer::IssueToken(const dm::UserProfile& profile) {
  std::string token =
      StrFormat("tok_%lld_%lld", (long long)profile.user_id,
                (long long)token_counter_.fetch_add(1));
  std::lock_guard<std::mutex> lock(token_mu_);
  tokens_[token] = profile;
  return token;
}

void WebServer::RevokeToken(const std::string& token) {
  std::lock_guard<std::mutex> lock(token_mu_);
  tokens_.erase(token);
}

}  // namespace hedc::web
