// Loopback TCP plumbing: listener, connected socket, and a CRC-checked
// length-delimited frame codec.
//
// The presentation tier historically spoke only in-process structures
// (web/http.h); this module adds the real socket layer the middle tier
// needs for networked call redirection (§5.4). It is deliberately small:
// blocking sockets, per-socket receive deadlines via SO_RCVTIMEO, and a
// frame format of [u32 length][payload][u32 crc32] so torn or garbled
// frames surface as kCorruption instead of desynchronizing the stream.
// Binds are restricted to 127.0.0.1 — the build environment has no
// external network, and the scale-out story only needs process-local
// sockets to make the transport (and its failure modes) real.
#ifndef HEDC_WEB_TCP_H_
#define HEDC_WEB_TCP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/status.h"

namespace hedc::net {

// Move-only wrapper around a connected stream socket.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket();
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes all `n` bytes; kUnavailable on a closed/reset peer.
  Status SendAll(const uint8_t* data, size_t n);
  // Reads exactly `n` bytes; kUnavailable on EOF/reset, kTimeout when the
  // receive deadline elapses first.
  Status RecvAll(uint8_t* data, size_t n);
  // Receive deadline for subsequent RecvAll calls. 0 = block forever.
  Status SetRecvTimeout(Micros timeout);

  // Shuts the socket down (unblocking any reader) and closes the fd.
  void Close();

 private:
  int fd_ = -1;
};

// Connects to host:port (kUnavailable on refusal).
Result<TcpSocket> TcpConnect(const std::string& host, int port);

// Listening socket on 127.0.0.1. Close() from another thread unblocks a
// pending Accept(), which then reports kUnavailable.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds and listens; port 0 picks an ephemeral port (see port()).
  Status Listen(int port = 0);
  int port() const { return port_; }
  Result<TcpSocket> Accept();
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
  std::atomic<bool> closed_{false};
};

// Frame codec: [u32 payload length][payload bytes][u32 crc32(payload)].
// RecvFrame reports kCorruption on a bad checksum or an oversized length
// field, and the transport-level codes of RecvAll otherwise.
Status SendFrame(TcpSocket& socket, const std::vector<uint8_t>& payload);
Result<std::vector<uint8_t>> RecvFrame(TcpSocket& socket,
                                       size_t max_len = 64u << 20);
// The same wire bytes as SendFrame, materialized for event-driven writers
// (the reactor queues whole frames instead of looping blocking sends).
std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload);

}  // namespace hedc::net

#endif  // HEDC_WEB_TCP_H_
