#include "web/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/crc32.h"

namespace hedc::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

void DisableSigpipeAndNagle(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
#ifdef SO_NOSIGPIPE
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
}

}  // namespace

TcpSocket::~TcpSocket() { Close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status TcpSocket::SendAll(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd_, data + sent, n - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status TcpSocket::RecvAll(uint8_t* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, data + got, n - got, 0);
    if (r == 0) return Status::Unavailable("peer closed connection");
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("receive deadline elapsed");
      }
      return Errno("recv");
    }
    got += static_cast<size_t>(r);
  }
  return Status::Ok();
}

Status TcpSocket::SetRecvTimeout(Micros timeout) {
  struct timeval tv;
  tv.tv_sec = timeout / kMicrosPerSecond;
  tv.tv_usec = timeout % kMicrosPerSecond;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpSocket> TcpConnect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status s = Errno("connect to " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  DisableSigpipeAndNagle(fd);
  return TcpSocket(fd);
}

TcpListener::~TcpListener() {
  Close();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpListener::Listen(int port) {
  // Re-listen after Close(): the old fd is only shut down there (closing
  // it could race a concurrent accept against fd reuse), so a restarting
  // server must release it here or leak one fd per start/stop cycle.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  closed_.store(false, std::memory_order_release);
  return Status::Ok();
}

Result<TcpSocket> TcpListener::Accept() {
  while (true) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("listener closed");
    }
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (closed_.load(std::memory_order_acquire)) {
        return Status::Unavailable("listener closed");
      }
      return Errno("accept");
    }
    if (closed_.load(std::memory_order_acquire)) {
      ::close(fd);
      return Status::Unavailable("listener closed");
    }
    DisableSigpipeAndNagle(fd);
    return TcpSocket(fd);
  }
}

void TcpListener::Close() {
  // The fd itself is closed in the destructor, after any accept thread has
  // observed the shutdown and exited; closing here could race a concurrent
  // accept() against fd reuse.
  if (fd_ >= 0 && !closed_.exchange(true, std::memory_order_acq_rel)) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Status SendFrame(TcpSocket& socket, const std::vector<uint8_t>& payload) {
  uint8_t header[4];
  uint32_t n = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<uint8_t>(n >> (8 * i));
  HEDC_RETURN_IF_ERROR(socket.SendAll(header, sizeof(header)));
  if (!payload.empty()) {
    HEDC_RETURN_IF_ERROR(socket.SendAll(payload.data(), payload.size()));
  }
  uint32_t crc = Crc32(payload);
  uint8_t trailer[4];
  for (int i = 0; i < 4; ++i) {
    trailer[i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return socket.SendAll(trailer, sizeof(trailer));
}

std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + 8);
  uint32_t n = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<uint8_t>(n >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return frame;
}

Result<std::vector<uint8_t>> RecvFrame(TcpSocket& socket, size_t max_len) {
  uint8_t header[4];
  HEDC_RETURN_IF_ERROR(socket.RecvAll(header, sizeof(header)));
  uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<uint32_t>(header[i]) << (8 * i);
  if (n > max_len) {
    return Status::Corruption("frame length " + std::to_string(n) +
                              " exceeds limit");
  }
  std::vector<uint8_t> payload(n);
  if (n > 0) HEDC_RETURN_IF_ERROR(socket.RecvAll(payload.data(), n));
  uint8_t trailer[4];
  HEDC_RETURN_IF_ERROR(socket.RecvAll(trailer, sizeof(trailer)));
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<uint32_t>(trailer[i]) << (8 * i);
  }
  if (crc != Crc32(payload)) {
    return Status::Corruption("frame checksum mismatch");
  }
  return payload;
}

}  // namespace hedc::net
