#include "web/http_tcp.h"

#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>

namespace hedc::web {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// "a=b; c=d" -> {a: b, c: d}
std::map<std::string, std::string> ParseCookieHeader(const std::string& v) {
  std::map<std::string, std::string> cookies;
  size_t pos = 0;
  while (pos < v.size()) {
    size_t semi = v.find(';', pos);
    if (semi == std::string::npos) semi = v.size();
    std::string pair = Trim(v.substr(pos, semi - pos));
    size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      cookies[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    pos = semi + 1;
  }
  return cookies;
}

const char* StatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

}  // namespace

HttpParseResult ParseHttpRequest(const uint8_t* data, size_t n,
                                 size_t max_header, size_t max_body,
                                 ParsedHttpRequest* out, size_t* consumed) {
  const char* p = reinterpret_cast<const char*>(data);
  // Find the header terminator without scanning unbounded garbage.
  size_t scan = std::min(n, max_header);
  size_t header_end = std::string::npos;
  for (size_t i = 0; i + 3 < scan; ++i) {
    if (p[i] == '\r' && p[i + 1] == '\n' && p[i + 2] == '\r' &&
        p[i + 3] == '\n') {
      header_end = i;
      break;
    }
  }
  if (header_end == std::string::npos) {
    // No terminator inside the permitted header window: anything already
    // past the cap can never become a valid request.
    return n >= max_header ? HttpParseResult::kBad : HttpParseResult::kNeedMore;
  }

  std::string head(p, header_end);
  size_t line_end = head.find("\r\n");
  std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return HttpParseResult::kBad;
  std::string method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string version = request_line.substr(sp2 + 1);
  if (method.empty() || target.empty() || target[0] != '/' ||
      version.rfind("HTTP/", 0) != 0) {
    return HttpParseResult::kBad;
  }

  std::map<std::string, std::string> headers;  // lowercased names
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon == std::string::npos) return HttpParseResult::kBad;
    headers[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
    pos = eol + 2;
  }

  size_t body_len = 0;
  auto cl = headers.find("content-length");
  if (cl != headers.end()) {
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(cl->second.c_str(), &end, 10);
    if (end == cl->second.c_str() || *end != '\0' || errno != 0) {
      return HttpParseResult::kBad;
    }
    if (v > max_body) return HttpParseResult::kBad;
    body_len = static_cast<size_t>(v);
  }
  size_t total = header_end + 4 + body_len;
  if (n < total) return HttpParseResult::kNeedMore;

  ParsedHttpRequest parsed;
  parsed.request.method = method;
  size_t q = target.find('?');
  parsed.request.path = target.substr(0, q);
  if (q != std::string::npos) {
    parsed.request.query = ParseQueryString(target.substr(q + 1));
  }
  auto cookie = headers.find("cookie");
  if (cookie != headers.end()) {
    parsed.request.cookies = ParseCookieHeader(cookie->second);
  }
  if (body_len > 0) {
    parsed.request.body.assign(p + header_end + 4, body_len);
  }
  // HTTP/1.1 defaults to keep-alive, 1.0 to close; Connection overrides.
  bool http11 = version == "HTTP/1.1";
  auto conn = headers.find("connection");
  if (conn != headers.end()) {
    std::string v = ToLower(conn->second);
    parsed.keep_alive = v != "close" && (http11 || v == "keep-alive");
  } else {
    parsed.keep_alive = http11;
  }
  *out = std::move(parsed);
  *consumed = total;
  return HttpParseResult::kOk;
}

std::vector<uint8_t> SerializeHttpResponse(const HttpResponse& response,
                                           bool keep_alive) {
  std::string head;
  head.reserve(256);
  head += "HTTP/1.1 " + std::to_string(response.status_code) + " " +
          StatusText(response.status_code) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.TotalBytes()) + "\r\n";
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.set_cookies) {
    head += "Set-Cookie: " + name + "=" + value + "\r\n";
  }
  head += "\r\n";
  std::vector<uint8_t> bytes;
  bytes.reserve(head.size() + response.TotalBytes());
  bytes.insert(bytes.end(), head.begin(), head.end());
  bytes.insert(bytes.end(), response.body.begin(), response.body.end());
  bytes.insert(bytes.end(), response.binary_body.begin(),
               response.binary_body.end());
  return bytes;
}

namespace {

// Reactor-side connection state machine: buffer -> ParseHttpRequest ->
// dispatch handler -> serialized reply (close_after on "Connection:
// close"); malformed input gets a 400 and the connection dropped, exactly
// like the blocking engine.
class HttpProtocol : public net::ReactorProtocol {
 public:
  HttpProtocol(HttpTcpServer::Handler* handler, MetricsRegistry* metrics,
               size_t max_header, size_t max_body)
      : handler_(handler),
        metrics_(metrics),
        max_header_(max_header),
        max_body_(max_body) {}

  size_t OnData(const uint8_t* data, size_t n,
                net::ReactorContext* ctx) override {
    ParsedHttpRequest parsed;
    size_t consumed = 0;
    switch (ParseHttpRequest(data, n, max_header_, max_body_, &parsed,
                             &consumed)) {
      case HttpParseResult::kNeedMore:
        return 0;
      case HttpParseResult::kBad:
        metrics_->GetCounter("web.http_bad_requests")->Add();
        ctx->Dispatch([] {
          return net::ReactorReply{
              SerializeHttpResponse(
                  HttpResponse::BadRequest("malformed request"),
                  /*keep_alive=*/false),
              /*close_after=*/true};
        });
        return n;  // discard the garbage; connection dies after the 400
      case HttpParseResult::kOk:
        break;
    }
    metrics_->GetCounter("web.http_requests")->Add();
    ctx->Dispatch([handler = handler_, parsed = std::move(parsed)] {
      HttpResponse response = (*handler)(parsed.request);
      return net::ReactorReply{
          SerializeHttpResponse(response, parsed.keep_alive),
          /*close_after=*/!parsed.keep_alive};
    });
    return consumed;
  }

 private:
  HttpTcpServer::Handler* handler_;
  MetricsRegistry* metrics_;
  size_t max_header_;
  size_t max_body_;
};

}  // namespace

HttpTcpServer::Options HttpTcpServer::Options::FromConfig(
    const Config& config) {
  Options options;
  // Reactor engine is the default since the PR-8 soak; net.reactor=false
  // selects the thread-per-connection engine.
  options.use_reactor = config.GetBool("net.reactor", true);
  options.reactor = net::Reactor::Options::FromConfig(config);
  options.blocking_idle_timeout = options.reactor.idle_timeout;
  return options;
}

HttpTcpServer::HttpTcpServer(Handler handler, MetricsRegistry* metrics,
                             Options options)
    : handler_(std::move(handler)),
      metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()),
      options_(options) {}

HttpTcpServer::~HttpTcpServer() {
  Stop();
  if (own_reactor_ != nullptr) own_reactor_->Stop();
}

net::Reactor* HttpTcpServer::reactor() {
  if (options_.shared_reactor != nullptr) return options_.shared_reactor;
  if (own_reactor_ == nullptr) {
    net::Reactor::Options reactor_options = options_.reactor;
    if (reactor_options.metrics == nullptr) reactor_options.metrics = metrics_;
    own_reactor_ = std::make_unique<net::Reactor>(reactor_options);
  }
  return own_reactor_.get();
}

Status HttpTcpServer::Start(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::FailedPrecondition("server already running");
  if (options_.use_reactor) {
    net::Reactor* r = reactor();
    if (!r->running()) {
      HEDC_RETURN_IF_ERROR(r->Start());
    }
    Handler* handler = &handler_;
    MetricsRegistry* metrics = metrics_;
    size_t max_header = options_.max_header_bytes;
    size_t max_body = options_.max_body_bytes;
    Result<net::Reactor::ListenerInfo> listener =
        r->AddListener(port, [handler, metrics, max_header, max_body] {
          metrics->GetCounter("web.http_connections")->Add();
          return std::make_unique<HttpProtocol>(handler, metrics, max_header,
                                                max_body);
        });
    if (!listener.ok()) return listener.status();
    reactor_listener_ = listener.value();
    running_ = true;
    return Status::Ok();
  }
  HEDC_RETURN_IF_ERROR(listener_.Listen(port));
  running_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

int HttpTcpServer::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.use_reactor) return reactor_listener_.port;
  return listener_.port();
}

bool HttpTcpServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void HttpTcpServer::AcceptLoop() {
  while (true) {
    Result<net::TcpSocket> accepted = listener_.Accept();
    if (!accepted.ok()) return;
    metrics_->GetCounter("web.http_connections")->Add();
    net::TcpSocket socket = std::move(accepted).value();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    live_connection_fds_.push_back(socket.fd());
    connection_threads_.emplace_back(
        [this, sock = std::move(socket)]() mutable {
          ServeConnection(std::move(sock));
        });
  }
}

void HttpTcpServer::ServeConnection(net::TcpSocket socket) {
  if (options_.blocking_idle_timeout > 0) {
    socket.SetRecvTimeout(options_.blocking_idle_timeout);
  }
  std::vector<uint8_t> buffer;
  while (true) {
    // Accumulate until the shared parser accepts or rejects the prefix.
    ParsedHttpRequest parsed;
    size_t consumed = 0;
    HttpParseResult result = ParseHttpRequest(
        buffer.data(), buffer.size(), options_.max_header_bytes,
        options_.max_body_bytes, &parsed, &consumed);
    if (result == HttpParseResult::kNeedMore) {
      uint8_t chunk[16384];
      ssize_t r = ::recv(socket.fd(), chunk, sizeof(chunk), 0);
      if (r <= 0) break;  // EOF, reset, or idle deadline
      buffer.insert(buffer.end(), chunk, chunk + r);
      continue;
    }
    if (result == HttpParseResult::kBad) {
      metrics_->GetCounter("web.http_bad_requests")->Add();
      std::vector<uint8_t> reply = SerializeHttpResponse(
          HttpResponse::BadRequest("malformed request"), false);
      socket.SendAll(reply.data(), reply.size());
      break;
    }
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<long>(consumed));
    metrics_->GetCounter("web.http_requests")->Add();
    HttpResponse response = handler_(parsed.request);
    std::vector<uint8_t> reply =
        SerializeHttpResponse(response, parsed.keep_alive);
    if (!socket.SendAll(reply.data(), reply.size()).ok()) break;
    if (!parsed.keep_alive) break;
  }
  int fd = socket.fd();
  socket.Close();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < live_connection_fds_.size(); ++i) {
    if (live_connection_fds_[i] == fd) {
      live_connection_fds_.erase(live_connection_fds_.begin() +
                                 static_cast<long>(i));
      break;
    }
  }
}

void HttpTcpServer::Stop() {
  int reactor_listener_id = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    if (options_.use_reactor) {
      reactor_listener_id = reactor_listener_.id;
      reactor_listener_ = net::Reactor::ListenerInfo{};
    } else {
      stopping_ = true;
      for (int fd : live_connection_fds_) ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (reactor_listener_id >= 0) {
    reactor()->CloseListener(reactor_listener_id);
    return;
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace hedc::web
