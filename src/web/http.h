// HTTP-lite request/response structures.
//
// The build environment has no network access, so the presentation tier
// speaks these in-process structures; servlet logic, templates, cookies
// and sessions are fully implemented (DESIGN.md §6-known-deltas).
#ifndef HEDC_WEB_HTTP_H_
#define HEDC_WEB_HTTP_H_

#include <map>
#include <string>
#include <vector>

namespace hedc::web {

struct HttpRequest {
  std::string method = "GET";
  std::string path;                          // "/hle"
  std::map<std::string, std::string> query;  // parsed query parameters
  std::map<std::string, std::string> cookies;
  std::string client_ip = "127.0.0.1";
  std::string body;
  // Request-tracing id; assigned by WebServer::Dispatch (mutable so the
  // server can stamp a const request). 0 = untraced.
  mutable int64_t trace_id = 0;

  std::string GetQuery(const std::string& key,
                       const std::string& fallback = "") const {
    auto it = query.find(key);
    return it == query.end() ? fallback : it->second;
  }
  std::string GetCookie(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = cookies.find(key);
    return it == cookies.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status_code = 200;
  std::string content_type = "text/html";
  std::string body;
  std::vector<uint8_t> binary_body;  // images
  std::map<std::string, std::string> set_cookies;

  static HttpResponse NotFound(const std::string& what) {
    HttpResponse r;
    r.status_code = 404;
    r.body = "<html><body><h1>404</h1><p>" + what + "</p></body></html>";
    return r;
  }
  static HttpResponse Forbidden(const std::string& why) {
    HttpResponse r;
    r.status_code = 403;
    r.body = "<html><body><h1>403</h1><p>" + why + "</p></body></html>";
    return r;
  }
  static HttpResponse BadRequest(const std::string& why) {
    HttpResponse r;
    r.status_code = 400;
    r.body = "<html><body><h1>400</h1><p>" + why + "</p></body></html>";
    return r;
  }

  size_t TotalBytes() const { return body.size() + binary_body.size(); }
};

// Parses "a=1&b=x" into a map (no %-decoding beyond '+' -> ' ').
std::map<std::string, std::string> ParseQueryString(const std::string& qs);

// Builds an HttpRequest from a URL like "/hle?id=7".
HttpRequest MakeRequest(const std::string& url,
                        const std::string& client_ip = "127.0.0.1",
                        const std::string& cookie = "");

}  // namespace hedc::web

#endif  // HEDC_WEB_HTTP_H_
