#include "web/http.h"

#include "core/strings.h"

namespace hedc::web {

std::map<std::string, std::string> ParseQueryString(const std::string& qs) {
  std::map<std::string, std::string> out;
  for (const std::string& pair : Split(qs, '&')) {
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    std::string key = eq == std::string::npos ? pair : pair.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : pair.substr(eq + 1);
    for (char& c : value) {
      if (c == '+') c = ' ';
    }
    out[key] = value;
  }
  return out;
}

HttpRequest MakeRequest(const std::string& url, const std::string& client_ip,
                        const std::string& cookie) {
  HttpRequest request;
  request.client_ip = client_ip;
  size_t q = url.find('?');
  if (q == std::string::npos) {
    request.path = url;
  } else {
    request.path = url.substr(0, q);
    request.query = ParseQueryString(url.substr(q + 1));
  }
  if (!cookie.empty()) request.cookies["hedc_session"] = cookie;
  return request;
}

}  // namespace hedc::web
