// Socket-level HTTP/1.1 front end for the presentation tier (§6.1).
//
// web/http.h deliberately models requests as in-process structures; this
// module puts them on real loopback sockets so browsers' dominant access
// pattern — many keep-alive connections, mostly idle — is exercised for
// real. HttpTcpServer wraps any handler (typically WebServer::Dispatch)
// and, like dm::TcpRmiServer, has two interchangeable engines behind
// Options::use_reactor / config `net.reactor`:
//  * blocking: accept thread + thread per connection — fine for a lab,
//    collapses at C10K;
//  * reactor: per-connection incremental HTTP parser on a shared epoll
//    loop (net/reactor.h), handlers on its worker pool.
// Responses are serialized by one shared function, so the two engines are
// byte-identical on the wire — the property the differential conformance
// suite (tests/net_conformance_test.cc) pins down.
#ifndef HEDC_WEB_HTTP_TCP_H_
#define HEDC_WEB_HTTP_TCP_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "net/reactor.h"
#include "web/http.h"
#include "web/tcp.h"

namespace hedc::web {

// An HttpRequest parsed off the wire, plus connection disposition.
struct ParsedHttpRequest {
  HttpRequest request;
  bool keep_alive = true;
};

enum class HttpParseResult { kNeedMore, kOk, kBad };

// Incremental HTTP/1.1 request parser over buffered bytes. On kOk fills
// `out` and sets `consumed` to the total request length (headers + body).
// kNeedMore leaves both untouched; kBad means the connection should get a
// 400 and be dropped (malformed request line/headers, oversized header
// block or declared body). Shared by both engines so they accept and
// reject exactly the same byte streams.
HttpParseResult ParseHttpRequest(const uint8_t* data, size_t n,
                                 size_t max_header, size_t max_body,
                                 ParsedHttpRequest* out, size_t* consumed);

// The single wire encoding of a response, used by both engines:
// status line, Content-Type, Content-Length, Connection, Set-Cookie
// headers, then body + binary_body.
std::vector<uint8_t> SerializeHttpResponse(const HttpResponse& response,
                                           bool keep_alive);

// Serves HTTP over loopback TCP. Handler-based rather than bound to
// WebServer so tests can serve canned responses; wire it to a WebServer
// with [&server](const HttpRequest& r) { return server.Dispatch(r); }.
class HttpTcpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    bool use_reactor = false;
    net::Reactor::Options reactor;       // used when owning the reactor
    net::Reactor* shared_reactor = nullptr;  // not owned
    size_t max_header_bytes = 64u << 10;
    size_t max_body_bytes = 8u << 20;
    // Blocking mode: per-recv silence deadline (0 = wait forever).
    Micros blocking_idle_timeout = 0;

    // net.reactor plus the net.* reactor knobs; net.idle_timeout_ms
    // applies to both engines.
    static Options FromConfig(const Config& config);
  };

  explicit HttpTcpServer(Handler handler, MetricsRegistry* metrics = nullptr)
      : HttpTcpServer(std::move(handler), metrics, Options()) {}
  HttpTcpServer(Handler handler, MetricsRegistry* metrics, Options options);
  ~HttpTcpServer();
  HttpTcpServer(const HttpTcpServer&) = delete;
  HttpTcpServer& operator=(const HttpTcpServer&) = delete;

  Status Start(int port = 0);
  int port() const;
  bool running() const;
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(net::TcpSocket socket);
  net::Reactor* reactor();

  Handler handler_;
  MetricsRegistry* metrics_;
  Options options_;
  net::TcpListener listener_;
  std::thread accept_thread_;
  std::unique_ptr<net::Reactor> own_reactor_;

  mutable std::mutex mu_;
  bool running_ = false;
  bool stopping_ = false;
  net::Reactor::ListenerInfo reactor_listener_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> live_connection_fds_;
};

}  // namespace hedc::web

#endif  // HEDC_WEB_HTTP_TCP_H_
