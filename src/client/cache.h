// StreamCorder caching strategies (§6.2).
//
// v1 (PathCache): "caches not only images downloaded during browsing but
// all large data-objects ... Cache access is accomplished through a local
// DM component, which calculates a unique but static file system path for
// each data-object. As this path is based on fixed object attributes,
// such as type and creation date, the cache structure is predetermined."
//
// v2 (DbCache): "adds a local DBMS installation for dynamic object
// references and meta data caching" — object retrieval/placement works
// like the server DM's archive handling.
#ifndef HEDC_CLIENT_CACHE_H_
#define HEDC_CLIENT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "core/status.h"
#include "db/database.h"

namespace hedc::client {

// Fixed object attributes that determine the static cache path.
struct ObjectAttributes {
  std::string type;        // "raw", "image", "view", ...
  int64_t item_id = 0;
  double creation_date = 0;  // observation day granularity
};

class ClientCache {
 public:
  virtual ~ClientCache() = default;

  virtual Status Put(const ObjectAttributes& attrs,
                     const std::vector<uint8_t>& data) = 0;
  virtual Result<std::vector<uint8_t>> Get(const ObjectAttributes& attrs) = 0;
  virtual bool Contains(const ObjectAttributes& attrs) const = 0;
  virtual Status Evict(const ObjectAttributes& attrs) = 0;

  virtual uint64_t bytes_cached() const = 0;
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 protected:
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

// v1: deterministic path derived from fixed attributes.
class PathCache : public ClientCache {
 public:
  // `capacity_bytes` bounds the cache; oldest-inserted entries are
  // evicted first (the predetermined structure has no access metadata).
  explicit PathCache(uint64_t capacity_bytes = 256 * 1024 * 1024);

  // The unique static path: <type>/<day>/<item_id>.
  static std::string PathFor(const ObjectAttributes& attrs);

  Status Put(const ObjectAttributes& attrs,
             const std::vector<uint8_t>& data) override;
  Result<std::vector<uint8_t>> Get(const ObjectAttributes& attrs) override;
  bool Contains(const ObjectAttributes& attrs) const override;
  Status Evict(const ObjectAttributes& attrs) override;
  uint64_t bytes_cached() const override;

 private:
  void EnforceCapacity();

  uint64_t capacity_bytes_;
  archive::DiskArchive storage_;
  std::vector<std::string> insertion_order_;
};

// v2: local DBMS for dynamic object references + metadata caching. The
// local schema mirrors the server's location tables, so lookup/placement
// is the same code path as the server DM's archive handling.
class DbCache : public ClientCache {
 public:
  explicit DbCache(uint64_t capacity_bytes = 256 * 1024 * 1024);

  Status Put(const ObjectAttributes& attrs,
             const std::vector<uint8_t>& data) override;
  Result<std::vector<uint8_t>> Get(const ObjectAttributes& attrs) override;
  bool Contains(const ObjectAttributes& attrs) const override;
  Status Evict(const ObjectAttributes& attrs) override;
  uint64_t bytes_cached() const override;

  // Metadata caching: arbitrary key/value rows alongside the objects.
  Status PutMetadata(const std::string& key, const std::string& value);
  Result<std::string> GetMetadata(const std::string& key);

  db::Database* local_db() { return &db_; }

 private:
  Status Init();
  void EnforceCapacity();

  uint64_t capacity_bytes_;
  db::Database db_;          // local DBMS clone
  archive::DiskArchive storage_;
  bool initialized_ = false;
  int64_t access_counter_ = 0;  // monotonic LRU stamp
};

}  // namespace hedc::client

#endif  // HEDC_CLIENT_CACHE_H_
