// Synoptic search (§6.4): best-effort parallel queries against remote
// archives, grouped by observation time.
//
// "First, online requests are issued to several remote archives in
// parallel. Then the results are collected, grouped and displayed to the
// user. Currently, the only search criterion is the observation time. ...
// The service is best effort (if a query to a remote archive times out,
// no results are available); query results are not cached, and there is
// no data synchronization between HEDC and the remote archives."
//
// Remote archives store entries under "synoptic/<obs_time>_<instrument>".
#ifndef HEDC_CLIENT_SYNOPTIC_H_
#define HEDC_CLIENT_SYNOPTIC_H_

#include <string>
#include <vector>

#include "archive/archive.h"
#include "core/status.h"

namespace hedc::client {

struct SynopticHit {
  std::string archive_name;   // which remote archive answered
  double observation_time = 0;
  std::string instrument;
  std::string path;           // path within the remote archive
};

struct SynopticResult {
  std::vector<SynopticHit> hits;       // sorted by observation time
  std::vector<std::string> unavailable;  // archives that failed/timed out
};

class SynopticSearch {
 public:
  // Registers a remote archive under `name` (borrowed pointer).
  void AddRemoteArchive(const std::string& name, archive::Archive* archive);

  // Queries all archives in parallel for entries with observation time in
  // [t_lo, t_hi]. Unreachable archives are reported, not fatal.
  SynopticResult Search(double t_lo, double t_hi) const;

  size_t num_archives() const { return archives_.size(); }

  // Encodes the naming convention for stored synoptic entries.
  static std::string EntryPath(double observation_time,
                               const std::string& instrument);
  // Parses an entry path; returns false if it is not a synoptic entry.
  static bool ParseEntryPath(const std::string& path, double* time,
                             std::string* instrument);

 private:
  std::vector<std::pair<std::string, archive::Archive*>> archives_;
};

}  // namespace hedc::client

#endif  // HEDC_CLIENT_SYNOPTIC_H_
