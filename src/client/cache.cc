#include "client/cache.h"

#include <algorithm>

#include "core/strings.h"

namespace hedc::client {

PathCache::PathCache(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

std::string PathCache::PathFor(const ObjectAttributes& attrs) {
  int64_t day = static_cast<int64_t>(attrs.creation_date / 86400.0);
  return StrFormat("%s/%lld/%lld", attrs.type.c_str(),
                   static_cast<long long>(day),
                   static_cast<long long>(attrs.item_id));
}

Status PathCache::Put(const ObjectAttributes& attrs,
                      const std::vector<uint8_t>& data) {
  std::string path = PathFor(attrs);
  if (!storage_.Exists(path)) insertion_order_.push_back(path);
  HEDC_RETURN_IF_ERROR(storage_.Write(path, data));
  EnforceCapacity();
  return Status::Ok();
}

Result<std::vector<uint8_t>> PathCache::Get(const ObjectAttributes& attrs) {
  Result<std::vector<uint8_t>> r = storage_.Read(PathFor(attrs));
  if (r.ok()) {
    ++hits_;
  } else {
    ++misses_;
  }
  return r;
}

bool PathCache::Contains(const ObjectAttributes& attrs) const {
  return storage_.Exists(PathFor(attrs));
}

Status PathCache::Evict(const ObjectAttributes& attrs) {
  std::string path = PathFor(attrs);
  insertion_order_.erase(
      std::remove(insertion_order_.begin(), insertion_order_.end(), path),
      insertion_order_.end());
  return storage_.Delete(path);
}

uint64_t PathCache::bytes_cached() const { return storage_.BytesStored(); }

void PathCache::EnforceCapacity() {
  while (storage_.BytesStored() > capacity_bytes_ &&
         !insertion_order_.empty()) {
    storage_.Delete(insertion_order_.front());
    insertion_order_.erase(insertion_order_.begin());
  }
}

DbCache::DbCache(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

Status DbCache::Init() {
  if (initialized_) return Status::Ok();
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r1,
      db_.Execute("CREATE TABLE IF NOT EXISTS cache_entries ("
                  "item_id INT NOT NULL, obj_type TEXT, path TEXT, "
                  "bytes INT, last_access REAL)"));
  (void)r1;
  Result<db::ResultSet> idx = db_.Execute(
      "CREATE INDEX cache_by_item ON cache_entries (item_id) USING HASH");
  if (!idx.ok() && idx.status().code() != StatusCode::kAlreadyExists) {
    return idx.status();
  }
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r2,
      db_.Execute("CREATE TABLE IF NOT EXISTS cache_metadata ("
                  "meta_key TEXT NOT NULL, meta_value TEXT)"));
  (void)r2;
  Result<db::ResultSet> midx = db_.Execute(
      "CREATE INDEX meta_by_key ON cache_metadata (meta_key) USING HASH");
  if (!midx.ok() && midx.status().code() != StatusCode::kAlreadyExists) {
    return midx.status();
  }
  initialized_ = true;
  return Status::Ok();
}

Status DbCache::Put(const ObjectAttributes& attrs,
                    const std::vector<uint8_t>& data) {
  HEDC_RETURN_IF_ERROR(Init());
  // Dynamic object reference: the path is whatever the local DM picked;
  // here a counter-free deterministic path works too but is looked up via
  // the local DB, never recomputed by clients.
  std::string path =
      StrFormat("obj/%s/%lld", attrs.type.c_str(),
                static_cast<long long>(attrs.item_id));
  HEDC_RETURN_IF_ERROR(Evict(attrs));  // idempotent replace
  HEDC_RETURN_IF_ERROR(storage_.Write(path, data));
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      db_.Execute("INSERT INTO cache_entries VALUES (?, ?, ?, ?, ?)",
                  {db::Value::Int(attrs.item_id),
                   db::Value::Text(attrs.type), db::Value::Text(path),
                   db::Value::Int(static_cast<int64_t>(data.size())),
                   db::Value::Int(++access_counter_)}));
  (void)r;
  EnforceCapacity();
  return Status::Ok();
}

Result<std::vector<uint8_t>> DbCache::Get(const ObjectAttributes& attrs) {
  HEDC_RETURN_IF_ERROR(Init());
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet rs,
      db_.Execute("SELECT path FROM cache_entries WHERE item_id = ? "
                  "AND obj_type = ?",
                  {db::Value::Int(attrs.item_id),
                   db::Value::Text(attrs.type)}));
  if (rs.rows.empty()) {
    ++misses_;
    return Status::NotFound("cache miss");
  }
  Result<std::vector<uint8_t>> data =
      storage_.Read(rs.Get(0, "path").AsText());
  if (data.ok()) {
    ++hits_;
    // Touch for LRU eviction (monotonic access stamp).
    db_.Execute(
        "UPDATE cache_entries SET last_access = ? "
        "WHERE item_id = ? AND obj_type = ?",
        {db::Value::Int(++access_counter_), db::Value::Int(attrs.item_id),
         db::Value::Text(attrs.type)});
  } else {
    ++misses_;
  }
  return data;
}

bool DbCache::Contains(const ObjectAttributes& attrs) const {
  auto* self = const_cast<DbCache*>(this);
  if (!self->Init().ok()) return false;
  Result<db::ResultSet> rs = self->db_.Execute(
      "SELECT COUNT(*) FROM cache_entries WHERE item_id = ? AND "
      "obj_type = ?",
      {db::Value::Int(attrs.item_id), db::Value::Text(attrs.type)});
  return rs.ok() && rs.value().rows[0][0].AsInt() > 0;
}

Status DbCache::Evict(const ObjectAttributes& attrs) {
  HEDC_RETURN_IF_ERROR(Init());
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet rs,
      db_.Execute("SELECT path FROM cache_entries WHERE item_id = ? AND "
                  "obj_type = ?",
                  {db::Value::Int(attrs.item_id),
                   db::Value::Text(attrs.type)}));
  for (size_t i = 0; i < rs.num_rows(); ++i) {
    storage_.Delete(rs.Get(i, "path").AsText());
  }
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet del,
      db_.Execute("DELETE FROM cache_entries WHERE item_id = ? AND "
                  "obj_type = ?",
                  {db::Value::Int(attrs.item_id),
                   db::Value::Text(attrs.type)}));
  (void)del;
  return Status::Ok();
}

uint64_t DbCache::bytes_cached() const { return storage_.BytesStored(); }

void DbCache::EnforceCapacity() {
  while (storage_.BytesStored() > capacity_bytes_) {
    // Evict the least-recently-touched entry.
    Result<db::ResultSet> victim = db_.Execute(
        "SELECT item_id, obj_type FROM cache_entries "
        "ORDER BY last_access LIMIT 1");
    if (!victim.ok() || victim.value().rows.empty()) return;
    ObjectAttributes attrs;
    attrs.item_id = victim.value().Get(0, "item_id").AsInt();
    attrs.type = victim.value().Get(0, "obj_type").AsText();
    if (!Evict(attrs).ok()) return;
  }
}

Status DbCache::PutMetadata(const std::string& key,
                            const std::string& value) {
  HEDC_RETURN_IF_ERROR(Init());
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet del,
      db_.Execute("DELETE FROM cache_metadata WHERE meta_key = ?",
                  {db::Value::Text(key)}));
  (void)del;
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet ins,
      db_.Execute("INSERT INTO cache_metadata VALUES (?, ?)",
                  {db::Value::Text(key), db::Value::Text(value)}));
  (void)ins;
  return Status::Ok();
}

Result<std::string> DbCache::GetMetadata(const std::string& key) {
  HEDC_RETURN_IF_ERROR(Init());
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet rs,
      db_.Execute("SELECT meta_value FROM cache_metadata WHERE meta_key = ?",
                  {db::Value::Text(key)}));
  if (rs.rows.empty()) return Status::NotFound("metadata " + key);
  return rs.Get(0, "meta_value").AsText();
}

}  // namespace hedc::client
