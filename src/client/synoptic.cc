#include "client/synoptic.h"

#include <algorithm>
#include <thread>

#include "core/strings.h"

namespace hedc::client {

void SynopticSearch::AddRemoteArchive(const std::string& name,
                                      archive::Archive* archive) {
  archives_.emplace_back(name, archive);
}

std::string SynopticSearch::EntryPath(double observation_time,
                                      const std::string& instrument) {
  return StrFormat("synoptic/%014.3f_%s", observation_time,
                   instrument.c_str());
}

bool SynopticSearch::ParseEntryPath(const std::string& path, double* time,
                                    std::string* instrument) {
  if (!StartsWith(path, "synoptic/")) return false;
  std::string rest = path.substr(9);
  size_t underscore = rest.find('_');
  if (underscore == std::string::npos) return false;
  if (!ParseDouble(rest.substr(0, underscore), time)) return false;
  *instrument = rest.substr(underscore + 1);
  return !instrument->empty();
}

SynopticResult SynopticSearch::Search(double t_lo, double t_hi) const {
  SynopticResult result;
  std::vector<std::vector<SynopticHit>> per_archive(archives_.size());
  std::vector<bool> failed(archives_.size(), false);

  // One thread per remote archive — issued in parallel like the paper's
  // crawler.
  std::vector<std::thread> threads;
  threads.reserve(archives_.size());
  for (size_t i = 0; i < archives_.size(); ++i) {
    threads.emplace_back([this, i, t_lo, t_hi, &per_archive, &failed] {
      const auto& [name, archive] = archives_[i];
      std::vector<std::string> listing = archive->List();
      if (listing.empty() &&
          archive->type() == archive::ArchiveType::kRemote) {
        // Distinguish empty-from-offline via a probe read.
        auto* remote = dynamic_cast<archive::RemoteArchive*>(archive);
        if (remote != nullptr && !remote->online()) {
          failed[i] = true;
          return;
        }
      }
      for (const std::string& path : listing) {
        double t = 0;
        std::string instrument;
        if (!ParseEntryPath(path, &t, &instrument)) continue;
        if (t < t_lo || t > t_hi) continue;
        per_archive[i].push_back(SynopticHit{name, t, instrument, path});
      }
    });
  }
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < archives_.size(); ++i) {
    if (failed[i]) {
      result.unavailable.push_back(archives_[i].first);
    } else {
      result.hits.insert(result.hits.end(), per_archive[i].begin(),
                         per_archive[i].end());
    }
  }
  // Grouped by observation time for display.
  std::sort(result.hits.begin(), result.hits.end(),
            [](const SynopticHit& a, const SynopticHit& b) {
              if (a.observation_time != b.observation_time) {
                return a.observation_time < b.observation_time;
              }
              return a.archive_name < b.archive_name;
            });
  return result;
}

}  // namespace hedc::client
