#include "client/streamcorder.h"

#include <chrono>

#include "archive/fits.h"
#include "core/metrics.h"
#include "core/strings.h"
#include "dm/hedc_schema.h"
#include "rhessi/raw_unit.h"

namespace hedc::client {

StreamCorder::StreamCorder(dm::DataManager* server,
                           dm::Session server_session, Options options)
    : server_(server),
      server_session_(std::move(server_session)),
      options_(options) {
  // Local clone of the HEDC server: same schema on an own DBMS.
  local_db_ = std::make_unique<db::Database>();
  dm::CreateFullSchema(local_db_.get());
  local_archives_ = std::make_unique<archive::ArchiveManager>();
  local_archives_->Register({1, archive::ArchiveType::kDisk, "local", true},
                            std::make_unique<archive::DiskArchive>());
  Config mapper_config;
  mapper_config.Set("root.filename", "streamcorder");
  local_mapper_ = std::make_unique<archive::NameMapper>(local_db_.get(),
                                                        mapper_config);
  local_mapper_->Init();
  local_mapper_->RegisterArchive(1, "disk", "cache");
  dm::DataManager::Options dm_options;
  dm_options.pool.connection_setup_cost = 0;
  dm_options.sessions.session_setup_cost = 0;
  dm_options.async_workers = 1;
  local_dm_ = std::make_unique<dm::DataManager>(
      "streamcorder-local", local_db_.get(), local_archives_.get(),
      local_mapper_.get(), server->clock(), dm_options);
  dm::UserProfile local_user;
  local_user.user_id = server_session_.profile.user_id;
  local_user.name = server_session_.profile.name;
  local_user.is_super = true;  // the local clone is fully owned
  Result<dm::Session> local = local_dm_->sessions().GetOrCreate(
      local_user, "127.0.0.1", "local", dm::SessionKind::kAnalysis);
  if (local.ok()) local_session_ = local.value();

  if (options_.cache_version == 1) {
    cache_ = std::make_unique<PathCache>(options_.cache_capacity_bytes);
  } else {
    cache_ = std::make_unique<DbCache>(options_.cache_capacity_bytes);
  }
  registry_ = analysis::CreateStandardRegistry();

  // The client is "a clone of the HEDC server": it runs the same
  // derived-product cache over its local DM, so repeated local analyses
  // are served from storage and survive a client restart.
  pl::ProductCache::Options pc_options;
  pc_options.enabled = options_.product_cache_enabled;
  pc_options.capacity_bytes = options_.product_cache_capacity_bytes;
  pc_options.metric_prefix = "client.product_cache";
  product_cache_ =
      std::make_unique<pl::ProductCache>(local_dm_.get(), pc_options);
  product_cache_->LoadFromDm();
}

Result<std::vector<uint8_t>> StreamCorder::FetchRawUnit(int64_t unit_id) {
  ObjectAttributes attrs{"raw", unit_id, 0};
  Result<std::vector<uint8_t>> cached = cache_->Get(attrs);
  if (cached.ok()) return cached;
  // Peer-to-peer: a peer's cache may already hold the object (§10).
  for (StreamCorder* peer : peers_) {
    Result<std::vector<uint8_t>> from_peer = peer->ServeFromCache(attrs);
    if (from_peer.ok()) {
      ++peer_fetches_;
      HEDC_RETURN_IF_ERROR(cache_->Put(attrs, from_peer.value()));
      return from_peer;
    }
  }
  HEDC_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                        server_->io().ReadItemFile(unit_id));
  ++server_fetches_;
  HEDC_RETURN_IF_ERROR(cache_->Put(attrs, data));
  return data;
}

void StreamCorder::AddPeer(StreamCorder* peer) {
  if (peer != this) peers_.push_back(peer);
}

Result<std::vector<uint8_t>> StreamCorder::ServeFromCache(
    const ObjectAttributes& attrs) {
  if (!cache_->Contains(attrs)) {
    return Status::NotFound("peer cache miss");
  }
  return cache_->Get(attrs);
}

Result<std::vector<double>> StreamCorder::FetchViewApproximation(
    int64_t unit_id, double fraction) {
  int64_t view_item = dm::ProcessLayer::ViewItemId(unit_id);
  ObjectAttributes attrs{"view", view_item, 0};
  Result<std::vector<uint8_t>> bytes = cache_->Get(attrs);
  if (!bytes.ok()) {
    bytes = server_->io().ReadItemFile(view_item);
    if (!bytes.ok()) return bytes.status();
    ++server_fetches_;
    HEDC_RETURN_IF_ERROR(cache_->Put(attrs, bytes.value()));
  }
  HEDC_ASSIGN_OR_RETURN(archive::FitsFile fits,
                        archive::FitsFile::Parse(bytes.value()));
  const archive::FitsHdu* view = fits.FindHdu("VIEW");
  if (view == nullptr) {
    return Status::Corruption("view file missing VIEW HDU");
  }
  // Decoding happens on the client "to minimize the load at the server"
  // (§6.3).
  return wavelet::DecodeSignal(view->data, fraction);
}

Result<StreamCorder::ProgressiveView> StreamCorder::FetchViewProgressive(
    int64_t unit_id, const RefinementCallback& on_refinement) {
  auto wall_start = std::chrono::steady_clock::now();
  auto elapsed_seconds = [&wall_start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_start)
        .count();
  };
  int64_t view_item = dm::ProcessLayer::ViewItemId(unit_id);
  HEDC_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                        server_->io().ReadItemFile(view_item));
  ++server_fetches_;
  HEDC_ASSIGN_OR_RETURN(archive::FitsFile fits,
                        archive::FitsFile::Parse(bytes));
  const archive::FitsHdu* view = fits.FindHdu("VIEW");
  if (view == nullptr) {
    return Status::Corruption("view file missing VIEW HDU");
  }
  HEDC_ASSIGN_OR_RETURN(size_t levels, wavelet::ResolutionLevels(view->data));

  MetricsRegistry* metrics = MetricsRegistry::Default();
  ProgressiveView out;
  out.levels = levels;
  size_t prev_prefix = 0;
  for (size_t level = 0; level < levels; ++level) {
    HEDC_ASSIGN_OR_RETURN(std::vector<uint8_t> prefix,
                          wavelet::SlicePrefixForLevel(view->data, level));
    // A level without surviving coefficients adds no bytes: skip the
    // identical re-decode, the previous render already covers it.
    if (out.refinements > 0 && prefix.size() == prev_prefix) continue;
    prev_prefix = prefix.size();
    HEDC_ASSIGN_OR_RETURN(out.bins,
                          wavelet::DecodeSignalPrefix(prefix,
                                                      &out.final_info));
    out.total_bytes += prefix.size();
    ++out.refinements;
    if (on_refinement) on_refinement(out.bins, level);
    double elapsed = elapsed_seconds();
    if (out.refinements == 1) {
      out.first_paint_bytes = prefix.size();
      out.first_paint_seconds = elapsed;
      metrics->GetHistogram("client.progressive.first_paint_us")
          ->Observe(static_cast<int64_t>(elapsed * 1e6));
    }
    out.full_seconds = elapsed;
    metrics->GetCounter("client.progressive.bytes")
        ->Add(static_cast<int64_t>(prefix.size()));
  }
  if (out.refinements == 0) {
    return Status::Corruption("view stream yields no decodable prefix");
  }
  metrics->GetCounter("client.progressive.fetches")->Add();
  metrics->GetCounter("client.progressive.refinements")
      ->Add(static_cast<int64_t>(out.refinements));
  metrics->GetHistogram("client.progressive.full_us")
      ->Observe(static_cast<int64_t>(out.full_seconds * 1e6));
  return out;
}

// The unit's current calibration version, resolved without unpacking the
// file: local mirror first, then the server's raw_units tuple. -1 when
// the unit is unknown to both (the unpacked header decides later).
int StreamCorder::ResolveCalibrationVersion(int64_t unit_id) {
  for (db::Database* db : {local_db_.get(), server_->database()}) {
    Result<db::ResultSet> row = db->Execute(
        "SELECT calibration_version FROM raw_units WHERE unit_id = ?",
        {db::Value::Int(unit_id)});
    if (row.ok() && row.value().num_rows() > 0) {
      return static_cast<int>(
          row.value().Get(0, "calibration_version").AsInt());
    }
  }
  return -1;
}

Result<analysis::AnalysisProduct> StreamCorder::AnalyzeLocally(
    int64_t unit_id, const std::string& routine,
    const analysis::AnalysisParams& params) {
  int calibration_version = ResolveCalibrationVersion(unit_id);
  pl::ProductCache::Ticket ticket;
  if (product_cache_ != nullptr && calibration_version >= 0) {
    pl::ProductCacheKey key = pl::MakeProductCacheKey(
        routine, params, {{unit_id, calibration_version}});
    ticket = product_cache_->Admit(key);
    if (ticket.role == pl::ProductCache::Role::kHit) {
      return pl::DecodeProduct(ticket.hit.bytes);
    }
    if (ticket.role == pl::ProductCache::Role::kFollower) {
      HEDC_ASSIGN_OR_RETURN(pl::ProductCache::CachedProduct shared,
                            product_cache_->Await(ticket));
      return pl::DecodeProduct(shared.bytes);
    }
  }
  bool leader = ticket.role == pl::ProductCache::Role::kLeader;
  auto wall_start = std::chrono::steady_clock::now();
  Result<analysis::AnalysisProduct> product =
      [&]() -> Result<analysis::AnalysisProduct> {
    HEDC_ASSIGN_OR_RETURN(std::vector<uint8_t> packed,
                          FetchRawUnit(unit_id));
    HEDC_ASSIGN_OR_RETURN(rhessi::RawDataUnit unit,
                          rhessi::RawDataUnit::Unpack(packed));
    const analysis::AnalysisRoutine* impl = registry_->Get(routine);
    if (impl == nullptr) return Status::NotFound("routine " + routine);
    return impl->Run(unit.photons, params);
  }();
  if (leader) {
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    if (product.ok()) {
      product_cache_->CompleteSuccess(ticket, product.value(), seconds, 0);
    } else {
      product_cache_->CompleteFailure(ticket, product.status());
    }
  }
  return product;
}

Result<int64_t> StreamCorder::UploadResult(
    int64_t hle_id, const analysis::AnalysisProduct& product,
    const analysis::AnalysisParams& params) {
  dm::AnaRecord record;
  record.hle_id = hle_id;
  record.routine = product.routine;
  record.parameters = params.Canonical();
  record.status = "done";
  record.image_bytes = static_cast<int64_t>(product.rendered.size());
  record.log_excerpt = product.log;
  record.notes = "uploaded from StreamCorder";
  HEDC_ASSIGN_OR_RETURN(
      int64_t ana_id,
      server_->semantics().CreateAna(server_session_, record));
  if (!product.rendered.empty()) {
    HEDC_RETURN_IF_ERROR(server_->io().WriteItemFile(
        2000000000 + ana_id, 1, "ana", product.rendered));
  }
  return ana_id;
}

Status StreamCorder::MirrorHle(int64_t hle_id) {
  HEDC_ASSIGN_OR_RETURN(dm::HleRecord record,
                        server_->semantics().GetHle(server_session_, hle_id));
  // Insert into the local clone with the same id (clone semantics): go
  // through the local semantic layer only if ids match; here we write the
  // tuple directly to preserve the id.
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet r,
      local_db_->Execute(
          "INSERT INTO hle VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
          "?, ?, ?, ?, ?, ?, ?)",
          {db::Value::Int(record.hle_id), db::Value::Int(record.owner_id),
           db::Value::Bool(record.is_public),
           db::Value::Text(record.event_type),
           db::Value::Real(record.t_start), db::Value::Real(record.t_end),
           db::Value::Real(record.e_min), db::Value::Real(record.e_max),
           db::Value::Real(record.peak_rate),
           db::Value::Real(record.peak_energy),
           db::Value::Int(record.photon_count),
           db::Value::Int(record.unit_id),
           db::Value::Int(record.calibration_version),
           db::Value::Int(record.version),
           db::Value::Int(record.superseded_by),
           db::Value::Text(record.label), db::Value::Text(record.notes),
           db::Value::Real(record.created_time),
           db::Value::Text(record.source),
           db::Value::Real(record.quality)}));
  (void)r;
  return Status::Ok();
}

Result<int64_t> StreamCorder::MirrorRepository() {
  // 1. Every visible HLE.
  HEDC_ASSIGN_OR_RETURN(
      std::vector<dm::HleRecord> hles,
      server_->semantics().ListHles(server_session_, -1e18, 1e18));
  int64_t mirrored = 0;
  for (const dm::HleRecord& hle : hles) {
    if (LocalHle(hle.hle_id).ok()) continue;  // already mirrored
    HEDC_RETURN_IF_ERROR(MirrorHle(hle.hle_id));
    ++mirrored;
  }
  // 2. Raw-unit tuples and their files (cached locally, so analysis
  // works fully offline afterwards).
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet units,
      server_->database()->Execute("SELECT * FROM raw_units"));
  for (size_t i = 0; i < units.num_rows(); ++i) {
    int64_t unit_id = units.Get(i, "unit_id").AsInt();
    Result<db::ResultSet> exists = local_db_->Execute(
        "SELECT COUNT(*) FROM raw_units WHERE unit_id = ?",
        {db::Value::Int(unit_id)});
    if (exists.ok() && exists.value().rows[0][0].AsInt() == 0) {
      HEDC_ASSIGN_OR_RETURN(
          db::ResultSet ins,
          local_db_->Execute(
              "INSERT INTO raw_units VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
              {units.rows[i][0], units.rows[i][1], units.rows[i][2],
               units.rows[i][3], units.rows[i][4], units.rows[i][5],
               units.rows[i][6], units.rows[i][7], units.rows[i][8]}));
      (void)ins;
    }
    FetchRawUnit(unit_id);  // populates the cache; best effort
  }
  // 3. Public catalogs with their membership.
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet catalogs,
      server_->database()->Execute(
          "SELECT * FROM catalogs WHERE is_public = TRUE"));
  for (size_t i = 0; i < catalogs.num_rows(); ++i) {
    int64_t catalog_id = catalogs.Get(i, "catalog_id").AsInt();
    Result<db::ResultSet> exists = local_db_->Execute(
        "SELECT COUNT(*) FROM catalogs WHERE catalog_id = ?",
        {db::Value::Int(catalog_id)});
    if (!exists.ok() || exists.value().rows[0][0].AsInt() > 0) continue;
    HEDC_ASSIGN_OR_RETURN(
        db::ResultSet ins,
        local_db_->Execute("INSERT INTO catalogs VALUES (?, ?, ?, ?, ?, ?)",
                           {catalogs.rows[i][0], catalogs.rows[i][1],
                            catalogs.rows[i][2], catalogs.rows[i][3],
                            catalogs.rows[i][4], catalogs.rows[i][5]}));
    (void)ins;
    HEDC_ASSIGN_OR_RETURN(
        db::ResultSet members,
        server_->database()->Execute(
            "SELECT * FROM catalog_members WHERE catalog_id = ?",
            {db::Value::Int(catalog_id)}));
    for (size_t m = 0; m < members.num_rows(); ++m) {
      local_db_->Execute("INSERT INTO catalog_members VALUES (?, ?, ?)",
                         {members.rows[m][0], members.rows[m][1],
                          members.rows[m][2]});
    }
  }
  return mirrored;
}

Result<dm::HleRecord> StreamCorder::LocalHle(int64_t hle_id) {
  return local_dm_->semantics().GetHle(local_session_, hle_id);
}

void StreamCorder::RegisterCordlet(std::unique_ptr<Cordlet> cordlet) {
  cordlets_.push_back(std::move(cordlet));
}

std::vector<Cordlet*> StreamCorder::ModulesFor(
    const std::string& data_type) const {
  std::vector<Cordlet*> out;
  for (const auto& cordlet : cordlets_) {
    for (const std::string& type : cordlet->data_types()) {
      if (type == data_type) {
        out.push_back(cordlet.get());
        break;
      }
    }
  }
  return out;
}

}  // namespace hedc::client
