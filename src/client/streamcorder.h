// StreamCorder: the fat Java client, in C++ (§6.2).
//
// "The StreamCorder architecture is similar to the one of the HEDC. The
// functionality is divided between basic services and dynamically
// loadable modules (or cordlets). ... every installation of the
// StreamCorder is, in fact, a clone of the HEDC server extended with a
// GUI and extra services." The GUI is out of scope; the data/control
// planes — caching, local DM/DB clone, progressive decode, local
// analysis, upload — are implemented.
#ifndef HEDC_CLIENT_STREAMCORDER_H_
#define HEDC_CLIENT_STREAMCORDER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/routine.h"
#include "client/cache.h"
#include "dm/dm.h"
#include "dm/process_layer.h"
#include "pl/product_cache.h"
#include "wavelet/codec.h"

namespace hedc::client {

// A dynamically loadable module. Modules are data-type sensitive: the
// StreamCorder picks modules by the context's data type.
class Cordlet {
 public:
  virtual ~Cordlet() = default;
  virtual std::string name() const = 0;
  // The data types this module handles ("hle", "ana", "view", ...).
  virtual std::vector<std::string> data_types() const = 0;
};

class StreamCorder {
 public:
  struct Options {
    // Cache strategy: v1 = path cache, v2 = local-DB cache.
    int cache_version = 2;
    uint64_t cache_capacity_bytes = 256 * 1024 * 1024;
    // Local derived-product cache over the local DM clone: repeated
    // AnalyzeLocally calls for the same (routine, params, unit@version)
    // reuse the stored product instead of recomputing.
    bool product_cache_enabled = true;
    uint64_t product_cache_capacity_bytes = 64 * 1024 * 1024;
  };

  // `server` is the HEDC server's DM this client talks to. The client
  // builds its own local DM clone (own DBMS + archive + schema).
  StreamCorder(dm::DataManager* server, dm::Session server_session,
               Options options);

  // --- core services ---------------------------------------------------
  // Fetches the raw unit file, through the cache.
  Result<std::vector<uint8_t>> FetchRawUnit(int64_t unit_id);

  // Fetches the wavelet view of a unit and reconstructs an approximation
  // from the first `fraction` of coefficients (progressive analysis &
  // visualization, §6.3). Cached like any large object.
  Result<std::vector<double>> FetchViewApproximation(int64_t unit_id,
                                                     double fraction);

  // One coarse-to-fine progressive delivery of a unit's view: fetches
  // the stored stream's resolution-level prefixes in order, decodes and
  // (optionally) renders each refinement, and reports first-paint vs
  // full-fidelity latency plus the bytes each resolution cost.
  // Instrumented as client.progressive.* (fetches, refinements, bytes
  // counters; first_paint_us / full_us histograms).
  struct ProgressiveView {
    std::vector<double> bins;        // finest reconstruction delivered
    size_t refinements = 0;          // prefixes decoded (levels with
                                     // no new coefficients are skipped)
    size_t levels = 0;               // resolution levels in the stream
    size_t first_paint_bytes = 0;    // coarsest prefix size
    size_t total_bytes = 0;          // cumulative prefix bytes fetched
    double first_paint_seconds = 0;  // wall time to the coarsest render
    double full_seconds = 0;         // wall time to the last refinement
    wavelet::PrefixInfo final_info;  // accounting of the final decode
  };
  using RefinementCallback =
      std::function<void(const std::vector<double>& bins, size_t level)>;
  Result<ProgressiveView> FetchViewProgressive(
      int64_t unit_id, const RefinementCallback& on_refinement = nullptr);

  // Runs an analysis locally on cached/downloaded data.
  Result<analysis::AnalysisProduct> AnalyzeLocally(
      int64_t unit_id, const std::string& routine,
      const analysis::AnalysisParams& params);

  // Uploads a locally produced result into the server as a new ANA on
  // `hle_id` ("New analysis results thus produced may be uploaded and
  // imported into the system", §1).
  Result<int64_t> UploadResult(int64_t hle_id,
                               const analysis::AnalysisProduct& product,
                               const analysis::AnalysisParams& params);

  // Mirrors an HLE's metadata into the local clone (offline work).
  Status MirrorHle(int64_t hle_id);

  // Full mirror (§1: advanced users "can create a local mirror copy of
  // the entire HEDC server, including data and functionality"): copies
  // every visible HLE, all raw-unit tuples and their files, and the
  // public catalogs into the local clone. Returns the number of HLEs
  // mirrored.
  Result<int64_t> MirrorRepository();
  // Reads a mirrored HLE from the local clone without server contact.
  Result<dm::HleRecord> LocalHle(int64_t hle_id);

  // --- peer-to-peer (§10) -------------------------------------------------
  // "As every StreamCorder is in reality a fully functional server,
  // requests may also be sent to peer clients to allow peer to peer
  // interaction." Peers' caches are consulted before the HEDC server.
  void AddPeer(StreamCorder* peer);
  // Serves an object from this client's cache only (no server fallback);
  // the endpoint peers call.
  Result<std::vector<uint8_t>> ServeFromCache(const ObjectAttributes& attrs);
  int64_t peer_fetches() const { return peer_fetches_; }

  // --- cordlets -----------------------------------------------------------
  void RegisterCordlet(std::unique_ptr<Cordlet> cordlet);
  // Modules applicable to a data-type context.
  std::vector<Cordlet*> ModulesFor(const std::string& data_type) const;

  ClientCache& cache() { return *cache_; }
  dm::DataManager& local_dm() { return *local_dm_; }
  pl::ProductCache& product_cache() { return *product_cache_; }

  int64_t server_fetches() const { return server_fetches_; }

 private:
  // Resolves a unit's calibration version from the local mirror or the
  // server tuple (-1 if neither knows the unit).
  int ResolveCalibrationVersion(int64_t unit_id);

  dm::DataManager* server_;
  dm::Session server_session_;
  Options options_;

  // Local clone: same schema, own DBMS/archive/mapper.
  std::unique_ptr<db::Database> local_db_;
  std::unique_ptr<archive::ArchiveManager> local_archives_;
  std::unique_ptr<archive::NameMapper> local_mapper_;
  std::unique_ptr<dm::DataManager> local_dm_;
  dm::Session local_session_;

  std::unique_ptr<ClientCache> cache_;
  std::unique_ptr<pl::ProductCache> product_cache_;
  std::unique_ptr<analysis::RoutineRegistry> registry_;
  std::vector<std::unique_ptr<Cordlet>> cordlets_;
  std::vector<StreamCorder*> peers_;
  int64_t server_fetches_ = 0;
  int64_t peer_fetches_ = 0;
};

}  // namespace hedc::client

#endif  // HEDC_CLIENT_STREAMCORDER_H_
