#include "cluster/routing.h"

#include <algorithm>
#include <limits>

#include "core/content_hash.h"

namespace hedc::cluster {

namespace {

// FNV-1a of short, similar strings ("dm3#0".."dm3#63") leaves the high
// bits nearly sequential, which collapses each node's virtual points into
// one tight arc and skews ring ownership grotesquely. A 64-bit finalizer
// (MurmurHash3 fmix64) avalanches the bits so points spread uniformly.
uint64_t RingPoint(const std::string& s) {
  uint64_t x = Fnv1a64(s);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Result<RoutingPolicy> ParseRoutingPolicy(const std::string& name) {
  if (name == "least_loaded") return RoutingPolicy::kLeastLoaded;
  if (name == "consistent_hash") return RoutingPolicy::kConsistentHash;
  return Status::InvalidArgument("cluster.routing must be least_loaded or "
                                 "consistent_hash, got '" +
                                 name + "'");
}

const char* RoutingPolicyName(RoutingPolicy policy) {
  return policy == RoutingPolicy::kLeastLoaded ? "least_loaded"
                                               : "consistent_hash";
}

SessionRouter::SessionRouter(MembershipRegistry* membership,
                             RoutingPolicy policy, int virtual_points,
                             std::function<int64_t(int node_id)> load_probe)
    : membership_(membership),
      policy_(policy),
      virtual_points_(virtual_points < 1 ? 1 : virtual_points),
      load_probe_(std::move(load_probe)) {}

void SessionRouter::ReconcileLocked() {
  int64_t epoch = membership_->epoch();
  if (epoch == seen_epoch_) return;
  seen_epoch_ = epoch;
  members_.clear();
  for (const NodeInfo& info : membership_->Snapshot()) {
    members_[info.node_id] = info;
  }
  // Ring over *all* members (healthy or not): a downed node's keys spill
  // to its successor and return when it recovers, everyone else's keys
  // stay put.
  ring_.clear();
  ring_.reserve(members_.size() * static_cast<size_t>(virtual_points_));
  for (const auto& [id, info] : members_) {
    for (int i = 0; i < virtual_points_; ++i) {
      uint64_t point =
          RingPoint(info.name + "#" + std::to_string(i));
      ring_.emplace_back(point, id);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  // Sticky assignments to departed or unhealthy nodes dissolve; those
  // sessions get re-placed (by load) on their next request.
  for (auto it = assignments_.begin(); it != assignments_.end();) {
    auto member = members_.find(it->second);
    if (member == members_.end() || !member->second.healthy) {
      it = assignments_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<NodeInfo> SessionRouter::RouteHashLocked(uint64_t key_hash) {
  if (ring_.empty()) return Status::Unavailable("cluster has no members");
  auto start = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(key_hash, std::numeric_limits<int>::min()));
  for (size_t step = 0; step < ring_.size(); ++step) {
    auto it = start + static_cast<long>(step);
    if (it >= ring_.end()) it -= static_cast<long>(ring_.size());
    const NodeInfo& info = members_.at(it->second);
    if (info.healthy) return info;
  }
  return Status::Unavailable("cluster has no healthy member");
}

Result<NodeInfo> SessionRouter::RouteLeastLoadedLocked(
    const std::string& session_key) {
  auto assigned = assignments_.find(session_key);
  if (assigned != assignments_.end()) {
    return members_.at(assigned->second);  // reconciled: known healthy
  }
  std::map<int, int64_t> load;
  for (const auto& [key, id] : assignments_) ++load[id];
  const NodeInfo* best = nullptr;
  int64_t best_load = 0;
  for (const auto& [id, info] : members_) {
    if (!info.healthy) continue;
    int64_t l = load[id] + (load_probe_ ? load_probe_(id) : 0);
    if (best == nullptr || l < best_load) {
      best = &info;
      best_load = l;
    }
  }
  if (best == nullptr) {
    return Status::Unavailable("cluster has no healthy member");
  }
  assignments_[session_key] = best->node_id;
  return *best;
}

Result<NodeInfo> SessionRouter::Route(const std::string& session_key) {
  std::lock_guard<std::mutex> lock(mu_);
  ReconcileLocked();
  if (policy_ == RoutingPolicy::kConsistentHash) {
    return RouteHashLocked(RingPoint(session_key));
  }
  return RouteLeastLoadedLocked(session_key);
}

std::vector<NodeInfo> SessionRouter::FallbackOrder(int primary_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ReconcileLocked();
  std::vector<NodeInfo> out;
  if (policy_ == RoutingPolicy::kConsistentHash) {
    // Ring successors of the primary's first virtual point, in clockwise
    // order, one entry per distinct healthy node.
    auto primary = members_.find(primary_id);
    if (primary == members_.end()) return out;
    uint64_t start_point = RingPoint(primary->second.name + "#0");
    auto start = std::lower_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(start_point, std::numeric_limits<int>::min()));
    for (size_t step = 0; step < ring_.size(); ++step) {
      auto it = start + static_cast<long>(step);
      if (it >= ring_.end()) it -= static_cast<long>(ring_.size());
      if (it->second == primary_id) continue;
      const NodeInfo& info = members_.at(it->second);
      if (!info.healthy) continue;
      bool seen = false;
      for (const NodeInfo& chosen : out) {
        if (chosen.node_id == info.node_id) {
          seen = true;
          break;
        }
      }
      if (!seen) out.push_back(info);
    }
    return out;
  }
  // least_loaded: healthy peers by ascending sticky load, ties by id.
  std::map<int, int64_t> load;
  for (const auto& [key, id] : assignments_) ++load[id];
  for (const auto& [id, info] : members_) {
    if (id == primary_id || !info.healthy) continue;
    out.push_back(info);
  }
  std::stable_sort(out.begin(), out.end(),
                   [&load](const NodeInfo& a, const NodeInfo& b) {
                     return load[a.node_id] < load[b.node_id];
                   });
  return out;
}

std::map<int, int64_t> SessionRouter::AssignmentCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<int, int64_t> out;
  for (const auto& [key, id] : assignments_) ++out[id];
  return out;
}

}  // namespace hedc::cluster
