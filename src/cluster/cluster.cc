#include "cluster/cluster.h"

#include <utility>

namespace hedc::cluster {

ClusterOptions ClusterOptions::FromConfig(const Config& config) {
  ClusterOptions out;
  out.nodes = static_cast<int>(config.GetInt("cluster.nodes", out.nodes));
  Result<RoutingPolicy> policy =
      ParseRoutingPolicy(config.GetString("cluster.routing", "least_loaded"));
  if (policy.ok()) out.routing = policy.value();
  out.virtual_points = static_cast<int>(
      config.GetInt("cluster.virtual_points", out.virtual_points));
  out.node.executor_slots = static_cast<int>(
      config.GetInt("cluster.node_slots", out.node.executor_slots));
  out.node.service_floor =
      config.GetInt("cluster.service_floor_us", out.node.service_floor);
  out.node.wal_dir = config.GetString("cluster.wal_dir", out.node.wal_dir);
  out.shared_db_slots = static_cast<int>(
      config.GetInt("cluster.shared_db_slots", out.shared_db_slots));
  out.shared_db_floor =
      config.GetInt("cluster.shared_db_floor_us", out.shared_db_floor);
  out.node.rmi = dm::TcpRmiServer::Options::FromConfig(config);
  return out;
}

ClusterRunner::ClusterRunner(ClusterOptions options, Clock* clock,
                             MetricsRegistry* metrics)
    : options_(std::move(options)),
      clock_(clock),
      metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()),
      membership_(metrics_) {
  if (options_.shared_db_slots > 0) {
    shared_db_ = std::make_unique<SharedGate>(options_.shared_db_slots,
                                              options_.shared_db_floor,
                                              clock_);
    options_.node.shared_db = shared_db_.get();
  }
  if (options_.node.rmi.use_reactor) {
    // All nodes' RMI listeners share this loop: O(workers) threads for
    // the whole cluster, however many nodes and channels exist.
    net::Reactor::Options reactor_options = options_.node.rmi.reactor;
    if (reactor_options.metrics == nullptr) reactor_options.metrics = metrics_;
    shared_reactor_ = std::make_unique<net::Reactor>(reactor_options);
    options_.node.rmi.shared_reactor = shared_reactor_.get();
  }
  // The load probe reads the node gate's in-flight count, giving the
  // least_loaded policy live load on top of sticky-assignment counts.
  router_ = std::make_unique<SessionRouter>(
      &membership_, options_.routing, options_.virtual_points,
      [this](int node_id) -> int64_t {
        std::lock_guard<std::mutex> lock(mu_);
        if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
          return 0;
        }
        NodeGate* gate = nodes_[node_id]->gate();
        return gate != nullptr ? gate->inflight() : 0;
      });
}

ClusterRunner::~ClusterRunner() {
  for (auto& node : nodes_) {
    if (node != nullptr) node->StopServing();
  }
}

Status ClusterRunner::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < options_.nodes; ++i) {
    HEDC_RETURN_IF_ERROR(BootOneLocked().status());
  }
  return Status::Ok();
}

Result<int> ClusterRunner::AddNode() {
  std::lock_guard<std::mutex> lock(mu_);
  return BootOneLocked();
}

Result<int> ClusterRunner::BootOneLocked() {
  std::string name = "dm" + std::to_string(nodes_.size());
  auto node = std::make_unique<ClusterNode>(name, options_.node, clock_);
  HEDC_RETURN_IF_ERROR(node->Boot());
  NodeInfo info;
  info.name = name;
  info.port = node->port();
  info.dm = node->dm();
  int id = membership_.Join(info);
  node->node_id = id;
  WireInvalidationBroadcast(node.get());
  // Invariant: node ids are assigned densely by join order and nodes are
  // never erased from nodes_ (RemoveNode only stops + leaves membership),
  // so nodes_[id] stays valid for the runner's lifetime.
  nodes_.push_back(std::move(node));
  return id;
}

void ClusterRunner::WireInvalidationBroadcast(ClusterNode* node) {
  if (node->process() == nullptr) return;
  // Snapshot the cache list outside any per-cache work so a broadcast
  // never holds the runner lock while touching cache internals (a node
  // being killed may be joining RMI threads that are mid-recalibration).
  auto snapshot_caches = [this] {
    std::vector<pl::ProductCache*> caches;
    std::lock_guard<std::mutex> lock(mu_);
    caches.reserve(nodes_.size());
    for (auto& n : nodes_) {
      if (n != nullptr && n->product_cache() != nullptr) {
        caches.push_back(n->product_cache());
      }
    }
    return caches;
  };
  node->process()->SetDerivedProductInvalidator(
      [snapshot_caches](int64_t unit_id) {
        for (pl::ProductCache* cache : snapshot_caches()) {
          cache->InvalidateUnit(unit_id);
        }
      });
  node->process()->SetAnaPurgeListener([snapshot_caches](int64_t ana_id) {
    for (pl::ProductCache* cache : snapshot_caches()) {
      cache->InvalidateAna(ana_id);
    }
  });
}

Status ClusterRunner::KillNode(int node_id) {
  ClusterNode* node = this->node(node_id);
  if (node == nullptr) {
    return Status::NotFound("no node " + std::to_string(node_id));
  }
  // Stop outside mu_: joining RMI threads can block on handlers that are
  // broadcasting cache invalidations, which briefly take mu_.
  node->StopServing();
  membership_.SetHealth(node_id, false);
  return Status::Ok();
}

Status ClusterRunner::RestartNode(int node_id) {
  ClusterNode* node = this->node(node_id);
  if (node == nullptr) {
    return Status::NotFound("no node " + std::to_string(node_id));
  }
  HEDC_RETURN_IF_ERROR(node->StartServing());
  membership_.UpdateAddress(node_id, node->port());
  membership_.SetHealth(node_id, true);
  return Status::Ok();
}

Status ClusterRunner::RemoveNode(int node_id) {
  ClusterNode* node = this->node(node_id);
  if (node == nullptr) {
    return Status::NotFound("no node " + std::to_string(node_id));
  }
  node->StopServing();
  if (!membership_.Leave(node_id)) {
    return Status::NotFound("node " + std::to_string(node_id) +
                            " not a member");
  }
  return Status::Ok();
}

size_t ClusterRunner::num_nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

ClusterNode* ClusterRunner::node(int node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return nullptr;
  }
  return nodes_[node_id].get();
}

Result<dm::DataManager*> ClusterRunner::RouteInProcess(
    const std::string& session_key) {
  Result<NodeInfo> routed = router_->Route(session_key);
  HEDC_RETURN_IF_ERROR(routed.status());
  metrics_->GetCounter("cluster.routed." + routed.value().name)->Add();
  return routed.value().dm;
}

namespace {

void Accumulate(dm::ResilientChannel::Stats* into,
                const dm::ResilientChannel::Stats& from) {
  into->calls += from.calls;
  into->attempts += from.attempts;
  into->retries += from.retries;
  into->redirects += from.redirects;
  into->failures += from.failures;
  into->breaker_opens += from.breaker_opens;
  into->breaker_closes += from.breaker_closes;
  into->fallback_rotations += from.fallback_rotations;
}

}  // namespace

RoutedDmPool::RoutedDmPool(MembershipRegistry* membership,
                           SessionRouter* router, Clock* clock,
                           Options options, MetricsRegistry* metrics)
    : membership_(membership),
      router_(router),
      clock_(clock),
      options_(std::move(options)),
      metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()) {}

RoutedDmPool::~RoutedDmPool() = default;

RoutedDmPool::Entry* RoutedDmPool::EntryForLocked(const NodeInfo& primary) {
  int64_t epoch = membership_->epoch();
  Entry& entry = entries_[primary.node_id];
  if (entry.epoch == epoch) return &entry;
  if (entry.resilient != nullptr) {
    Accumulate(&retired_, entry.resilient->stats());
  }
  entry = Entry{};
  entry.epoch = epoch;

  auto build = [this](const NodeInfo& node) -> std::unique_ptr<dm::ByteChannel> {
    std::unique_ptr<dm::ByteChannel> channel = std::make_unique<dm::TcpChannel>(
        "127.0.0.1", node.port, options_.recv_timeout);
    if (options_.decorate) channel = options_.decorate(node, std::move(channel));
    return channel;
  };
  entry.channels.push_back(build(primary));
  std::vector<dm::ByteChannel*> fallbacks;
  for (const NodeInfo& fb : router_->FallbackOrder(primary.node_id)) {
    entry.channels.push_back(build(fb));
    fallbacks.push_back(entry.channels.back().get());
  }

  dm::ResilientChannel::Options channel_options = options_.channel;
  // Breaker transitions feed node health: tripping open against the
  // primary marks it down in the membership registry (routing keys away
  // from it) and a reclose marks it back up. Chained after any caller-
  // supplied callback.
  auto user_callback = channel_options.on_state_change;
  int node_id = primary.node_id;
  MembershipRegistry* membership = membership_;
  channel_options.on_state_change =
      [user_callback, membership,
       node_id](dm::ResilientChannel::BreakerState state) {
        if (user_callback) user_callback(state);
        if (state == dm::ResilientChannel::BreakerState::kOpen) {
          membership->SetHealth(node_id, false);
        } else if (state == dm::ResilientChannel::BreakerState::kClosed) {
          membership->SetHealth(node_id, true);
        }
      };
  entry.resilient = std::make_unique<dm::ResilientChannel>(
      entry.channels.front().get(), std::move(fallbacks), clock_,
      channel_options, metrics_);
  entry.remote = std::make_unique<dm::RemoteDm>(entry.resilient.get(), metrics_);
  entry.remote->set_trace_id(options_.trace_id);
  return &entry;
}

Result<db::ResultSet> RoutedDmPool::Execute(
    const std::string& session_key, const std::string& sql,
    const std::vector<db::Value>& params) {
  Result<NodeInfo> routed = router_->Route(session_key);
  HEDC_RETURN_IF_ERROR(routed.status());
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = EntryForLocked(routed.value());
  return entry->remote->Execute(sql, params);
}

dm::ResilientChannel::Stats RoutedDmPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  dm::ResilientChannel::Stats out = retired_;
  for (const auto& [id, entry] : entries_) {
    if (entry.resilient != nullptr) Accumulate(&out, entry.resilient->stats());
  }
  return out;
}

}  // namespace hedc::cluster
