// One DM node of a cluster (§5.2 component instances, §7 testbed nodes).
//
// ClusterNode bootstraps the full per-node stack — its own Database
// (optionally WAL-backed in a per-node directory), disk archive, name
// mapper, DataManager, ProcessLayer and derived-product cache — and
// serves it over a TcpRmiServer on an ephemeral loopback port. The RMI
// frames pass through a NodeGate, a bounded executor modeling the fixed
// CPU capacity of a real middle-tier node (the paper's testbed nodes had
// two processors): at most `executor_slots` frames execute concurrently
// and each is charged at least `service_floor` of wall time. The gate is
// also the measurement point for per-node in-flight and busy-time
// metrics, which the scale-out bench turns into utilization curves.
#ifndef HEDC_CLUSTER_NODE_H_
#define HEDC_CLUSTER_NODE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "archive/archive.h"
#include "archive/name_mapper.h"
#include "core/clock.h"
#include "core/metrics.h"
#include "db/database.h"
#include "dm/dm.h"
#include "dm/process_layer.h"
#include "dm/remote.h"
#include "dm/tcp_remote.h"
#include "pl/product_cache.h"

namespace hedc::cluster {

// The shared DBMS tier behind every middle-tier node (§5.2: all DM nodes
// talk to one database server). At most `slots` statements execute
// concurrently across the whole cluster and each is charged at least
// `floor` of wall time; its busy-time counter is what the scale-out
// bench reports as shared_db_utilization — the resource whose saturation
// produces the fig5 knee.
class SharedGate {
 public:
  SharedGate(int slots, Micros floor, Clock* clock);

  // Runs `fn` holding one slot, sleeping up to the floor; returns the
  // wall time charged (actual execution or floor, whichever is larger).
  Micros Charge(const std::function<void()>& fn);

  int slots() const { return slots_; }
  int64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  int64_t busy_micros() const {
    return busy_us_.load(std::memory_order_relaxed);
  }

 private:
  int slots_;
  Micros floor_;
  Clock* clock_;

  std::mutex mu_;
  std::condition_variable slot_free_;
  int active_ = 0;

  std::atomic<int64_t> busy_us_{0};
  std::atomic<int64_t> calls_{0};
};

struct NodeOptions {
  // Per-node WAL directory; empty = in-memory only (tests/benches).
  std::string wal_dir;
  // Bounded executor: max concurrent RMI frames (0 = unbounded).
  int executor_slots = 0;
  // Minimum wall time charged per gated RMI frame (0 = none). The
  // scale-out bench calibrates this to the browse model's app-logic
  // demand; production config leaves it 0.
  Micros service_floor = 0;
  // Shared DBMS tier every gated frame's query executes through (not
  // owned; nullptr = queries run ungated). Set by the cluster runner
  // when ClusterOptions::shared_db_slots > 0.
  SharedGate* shared_db = nullptr;
  // RMI transport engine (blocking vs reactor) and tuning. The cluster
  // runner points rmi.shared_reactor at its own reactor when net.reactor
  // is on, so N nodes serve from one event loop instead of N thread
  // armies.
  dm::TcpRmiServer::Options rmi;
  dm::DataManager::Options dm;
  pl::ProductCache::Options cache;
  bool enable_product_cache = true;
};

// Bounded RMI executor; see file comment.
class NodeGate : public dm::RmiHandler {
 public:
  NodeGate(dm::RmiHandler* inner, int slots, Micros service_floor,
           Clock* clock, MetricsRegistry* metrics,
           SharedGate* shared_db = nullptr);

  std::vector<uint8_t> Handle(const std::vector<uint8_t>& request) override;

  int64_t inflight() const { return inflight_gauge_->Value(); }
  int64_t busy_micros() const {
    return busy_us_.load(std::memory_order_relaxed);
  }
  int64_t handled() const { return handled_.load(std::memory_order_relaxed); }

 private:
  dm::RmiHandler* inner_;
  int slots_;
  Micros service_floor_;
  Clock* clock_;
  SharedGate* shared_db_;

  std::mutex mu_;
  std::condition_variable slot_free_;
  int active_ = 0;

  std::atomic<int64_t> busy_us_{0};
  std::atomic<int64_t> handled_{0};
  Gauge* inflight_gauge_;
  Counter* queued_;
};

class ClusterNode {
 public:
  ClusterNode(std::string name, NodeOptions options,
              Clock* clock = RealClock::Instance());
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  // Schema + archive + mapper + DM + PL + cache; then starts serving.
  Status Boot();
  // (Re)starts the TcpRmiServer on a fresh ephemeral port.
  Status StartServing();
  // Stops the TcpRmiServer; in-flight calls fail (clients observe a
  // reset). The node's state survives for a later StartServing().
  void StopServing();
  bool serving() const { return tcp_ != nullptr && tcp_->running(); }
  int port() const { return tcp_ != nullptr ? tcp_->port() : 0; }

  const std::string& name() const { return name_; }
  int node_id = -1;  // assigned by the runner's membership registry

  db::Database* db() { return &db_; }
  dm::DataManager* dm() { return dm_.get(); }
  dm::ProcessLayer* process() { return process_.get(); }
  pl::ProductCache* product_cache() { return cache_.get(); }
  NodeGate* gate() { return gate_.get(); }
  MetricsRegistry* metrics() { return &metrics_; }
  dm::RmiServer* rmi() { return rmi_.get(); }

 private:
  std::string name_;
  NodeOptions options_;
  Clock* clock_;

  MetricsRegistry metrics_;
  db::Database db_;
  archive::ArchiveManager archives_;
  std::unique_ptr<archive::NameMapper> mapper_;
  std::unique_ptr<dm::DataManager> dm_;
  std::unique_ptr<dm::ProcessLayer> process_;
  std::unique_ptr<pl::ProductCache> cache_;
  std::unique_ptr<dm::RmiServer> rmi_;
  std::unique_ptr<NodeGate> gate_;
  std::unique_ptr<dm::TcpRmiServer> tcp_;
};

}  // namespace hedc::cluster

#endif  // HEDC_CLUSTER_NODE_H_
