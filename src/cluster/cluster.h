// Cluster runner: N DM nodes + routed dispatch in one process group (§7).
//
// The paper's scalability claim — middle-tier throughput grows by
// replicating DM nodes against a shared DBMS — stays a model until real
// nodes can be booted, routed to, killed and restarted. ClusterRunner
// does exactly that: it boots N ClusterNodes (each a full DM stack behind
// a TcpRmiServer on an ephemeral loopback port), registers them in a
// MembershipRegistry, and routes session keys to nodes through a
// SessionRouter (least_loaded or consistent_hash; see routing.h).
//
// Two dispatch paths ride on top:
//  * RouteInProcess — the web tier picks the DataManager a servlet runs
//    against (WebServer::set_node_router);
//  * RoutedDmPool — a client-side pool of TcpChannels wrapped in
//    ResilientChannels, one per primary node, with the router's fallback
//    order as the breaker's redirect list. Breaker transitions feed node
//    health back into the membership registry, so a node that dies under
//    load is routed around within one breaker trip and the keys it owned
//    move to its successors (and move back on restart).
//
// Failure semantics: KillNode stops a node's RMI server and marks it
// unhealthy (its state survives); RestartNode brings it back on a fresh
// ephemeral port and marks it healthy; RemoveNode forgets it entirely.
// Product-cache coherence: every node's recalibration/purge hooks
// broadcast invalidation across all nodes' caches, so a product cached
// via node A dies cluster-wide when a recalibration lands on node B.
#ifndef HEDC_CLUSTER_CLUSTER_H_
#define HEDC_CLUSTER_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "cluster/node.h"
#include "cluster/routing.h"
#include "core/config.h"
#include "dm/resilient_channel.h"
#include "net/reactor.h"

namespace hedc::cluster {

struct ClusterOptions {
  int nodes = 2;
  RoutingPolicy routing = RoutingPolicy::kLeastLoaded;
  int virtual_points = 64;
  // Shared DBMS tier all nodes execute through (0 slots = none): at most
  // `shared_db_slots` statements run concurrently cluster-wide, each
  // charged at least `shared_db_floor`. The scale-out bench saturates
  // this to reproduce the fig5 knee.
  int shared_db_slots = 0;
  Micros shared_db_floor = 0;
  NodeOptions node;

  // Reads cluster.nodes, cluster.routing, cluster.virtual_points,
  // cluster.node_slots, cluster.service_floor_us, cluster.wal_dir,
  // cluster.shared_db_slots, cluster.shared_db_floor_us, plus the node
  // RMI transport knobs (net.reactor and friends; see
  // dm::TcpRmiServer::Options::FromConfig). Unknown routing names fall
  // back to least_loaded.
  static ClusterOptions FromConfig(const Config& config);
};

class ClusterRunner {
 public:
  explicit ClusterRunner(ClusterOptions options,
                         Clock* clock = RealClock::Instance(),
                         MetricsRegistry* metrics = nullptr);
  ~ClusterRunner();

  ClusterRunner(const ClusterRunner&) = delete;
  ClusterRunner& operator=(const ClusterRunner&) = delete;

  // Boots options.nodes nodes (named dm0, dm1, ...).
  Status Start();
  // Boots one more node and joins it; returns its node id.
  Result<int> AddNode();
  // Stops a node's RMI server and marks it unhealthy. Its database,
  // archive and cache survive for RestartNode.
  Status KillNode(int node_id);
  // Restarts a killed node on a fresh ephemeral port and marks it
  // healthy; its keys return (consistent_hash) or it becomes eligible
  // again (least_loaded).
  Status RestartNode(int node_id);
  // Removes a node from membership permanently (stops it first).
  Status RemoveNode(int node_id);

  size_t num_nodes() const;
  ClusterNode* node(int node_id);
  MembershipRegistry& membership() { return membership_; }
  SessionRouter& router() { return *router_; }
  Clock* clock() { return clock_; }
  const ClusterOptions& options() const { return options_; }
  // Shared DBMS tier (nullptr unless shared_db_slots > 0).
  SharedGate* shared_db() { return shared_db_.get(); }

  // In-process dispatch for the web tier: the DataManager that owns
  // `session_key`. Bumps cluster.routed.<node> in the runner's registry.
  Result<dm::DataManager*> RouteInProcess(const std::string& session_key);

 private:
  Result<int> BootOneLocked();
  void WireInvalidationBroadcast(ClusterNode* node);

  ClusterOptions options_;
  Clock* clock_;
  MetricsRegistry* metrics_;
  std::unique_ptr<SharedGate> shared_db_;
  // One event loop serving every node's RMI port when net.reactor is on.
  // Declared before nodes_ so it outlives them (each node's Stop drains
  // its listener from this reactor).
  std::unique_ptr<net::Reactor> shared_reactor_;
  MembershipRegistry membership_;
  std::unique_ptr<SessionRouter> router_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;  // index == node_id
};

// Client-side routed dispatch over real TCP with ordered failover; one
// instance per client thread (calls through one entry serialize on its
// socket). Entries rebuild lazily when the membership epoch moves, so a
// restarted node's new port is picked up without explicit notification.
class RoutedDmPool {
 public:
  struct Options {
    dm::ResilientChannel::Options channel;
    Micros recv_timeout = 2 * kMicrosPerSecond;
    // Chaos seam: wraps each freshly built TcpChannel (e.g. in a
    // ChaosChannel) before the ResilientChannel sees it.
    std::function<std::unique_ptr<dm::ByteChannel>(
        const NodeInfo& node, std::unique_ptr<dm::ByteChannel> inner)>
        decorate;
    int64_t trace_id = 0;
  };

  RoutedDmPool(MembershipRegistry* membership, SessionRouter* router,
               Clock* clock, Options options,
               MetricsRegistry* metrics = nullptr);
  ~RoutedDmPool();

  // Executes on the node that owns `session_key`, failing over along the
  // router's fallback order when its breaker is open.
  Result<db::ResultSet> Execute(const std::string& session_key,
                                const std::string& sql,
                                const std::vector<db::Value>& params);

  // Aggregated over every entry this pool ever built.
  dm::ResilientChannel::Stats stats() const;

 private:
  struct Entry {
    int64_t epoch = -1;
    std::vector<std::unique_ptr<dm::ByteChannel>> channels;  // primary first
    std::unique_ptr<dm::ResilientChannel> resilient;
    std::unique_ptr<dm::RemoteDm> remote;
  };

  // Builds/rebuilds the entry for `primary` at the current epoch.
  Entry* EntryForLocked(const NodeInfo& primary);

  MembershipRegistry* membership_;
  SessionRouter* router_;
  Clock* clock_;
  Options options_;
  MetricsRegistry* metrics_;

  mutable std::mutex mu_;
  std::map<int, Entry> entries_;
  dm::ResilientChannel::Stats retired_;  // from removed entries
};

}  // namespace hedc::cluster

#endif  // HEDC_CLUSTER_CLUSTER_H_
