// Cluster membership registry (§7 scale-out, §5.4 redirection).
//
// Tracks the DM nodes of one cluster — identity, RMI address, in-process
// handle — plus a health bit fed by the circuit breakers of the routed
// channel pools (a breaker tripping open against a node marks it down;
// a reclose or an operator restart marks it back up). Every membership
// *or* health change bumps a monotonically increasing epoch; routers
// rebuild their rings and sticky maps when the epoch moves, so session
// keys rebalance exactly when membership changes and never otherwise.
#ifndef HEDC_CLUSTER_MEMBERSHIP_H_
#define HEDC_CLUSTER_MEMBERSHIP_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/status.h"

namespace hedc::dm {
class DataManager;
}  // namespace hedc::dm

namespace hedc::cluster {

struct NodeInfo {
  int node_id = -1;
  std::string name;
  int port = 0;  // TcpRmiServer address on 127.0.0.1; 0 = not serving
  dm::DataManager* dm = nullptr;  // in-process handle for web dispatch
  bool healthy = false;
};

class MembershipRegistry {
 public:
  explicit MembershipRegistry(MetricsRegistry* metrics = nullptr);

  // Adds a member (healthy) and returns its assigned node id.
  int Join(NodeInfo info);
  // Removes a member entirely (its keys redistribute permanently).
  bool Leave(int node_id);
  // Node restarted on a different ephemeral port.
  bool UpdateAddress(int node_id, int port);
  // Health feed; returns true (and bumps the epoch) only on a flip.
  bool SetHealth(int node_id, bool healthy);

  // Bumped by Join/Leave/UpdateAddress and by health flips.
  int64_t epoch() const;
  Result<NodeInfo> Get(int node_id) const;
  std::vector<NodeInfo> Snapshot() const;  // all members, by node id
  std::vector<NodeInfo> Healthy() const;
  size_t size() const;
  size_t healthy_count() const;

 private:
  void ExportLocked();

  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  std::map<int, NodeInfo> members_;
  int next_id_ = 0;
  int64_t epoch_ = 0;
};

}  // namespace hedc::cluster

#endif  // HEDC_CLUSTER_MEMBERSHIP_H_
