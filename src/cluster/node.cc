#include "cluster/node.h"

#include <sys/stat.h>

#include "dm/hedc_schema.h"

namespace hedc::cluster {

SharedGate::SharedGate(int slots, Micros floor, Clock* clock)
    : slots_(slots), floor_(floor), clock_(clock) {}

Micros SharedGate::Charge(const std::function<void()>& fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    slot_free_.wait(lock, [this] { return active_ < slots_; });
    ++active_;
  }
  Micros start = clock_->Now();
  fn();
  Micros elapsed = clock_->Now() - start;
  if (floor_ > elapsed) {
    clock_->SleepFor(floor_ - elapsed);
    elapsed = floor_;
  }
  busy_us_.fetch_add(elapsed, std::memory_order_relaxed);
  calls_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    slot_free_.notify_one();
  }
  return elapsed;
}

NodeGate::NodeGate(dm::RmiHandler* inner, int slots, Micros service_floor,
                   Clock* clock, MetricsRegistry* metrics,
                   SharedGate* shared_db)
    : inner_(inner),
      slots_(slots),
      service_floor_(service_floor),
      clock_(clock),
      shared_db_(shared_db),
      inflight_gauge_(metrics->GetGauge("cluster.node.inflight")),
      queued_(metrics->GetCounter("cluster.node.queued")) {}

std::vector<uint8_t> NodeGate::Handle(const std::vector<uint8_t>& request) {
  if (slots_ > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    if (active_ >= slots_) queued_->Add();
    slot_free_.wait(lock, [this] { return active_ < slots_; });
    ++active_;
  }
  inflight_gauge_->Add(1);
  Micros start = clock_->Now();
  std::vector<uint8_t> response;
  Micros db_charged = 0;
  if (shared_db_ != nullptr) {
    db_charged =
        shared_db_->Charge([&] { response = inner_->Handle(request); });
  } else {
    response = inner_->Handle(request);
  }
  Micros elapsed = clock_->Now() - start;
  // The service floor is the node's app-logic demand, charged on top of
  // whatever the (possibly shared) database tier took.
  Micros target = service_floor_ + db_charged;
  if (target > elapsed) {
    clock_->SleepFor(target - elapsed);
    elapsed = target;
  }
  busy_us_.fetch_add(elapsed, std::memory_order_relaxed);
  handled_.fetch_add(1, std::memory_order_relaxed);
  inflight_gauge_->Add(-1);
  if (slots_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    slot_free_.notify_one();
  }
  return response;
}

ClusterNode::ClusterNode(std::string name, NodeOptions options, Clock* clock)
    : name_(std::move(name)), options_(std::move(options)), clock_(clock) {}

ClusterNode::~ClusterNode() { StopServing(); }

Status ClusterNode::Boot() {
  HEDC_RETURN_IF_ERROR(dm::CreateFullSchema(&db_));
  if (!options_.wal_dir.empty()) {
    ::mkdir(options_.wal_dir.c_str(), 0755);  // EEXIST is fine
    HEDC_RETURN_IF_ERROR(
        db_.OpenWal(options_.wal_dir + "/" + name_ + ".wal"));
  }
  archives_.Register({1, archive::ArchiveType::kDisk, "raid1", true},
                     std::make_unique<archive::DiskArchive>());
  Config mapper_config;
  mapper_config.Set("root.filename", "/hedc");
  mapper_ = std::make_unique<archive::NameMapper>(&db_, mapper_config);
  HEDC_RETURN_IF_ERROR(mapper_->Init());
  HEDC_RETURN_IF_ERROR(mapper_->RegisterArchive(1, "disk", "raid1"));
  dm_ = std::make_unique<dm::DataManager>(name_, &db_, &archives_,
                                          mapper_.get(), clock_, options_.dm);
  process_ = std::make_unique<dm::ProcessLayer>(dm_.get(), 1);
  if (options_.enable_product_cache) {
    cache_ = std::make_unique<pl::ProductCache>(dm_.get(), options_.cache);
    HEDC_RETURN_IF_ERROR(cache_->LoadFromDm());
  }
  // Identity row (allocated first, so user_id 1): "SELECT name FROM users
  // WHERE user_id = 1" answers with the serving node's name, which the
  // routing tests key on. Goes through the user manager so its id
  // generator stays consistent for users created later.
  HEDC_RETURN_IF_ERROR(
      dm_->users().CreateUser(name_, "node-identity", dm::UserProfile{})
          .status());
  rmi_ = std::make_unique<dm::RmiServer>(dm_.get(), &metrics_);
  gate_ = std::make_unique<NodeGate>(rmi_.get(), options_.executor_slots,
                                     options_.service_floor, clock_,
                                     &metrics_, options_.shared_db);
  tcp_ = std::make_unique<dm::TcpRmiServer>(gate_.get(), &metrics_,
                                            options_.rmi);
  return StartServing();
}

Status ClusterNode::StartServing() {
  if (tcp_ == nullptr) return Status::FailedPrecondition("node not booted");
  return tcp_->Start();
}

void ClusterNode::StopServing() {
  if (tcp_ != nullptr) tcp_->Stop();
}

}  // namespace hedc::cluster
