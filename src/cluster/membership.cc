#include "cluster/membership.h"

namespace hedc::cluster {

MembershipRegistry::MembershipRegistry(MetricsRegistry* metrics)
    : metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()) {}

void MembershipRegistry::ExportLocked() {
  metrics_->GetGauge("cluster.members")
      ->Set(static_cast<int64_t>(members_.size()));
  int64_t healthy = 0;
  for (const auto& [id, info] : members_) {
    if (info.healthy) ++healthy;
  }
  metrics_->GetGauge("cluster.healthy")->Set(healthy);
  metrics_->GetGauge("cluster.epoch")->Set(epoch_);
}

int MembershipRegistry::Join(NodeInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  if (info.node_id < 0) info.node_id = next_id_;
  next_id_ = std::max(next_id_, info.node_id + 1);
  info.healthy = true;
  members_[info.node_id] = info;
  ++epoch_;
  ExportLocked();
  return info.node_id;
}

bool MembershipRegistry::Leave(int node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (members_.erase(node_id) == 0) return false;
  ++epoch_;
  ExportLocked();
  return true;
}

bool MembershipRegistry::UpdateAddress(int node_id, int port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(node_id);
  if (it == members_.end()) return false;
  it->second.port = port;
  ++epoch_;
  ExportLocked();
  return true;
}

bool MembershipRegistry::SetHealth(int node_id, bool healthy) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(node_id);
  if (it == members_.end() || it->second.healthy == healthy) return false;
  it->second.healthy = healthy;
  ++epoch_;
  metrics_->GetCounter("cluster.health_flips")->Add();
  ExportLocked();
  return true;
}

int64_t MembershipRegistry::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Result<NodeInfo> MembershipRegistry::Get(int node_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(node_id);
  if (it == members_.end()) {
    return Status::NotFound("no cluster member " + std::to_string(node_id));
  }
  return it->second;
}

std::vector<NodeInfo> MembershipRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeInfo> out;
  out.reserve(members_.size());
  for (const auto& [id, info] : members_) out.push_back(info);
  return out;
}

std::vector<NodeInfo> MembershipRegistry::Healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeInfo> out;
  for (const auto& [id, info] : members_) {
    if (info.healthy) out.push_back(info);
  }
  return out;
}

size_t MembershipRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return members_.size();
}

size_t MembershipRegistry::healthy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, info] : members_) {
    if (info.healthy) ++n;
  }
  return n;
}

}  // namespace hedc::cluster
