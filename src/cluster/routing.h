// Session routing across cluster nodes (§5.4 call redirection, §7).
//
// Two policies:
//  * consistent_hash — each member owns `virtual_points` positions on a
//    64-bit hash ring (FNV-1a of "name#i"); a session key routes to the
//    first healthy owner clockwise from its own hash. Stable by
//    construction: a key moves only when the members between its hash
//    and its owner change, i.e. exactly on membership changes.
//  * least_loaded — a session key is assigned on first sight to the node
//    with the fewest (sticky assignments + live in-flight calls, via the
//    optional load probe) and sticks to that assignment until the node
//    leaves or goes unhealthy.
//
// Both policies reconcile lazily against the MembershipRegistry epoch, so
// routers never need explicit notification of joins/leaves/health flips.
#ifndef HEDC_CLUSTER_ROUTING_H_
#define HEDC_CLUSTER_ROUTING_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "core/status.h"

namespace hedc::cluster {

enum class RoutingPolicy { kLeastLoaded, kConsistentHash };

// Parses the cluster.routing knob ("least_loaded" | "consistent_hash").
Result<RoutingPolicy> ParseRoutingPolicy(const std::string& name);
const char* RoutingPolicyName(RoutingPolicy policy);

class SessionRouter {
 public:
  // `load_probe` (nullable) reports a node's live load (in-flight RMI
  // calls); least_loaded adds it to the sticky-assignment count when
  // placing a new session.
  SessionRouter(MembershipRegistry* membership, RoutingPolicy policy,
                int virtual_points = 64,
                std::function<int64_t(int node_id)> load_probe = nullptr);

  // The healthy node that owns `session_key`; kUnavailable when the
  // cluster has no healthy member.
  Result<NodeInfo> Route(const std::string& session_key);

  // Ordered failover candidates after `primary_id`: ring successors for
  // consistent_hash, ascending load for least_loaded. Healthy nodes only.
  std::vector<NodeInfo> FallbackOrder(int primary_id);

  RoutingPolicy policy() const { return policy_; }
  // Sticky assignments per node (least_loaded introspection; empty for
  // consistent_hash, which keeps no per-key state).
  std::map<int, int64_t> AssignmentCounts() const;

 private:
  // Rebuilds ring / prunes assignments if the membership epoch moved.
  void ReconcileLocked();
  Result<NodeInfo> RouteHashLocked(uint64_t key_hash);
  Result<NodeInfo> RouteLeastLoadedLocked(const std::string& session_key);

  MembershipRegistry* membership_;
  RoutingPolicy policy_;
  int virtual_points_;
  std::function<int64_t(int node_id)> load_probe_;

  mutable std::mutex mu_;
  int64_t seen_epoch_ = -1;
  std::vector<std::pair<uint64_t, int>> ring_;  // (point, node_id), sorted
  std::map<int, NodeInfo> members_;             // epoch-consistent copy
  std::map<std::string, int> assignments_;      // least_loaded stickiness
};

}  // namespace hedc::cluster

#endif  // HEDC_CLUSTER_ROUTING_H_
