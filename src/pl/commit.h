// Commit-phase glue: persists an analysis product through the DM
// ("Results are written back into HEDC (through the DM component)").
// Stores the rendered image as a file (referenced via the location
// tables) and the ANA tuple + lineage in the metadata DB.
#ifndef HEDC_PL_COMMIT_H_
#define HEDC_PL_COMMIT_H_

#include "dm/dm.h"
#include "pl/frontend.h"

namespace hedc::pl {

// Builds a Frontend::Committer bound to `dm`, writing image files to
// `image_archive_id` under "ana". The committing session defines the
// owner of the created ANA tuples.
Frontend::Committer MakeDmCommitter(dm::DataManager* dm,
                                    dm::Session session,
                                    int64_t image_archive_id);

}  // namespace hedc::pl

#endif  // HEDC_PL_COMMIT_H_
