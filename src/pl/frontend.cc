#include "pl/frontend.h"

#include <algorithm>
#include <chrono>

#include "analysis/routine.h"
#include "core/strings.h"

namespace hedc::pl {

void GlobalDirectory::Register(const std::string& name,
                               IdlServerManager* manager,
                               const std::string& location) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.manager = manager;
      entry.location = location;
      entry.online = true;
      return;
    }
  }
  entries_.push_back(Entry{name, manager, location, true});
}

Status GlobalDirectory::SetOnline(const std::string& name, bool online) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.online = online;
      return Status::Ok();
    }
  }
  return Status::NotFound("service " + name);
}

std::vector<IdlServerManager*> GlobalDirectory::OnlineManagers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IdlServerManager*> out;
  for (const Entry& entry : entries_) {
    if (entry.online && entry.manager != nullptr) {
      out.push_back(entry.manager);
    }
  }
  return out;
}

std::vector<GlobalDirectory::Entry> GlobalDirectory::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

double DurationPredictor::PredictSeconds(const std::string& routine,
                                         double work_units) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rates_.find(routine);
  double rate = it == rates_.end() ? default_rate_ : it->second;
  return rate > 0 ? work_units / rate : 0;
}

void DurationPredictor::Observe(const std::string& routine,
                                double work_units, double seconds) {
  if (seconds <= 0 || work_units <= 0) return;
  double observed_rate = work_units / seconds;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = rates_.try_emplace(routine, observed_rate);
  if (!inserted) {
    it->second = alpha_ * observed_rate + (1 - alpha_) * it->second;
  }
}

const char* RequestStateName(RequestState state) {
  switch (state) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kEstimated:
      return "estimated";
    case RequestState::kExecuting:
      return "executing";
    case RequestState::kDelivered:
      return "delivered";
    case RequestState::kCommitted:
      return "committed";
    case RequestState::kFailed:
      return "failed";
    case RequestState::kCancelled:
      return "cancelled";
  }
  return "?";
}

Frontend::Frontend(GlobalDirectory* directory, DurationPredictor* predictor,
                   Clock* clock, Committer committer, Options options)
    : directory_(directory),
      predictor_(predictor),
      clock_(clock),
      committer_(std::move(committer)),
      options_(options) {
  MetricsRegistry* metrics = MetricsRegistry::Default();
  estimate_us_ = metrics->GetHistogram("pl.estimate_us");
  execute_us_ = metrics->GetHistogram("pl.execute_us");
  deliver_us_ = metrics->GetHistogram("pl.deliver_us");
  commit_us_ = metrics->GetHistogram("pl.commit_us");
  submitted_ = metrics->GetCounter("pl.requests.submitted");
  completed_counter_ = metrics->GetCounter("pl.requests.completed");
  failed_ = metrics->GetCounter("pl.requests.failed");
  cancelled_ = metrics->GetCounter("pl.requests.cancelled");
  queue_depth_ = metrics->GetGauge("pl.queue_depth");
  size_t n = std::max<size_t>(options_.dispatcher_threads, 1);
  dispatchers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

Frontend::~Frontend() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
}

Result<double> Frontend::Estimate(const ProcessingRequest& request) {
  // The estimation phase consults the registry-backed work model through
  // the predictor; it must not touch an interpreter.
  auto registry = analysis::CreateStandardRegistry();
  const analysis::AnalysisRoutine* routine =
      registry->Get(request.routine);
  double work = routine != nullptr
                    ? routine->EstimateWorkUnits(request.photons.size(),
                                                 request.params)
                    : static_cast<double>(request.photons.size());
  return predictor_->PredictSeconds(request.routine, work);
}

Result<int64_t> Frontend::Submit(ProcessingRequest request) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Status::Unavailable("front end shut down");
  if (queue_.size() >= options_.max_queue) {
    return Status::ResourceExhausted("request queue full");
  }
  int64_t id = next_request_id_++;
  request.request_id = id;
  if (request.trace_id == 0) request.trace_id = id;
  submitted_->Add();
  auto slot = std::make_unique<Slot>();
  slot->request = std::move(request);
  slot->outcome.state = RequestState::kQueued;
  slot->outcome.submitted_at = clock_->Now();
  if (product_cache_ != nullptr && product_cache_->enabled()) {
    slot->cache_key = MakeProductCacheKey(
        slot->request.routine, slot->request.params,
        slot->request.input_units);
  }
  if (!slot->request.skip_estimation) {
    lock.unlock();
    // A cached (or in-flight) product makes the predicted duration ~zero:
    // the execution phase will be a cache read, not an IDL run.
    bool cached = product_cache_ != nullptr &&
                  product_cache_->Peek(slot->cache_key);
    Result<double> predicted = [&]() -> Result<double> {
      ScopedTimer timer(estimate_us_);
      TraceSpan span(slot->request.trace_id, "pl", "estimate");
      if (cached) return 0.0;
      return Estimate(slot->request);
    }();
    lock.lock();
    if (predicted.ok()) {
      slot->outcome.predicted_seconds = predicted.value();
      slot->outcome.state = RequestState::kEstimated;
    }
  }
  slots_[id] = std::move(slot);
  queue_.push_back(id);
  queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  queue_cv_.notify_one();
  return id;
}

int64_t Frontend::PopNext() {
  // Priority scheduling: highest priority first, FIFO within a class.
  int best_priority = INT32_MIN;
  size_t best_index = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    auto it = slots_.find(queue_[i]);
    if (it == slots_.end()) continue;
    int p = it->second->request.priority;
    if (p > best_priority) {
      best_priority = p;
      best_index = i;
    }
  }
  if (best_index >= queue_.size()) return -1;
  int64_t id = queue_[best_index];
  queue_.erase(queue_.begin() + static_cast<long>(best_index));
  return id;
}

void Frontend::Finish(Slot* slot, RequestState state, Status status) {
  slot->outcome.state = state;
  slot->outcome.terminal = true;
  slot->outcome.status = std::move(status);
  slot->outcome.finished_at = clock_->Now();
  ++completed_;
  switch (state) {
    case RequestState::kFailed:
      failed_->Add();
      break;
    case RequestState::kCancelled:
      cancelled_->Add();
      break;
    default:
      completed_counter_->Add();
      break;
  }
  done_cv_.notify_all();
}

void Frontend::DispatcherLoop() {
  while (true) {
    Slot* slot = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      int64_t id = PopNext();
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      if (id < 0) continue;
      slot = slots_[id].get();
      if (slot->cancel_requested) {
        Finish(slot, RequestState::kCancelled,
               Status::FailedPrecondition("cancelled while queued"));
        continue;
      }
      slot->outcome.state = RequestState::kExecuting;
      slot->outcome.started_at = clock_->Now();
    }

    // --- cache admission (outside the lock) ---------------------------
    // Exactly one concurrent request per key proceeds to an IDL server;
    // identical requests either hit a finished entry or follow the
    // in-flight leader.
    ProductCache::Ticket ticket;
    if (product_cache_ != nullptr) {
      TraceSpan span(slot->request.trace_id, "pl", "cache.admit");
      ticket = product_cache_->Admit(slot->cache_key);
    }
    if (ticket.role == ProductCache::Role::kHit) {
      ServeCached(slot, std::move(ticket.hit));
      continue;
    }
    if (ticket.role == ProductCache::Role::kFollower) {
      Result<ProductCache::CachedProduct> shared =
          [&]() -> Result<ProductCache::CachedProduct> {
        ScopedTimer timer(execute_us_);
        TraceSpan span(slot->request.trace_id, "pl", "cache.await");
        return product_cache_->Await(ticket);
      }();
      if (!shared.ok()) {
        // The leader's execution failed; every coalesced waiter fails
        // with the leader's status.
        std::lock_guard<std::mutex> lock(mu_);
        Finish(slot, RequestState::kFailed, shared.status());
        continue;
      }
      ServeCached(slot, std::move(shared).value());
      continue;
    }
    bool leader = ticket.role == ProductCache::Role::kLeader;

    // --- execution phase (outside the lock) ---------------------------
    std::vector<IdlServerManager*> managers = directory_->OnlineManagers();
    if (managers.empty()) {
      if (leader) {
        product_cache_->CompleteFailure(
            ticket, Status::Unavailable("no processing services online"));
      }
      std::lock_guard<std::mutex> lock(mu_);
      Finish(slot, RequestState::kFailed,
             Status::Unavailable("no processing services online"));
      continue;
    }
    size_t pick =
        dispatch_counter_.fetch_add(1, std::memory_order_relaxed) %
        managers.size();
    // Prefer a manager with an idle interpreter (least-loaded fallback to
    // round-robin).
    IdlServerManager* manager = managers[pick];
    for (size_t i = 0; i < managers.size(); ++i) {
      if (managers[(pick + i) % managers.size()]->idle_servers() > 0) {
        manager = managers[(pick + i) % managers.size()];
        break;
      }
    }

    Micros exec_start = clock_->Now();
    auto wall_start = std::chrono::steady_clock::now();
    Result<analysis::AnalysisProduct> product =
        [&]() -> Result<analysis::AnalysisProduct> {
      ScopedTimer timer(execute_us_);
      TraceSpan span(slot->request.trace_id, "pl", "execute");
      return manager->Invoke(slot->request.routine, slot->request.photons,
                             slot->request.params);
    }();
    Micros exec_end = clock_->Now();
    // GDSF cost of this product: whichever of virtual and wall time
    // actually advanced during the execution (testbeds charge the virtual
    // clock, live interpreters burn wall time).
    double cost_seconds = std::max(
        static_cast<double>(exec_end - exec_start) / kMicrosPerSecond,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count());

    if (!product.ok()) {
      // Failure publishes to every coalesced waiter and caches nothing:
      // a crashed execution must not poison the cache.
      if (leader) product_cache_->CompleteFailure(ticket, product.status());
      std::lock_guard<std::mutex> lock(mu_);
      Finish(slot, RequestState::kFailed, product.status());
      continue;
    }
    // Feed the predictor with the observed rate.
    {
      auto registry = analysis::CreateStandardRegistry();
      const analysis::AnalysisRoutine* routine =
          registry->Get(slot->request.routine);
      if (routine != nullptr && exec_end > exec_start) {
        predictor_->Observe(
            slot->request.routine,
            routine->EstimateWorkUnits(slot->request.photons.size(),
                                       slot->request.params),
            static_cast<double>(exec_end - exec_start) / kMicrosPerSecond);
      }
    }

    // --- delivery phase ------------------------------------------------
    bool cancelled = false;
    {
      ScopedTimer timer(deliver_us_);
      TraceSpan span(slot->request.trace_id, "pl", "deliver");
      std::lock_guard<std::mutex> lock(mu_);
      if (slot->cancel_requested) {
        // Cancellation cleanup: discard the product before commit.
        Finish(slot, RequestState::kCancelled,
               Status::FailedPrecondition("cancelled before commit"));
        cancelled = true;
      } else {
        slot->outcome.product = std::move(product).value();
        slot->outcome.state = RequestState::kDelivered;
      }
    }
    if (cancelled) {
      // The execution itself succeeded; admit the product (never
      // committed -> ana 0) so waiters and future hits still benefit.
      if (leader) {
        product_cache_->CompleteSuccess(ticket, product.value(),
                                        cost_seconds, 0);
      }
      continue;
    }

    // --- commit phase ----------------------------------------------------
    if (slot->request.skip_commit || !committer_) {
      if (leader) {
        product_cache_->CompleteSuccess(ticket, slot->outcome.product,
                                        cost_seconds, 0);
      }
      std::lock_guard<std::mutex> lock(mu_);
      Finish(slot, RequestState::kDelivered, Status::Ok());
      continue;
    }
    Result<int64_t> ana_id = [&]() -> Result<int64_t> {
      ScopedTimer timer(commit_us_);
      TraceSpan span(slot->request.trace_id, "pl", "commit");
      return committer_(slot->request, slot->outcome.product);
    }();
    if (leader) {
      // Cache entries share the committed ana id, so a coalesced
      // follower can reuse the row instead of committing a duplicate. A
      // failed commit fails the flight: waiters retry with a fresh
      // leader rather than inherit an uncommitted product.
      if (ana_id.ok()) {
        product_cache_->CompleteSuccess(ticket, slot->outcome.product,
                                        cost_seconds, ana_id.value());
      } else {
        product_cache_->CompleteFailure(ticket, ana_id.status());
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!ana_id.ok()) {
      Finish(slot, RequestState::kFailed, ana_id.status());
    } else {
      slot->outcome.committed_ana_id = ana_id.value();
      Finish(slot, RequestState::kCommitted, Status::Ok());
    }
  }
}

void Frontend::ServeCached(Slot* slot, ProductCache::CachedProduct cached) {
  Result<analysis::AnalysisProduct> decoded =
      [&]() -> Result<analysis::AnalysisProduct> {
    ScopedTimer timer(deliver_us_);
    TraceSpan span(slot->request.trace_id, "pl", "cache.deliver");
    return DecodeProduct(cached.bytes);
  }();
  if (!decoded.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    Finish(slot, RequestState::kFailed, decoded.status());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (slot->cancel_requested) {
      Finish(slot, RequestState::kCancelled,
             Status::FailedPrecondition("cancelled before commit"));
      return;
    }
    slot->outcome.product = std::move(decoded).value();
    slot->outcome.state = RequestState::kDelivered;
  }
  if (cached.ana_id > 0) {
    // The product is already committed (by the leader or an earlier
    // request): share the ana id, no duplicate write-back.
    std::lock_guard<std::mutex> lock(mu_);
    slot->outcome.committed_ana_id = cached.ana_id;
    Finish(slot,
           slot->request.skip_commit ? RequestState::kDelivered
                                     : RequestState::kCommitted,
           Status::Ok());
    return;
  }
  if (slot->request.skip_commit || !committer_) {
    std::lock_guard<std::mutex> lock(mu_);
    Finish(slot, RequestState::kDelivered, Status::Ok());
    return;
  }
  Result<int64_t> ana_id = [&]() -> Result<int64_t> {
    ScopedTimer timer(commit_us_);
    TraceSpan span(slot->request.trace_id, "pl", "commit");
    return committer_(slot->request, slot->outcome.product);
  }();
  std::lock_guard<std::mutex> lock(mu_);
  if (!ana_id.ok()) {
    Finish(slot, RequestState::kFailed, ana_id.status());
  } else {
    slot->outcome.committed_ana_id = ana_id.value();
    Finish(slot, RequestState::kCommitted, Status::Ok());
  }
}

RequestOutcome Frontend::Wait(int64_t request_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = slots_.find(request_id);
  if (it == slots_.end()) {
    RequestOutcome outcome;
    outcome.state = RequestState::kFailed;
    outcome.status = Status::NotFound(
        StrFormat("request %lld", static_cast<long long>(request_id)));
    return outcome;
  }
  Slot* slot = it->second.get();
  done_cv_.wait(lock, [slot] { return slot->outcome.terminal; });
  return slot->outcome;
}

Status Frontend::Cancel(int64_t request_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(request_id);
  if (it == slots_.end()) {
    return Status::NotFound(
        StrFormat("request %lld", static_cast<long long>(request_id)));
  }
  it->second->cancel_requested = true;
  return Status::Ok();
}

Result<RequestState> Frontend::GetState(int64_t request_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(request_id);
  if (it == slots_.end()) {
    return Status::NotFound(
        StrFormat("request %lld", static_cast<long long>(request_id)));
  }
  return it->second->outcome.state;
}

}  // namespace hedc::pl
