// PL front end (§5.1): primary controller of sessions and requests,
// dispatch and priority scheduling onto IDL server managers; global
// directory of processing services; duration predictor for the
// estimation phase.
//
// Every request follows the 4-phase workflow:
//   Estimation (optional, returns immediately with an execution plan) ->
//   Execution (sync or async) -> Delivery -> Commit (write-back via DM).
// Phases execute in order; a request can be cancelled at any time and
// induces cleanup for the current phase.
#ifndef HEDC_PL_FRONTEND_H_
#define HEDC_PL_FRONTEND_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/clock.h"
#include "core/metrics.h"
#include "core/status.h"
#include "pl/product_cache.h"
#include "pl/server_manager.h"

namespace hedc::pl {

// Global directory (§5.1): "a directory of all services related to the
// processing logic. There is one instance of this service."
class GlobalDirectory {
 public:
  struct Entry {
    std::string name;
    IdlServerManager* manager = nullptr;
    std::string location;  // host:port style label
    bool online = true;
  };

  void Register(const std::string& name, IdlServerManager* manager,
                const std::string& location);
  Status SetOnline(const std::string& name, bool online);
  // All online managers.
  std::vector<IdlServerManager*> OnlineManagers() const;
  std::vector<Entry> List() const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

// Per-routine throughput model: EWMA of observed work-units/second,
// seeded by a default rate. Drives the estimation phase ("We use a
// simple predictor to inform the user about the duration of the
// subsequent execution phase").
class DurationPredictor {
 public:
  explicit DurationPredictor(double default_units_per_second = 1e6,
                             double alpha = 0.3)
      : default_rate_(default_units_per_second), alpha_(alpha) {}

  double PredictSeconds(const std::string& routine, double work_units) const;
  void Observe(const std::string& routine, double work_units,
               double seconds);

 private:
  double default_rate_;
  double alpha_;
  mutable std::mutex mu_;
  std::map<std::string, double> rates_;  // units/second
};

enum class RequestState {
  kQueued,
  kEstimated,
  kExecuting,
  kDelivered,
  kCommitted,
  kFailed,
  kCancelled,
};

const char* RequestStateName(RequestState state);

struct ProcessingRequest {
  int64_t request_id = 0;
  // Request-tracing id carried through all four phases; Submit defaults it
  // to the request id when the caller leaves it 0.
  int64_t trace_id = 0;
  int priority = 0;  // higher runs first
  int64_t hle_id = 0;
  std::string routine;
  analysis::AnalysisParams params;
  rhessi::PhotonList photons;
  // Lineage of `photons`: the raw units (and calibration versions) they
  // were derived from. Feeds the product-cache key; leave empty to opt the
  // request out of caching (no lineage -> not content-addressable).
  std::vector<InputUnit> input_units;
  bool skip_estimation = false;
  bool skip_commit = false;
};

struct RequestOutcome {
  RequestState state = RequestState::kQueued;
  bool terminal = false;  // no further transitions will occur
  Status status;
  analysis::AnalysisProduct product;
  double predicted_seconds = 0;
  Micros submitted_at = 0;
  Micros started_at = 0;
  Micros finished_at = 0;
  int64_t committed_ana_id = 0;
};

class Frontend {
 public:
  // The commit phase delegate: persists the product (ANA tuple + image
  // file) and returns the new ana id. Wired to the DM by the caller.
  using Committer = std::function<Result<int64_t>(
      const ProcessingRequest&, const analysis::AnalysisProduct&)>;

  struct Options {
    size_t dispatcher_threads = 2;
    size_t max_queue = 1024;
  };

  Frontend(GlobalDirectory* directory, DurationPredictor* predictor,
           Clock* clock, Committer committer, Options options);
  ~Frontend();

  // Estimation phase, standalone: returns the predicted execution
  // seconds without running anything ("This phase returns immediately").
  Result<double> Estimate(const ProcessingRequest& request);

  // Enqueues a request (estimation folded in unless skipped); returns the
  // request id.
  Result<int64_t> Submit(ProcessingRequest request);

  // Blocks until the request reaches a terminal state.
  RequestOutcome Wait(int64_t request_id);

  // Cancels a queued request (an executing one completes its phase and
  // is then discarded before commit).
  Status Cancel(int64_t request_id);

  // Snapshot of a request's current state.
  Result<RequestState> GetState(int64_t request_id) const;

  // Attaches the derived-product cache (borrowed; may be null to run
  // uncached). Setup-time call: must happen before the first Submit.
  void set_product_cache(ProductCache* cache) { product_cache_ = cache; }
  // The attached cache (null when uncached) — servlets reuse it for
  // per-resolution view prefixes.
  ProductCache* product_cache() const { return product_cache_; }

  int64_t completed() const { return completed_; }

 private:
  struct Slot {
    ProcessingRequest request;
    RequestOutcome outcome;
    ProductCacheKey cache_key;  // computed once at Submit
    bool cancel_requested = false;
  };

  void DispatcherLoop();
  // Pops the highest-priority queued request (FIFO within a priority).
  int64_t PopNext();
  void Finish(Slot* slot, RequestState state, Status status);
  // Delivery + commit for a request satisfied from the product cache (a
  // direct hit or a coalesced follower): decode, honour cancellation,
  // reuse the shared ana id or run this request's own commit.
  void ServeCached(Slot* slot, ProductCache::CachedProduct cached);

  GlobalDirectory* directory_;
  DurationPredictor* predictor_;
  Clock* clock_;
  Committer committer_;
  Options options_;
  ProductCache* product_cache_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable done_cv_;
  std::map<int64_t, std::unique_ptr<Slot>> slots_;
  std::deque<int64_t> queue_;
  bool shutdown_ = false;
  int64_t next_request_id_ = 1;
  int64_t completed_ = 0;
  std::vector<std::thread> dispatchers_;
  std::atomic<size_t> dispatch_counter_{0};

  // pl.* metrics: per-phase latencies, request outcomes, queue depth.
  Histogram* estimate_us_;
  Histogram* execute_us_;
  Histogram* deliver_us_;
  Histogram* commit_us_;
  Counter* submitted_;
  Counter* completed_counter_;
  Counter* failed_;
  Counter* cancelled_;
  Gauge* queue_depth_;
};

}  // namespace hedc::pl

#endif  // HEDC_PL_FRONTEND_H_
