#include "pl/product_cache.h"

#include <algorithm>
#include <utility>

#include "core/bytes.h"
#include "core/content_hash.h"
#include "core/crc32.h"
#include "core/strings.h"
#include "dm/dm.h"

namespace hedc::pl {

// One in-flight execution: the leader fills result/status and flips
// `done`; followers block on `cv`. `waiters` counts followers only.
struct Flight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status = Status::Ok();
  ProductCache::CachedProduct result;
  std::atomic<size_t> waiters{0};
};

ProductCacheKey MakeProductCacheKey(const std::string& routine,
                                    const analysis::AnalysisParams& params,
                                    std::vector<InputUnit> inputs) {
  ProductCacheKey key;
  key.routine = routine;
  if (inputs.empty()) return key;  // no lineage -> not content-addressable
  std::sort(inputs.begin(), inputs.end(),
            [](const InputUnit& a, const InputUnit& b) {
              return a.unit_id < b.unit_id;
            });
  std::string canonical = "routine=" + routine;
  canonical += ";params=" + params.Canonical();
  canonical += ";units=";
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) canonical += ",";
    canonical += std::to_string(inputs[i].unit_id) + ":v" +
                 std::to_string(inputs[i].calibration_version);
  }
  key.inputs = std::move(inputs);
  key.canonical = std::move(canonical);
  key.hash = Fnv1a64(key.canonical);
  key.valid = true;
  return key;
}

namespace {

constexpr uint32_t kProductMagic = 0x48504331;  // "HPC1"

}  // namespace

std::vector<uint8_t> EncodeProduct(const analysis::AnalysisProduct& product) {
  ByteBuffer buf;
  buf.PutU32(kProductMagic);
  buf.PutString(product.routine);
  buf.PutVarint(product.metadata.size());
  for (const auto& [k, v] : product.metadata) {
    buf.PutString(k);
    buf.PutString(v);
  }
  buf.PutU8(product.image.has_value() ? 1 : 0);
  if (product.image.has_value()) {
    buf.PutVarint(product.image->width);
    buf.PutVarint(product.image->height);
    buf.PutVarint(product.image->pixels.size());
    for (double p : product.image->pixels) buf.PutF64(p);
  }
  buf.PutU8(product.series.has_value() ? 1 : 0);
  if (product.series.has_value()) {
    buf.PutVarint(product.series->x.size());
    for (double x : product.series->x) buf.PutF64(x);
    buf.PutVarint(product.series->y.size());
    for (double y : product.series->y) buf.PutF64(y);
  }
  buf.PutString(product.log);
  buf.PutVarint(product.rendered.size());
  buf.PutBytes(product.rendered.data(), product.rendered.size());
  uint32_t crc = Crc32(buf.data());
  buf.PutU32(crc);
  return buf.TakeData();
}

Result<analysis::AnalysisProduct> DecodeProduct(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < sizeof(uint32_t) * 2) {
    return Status::Corruption("cached product too short");
  }
  size_t payload = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  for (size_t i = 0; i < sizeof(uint32_t); ++i) {
    stored_crc |= static_cast<uint32_t>(bytes[payload + i]) << (8 * i);
  }
  if (Crc32(bytes.data(), payload) != stored_crc) {
    return Status::Corruption("cached product CRC mismatch");
  }
  ByteReader reader(bytes.data(), payload);
  uint32_t magic = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kProductMagic) {
    return Status::Corruption("cached product bad magic");
  }
  analysis::AnalysisProduct product;
  HEDC_RETURN_IF_ERROR(reader.GetString(&product.routine));
  uint64_t n_meta = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&n_meta));
  if (n_meta > reader.remaining()) {
    return Status::Corruption("cached product metadata count");
  }
  for (uint64_t i = 0; i < n_meta; ++i) {
    std::string k, v;
    HEDC_RETURN_IF_ERROR(reader.GetString(&k));
    HEDC_RETURN_IF_ERROR(reader.GetString(&v));
    product.metadata.emplace(std::move(k), std::move(v));
  }
  uint8_t has_image = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU8(&has_image));
  if (has_image != 0) {
    analysis::Image image;
    uint64_t w = 0, h = 0, n = 0;
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&w));
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&h));
    HEDC_RETURN_IF_ERROR(reader.GetVarint(&n));
    if (n > reader.remaining() / sizeof(double)) {
      return Status::Corruption("cached product image length");
    }
    image.width = w;
    image.height = h;
    image.pixels.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      HEDC_RETURN_IF_ERROR(reader.GetF64(&image.pixels[i]));
    }
    product.image = std::move(image);
  }
  uint8_t has_series = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU8(&has_series));
  if (has_series != 0) {
    analysis::Series series;
    for (std::vector<double>* axis : {&series.x, &series.y}) {
      uint64_t n = 0;
      HEDC_RETURN_IF_ERROR(reader.GetVarint(&n));
      if (n > reader.remaining() / sizeof(double)) {
        return Status::Corruption("cached product series length");
      }
      axis->resize(n);
      for (uint64_t i = 0; i < n; ++i) {
        HEDC_RETURN_IF_ERROR(reader.GetF64(&(*axis)[i]));
      }
    }
    product.series = std::move(series);
  }
  HEDC_RETURN_IF_ERROR(reader.GetString(&product.log));
  uint64_t n_rendered = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&n_rendered));
  if (n_rendered > reader.remaining()) {
    return Status::Corruption("cached product rendered length");
  }
  product.rendered.resize(n_rendered);
  if (n_rendered > 0) {
    HEDC_RETURN_IF_ERROR(
        reader.GetBytes(product.rendered.data(), n_rendered));
  }
  return product;
}

ProductCache::Options ProductCache::Options::FromConfig(
    const Config& config) {
  Options options;
  options.enabled = config.GetBool("product_cache.enabled", true);
  options.capacity_bytes = static_cast<uint64_t>(config.GetInt(
      "product_cache.capacity_bytes",
      static_cast<int64_t>(options.capacity_bytes)));
  return options;
}

ProductCache::ProductCache(dm::DataManager* dm, Options options)
    : dm_(dm), options_(std::move(options)) {
  MetricsRegistry* metrics = MetricsRegistry::Default();
  const std::string& p = options_.metric_prefix;
  hits_ = metrics->GetCounter(p + ".hits");
  misses_ = metrics->GetCounter(p + ".misses");
  coalesced_ = metrics->GetCounter(p + ".coalesced");
  evictions_ = metrics->GetCounter(p + ".evictions");
  invalidations_ = metrics->GetCounter(p + ".invalidations");
  bytes_gauge_ = metrics->GetGauge(p + ".bytes");
  entries_gauge_ = metrics->GetGauge(p + ".entries");
}

double ProductCache::PriorityFor(double cost_seconds,
                                 uint64_t size_bytes) const {
  // Cost in microseconds keeps the value term comparable to L after many
  // evictions; size floor avoids division blow-ups on tiny products.
  double value = (std::max(cost_seconds, 0.0) * 1e6 + 1.0) /
                 static_cast<double>(std::max<uint64_t>(size_bytes, 1));
  return gdsf_clock_ + value;
}

std::vector<std::pair<uint64_t, int64_t>> ProductCache::EvictForLocked(
    uint64_t incoming) {
  std::vector<std::pair<uint64_t, int64_t>> victims;
  while (!entries_.empty() &&
         bytes_total_ + incoming > options_.capacity_bytes) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.priority < victim->second.priority) victim = it;
    }
    gdsf_clock_ = std::max(gdsf_clock_, victim->second.priority);
    bytes_total_ -= std::min(bytes_total_, victim->second.size_bytes);
    victims.emplace_back(victim->first, victim->second.item_id);
    entries_.erase(victim);
  }
  return victims;
}

Status ProductCache::LoadFromDm() {
  if (dm_ == nullptr || !options_.persist) return Status::Ok();
  HEDC_ASSIGN_OR_RETURN(db::ResultSet rows,
                        dm_->io().Query(dm::QuerySpec("product_cache")));
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < rows.num_rows(); ++i) {
    uint64_t hash =
        static_cast<uint64_t>(rows.Get(i, "cache_key").AsInt());
    Entry entry;
    entry.item_id = rows.Get(i, "item_id").AsInt();
    entry.size_bytes =
        static_cast<uint64_t>(rows.Get(i, "size_bytes").AsInt());
    entry.cost_seconds = rows.Get(i, "cost_seconds").AsReal();
    entry.ana_id = rows.Get(i, "ana_id").AsInt();
    entry.routine = rows.Get(i, "routine").AsText();
    entry.parameters = rows.Get(i, "parameters").AsText();
    entry.versions_csv = rows.Get(i, "calibration_versions").AsText();
    for (const std::string& piece :
         Split(rows.Get(i, "unit_ids").AsText(), ',')) {
      int64_t unit_id = 0;
      if (ParseInt64(piece, &unit_id)) {
        entry.unit_ids.push_back(unit_id);
      }
    }
    entry.priority = PriorityFor(entry.cost_seconds, entry.size_bytes);
    entry.resident = false;  // bytes load lazily on first hit
    if (entry.item_id >= BlobItemId(next_blob_seq_)) {
      next_blob_seq_ = entry.item_id - BlobItemId(0) + 1;
    }
    bytes_total_ += entry.size_bytes;
    entries_[hash] = std::move(entry);
  }
  bytes_gauge_->Set(static_cast<int64_t>(bytes_total_));
  entries_gauge_->Set(static_cast<int64_t>(entries_.size()));
  return Status::Ok();
}

bool ProductCache::Peek(const ProductCacheKey& key) const {
  if (!options_.enabled || !key.valid) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key.hash) > 0 || flights_.count(key.hash) > 0;
}

Result<std::vector<uint8_t>> ProductCache::LoadBlob(int64_t item_id) {
  if (dm_ == nullptr) return Status::NotFound("no DM attached");
  // Streamed read: cache delivery reuses the chunked io path instead of
  // a whole-file slurp inside the archive adapter.
  std::vector<uint8_t> bytes;
  HEDC_ASSIGN_OR_RETURN(
      uint64_t total,
      dm_->io().StreamItemFile(
          item_id, [&bytes](uint64_t, const uint8_t* p, size_t n) {
            bytes.insert(bytes.end(), p, p + n);
            return Status::Ok();
          }));
  (void)total;
  return bytes;
}

ProductCache::Ticket ProductCache::Admit(const ProductCacheKey& key) {
  Ticket ticket;
  ticket.key = key;
  if (!options_.enabled || !key.valid) return ticket;  // kDisabled
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = entries_.find(key.hash);
    if (it != entries_.end()) {
      if (!it->second.resident) {
        // Lazy blob load (restart recovery): drop the lock for the IO.
        int64_t item_id = it->second.item_id;
        uint64_t expected = it->second.size_bytes;
        lock.unlock();
        Result<std::vector<uint8_t>> bytes = LoadBlob(item_id);
        lock.lock();
        it = entries_.find(key.hash);
        if (it == entries_.end()) continue;  // invalidated meanwhile
        if (!bytes.ok() || bytes.value().size() != expected) {
          // Unreadable or resized blob: self-heal by dropping the entry
          // and re-admitting as a miss.
          bytes_total_ -= std::min(bytes_total_, it->second.size_bytes);
          int64_t stale_item = it->second.item_id;
          entries_.erase(it);
          bytes_gauge_->Set(static_cast<int64_t>(bytes_total_));
          entries_gauge_->Set(static_cast<int64_t>(entries_.size()));
          lock.unlock();
          DeletePersisted(key.hash, stale_item);
          lock.lock();
          continue;
        }
        it->second.bytes = std::move(bytes).value();
        it->second.resident = true;
      }
      // GDSF frequency term: every hit re-floats the entry above the
      // current L.
      it->second.priority =
          PriorityFor(it->second.cost_seconds, it->second.size_bytes);
      ticket.role = Role::kHit;
      ticket.hit.bytes = it->second.bytes;
      ticket.hit.ana_id = it->second.ana_id;
      ticket.hit.cost_seconds = it->second.cost_seconds;
      hits_->Add();
      return ticket;
    }
    auto flight_it = flights_.find(key.hash);
    if (flight_it != flights_.end()) {
      ticket.role = Role::kFollower;
      ticket.flight = flight_it->second;
      ticket.flight->waiters.fetch_add(1, std::memory_order_relaxed);
      coalesced_->Add();
      return ticket;
    }
    ticket.role = Role::kLeader;
    ticket.flight = std::make_shared<Flight>();
    flights_[key.hash] = ticket.flight;
    misses_->Add();
    return ticket;
  }
}

Result<ProductCache::CachedProduct> ProductCache::Await(
    const Ticket& ticket) {
  if (ticket.role != Role::kFollower || ticket.flight == nullptr) {
    return Status::FailedPrecondition("not a follower ticket");
  }
  Flight* flight = ticket.flight.get();
  std::unique_lock<std::mutex> lock(flight->mu);
  flight->cv.wait(lock, [flight] { return flight->done; });
  if (!flight->status.ok()) return flight->status;
  return flight->result;
}

void ProductCache::PublishFlight(const Ticket& ticket, Status status,
                                 CachedProduct result) {
  Flight* flight = ticket.flight.get();
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->status = std::move(status);
    flight->result = std::move(result);
    flight->done = true;
  }
  flight->cv.notify_all();
}

Result<int64_t> ProductCache::Persist(const ProductCacheKey& key,
                                      Entry* entry) {
  int64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_blob_seq_++;
  }
  int64_t item_id = BlobItemId(seq);
  HEDC_RETURN_IF_ERROR(dm_->io().WriteItemFile(
      item_id, options_.blob_archive_id, "pcache", entry->bytes));
  std::string unit_csv, version_csv;
  for (size_t i = 0; i < key.inputs.size(); ++i) {
    if (i > 0) {
      unit_csv += ",";
      version_csv += ",";
    }
    unit_csv += std::to_string(key.inputs[i].unit_id);
    version_csv += std::to_string(key.inputs[i].calibration_version);
  }
  // Re-persisting a key after invalidate/recompute replaces the old row.
  dm_->io().Update("product_cache",
                   "DELETE FROM product_cache WHERE cache_key = ?",
                   {db::Value::Int(static_cast<int64_t>(key.hash))});
  HEDC_ASSIGN_OR_RETURN(
      db::ResultSet ins,
      dm_->io().Update(
          "product_cache",
          "INSERT INTO product_cache VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
          {db::Value::Int(static_cast<int64_t>(key.hash)),
           db::Value::Int(item_id), db::Value::Text(key.routine),
           db::Value::Text(entry->parameters), db::Value::Text(unit_csv),
           db::Value::Text(version_csv),
           db::Value::Int(static_cast<int64_t>(entry->size_bytes)),
           db::Value::Real(entry->cost_seconds),
           db::Value::Int(entry->ana_id),
           db::Value::Real(static_cast<double>(dm_->clock()->Now()) /
                           kMicrosPerSecond)}));
  (void)ins;
  return item_id;
}

void ProductCache::DeletePersisted(uint64_t hash, int64_t item_id) {
  if (dm_ == nullptr || !options_.persist) return;
  dm_->io().Update("product_cache",
                   "DELETE FROM product_cache WHERE cache_key = ?",
                   {db::Value::Int(static_cast<int64_t>(hash))});
  if (item_id != 0) dm_->io().DeleteItemFile(item_id);
}

void ProductCache::CompleteSuccess(const Ticket& ticket,
                                   const analysis::AnalysisProduct& product,
                                   double cost_seconds, int64_t ana_id) {
  if (ticket.role != Role::kLeader || ticket.flight == nullptr) return;
  Entry entry;
  entry.bytes = EncodeProduct(product);
  entry.size_bytes = entry.bytes.size();
  entry.cost_seconds = cost_seconds;
  entry.ana_id = ana_id;
  entry.resident = true;
  entry.routine = ticket.key.routine;
  entry.parameters = ticket.key.canonical;
  std::string versions;
  for (size_t i = 0; i < ticket.key.inputs.size(); ++i) {
    if (i > 0) versions += ",";
    versions += std::to_string(ticket.key.inputs[i].calibration_version);
    entry.unit_ids.push_back(ticket.key.inputs[i].unit_id);
  }
  entry.versions_csv = versions;

  CachedProduct shared;
  shared.bytes = entry.bytes;
  shared.ana_id = ana_id;
  shared.cost_seconds = cost_seconds;

  bool cacheable = entry.size_bytes <= options_.capacity_bytes;
  if (cacheable && dm_ != nullptr && options_.persist) {
    Result<int64_t> item = Persist(ticket.key, &entry);
    // Persistence failure degrades to a memory-only entry.
    if (item.ok()) entry.item_id = item.value();
  }

  std::vector<std::pair<uint64_t, int64_t>> victims;
  if (cacheable) {
    std::lock_guard<std::mutex> lock(mu_);
    victims = EvictForLocked(entry.size_bytes);
    entry.priority = PriorityFor(entry.cost_seconds, entry.size_bytes);
    auto existing = entries_.find(ticket.key.hash);
    if (existing != entries_.end()) {
      bytes_total_ -= std::min(bytes_total_, existing->second.size_bytes);
    }
    bytes_total_ += entry.size_bytes;
    entries_[ticket.key.hash] = std::move(entry);
    flights_.erase(ticket.key.hash);
    bytes_gauge_->Set(static_cast<int64_t>(bytes_total_));
    entries_gauge_->Set(static_cast<int64_t>(entries_.size()));
  } else {
    // Larger than the whole cache: deliver but do not admit.
    std::lock_guard<std::mutex> lock(mu_);
    flights_.erase(ticket.key.hash);
  }
  for (const auto& [hash, item_id] : victims) {
    evictions_->Add();
    DeletePersisted(hash, item_id);
  }
  PublishFlight(ticket, Status::Ok(), std::move(shared));
}

void ProductCache::CompleteFailure(const Ticket& ticket, Status status) {
  if (ticket.role != Role::kLeader || ticket.flight == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    flights_.erase(ticket.key.hash);
  }
  PublishFlight(ticket, std::move(status), CachedProduct{});
}

int64_t ProductCache::InvalidateUnit(int64_t unit_id) {
  std::vector<std::pair<uint64_t, int64_t>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      bool depends = std::find(it->second.unit_ids.begin(),
                               it->second.unit_ids.end(),
                               unit_id) != it->second.unit_ids.end();
      if (depends) {
        bytes_total_ -= std::min(bytes_total_, it->second.size_bytes);
        victims.emplace_back(it->first, it->second.item_id);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    bytes_gauge_->Set(static_cast<int64_t>(bytes_total_));
    entries_gauge_->Set(static_cast<int64_t>(entries_.size()));
  }
  // Memory first, then the durable row, then the blob: a racing reader
  // either hits the old entry wholesale or misses cleanly; it can never
  // resolve a directory row whose blob is gone.
  for (const auto& [hash, item_id] : victims) {
    invalidations_->Add();
    DeletePersisted(hash, item_id);
  }
  return static_cast<int64_t>(victims.size());
}

int64_t ProductCache::InvalidateAna(int64_t ana_id) {
  if (ana_id == 0) return 0;
  std::vector<std::pair<uint64_t, int64_t>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.ana_id == ana_id) {
        bytes_total_ -= std::min(bytes_total_, it->second.size_bytes);
        victims.emplace_back(it->first, it->second.item_id);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    bytes_gauge_->Set(static_cast<int64_t>(bytes_total_));
    entries_gauge_->Set(static_cast<int64_t>(entries_.size()));
  }
  for (const auto& [hash, item_id] : victims) {
    invalidations_->Add();
    DeletePersisted(hash, item_id);
  }
  return static_cast<int64_t>(victims.size());
}

size_t ProductCache::WaitersFor(const ProductCacheKey& key) const {
  if (!key.valid) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flights_.find(key.hash);
  if (it == flights_.end()) return 0;
  return it->second->waiters.load(std::memory_order_relaxed);
}

uint64_t ProductCache::bytes_cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_total_;
}

size_t ProductCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace hedc::pl
