// Simulated IDL interpreter server.
//
// Stand-in for the "IDL servers (version 5.4)" (§2.3): an external,
// failure-prone interpreter process executing SSW-style routines. The PL
// manages it from outside: start, stop, restart, synchronous invocation
// with timeout, crash injection ("implements error handling (timeout,
// resource drain)", §5.1). Computation is real — the registered routine
// runs — while an optional speed factor models slower 2003 hosts by
// charging extra virtual time to a Clock.
#ifndef HEDC_PL_IDL_SERVER_H_
#define HEDC_PL_IDL_SERVER_H_

#include <atomic>
#include <memory>
#include <string>

#include "analysis/routine.h"
#include "core/clock.h"
#include "core/rng.h"
#include "core/status.h"
#include "rhessi/photon.h"

namespace hedc::pl {

enum class ServerState { kStopped, kIdle, kBusy, kCrashed };

const char* ServerStateName(ServerState state);

class IdlServer {
 public:
  struct Options {
    // Virtual work-unit throughput (units/second) charged to `clock`.
    // <= 0 disables virtual-time charging (real compute time only).
    double work_units_per_second = 0;
    // Probability that an invocation crashes the interpreter.
    double crash_probability = 0;
    // Invocations taking more virtual work than this fail with kTimeout
    // (<=0 disables). Expressed in work units.
    double timeout_work_units = 0;
    uint64_t fault_seed = 42;
  };

  IdlServer(std::string name, const analysis::RoutineRegistry* registry,
            Clock* clock, Options options);

  const std::string& name() const { return name_; }
  ServerState state() const { return state_; }

  Status Start();
  void Stop();
  // Restart clears a crashed state ("Multiple native IDL interpreters are
  // managed (start, stop, restart)").
  Status Restart();

  // Synchronous invocation. Fails kUnavailable if the server is not idle
  // or crashed mid-call; kTimeout on exceeding the work budget; kNotFound
  // for unknown routines.
  Result<analysis::AnalysisProduct> Invoke(const std::string& routine,
                                           const rhessi::PhotonList& photons,
                                           const analysis::AnalysisParams& params);

  int64_t invocations() const { return invocations_; }
  int64_t crashes() const { return crashes_; }

 private:
  std::string name_;
  const analysis::RoutineRegistry* registry_;
  Clock* clock_;
  Options options_;
  std::atomic<ServerState> state_{ServerState::kStopped};
  Rng fault_rng_;
  int64_t invocations_ = 0;
  int64_t crashes_ = 0;
};

}  // namespace hedc::pl

#endif  // HEDC_PL_IDL_SERVER_H_
