// Content-addressed derived-product cache with single-flight coalescing.
//
// HEDC's central workload claim is that users re-request the same derived
// products: Table 1's C-cached configuration cuts a 150-request histogram
// run from 960s to 438s purely by not recomputing them. This module is
// that cache as a first-class subsystem of the PL:
//
//  * Content addressing. Entries are keyed by a 64-bit FNV-1a over the
//    canonical form of (routine name, canonicalized parameters, input
//    raw-unit ids AND their calibration versions). Recalibrating a unit
//    changes the version and therefore the key — a post-recalibration
//    request can never match a pre-recalibration product, independent of
//    explicit invalidation.
//
//  * Single-flight coalescing. The first miss for a key becomes the
//    leader and runs the one IDL execution; concurrent identical misses
//    become followers and block on the leader's flight. A failed or
//    crashed execution fails every waiter and inserts nothing — failures
//    never poison the cache.
//
//  * Durability through the DM. Successful entries are encoded
//    (ByteBuffer + CRC-32 trailer), stored as archive blobs in their own
//    item-id space, registered with the name mapper, and directoried in
//    the operational `product_cache` table, so a restarted PL recovers
//    its cache index (LoadFromDm) and the recalibration/purge workflows
//    can invalidate by lineage.
//
//  * GDSF eviction. Cost-aware greedy-dual-size-frequency: an entry's
//    priority is L + cost_seconds/size_bytes (cost measured at execution
//    time); eviction removes the minimum and raises the global L to it,
//    so cheap-to-recompute bulky entries go first and frequently-hit
//    entries keep floating above L.
#ifndef HEDC_PL_PRODUCT_CACHE_H_
#define HEDC_PL_PRODUCT_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/routine.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/status.h"

namespace hedc::dm {
class DataManager;
}  // namespace hedc::dm

namespace hedc::pl {

// One input raw unit of a processing request, identified by id and the
// calibration version its photons were derived under. Part of the cache
// key: same unit at a different calibration is different content.
struct InputUnit {
  int64_t unit_id = 0;
  int calibration_version = 0;
};

struct ProductCacheKey {
  bool valid = false;
  uint64_t hash = 0;          // FNV-1a of `canonical`
  std::string canonical;      // routine=..;params=..;units=id:vN,...
  std::string routine;
  std::vector<InputUnit> inputs;  // sorted by unit_id
};

// Builds the canonical key. Parameters canonicalize through
// AnalysisParams::Canonical() (sorted map), inputs sort by unit id, so
// the hash is independent of parameter and input order. An empty input
// list yields an invalid key: content addressing requires lineage.
ProductCacheKey MakeProductCacheKey(const std::string& routine,
                                    const analysis::AnalysisParams& params,
                                    std::vector<InputUnit> inputs);

// --- product codec --------------------------------------------------------
// Self-contained binary encoding of an AnalysisProduct (magic + payload +
// CRC-32 trailer). Decode verifies both and reports kCorruption, so a
// damaged blob fails the request instead of serving garbage.
std::vector<uint8_t> EncodeProduct(const analysis::AnalysisProduct& product);
Result<analysis::AnalysisProduct> DecodeProduct(
    const std::vector<uint8_t>& bytes);

class ProductCache {
 public:
  struct Options {
    bool enabled = true;
    uint64_t capacity_bytes = 64ull << 20;
    // Archive holding the encoded blobs (persisted entries only).
    int64_t blob_archive_id = 1;
    // Persist entries through the DM (product_cache table + blob). Off
    // for purely local caches without durable state.
    bool persist = true;
    std::string metric_prefix = "product_cache";

    // Reads product_cache.enabled / product_cache.capacity_bytes.
    static Options FromConfig(const Config& config);
  };

  // What a hit or a completed flight delivers: the encoded product plus
  // the ana id it was committed under (0 = never committed).
  struct CachedProduct {
    std::vector<uint8_t> bytes;
    int64_t ana_id = 0;
    double cost_seconds = 0;
  };

  enum class Role {
    kDisabled,  // cache off or key invalid: run the pre-cache path
    kHit,       // entry served; `hit` is filled
    kLeader,    // run the execution, then CompleteSuccess/CompleteFailure
    kFollower,  // Await() the leader's flight
  };

  struct Ticket {
    Role role = Role::kDisabled;
    ProductCacheKey key;
    CachedProduct hit;  // filled when role == kHit
    std::shared_ptr<struct Flight> flight;
  };

  // `dm` may be null: the cache then runs memory-only (no persistence,
  // no restart recovery). Borrowed pointers must outlive the cache.
  ProductCache(dm::DataManager* dm, Options options);

  // Recovers the entry index from the product_cache table. Blob bytes are
  // loaded lazily on first hit (streamed through the io layer). Call
  // before serving traffic.
  Status LoadFromDm();

  // Estimation-phase probe: true if `key` is cached or in flight (a
  // matching request would be served without a fresh execution). Does not
  // touch hit/miss counters — Admit() is the accounting point.
  bool Peek(const ProductCacheKey& key) const;

  // Admission point, called once per request at the start of the
  // execution phase. Exactly one concurrent caller per key becomes the
  // leader; the rest follow. Counters: kHit -> hits, kLeader -> misses,
  // kFollower -> coalesced.
  Ticket Admit(const ProductCacheKey& key);

  // Follower side: blocks until the leader completes. Returns the shared
  // product or the leader's failure status.
  Result<CachedProduct> Await(const Ticket& ticket);

  // Leader side: publishes the executed product to all waiters and
  // admits it into the cache (evicting to capacity, persisting through
  // the DM). `cost_seconds` is the measured execution time (GDSF cost);
  // `ana_id` the committed ANA (0 if the request skipped commit).
  void CompleteSuccess(const Ticket& ticket,
                       const analysis::AnalysisProduct& product,
                       double cost_seconds, int64_t ana_id);

  // Leader side, failure: fails every waiter with `status` and caches
  // nothing, so a crash cannot poison the cache.
  void CompleteFailure(const Ticket& ticket, Status status);

  // Lineage invalidation (recalibration bumped `unit_id`'s version):
  // drops every entry derived from the unit — memory, DB row and blob.
  // Returns the number invalidated.
  int64_t InvalidateUnit(int64_t unit_id);
  // Purge-workflow hook: drops entries whose product was committed as
  // `ana_id`.
  int64_t InvalidateAna(int64_t ana_id);

  // Introspection for tests/benches: current follower count on `key`'s
  // flight (0 when idle).
  size_t WaitersFor(const ProductCacheKey& key) const;

  bool enabled() const { return options_.enabled; }
  uint64_t bytes_cached() const;
  size_t entry_count() const;
  const Options& options() const { return options_; }

  // Item-id space for cache blobs (raw units own low ids, views 1e9+,
  // ANA images 2e9+, Phoenix 3e9+).
  static int64_t BlobItemId(int64_t seq) { return 4000000000 + seq; }

 private:
  struct Entry {
    int64_t item_id = 0;  // 0 = memory-only (not persisted)
    uint64_t size_bytes = 0;
    double cost_seconds = 0;
    int64_t ana_id = 0;
    std::vector<int64_t> unit_ids;
    double priority = 0;  // GDSF H
    bool resident = false;
    std::vector<uint8_t> bytes;
    std::string routine;
    std::string parameters;
    std::string versions_csv;
  };

  // GDSF priority for an entry under the current global L.
  double PriorityFor(double cost_seconds, uint64_t size_bytes) const;
  // Removes min-priority entries under mu_ until `incoming` fits;
  // returns the victims' (hash, item_id) for out-of-lock blob cleanup.
  std::vector<std::pair<uint64_t, int64_t>> EvictForLocked(
      uint64_t incoming);
  // Persists one entry (blob + directory row); returns the item id.
  Result<int64_t> Persist(const ProductCacheKey& key, Entry* entry);
  void DeletePersisted(uint64_t hash, int64_t item_id);
  Result<std::vector<uint8_t>> LoadBlob(int64_t item_id);
  void PublishFlight(const Ticket& ticket, Status status,
                     CachedProduct result);

  dm::DataManager* dm_;
  Options options_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::unordered_map<uint64_t, std::shared_ptr<Flight>> flights_;
  uint64_t bytes_total_ = 0;  // resident + lazily-loadable persisted bytes
  double gdsf_clock_ = 0;     // GDSF L
  int64_t next_blob_seq_ = 1;

  // <prefix>.* counters/gauges per the issue contract.
  Counter* hits_;
  Counter* misses_;
  Counter* coalesced_;
  Counter* evictions_;
  Counter* invalidations_;
  Gauge* bytes_gauge_;
  Gauge* entries_gauge_;
};

}  // namespace hedc::pl

#endif  // HEDC_PL_PRODUCT_CACHE_H_
