#include "pl/server_manager.h"

namespace hedc::pl {

IdlServerManager::IdlServerManager(std::string host_name, Options options)
    : host_name_(std::move(host_name)), options_(options) {
  workers_ = std::make_unique<ThreadPool>(options_.worker_threads);
  MetricsRegistry* metrics = MetricsRegistry::Default();
  attempts_ = metrics->GetCounter("pl.invoke.attempts");
  retries_ = metrics->GetCounter("pl.invoke.retries");
  failures_ = metrics->GetCounter("pl.invoke.failures");
  restart_counter_ = metrics->GetCounter("pl.interpreter.restarts");
}

void IdlServerManager::CountRestart() {
  restarts_.fetch_add(1, std::memory_order_relaxed);
  restart_counter_->Add();
}

IdlServerManager::~IdlServerManager() { workers_->Shutdown(); }

Status IdlServerManager::AddServer(std::unique_ptr<IdlServer> server) {
  if (server->state() == ServerState::kStopped) {
    HEDC_RETURN_IF_ERROR(server->Start());
  }
  std::lock_guard<std::mutex> lock(mu_);
  servers_.push_back(std::move(server));
  return Status::Ok();
}

Status IdlServerManager::RemoveServer() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i]->state() != ServerState::kBusy) {
      servers_[i]->Stop();
      servers_.erase(servers_.begin() + static_cast<long>(i));
      return Status::Ok();
    }
  }
  return Status::FailedPrecondition("all interpreters are busy");
}

size_t IdlServerManager::num_servers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return servers_.size();
}

int IdlServerManager::idle_servers() const {
  std::lock_guard<std::mutex> lock(mu_);
  int idle = 0;
  for (const auto& server : servers_) {
    if (server->state() == ServerState::kIdle) ++idle;
  }
  return idle;
}

IdlServer* IdlServerManager::AcquireIdle() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& server : servers_) {
    if (server->state() == ServerState::kIdle) return server.get();
    if (server->state() == ServerState::kCrashed) {
      // Opportunistic recovery: restart crashed interpreters on the way.
      if (server->Restart().ok()) {
        CountRestart();
        return server.get();
      }
    }
  }
  return nullptr;
}

Result<analysis::AnalysisProduct> IdlServerManager::Invoke(
    const std::string& routine, const rhessi::PhotonList& photons,
    const analysis::AnalysisParams& params) {
  Status last_error = Status::Unavailable("no interpreters configured");
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    IdlServer* server = AcquireIdle();
    if (server == nullptr) {
      failures_->Add();
      return Status::ResourceExhausted(host_name_ +
                                       ": no idle IDL interpreter");
    }
    attempts_->Add();
    if (attempt > 0) retries_->Add();
    Result<analysis::AnalysisProduct> result =
        server->Invoke(routine, photons, params);
    if (result.ok()) return result;
    last_error = result.status();
    if (last_error.code() == StatusCode::kNotFound ||
        last_error.code() == StatusCode::kInvalidArgument) {
      failures_->Add();
      return last_error;  // not recoverable by retry
    }
    if (server->state() == ServerState::kCrashed) {
      if (server->Restart().ok()) CountRestart();
    }
    // kTimeout/kUnavailable: retry on a (restarted) interpreter.
  }
  failures_->Add();
  return last_error;
}

std::future<Result<analysis::AnalysisProduct>> IdlServerManager::InvokeAsync(
    std::string routine, rhessi::PhotonList photons,
    analysis::AnalysisParams params) {
  auto task = std::make_shared<
      std::packaged_task<Result<analysis::AnalysisProduct>()>>(
      [this, routine = std::move(routine), photons = std::move(photons),
       params = std::move(params)] {
        return Invoke(routine, photons, params);
      });
  std::future<Result<analysis::AnalysisProduct>> future = task->get_future();
  if (!workers_->Submit([task] { (*task)(); })) {
    // Pool shut down: run inline so the future is always satisfied.
    (*task)();
  }
  return future;
}

}  // namespace hedc::pl
