// IDL server manager (§5.1): owns the interpreters of one processing
// host, provides synchronous and asynchronous invocation and the fault
// handling around them — crashed interpreters are restarted and the call
// retried; repeated failure surfaces to the caller. "IDL server managers
// can be dynamically added and removed as needed without halting the
// system."
#ifndef HEDC_PL_SERVER_MANAGER_H_
#define HEDC_PL_SERVER_MANAGER_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/thread_pool.h"
#include "pl/idl_server.h"

namespace hedc::pl {

class IdlServerManager {
 public:
  struct Options {
    int max_retries = 2;  // restart-and-retry attempts after a crash
    size_t worker_threads = 2;
  };

  IdlServerManager(std::string host_name, Options options);
  ~IdlServerManager();

  const std::string& host_name() const { return host_name_; }

  // Adds a started interpreter to the pool.
  Status AddServer(std::unique_ptr<IdlServer> server);
  // Removes (stops) one idle interpreter; fails if none can be removed.
  Status RemoveServer();
  size_t num_servers() const;
  int idle_servers() const;

  // Synchronous invocation with fault tolerance: picks an idle server,
  // restarts + retries on crash, propagates timeouts.
  Result<analysis::AnalysisProduct> Invoke(
      const std::string& routine, const rhessi::PhotonList& photons,
      const analysis::AnalysisParams& params);

  // Asynchronous invocation on the manager's worker pool.
  std::future<Result<analysis::AnalysisProduct>> InvokeAsync(
      std::string routine, rhessi::PhotonList photons,
      analysis::AnalysisParams params);

  int64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }

 private:
  IdlServer* AcquireIdle();
  void CountRestart();

  std::string host_name_;
  Options options_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<IdlServer>> servers_;
  std::unique_ptr<ThreadPool> workers_;
  // Atomic: Invoke restarts crashed interpreters outside mu_.
  std::atomic<int64_t> restarts_{0};

  // pl.invoke.* / pl.interpreter.* metrics.
  Counter* attempts_;
  Counter* retries_;
  Counter* failures_;
  Counter* restart_counter_;
};

}  // namespace hedc::pl

#endif  // HEDC_PL_SERVER_MANAGER_H_
