#include "pl/commit.h"

#include "core/strings.h"

namespace hedc::pl {

Frontend::Committer MakeDmCommitter(dm::DataManager* dm,
                                    dm::Session session,
                                    int64_t image_archive_id) {
  return [dm, session, image_archive_id](
             const ProcessingRequest& request,
             const analysis::AnalysisProduct& product) -> Result<int64_t> {
    dm::AnaRecord record;
    record.hle_id = request.hle_id;
    // Committed results become part of the shared repository so other
    // users find them instead of recomputing (§3.5).
    record.is_public = true;
    record.routine = request.routine;
    record.parameters = request.params.Canonical();
    record.status = "done";
    record.t_start = request.params.GetDouble("t_start", 0);
    record.t_end = request.params.GetDouble("t_end", 0);
    record.e_min = request.params.GetDouble("e_min", 0);
    record.e_max = request.params.GetDouble("e_max", 0);
    record.pixels = request.params.GetInt("pixels", 0);
    auto photons_it = product.metadata.find("photons");
    if (photons_it != product.metadata.end()) {
      int64_t n = 0;
      ParseInt64(photons_it->second, &n);
      record.photon_count = n;
    }
    record.image_bytes = static_cast<int64_t>(product.rendered.size());
    record.log_excerpt = product.log;
    HEDC_ASSIGN_OR_RETURN(int64_t ana_id,
                          dm->semantics().CreateAna(session, record));
    // The image file lives in the archive, referenced via the location
    // tables; ANA ids get their own item-id space offset to avoid
    // colliding with raw-unit item ids.
    if (!product.rendered.empty()) {
      int64_t item_id = 2000000000 + ana_id;
      HEDC_RETURN_IF_ERROR(dm->io().WriteItemFile(
          item_id, image_archive_id, "ana", product.rendered));
    }
    return ana_id;
  };
}

}  // namespace hedc::pl
