#include "pl/idl_server.h"

namespace hedc::pl {

const char* ServerStateName(ServerState state) {
  switch (state) {
    case ServerState::kStopped:
      return "stopped";
    case ServerState::kIdle:
      return "idle";
    case ServerState::kBusy:
      return "busy";
    case ServerState::kCrashed:
      return "crashed";
  }
  return "?";
}

IdlServer::IdlServer(std::string name,
                     const analysis::RoutineRegistry* registry, Clock* clock,
                     Options options)
    : name_(std::move(name)),
      registry_(registry),
      clock_(clock),
      options_(options),
      fault_rng_(options.fault_seed) {}

Status IdlServer::Start() {
  ServerState expected = ServerState::kStopped;
  if (!state_.compare_exchange_strong(expected, ServerState::kIdle)) {
    return Status::FailedPrecondition(
        std::string("cannot start server in state ") +
        ServerStateName(expected));
  }
  return Status::Ok();
}

void IdlServer::Stop() { state_.store(ServerState::kStopped); }

Status IdlServer::Restart() {
  state_.store(ServerState::kStopped);
  return Start();
}

Result<analysis::AnalysisProduct> IdlServer::Invoke(
    const std::string& routine, const rhessi::PhotonList& photons,
    const analysis::AnalysisParams& params) {
  ServerState expected = ServerState::kIdle;
  if (!state_.compare_exchange_strong(expected, ServerState::kBusy)) {
    return Status::Unavailable(name_ + " is " + ServerStateName(expected));
  }
  ++invocations_;

  const analysis::AnalysisRoutine* impl = registry_->Get(routine);
  if (impl == nullptr) {
    state_.store(ServerState::kIdle);
    return Status::NotFound("routine " + routine);
  }

  double work = impl->EstimateWorkUnits(photons.size(), params);
  if (options_.timeout_work_units > 0 &&
      work > options_.timeout_work_units) {
    // The interpreter would exceed its budget; the manager's timeout
    // watchdog kills and restarts it.
    state_.store(ServerState::kCrashed);
    ++crashes_;
    return Status::Timeout(name_ + " exceeded work budget");
  }
  if (options_.crash_probability > 0 &&
      fault_rng_.Bernoulli(options_.crash_probability)) {
    state_.store(ServerState::kCrashed);
    ++crashes_;
    return Status::Unavailable(name_ + " interpreter crashed");
  }

  // Charge virtual execution time (models the 2003 host's speed).
  if (options_.work_units_per_second > 0 && clock_ != nullptr) {
    clock_->SleepFor(static_cast<Micros>(
        work / options_.work_units_per_second * kMicrosPerSecond));
  }

  Result<analysis::AnalysisProduct> product = impl->Run(photons, params);
  state_.store(ServerState::kIdle);
  return product;
}

}  // namespace hedc::pl
