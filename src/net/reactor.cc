#include "net/reactor.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hedc::net {

namespace {

// epoll user-data encoding: the wake eventfd, listeners (tagged ids) and
// connections (plain ids; next_conn_id_ never reaches the tag bit).
constexpr uint64_t kWakeTag = ~uint64_t{0};
constexpr uint64_t kListenerTag = uint64_t{1} << 63;

// Sweep cadence for the deadline reaper; also the epoll_wait timeout, so
// an idle loop wakes ~20x/s.
constexpr int kSweepMs = 50;

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

void SetNonBlockingNodelay(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Reactor::Options Reactor::Options::FromConfig(const Config& config) {
  Options options;
  options.workers =
      static_cast<int>(config.GetInt("net.workers", options.workers));
  options.idle_timeout = config.GetInt("net.idle_timeout_ms",
                                       options.idle_timeout / kMicrosPerMilli) *
                         kMicrosPerMilli;
  options.read_timeout = config.GetInt("net.read_timeout_ms",
                                       options.read_timeout / kMicrosPerMilli) *
                         kMicrosPerMilli;
  options.write_timeout =
      config.GetInt("net.write_timeout_ms",
                    options.write_timeout / kMicrosPerMilli) *
      kMicrosPerMilli;
  options.write_high_watermark = static_cast<size_t>(config.GetInt(
      "net.write_high_watermark",
      static_cast<int64_t>(options.write_high_watermark)));
  return options;
}

// All fields are loop-thread-only; worker threads reach a connection only
// by id through Post().
struct Reactor::Conn {
  uint64_t id = 0;
  int fd = -1;
  int listener_id = -1;
  std::unique_ptr<ReactorProtocol> protocol;

  std::vector<uint8_t> in;  // received, not yet consumed (from in_head)
  size_t in_head = 0;

  std::deque<std::vector<uint8_t>> out;
  size_t out_head = 0;   // sent prefix of out.front()
  size_t out_bytes = 0;  // total queued

  bool want_write = false;  // EPOLLOUT armed
  bool paused = false;      // EPOLLIN dropped (backpressure)
  bool dispatch_pending = false;
  bool close_after_flush = false;
  bool peer_eof = false;

  Micros last_activity = 0;
  Micros request_start = 0;      // first byte of an incomplete request
  Micros write_stall_start = 0;  // writes blocked since (0 = none)
};

struct Reactor::ListenerState {
  int id = -1;
  int fd = -1;
  int port = 0;
  ProtocolFactory factory;
  std::atomic<int64_t> inflight{0};
  bool closed = false;  // guarded by listeners_mu_
};

void ReactorContext::Dispatch(std::function<ReactorReply()> work) {
  dispatched_ = true;
  reactor_->DispatchWork(conn_id_, std::move(work));
}

void ReactorContext::Close() { close_ = true; }

Reactor::Reactor() : Reactor(Options()) {}

Reactor::Reactor(Options options) : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : MetricsRegistry::Default();
  accepts_ = metrics_->GetCounter("net.accepts");
  requests_ = metrics_->GetCounter("net.requests");
  timeouts_ = metrics_->GetCounter("net.timeouts");
  stalls_ = metrics_->GetCounter("net.backpressure_stalls");
  protocol_errors_ = metrics_->GetCounter("net.protocol_errors");
  accept_errors_ = metrics_->GetCounter("net.accept_errors");
  conns_open_ = metrics_->GetGauge("net.conns_open");
  loop_lag_ = metrics_->GetHistogram("net.loop_lag_us");
}

Reactor::~Reactor() { Stop(); }

bool Reactor::running() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return running_;
}

int64_t Reactor::conns_open() const { return conns_open_->Value(); }

Status Reactor::Start() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (running_) return Status::FailedPrecondition("reactor already running");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status s = Errno("eventfd");
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return s;
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stop_loop_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> task_lock(task_mu_);
    accepting_tasks_ = true;
    tasks_.clear();
  }
  work_queue_ = std::make_unique<BoundedQueue<WorkItem>>(8192);
  for (int i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerMain(); });
  }
  loop_thread_ = std::thread([this] { LoopMain(); });
  running_ = true;
  return Status::Ok();
}

void Reactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!running_) return;
    running_ = false;
  }
  // Drain every listener first — this fails their connections and waits
  // out in-flight handler executions while the loop is still alive.
  std::vector<int> ids;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    for (const auto& [id, state] : listeners_) ids.push_back(id);
  }
  for (int id : ids) CloseListener(id);

  work_queue_->Close();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();

  stop_loop_.store(true, std::memory_order_release);
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    // The loop is gone; late Post() callers must not enqueue forever.
    std::lock_guard<std::mutex> lock(task_mu_);
    accepting_tasks_ = false;
    tasks_.clear();
  }
  work_queue_.reset();
  ::close(wake_fd_);
  wake_fd_ = -1;
  ::close(epoll_fd_);
  epoll_fd_ = -1;
}

Result<Reactor::ListenerInfo> Reactor::AddListener(int port,
                                                   ProtocolFactory factory) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!running_) return Status::FailedPrecondition("reactor not running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, options_.listen_backlog) != 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }

  auto state = std::make_shared<ListenerState>();
  state->fd = fd;
  state->port = ntohs(addr.sin_port);
  state->factory = std::move(factory);
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    state->id = next_listener_id_++;
    listeners_[state->id] = state;
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;  // level-triggered accept: no drain races
  ev.data.u64 = kListenerTag | static_cast<uint64_t>(state->id);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    Status s = Errno("epoll_ctl(listener)");
    {
      std::lock_guard<std::mutex> lock(listeners_mu_);
      listeners_.erase(state->id);
    }
    ::close(fd);
    return s;
  }
  return ListenerInfo{state->id, state->port};
}

void Reactor::CloseListener(int id) {
  std::shared_ptr<ListenerState> state;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    auto it = listeners_.find(id);
    if (it == listeners_.end() || it->second->closed) return;
    it->second->closed = true;
    state = it->second;
  }
  // The loop owns the listener fd and its connections; close them there.
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  Post([this, id, fd = state->fd, &done_mu, &done_cv, &done] {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    std::vector<uint64_t> doomed;
    for (const auto& [conn_id, conn] : conns_) {
      if (conn->listener_id == id) doomed.push_back(conn_id);
    }
    for (uint64_t conn_id : doomed) {
      auto it = conns_.find(conn_id);
      if (it != conns_.end()) CloseConn(it->second.get(), CloseReason::kNormal);
    }
    std::lock_guard<std::mutex> lock(done_mu);
    done = true;
    done_cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&done] { return done; });
  }
  // Wait out handler executions that entered through this listener, so
  // the caller may free the handlers behind the protocol factory.
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [&state] {
      return state->inflight.load(std::memory_order_acquire) == 0;
    });
  }
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(id);
}

void Reactor::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    if (!accepting_tasks_) return;
    tasks_.push_back(Task{SteadyNowUs(), std::move(fn)});
  }
  Wake();
}

void Reactor::Wake() {
  uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void Reactor::RunPostedTasks() {
  std::vector<Task> batch;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    batch.swap(tasks_);
  }
  Micros now = SteadyNowUs();
  for (Task& task : batch) {
    loop_lag_->Observe(now - task.enqueued_us);
    task.fn();
  }
}

void Reactor::WorkerMain() {
  while (true) {
    std::optional<WorkItem> item = work_queue_->Pop();
    if (!item.has_value()) return;
    ReactorReply reply = item->work();
    // Decrement before posting: the reply is plain data, so once the
    // count hits zero the handlers may be torn down safely.
    item->listener->inflight.fetch_sub(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_cv_.notify_all();
    }
    uint64_t conn_id = item->conn_id;
    Post([this, conn_id, reply = std::move(reply)]() mutable {
      OnReplyReady(conn_id, std::move(reply));
    });
  }
}

void Reactor::DispatchWork(uint64_t conn_id,
                           std::function<ReactorReply()> work) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* c = it->second.get();
  std::shared_ptr<ListenerState> listener;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    auto lit = listeners_.find(c->listener_id);
    if (lit == listeners_.end()) return;
    listener = lit->second;
  }
  c->dispatch_pending = true;
  requests_->Add();
  listener->inflight.fetch_add(1, std::memory_order_acq_rel);
  work_queue_->Push(WorkItem{conn_id, std::move(work), std::move(listener)});
}

void Reactor::OnReplyReady(uint64_t conn_id, ReactorReply reply) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died while executing
  Conn* c = it->second.get();
  c->dispatch_pending = false;
  if (!reply.bytes.empty()) QueueWrite(c, std::move(reply.bytes));
  if (reply.close_after) c->close_after_flush = true;
  if (!FlushConn(c)) return;
  if (!ParseConn(c)) return;
  MaybeCloseOnEof(c);
}

void Reactor::LoopMain() {
  std::vector<struct epoll_event> events(256);
  while (true) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), kSweepMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    RunPostedTasks();
    if (stop_loop_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if ((tag & kListenerTag) != 0) {
        AcceptReady(static_cast<int>(tag & ~kListenerTag));
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this round
      Conn* c = it->second.get();
      if ((ev & EPOLLOUT) != 0) {
        if (!FlushConn(c)) continue;
      }
      if ((ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
        if (!ReadConn(c)) continue;
        if (!ParseConn(c)) continue;
        if (!MaybeCloseOnEof(c)) continue;
      }
    }
    Micros now = SteadyNowUs();
    if (now - last_sweep_us_ >= kSweepMs * kMicrosPerMilli) {
      last_sweep_us_ = now;
      SweepDeadlines(now);
    }
  }
  // Loop teardown: whatever connections remain (listeners are already
  // drained on the Stop path) are dropped here, on the owning thread.
  while (!conns_.empty()) {
    CloseConn(conns_.begin()->second.get(), CloseReason::kNormal);
  }
}

void Reactor::AcceptReady(int listener_id) {
  std::shared_ptr<ListenerState> listener;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    auto it = listeners_.find(listener_id);
    if (it == listeners_.end() || it->second->closed) return;
    listener = it->second;
  }
  while (true) {
    int fd = ::accept4(listener->fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // EMFILE/ENFILE and transient network errors: count and let the
      // backlog hold the rest; the next readiness event retries.
      accept_errors_->Add();
      return;
    }
    SetNonBlockingNodelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->listener_id = listener_id;
    conn->protocol = listener->factory();
    conn->last_activity = SteadyNowUs();
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      accept_errors_->Add();
      continue;
    }
    accepts_->Add();
    conns_open_->Add(1);
    conns_[conn->id] = std::move(conn);
  }
}

bool Reactor::ReadConn(Conn* c) {
  if (c->paused) return true;  // backpressure: interest is off, skip
  uint8_t buf[16384];
  while (true) {
    ssize_t r = ::recv(c->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      if (c->in.size() - c->in_head + static_cast<size_t>(r) >
          options_.max_in_buffer) {
        CloseConn(c, CloseReason::kOverflow);
        return false;
      }
      c->in.insert(c->in.end(), buf, buf + r);
      c->last_activity = SteadyNowUs();
      continue;
    }
    if (r == 0) {
      c->peer_eof = true;
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    CloseConn(c, CloseReason::kError);  // ECONNRESET and friends
    return false;
  }
}

bool Reactor::ParseConn(Conn* c) {
  while (!c->dispatch_pending) {
    size_t avail = c->in.size() - c->in_head;
    if (avail == 0) break;
    ReactorContext ctx(this, c->id);
    size_t consumed = c->protocol->OnData(c->in.data() + c->in_head, avail,
                                          &ctx);
    if (consumed > avail) consumed = avail;
    c->in_head += consumed;
    if (ctx.close_) {
      protocol_errors_->Add();
      CloseConn(c, CloseReason::kProtocol);
      return false;
    }
    if (consumed == 0 && !ctx.dispatched_) break;  // needs more bytes
    if (c->in_head == c->in.size()) break;  // fully consumed; dispatch runs
  }
  // Compact the parsed prefix so long-lived keep-alive connections do
  // not grow without bound.
  if (c->in_head == c->in.size()) {
    c->in.clear();
    c->in_head = 0;
  } else if (c->in_head > (1u << 20)) {
    c->in.erase(c->in.begin(),
                c->in.begin() + static_cast<long>(c->in_head));
    c->in_head = 0;
  }
  // An unconsumed tail is a request still being assembled — unless a
  // dispatch is pending, in which case parsing is merely paused.
  size_t pending = c->in.size() - c->in_head;
  if (pending == 0) {
    c->request_start = 0;
  } else if (c->request_start == 0 && !c->dispatch_pending) {
    c->request_start = SteadyNowUs();
  }
  return true;
}

void Reactor::QueueWrite(Conn* c, std::vector<uint8_t> bytes) {
  if (bytes.empty()) return;
  c->out_bytes += bytes.size();
  c->out.push_back(std::move(bytes));
}

bool Reactor::FlushConn(Conn* c) {
  while (!c->out.empty()) {
    const std::vector<uint8_t>& front = c->out.front();
    ssize_t w = ::send(c->fd, front.data() + c->out_head,
                       front.size() - c->out_head,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c->want_write) {
          c->want_write = true;
          UpdateInterest(c);
        }
        if (c->write_stall_start == 0) c->write_stall_start = SteadyNowUs();
        break;
      }
      CloseConn(c, CloseReason::kError);
      return false;
    }
    c->out_head += static_cast<size_t>(w);
    c->out_bytes -= static_cast<size_t>(w);
    c->last_activity = SteadyNowUs();
    if (c->out_head == front.size()) {
      c->out.pop_front();
      c->out_head = 0;
    }
  }
  if (c->out.empty()) {
    c->write_stall_start = 0;
    bool interest_changed = false;
    if (c->want_write) {
      c->want_write = false;
      interest_changed = true;
    }
    if (c->close_after_flush) {
      CloseConn(c, CloseReason::kNormal);
      return false;
    }
    if (c->paused) {
      // Resume reading: EPOLL_CTL_MOD re-arms edge-triggered readiness,
      // so bytes that arrived while paused trigger a fresh event.
      c->paused = false;
      interest_changed = true;
    }
    if (interest_changed) UpdateInterest(c);
  } else if (!c->paused && c->out_bytes > options_.write_high_watermark) {
    c->paused = true;
    stalls_->Add();
    UpdateInterest(c);
  }
  return true;
}

bool Reactor::MaybeCloseOnEof(Conn* c) {
  if (c->peer_eof && !c->dispatch_pending && c->out_bytes == 0) {
    // Peer finished sending and nothing is owed: a trailing partial
    // request (if any) can never complete, so drop the connection — the
    // same outcome the blocking server's RecvFrame-EOF path produces.
    CloseConn(c, CloseReason::kNormal);
    return false;
  }
  return true;
}

void Reactor::UpdateInterest(Conn* c) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLET | (c->paused ? 0u : (EPOLLIN | EPOLLRDHUP)) |
              (c->want_write ? EPOLLOUT : 0u);
  ev.data.u64 = c->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
}

void Reactor::SweepDeadlines(Micros now) {
  // Amortized reaper: each tick inspects a bounded chunk, resuming where
  // the previous tick stopped. A full O(conns) scan on the loop thread
  // stalls event handling, and with 10k+ connections that pause lands
  // straight on the p99 of whatever calls are in flight (perf_c10k
  // measures exactly this). The chunk floor covers small fleets in one
  // tick; above 512*20 connections the size/20 term caps a full cycle at
  // 20 ticks (~1s of detection lag on top of the configured timeout).
  size_t budget = std::max<size_t>(512, (conns_.size() + 19) / 20);
  std::vector<uint64_t> doomed;
  auto it = conns_.upper_bound(sweep_cursor_);
  for (; budget > 0; --budget) {
    if (it == conns_.end()) {
      sweep_cursor_ = 0;  // wrapped; next tick starts a fresh cycle
      break;
    }
    const uint64_t id = it->first;
    const Conn* c = it->second.get();
    sweep_cursor_ = id;
    ++it;
    // A connection waiting on its own handler is busy, not idle.
    bool quiescent = !c->dispatch_pending && c->out_bytes == 0;
    if (options_.idle_timeout > 0 && quiescent &&
        now - c->last_activity > options_.idle_timeout) {
      doomed.push_back(id);
      continue;
    }
    if (options_.read_timeout > 0 && c->request_start != 0 &&
        !c->dispatch_pending &&
        now - c->request_start > options_.read_timeout) {
      doomed.push_back(id);
      continue;
    }
    if (options_.write_timeout > 0 && c->write_stall_start != 0 &&
        now - c->write_stall_start > options_.write_timeout) {
      doomed.push_back(id);
    }
  }
  for (uint64_t id : doomed) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    timeouts_->Add();
    CloseConn(it->second.get(), CloseReason::kTimeout);
  }
}

void Reactor::CloseConn(Conn* c, CloseReason reason) {
  (void)reason;  // reason-specific counters are bumped by the caller
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  conns_open_->Add(-1);
  conns_.erase(c->id);  // frees c
}

}  // namespace hedc::net
