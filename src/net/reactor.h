// Shared epoll reactor for the web and RMI transports (C10K; ROADMAP 3).
//
// Both socket servers were thread-per-connection, which caps concurrent
// clients at thread scale — nowhere near the paper's growing-user-base
// story (§6.1) once keep-alive browsers and cluster channel fan-out are
// real. Reactor is one event loop that owns every connection: sockets are
// nonblocking and edge-triggered, reads accumulate into a per-connection
// buffer that a pluggable ReactorProtocol parses incrementally (the
// [u32 len][payload][u32 crc32] RMI framing and HTTP/1.1 each provide
// one), and completed requests execute on a small worker pool so a slow
// handler never stalls the loop. Responses are queued back onto the loop
// thread, written with backpressure (reading pauses above a write-buffer
// watermark), and idle / incomplete-request / stalled-write connections
// are reaped by deadline sweeps. One Reactor instance can carry many
// listeners — a whole cluster's RMI ports plus the web tier — which is
// what makes many-nodes x many-channels affordable: the thread count is
// O(workers), not O(connections).
//
// Threading contract: ReactorProtocol callbacks run on the loop thread;
// dispatched work runs on the worker pool; Reactor's public methods are
// thread-safe but must not be called from the loop thread itself
// (CloseListener and Stop block on the loop draining).
//
// Connection-lifecycle metrics (per Options::metrics registry):
//   net.accepts, net.conns_open (gauge), net.requests, net.timeouts,
//   net.backpressure_stalls, net.protocol_errors, net.oversized_frames
//   (bumped by protocols), net.loop_lag_us (queue->loop latency histogram).
#ifndef HEDC_NET_REACTOR_H_
#define HEDC_NET_REACTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/clock.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/status.h"
#include "core/thread_pool.h"

namespace hedc::net {

class Reactor;

// Bytes a dispatched request handler sends back on its connection.
struct ReactorReply {
  std::vector<uint8_t> bytes;
  // Drop the connection once the reply has been flushed (HTTP
  // "Connection: close"; protocol-level rejections).
  bool close_after = false;
};

// Loop-thread view of a connection handed to ReactorProtocol::OnData.
// Valid only for the duration of that call.
class ReactorContext {
 public:
  // Queues `work` on the worker pool. Its reply is written back on the
  // loop thread and parsing resumes afterwards; the reactor never calls
  // OnData again while a dispatch is pending, so one connection executes
  // one request at a time and responses stay in request order.
  void Dispatch(std::function<ReactorReply()> work);
  // Drops the connection (framing violation, hostile length, ...).
  void Close();

 private:
  friend class Reactor;
  ReactorContext(Reactor* reactor, uint64_t conn_id)
      : reactor_(reactor), conn_id_(conn_id) {}

  Reactor* reactor_;
  uint64_t conn_id_;
  bool dispatched_ = false;
  bool close_ = false;
};

// Per-connection protocol state machine (one instance per connection,
// created by the listener's factory; all calls on the loop thread).
class ReactorProtocol {
 public:
  virtual ~ReactorProtocol() = default;

  // Parses buffered input. `data`/`n` is everything received and not yet
  // consumed; returns how many leading bytes were consumed. May call
  // ctx->Dispatch() at most once (for the first complete request found)
  // or ctx->Close() on a protocol violation. Returning 0 without
  // dispatching means "need more bytes".
  virtual size_t OnData(const uint8_t* data, size_t n,
                        ReactorContext* ctx) = 0;
};

class Reactor {
 public:
  struct Options {
    // Request-execution threads (>= 1). The loop itself never executes
    // handlers.
    int workers = 2;
    // Close connections with no traffic at all for this long (0 = never).
    Micros idle_timeout = 30 * kMicrosPerSecond;
    // Close connections whose current request has been incomplete for
    // this long — slowloris drips die here even when every byte resets
    // the idle clock (0 = never).
    Micros read_timeout = 10 * kMicrosPerSecond;
    // Close connections whose peer has not drained queued writes for
    // this long (0 = never).
    Micros write_timeout = 10 * kMicrosPerSecond;
    // Per-connection cap on buffered unparsed input; protects against
    // floods that never form a parseable request.
    size_t max_in_buffer = 64u << 20;
    // Pause reading when a connection's queued writes exceed this;
    // resume when fully drained (net.backpressure_stalls counts pauses).
    size_t write_high_watermark = 4u << 20;
    int listen_backlog = 1024;
    // nullptr = MetricsRegistry::Default().
    MetricsRegistry* metrics = nullptr;

    // Reads net.workers, net.idle_timeout_ms, net.read_timeout_ms,
    // net.write_timeout_ms, net.write_high_watermark.
    static Options FromConfig(const Config& config);
  };

  Reactor();
  explicit Reactor(Options options);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  Status Start();
  // Closes every listener (draining their in-flight requests), joins the
  // workers and the loop. Idempotent; Start() afterwards reboots.
  void Stop();
  bool running() const;

  using ProtocolFactory = std::function<std::unique_ptr<ReactorProtocol>()>;

  struct ListenerInfo {
    int id = -1;
    int port = 0;
  };
  // Binds 127.0.0.1:`port` (0 = ephemeral) and serves each accepted
  // connection with a fresh protocol from `factory`.
  Result<ListenerInfo> AddListener(int port, ProtocolFactory factory);
  // Closes the listener and all its connections, then waits until every
  // dispatched request that entered through it has finished executing —
  // after return the handlers behind `factory` may be destroyed.
  void CloseListener(int id);

  // Connections currently open across all listeners (loop-maintained).
  int64_t conns_open() const;

 private:
  friend class ReactorContext;

  struct Conn;
  struct ListenerState;
  struct Task {
    Micros enqueued_us = 0;
    std::function<void()> fn;
  };
  struct WorkItem {
    uint64_t conn_id = 0;
    std::function<ReactorReply()> work;
    std::shared_ptr<ListenerState> listener;
  };
  enum class CloseReason { kNormal, kTimeout, kProtocol, kOverflow, kError };

  void LoopMain();
  void WorkerMain();
  void RunPostedTasks();
  // Enqueues `fn` onto the loop thread (no-op once the loop is gone).
  void Post(std::function<void()> fn);
  void Wake();

  void AcceptReady(int listener_id);
  // The Conn helpers return false when they closed (and freed) the
  // connection, so callers stop touching it.
  bool ReadConn(Conn* c);
  bool ParseConn(Conn* c);
  bool FlushConn(Conn* c);
  bool MaybeCloseOnEof(Conn* c);
  void QueueWrite(Conn* c, std::vector<uint8_t> bytes);
  void CloseConn(Conn* c, CloseReason reason);
  void UpdateInterest(Conn* c);
  void SweepDeadlines(Micros now);
  void DispatchWork(uint64_t conn_id, std::function<ReactorReply()> work);
  void OnReplyReady(uint64_t conn_id, ReactorReply reply);

  Options options_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* accepts_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* timeouts_ = nullptr;
  Counter* stalls_ = nullptr;
  Counter* protocol_errors_ = nullptr;
  Counter* accept_errors_ = nullptr;
  Gauge* conns_open_ = nullptr;
  Histogram* loop_lag_ = nullptr;

  mutable std::mutex state_mu_;
  bool running_ = false;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_thread_;
  std::vector<std::thread> worker_threads_;
  std::unique_ptr<BoundedQueue<WorkItem>> work_queue_;

  std::mutex task_mu_;
  bool accepting_tasks_ = false;
  std::vector<Task> tasks_;
  std::atomic<bool> stop_loop_{false};

  mutable std::mutex listeners_mu_;
  int next_listener_id_ = 0;
  std::map<int, std::shared_ptr<ListenerState>> listeners_;

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;

  // --- loop-thread-only state ------------------------------------------
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  Micros last_sweep_us_ = 0;
  uint64_t sweep_cursor_ = 0;  // deadline sweep resumes at upper_bound(this)
};

}  // namespace hedc::net

#endif  // HEDC_NET_REACTOR_H_
