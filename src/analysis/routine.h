// Analysis routine framework (stand-in for IDL + the Solar Software Tree).
//
// Routines are looked up by name in a registry, take a photon list and a
// string-keyed parameter map, and produce an AnalysisProduct. New routines
// — including user-submitted ones (§3.3) — are added by registering
// another implementation; nothing else in the system changes.
#ifndef HEDC_ANALYSIS_ROUTINE_H_
#define HEDC_ANALYSIS_ROUTINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/product.h"
#include "core/clock.h"
#include "core/status.h"
#include "rhessi/photon.h"

namespace hedc::analysis {

class AnalysisParams {
 public:
  AnalysisParams() = default;
  explicit AnalysisParams(std::map<std::string, std::string> values)
      : values_(std::move(values)) {}

  void Set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }
  void SetDouble(const std::string& key, double value);
  void SetInt(const std::string& key, int64_t value);

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const;
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;

  const std::map<std::string, std::string>& values() const { return values_; }

  // Canonical "k1=v1;k2=v2" form, stored in ANA tuples for overlap
  // detection (§3.5).
  std::string Canonical() const;

 private:
  std::map<std::string, std::string> values_;
};

class AnalysisRoutine {
 public:
  virtual ~AnalysisRoutine() = default;

  virtual std::string name() const = 0;

  virtual Result<AnalysisProduct> Run(const rhessi::PhotonList& photons,
                                      const AnalysisParams& params) const = 0;

  // Rough execution-time estimate for the PL's estimation phase (§5.1),
  // in abstract work units proportional to actual computation.
  virtual double EstimateWorkUnits(size_t photon_count,
                                   const AnalysisParams& params) const = 0;
};

class RoutineRegistry {
 public:
  // Registers a routine; replaces an existing routine of the same name
  // (routines "will constantly change", §3.1).
  void Register(std::unique_ptr<AnalysisRoutine> routine);

  const AnalysisRoutine* Get(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::unique_ptr<AnalysisRoutine>> routines_;
};

// Registry pre-loaded with the standard catalog: imaging, lightcurve,
// spectrogram, histogram.
std::unique_ptr<RoutineRegistry> CreateStandardRegistry();

}  // namespace hedc::analysis

#endif  // HEDC_ANALYSIS_ROUTINE_H_
