// Approximate COUNT / SUM answers for dashboard-style range queries
// (§3.4/§6.3: "most questions are answered approximately from small
// derived summaries rather than raw data").
//
// Two estimators:
//  - ApproxSumFromPrefix: deterministic, from a progressive wavelet
//    stream prefix. The ± bars come from the dropped-coefficient energy
//    accounting in the stream header (see PrefixInfo in codec.h), so
//    |true - estimate| <= error_bound always holds against the original
//    binned signal.
//  - ReservoirSampler: probabilistic fallback when no view exists
//    (Vitter's algorithm R over (position, value) pairs); its bars are
//    ~95% (two standard errors) with finite-population correction.
#ifndef HEDC_ANALYSIS_APPROX_H_
#define HEDC_ANALYSIS_APPROX_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/status.h"

namespace hedc::analysis {

struct ApproxAnswer {
  double estimate = 0;
  double error_bound = 0;  // deterministic, or ~2 sigma for sampling
  size_t bins = 0;         // bins (or sample items) contributing
  size_t bytes_read = 0;   // encoded bytes consumed (prefix estimators)
};

// Sum of the binned signal over the half-open domain fraction
// [range_lo_frac, range_hi_frac) of [0, 1), reconstructed from the first
// `size` bytes of a progressive (HWV3) wavelet stream. Fractions are
// clamped to [0, 1]; an inverted pair is InvalidArgument.
Result<ApproxAnswer> ApproxSumFromPrefix(const uint8_t* data, size_t size,
                                         double range_lo_frac,
                                         double range_hi_frac);

// Uniform reservoir over (position, value) pairs, Vitter's algorithm R:
// the first `capacity` items fill the reservoir, item i > capacity
// replaces a random slot with probability capacity / (i + 1).
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed);

  void Add(double position, double value);

  size_t seen() const { return seen_; }
  size_t size() const { return sample_.size(); }

  // Estimated number of items with position in [lo, hi).
  ApproxAnswer EstimateCountInRange(double lo, double hi) const;
  // Estimated sum of `value` over items with position in [lo, hi).
  ApproxAnswer EstimateSumInRange(double lo, double hi) const;

 private:
  // Scaled mean of f(item) over the population with a 2-standard-error
  // bar (finite-population corrected).
  template <typename Fn>
  ApproxAnswer Estimate(Fn contribution) const;

  size_t capacity_;
  Rng rng_;
  size_t seen_ = 0;
  std::vector<std::pair<double, double>> sample_;  // (position, value)
};

}  // namespace hedc::analysis

#endif  // HEDC_ANALYSIS_APPROX_H_
