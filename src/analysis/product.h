// Analysis products: what an SSW-style routine returns.
//
// "The analysis algorithms most frequently used in HEDC are imaging,
// lightcurves and spectroscopy, all of which generate pictoral content.
// Together with extensive meta data (algorithm parameters, log files)
// these pictures are cataloged and stored" (§2.2).
#ifndef HEDC_ANALYSIS_PRODUCT_H_
#define HEDC_ANALYSIS_PRODUCT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"

namespace hedc::analysis {

struct Image {
  size_t width = 0;
  size_t height = 0;
  std::vector<double> pixels;  // row-major

  double At(size_t x, size_t y) const { return pixels[y * width + x]; }
  double MaxPixel() const;
  double TotalFlux() const;
};

struct Series {
  std::vector<double> x;
  std::vector<double> y;
};

struct AnalysisProduct {
  std::string routine;
  std::map<std::string, std::string> metadata;  // parameters, stats
  std::optional<Image> image;
  std::optional<Series> series;
  std::string log;                 // processing log excerpt
  std::vector<uint8_t> rendered;   // GIF-lite bytes for the web tier
};

// "GIF-lite" renderer: 8-bit quantization (linear ramp over the dynamic
// range) + hzip entropy stage. Produces the picture payloads whose sizes
// Tables 2/3 account for.
std::vector<uint8_t> RenderImage(const Image& image);
Result<Image> ParseRenderedImage(const std::vector<uint8_t>& bytes);

// Renders a series as a fixed-size plot image.
std::vector<uint8_t> RenderSeries(const Series& series, size_t width = 256,
                                  size_t height = 128);

}  // namespace hedc::analysis

#endif  // HEDC_ANALYSIS_PRODUCT_H_
