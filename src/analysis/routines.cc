// Standard analysis routines: imaging (back-projection), lightcurve,
// spectrogram, histogram.
#include <algorithm>
#include <cmath>

#include "analysis/routine.h"
#include "core/strings.h"

namespace hedc::analysis {

void AnalysisParams::SetDouble(const std::string& key, double value) {
  values_[key] = StrFormat("%.10g", value);
}

void AnalysisParams::SetInt(const std::string& key, int64_t value) {
  values_[key] = std::to_string(value);
}

std::string AnalysisParams::Get(const std::string& key,
                                const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double AnalysisParams::GetDouble(const std::string& key,
                                 double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double v;
  return ParseDouble(it->second, &v) ? v : fallback;
}

int64_t AnalysisParams::GetInt(const std::string& key,
                               int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  int64_t v;
  return ParseInt64(it->second, &v) ? v : fallback;
}

std::string AnalysisParams::Canonical() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

void RoutineRegistry::Register(std::unique_ptr<AnalysisRoutine> routine) {
  routines_[routine->name()] = std::move(routine);
}

const AnalysisRoutine* RoutineRegistry::Get(const std::string& name) const {
  auto it = routines_.find(name);
  return it == routines_.end() ? nullptr : it->second.get();
}

std::vector<std::string> RoutineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(routines_.size());
  for (const auto& [name, routine] : routines_) names.push_back(name);
  return names;
}

namespace {

// Selects photons inside the requested time/energy window.
rhessi::PhotonList Window(const rhessi::PhotonList& photons,
                          const AnalysisParams& params) {
  double t0 = params.GetDouble("t_start", 0);
  double t1 = params.GetDouble("t_end", 1e18);
  double e0 = params.GetDouble("e_min", rhessi::kMinEnergyKev);
  double e1 = params.GetDouble("e_max", rhessi::kMaxEnergyKev);
  rhessi::PhotonList out;
  for (const rhessi::PhotonEvent& p : photons) {
    if (p.time_sec >= t0 && p.time_sec < t1 && p.energy_kev >= e0 &&
        p.energy_kev < e1) {
      out.push_back(p);
    }
  }
  return out;
}

// Lightcurve: photon counts per time bin.
class LightcurveRoutine : public AnalysisRoutine {
 public:
  std::string name() const override { return "lightcurve"; }

  Result<AnalysisProduct> Run(const rhessi::PhotonList& photons,
                              const AnalysisParams& params) const override {
    double bin = params.GetDouble("bin_sec", 1.0);
    if (bin <= 0) return Status::InvalidArgument("bin_sec must be positive");
    rhessi::PhotonList selected = Window(photons, params);
    AnalysisProduct product;
    product.routine = name();
    Series series;
    if (!selected.empty()) {
      double t0 = selected.front().time_sec;
      double t1 = selected.back().time_sec;
      size_t bins = static_cast<size_t>((t1 - t0) / bin) + 1;
      series.x.resize(bins);
      series.y.assign(bins, 0.0);
      for (size_t i = 0; i < bins; ++i) {
        series.x[i] = t0 + static_cast<double>(i) * bin;
      }
      for (const rhessi::PhotonEvent& p : selected) {
        size_t b = static_cast<size_t>((p.time_sec - t0) / bin);
        if (b >= bins) b = bins - 1;
        series.y[b] += 1.0;
      }
    }
    product.rendered = RenderSeries(series);
    product.metadata["photons"] = std::to_string(selected.size());
    product.metadata["bin_sec"] = StrFormat("%.6g", bin);
    product.series = std::move(series);
    product.log = StrFormat("lightcurve over %zu photons", selected.size());
    return product;
  }

  double EstimateWorkUnits(size_t photon_count,
                           const AnalysisParams&) const override {
    // Linear in input size (§3.4: "linear for short analyses").
    return static_cast<double>(photon_count);
  }
};

// Histogram: photon counts per energy bin (log-spaced).
class HistogramRoutine : public AnalysisRoutine {
 public:
  std::string name() const override { return "histogram"; }

  Result<AnalysisProduct> Run(const rhessi::PhotonList& photons,
                              const AnalysisParams& params) const override {
    int64_t bins = params.GetInt("bins", 64);
    if (bins <= 0 || bins > 100000) {
      return Status::InvalidArgument("bins out of range");
    }
    rhessi::PhotonList selected = Window(photons, params);
    double e0 = std::max(params.GetDouble("e_min", rhessi::kMinEnergyKev),
                         rhessi::kMinEnergyKev);
    double e1 = params.GetDouble("e_max", rhessi::kMaxEnergyKev);
    double log_lo = std::log(e0);
    double log_hi = std::log(e1);
    Series series;
    series.x.resize(bins);
    series.y.assign(bins, 0.0);
    for (int64_t i = 0; i < bins; ++i) {
      series.x[i] = std::exp(log_lo + (log_hi - log_lo) *
                                          (static_cast<double>(i) + 0.5) /
                                          static_cast<double>(bins));
    }
    for (const rhessi::PhotonEvent& p : selected) {
      double le = std::log(std::max<double>(p.energy_kev, e0));
      int64_t b = static_cast<int64_t>((le - log_lo) / (log_hi - log_lo) *
                                       static_cast<double>(bins));
      b = std::clamp<int64_t>(b, 0, bins - 1);
      series.y[b] += 1.0;
    }
    AnalysisProduct product;
    product.routine = name();
    product.rendered = RenderSeries(series);
    product.metadata["photons"] = std::to_string(selected.size());
    product.metadata["bins"] = std::to_string(bins);
    product.series = std::move(series);
    product.log = StrFormat("histogram over %zu photons", selected.size());
    return product;
  }

  double EstimateWorkUnits(size_t photon_count,
                           const AnalysisParams&) const override {
    return static_cast<double>(photon_count);
  }
};

// Spectrogram: 2-D counts over time x energy.
class SpectrogramRoutine : public AnalysisRoutine {
 public:
  std::string name() const override { return "spectrogram"; }

  Result<AnalysisProduct> Run(const rhessi::PhotonList& photons,
                              const AnalysisParams& params) const override {
    int64_t t_bins = params.GetInt("t_bins", 128);
    int64_t e_bins = params.GetInt("e_bins", 64);
    if (t_bins <= 0 || e_bins <= 0 || t_bins * e_bins > 64 * 1024 * 1024) {
      return Status::InvalidArgument("spectrogram bins out of range");
    }
    rhessi::PhotonList selected = Window(photons, params);
    AnalysisProduct product;
    product.routine = name();
    Image image;
    image.width = static_cast<size_t>(t_bins);
    image.height = static_cast<size_t>(e_bins);
    image.pixels.assign(image.width * image.height, 0.0);
    if (!selected.empty()) {
      double t0 = selected.front().time_sec;
      double t1 = selected.back().time_sec + 1e-9;
      double log_lo = std::log(rhessi::kMinEnergyKev);
      double log_hi = std::log(rhessi::kMaxEnergyKev);
      for (const rhessi::PhotonEvent& p : selected) {
        size_t bx = std::min(
            static_cast<size_t>((p.time_sec - t0) / (t1 - t0) *
                                static_cast<double>(t_bins)),
            image.width - 1);
        double le = std::log(std::max<double>(p.energy_kev,
                                              rhessi::kMinEnergyKev));
        size_t by = std::min(
            static_cast<size_t>((le - log_lo) / (log_hi - log_lo) *
                                static_cast<double>(e_bins)),
            image.height - 1);
        image.pixels[by * image.width + bx] += 1.0;
      }
    }
    product.rendered = RenderImage(image);
    product.metadata["photons"] = std::to_string(selected.size());
    product.image = std::move(image);
    product.log = StrFormat("spectrogram over %zu photons", selected.size());
    return product;
  }

  double EstimateWorkUnits(size_t photon_count,
                           const AnalysisParams& params) const override {
    return static_cast<double>(photon_count) +
           static_cast<double>(params.GetInt("t_bins", 128) *
                               params.GetInt("e_bins", 64));
  }
};

// Imaging: back-projection through the rotating modulation collimators.
// Each photon's arrival is correlated with the collimator's modulation
// pattern at its arrival phase; accumulating the pattern over the image
// plane reconstructs the source. O(photons x pixels) - the CPU-bound
// workload of §8.2 (the computation of an image took 20-60 s).
class ImagingRoutine : public AnalysisRoutine {
 public:
  std::string name() const override { return "imaging"; }

  Result<AnalysisProduct> Run(const rhessi::PhotonList& photons,
                              const AnalysisParams& params) const override {
    int64_t npix = params.GetInt("pixels", 64);
    if (npix <= 0 || npix > 2048) {
      return Status::InvalidArgument("pixels out of range");
    }
    rhessi::PhotonList selected = Window(photons, params);
    double fov = params.GetDouble("fov_arcsec", 128.0);

    Image image;
    image.width = static_cast<size_t>(npix);
    image.height = static_cast<size_t>(npix);
    image.pixels.assign(image.width * image.height, 0.0);

    // Per-collimator angular pitch: collimator c resolves scales
    // ~ 2.3 * 3^(c/2) arcsec (RHESSI's geometric progression).
    double pitch[rhessi::kNumCollimators];
    for (int c = 0; c < rhessi::kNumCollimators; ++c) {
      pitch[c] = 2.3 * std::pow(3.0, static_cast<double>(c) / 2.0);
    }

    double half = fov / 2.0;
    double pix_size = fov / static_cast<double>(npix);
    for (const rhessi::PhotonEvent& p : selected) {
      // Spin phase at arrival and the collimator's modulation direction.
      double phase = 2.0 * M_PI *
                     std::fmod(p.time_sec, rhessi::kSpinPeriodSec) /
                     rhessi::kSpinPeriodSec;
      double cos_a = std::cos(phase);
      double sin_a = std::sin(phase);
      double k = 2.0 * M_PI / pitch[p.detector % rhessi::kNumCollimators];
      // Accumulate the modulation pattern over the image plane.
      for (size_t y = 0; y < image.height; ++y) {
        double sky_y = -half + (static_cast<double>(y) + 0.5) * pix_size;
        double* row = image.pixels.data() + y * image.width;
        for (size_t x = 0; x < image.width; ++x) {
          double sky_x = -half + (static_cast<double>(x) + 0.5) * pix_size;
          double projection = sky_x * cos_a + sky_y * sin_a;
          row[x] += 0.5 * (1.0 + std::cos(k * projection));
        }
      }
    }

    AnalysisProduct product;
    product.routine = name();
    product.rendered = RenderImage(image);
    product.metadata["photons"] = std::to_string(selected.size());
    product.metadata["pixels"] = std::to_string(npix);
    product.metadata["peak"] = StrFormat("%.6g", image.MaxPixel());
    product.image = std::move(image);
    product.log = StrFormat("back-projection of %zu photons onto %lldx%lld",
                            selected.size(), static_cast<long long>(npix),
                            static_cast<long long>(npix));
    return product;
  }

  double EstimateWorkUnits(size_t photon_count,
                           const AnalysisParams& params) const override {
    int64_t npix = params.GetInt("pixels", 64);
    return static_cast<double>(photon_count) *
           static_cast<double>(npix * npix);
  }
};

}  // namespace

std::unique_ptr<RoutineRegistry> CreateStandardRegistry() {
  auto registry = std::make_unique<RoutineRegistry>();
  registry->Register(std::make_unique<LightcurveRoutine>());
  registry->Register(std::make_unique<HistogramRoutine>());
  registry->Register(std::make_unique<SpectrogramRoutine>());
  registry->Register(std::make_unique<ImagingRoutine>());
  return registry;
}

}  // namespace hedc::analysis
