#include "analysis/approx.h"

#include <algorithm>
#include <cmath>

#include "wavelet/codec.h"

namespace hedc::analysis {

Result<ApproxAnswer> ApproxSumFromPrefix(const uint8_t* data, size_t size,
                                         double range_lo_frac,
                                         double range_hi_frac) {
  if (range_hi_frac < range_lo_frac) {
    return Status::InvalidArgument("inverted approximate range");
  }
  range_lo_frac = std::clamp(range_lo_frac, 0.0, 1.0);
  range_hi_frac = std::clamp(range_hi_frac, 0.0, 1.0);

  wavelet::PrefixInfo info;
  HEDC_ASSIGN_OR_RETURN(std::vector<double> bins,
                        wavelet::DecodeSignalPrefix(data, size, &info));

  ApproxAnswer answer;
  answer.bytes_read = info.prefix_bytes;
  if (bins.empty()) return answer;
  double n = static_cast<double>(bins.size());
  size_t from = static_cast<size_t>(std::floor(range_lo_frac * n));
  size_t to = static_cast<size_t>(std::ceil(range_hi_frac * n));
  from = std::min(from, bins.size());
  to = std::min(to, bins.size());
  for (size_t b = from; b < to; ++b) answer.estimate += bins[b];
  answer.bins = to > from ? to - from : 0;
  answer.error_bound = info.SumErrorBound(answer.bins);
  return answer;
}

ReservoirSampler::ReservoirSampler(size_t capacity, uint64_t seed)
    : capacity_(std::max<size_t>(capacity, 1)), rng_(seed) {
  sample_.reserve(capacity_);
}

void ReservoirSampler::Add(double position, double value) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.emplace_back(position, value);
    return;
  }
  // Vitter's algorithm R: keep each of the `seen_` items with equal
  // probability capacity / seen.
  size_t slot = static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(seen_) - 1));
  if (slot < capacity_) sample_[slot] = {position, value};
}

template <typename Fn>
ApproxAnswer ReservoirSampler::Estimate(Fn contribution) const {
  ApproxAnswer answer;
  if (sample_.empty()) return answer;
  double k = static_cast<double>(sample_.size());
  double total = static_cast<double>(seen_);
  double sum = 0, sum_sq = 0;
  for (const auto& item : sample_) {
    double c = contribution(item);
    sum += c;
    sum_sq += c * c;
  }
  double mean = sum / k;
  answer.estimate = mean * total;
  answer.bins = sample_.size();
  if (sample_.size() > 1 && seen_ > sample_.size()) {
    double variance = std::max(0.0, (sum_sq - k * mean * mean) / (k - 1));
    double fpc = (total - k) / (total - 1);  // finite-population correction
    double se_mean = std::sqrt(variance / k * fpc);
    answer.error_bound = 2.0 * total * se_mean;
  }
  return answer;
}

ApproxAnswer ReservoirSampler::EstimateCountInRange(double lo,
                                                    double hi) const {
  return Estimate([lo, hi](const std::pair<double, double>& item) {
    return item.first >= lo && item.first < hi ? 1.0 : 0.0;
  });
}

ApproxAnswer ReservoirSampler::EstimateSumInRange(double lo, double hi) const {
  return Estimate([lo, hi](const std::pair<double, double>& item) {
    return item.first >= lo && item.first < hi ? item.second : 0.0;
  });
}

}  // namespace hedc::analysis
