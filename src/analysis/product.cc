#include "analysis/product.h"

#include <algorithm>
#include <cmath>

#include "archive/compression.h"
#include "core/bytes.h"

namespace hedc::analysis {

namespace {
constexpr uint32_t kGifMagic = 0x48474946;  // "HGIF"
}  // namespace

double Image::MaxPixel() const {
  double best = 0;
  for (double p : pixels) best = std::max(best, p);
  return best;
}

double Image::TotalFlux() const {
  double sum = 0;
  for (double p : pixels) sum += p;
  return sum;
}

std::vector<uint8_t> RenderImage(const Image& image) {
  ByteBuffer header;
  header.PutU32(kGifMagic);
  header.PutVarint(image.width);
  header.PutVarint(image.height);
  double lo = image.pixels.empty() ? 0 : image.pixels[0];
  double hi = lo;
  for (double p : image.pixels) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  header.PutF64(lo);
  header.PutF64(hi);
  // 8-bit quantized pixel plane.
  std::vector<uint8_t> plane;
  plane.reserve(image.pixels.size());
  double range = hi - lo;
  for (double p : image.pixels) {
    double v = range > 0 ? (p - lo) / range : 0.0;
    plane.push_back(static_cast<uint8_t>(std::lround(v * 255.0)));
  }
  std::vector<uint8_t> compressed = archive::Compress(plane);
  header.PutVarint(compressed.size());
  header.PutBytes(compressed.data(), compressed.size());
  return std::move(header).TakeData();
}

Result<Image> ParseRenderedImage(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  HEDC_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kGifMagic) {
    return Status::Corruption("not a GIF-lite image (bad magic)");
  }
  uint64_t width = 0, height = 0, clen = 0;
  double lo = 0, hi = 0;
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&width));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&height));
  HEDC_RETURN_IF_ERROR(reader.GetF64(&lo));
  HEDC_RETURN_IF_ERROR(reader.GetF64(&hi));
  HEDC_RETURN_IF_ERROR(reader.GetVarint(&clen));
  std::vector<uint8_t> compressed(clen);
  HEDC_RETURN_IF_ERROR(reader.GetBytes(compressed.data(), clen));
  HEDC_ASSIGN_OR_RETURN(std::vector<uint8_t> plane,
                        archive::Decompress(compressed));
  if (plane.size() != width * height) {
    return Status::Corruption("GIF-lite pixel plane size mismatch");
  }
  Image image;
  image.width = width;
  image.height = height;
  image.pixels.reserve(plane.size());
  double range = hi - lo;
  for (uint8_t q : plane) {
    image.pixels.push_back(lo + range * (static_cast<double>(q) / 255.0));
  }
  return image;
}

std::vector<uint8_t> RenderSeries(const Series& series, size_t width,
                                  size_t height) {
  Image plot;
  plot.width = width;
  plot.height = height;
  plot.pixels.assign(width * height, 0.0);
  if (!series.y.empty() && width > 0 && height > 0) {
    double y_lo = series.y[0], y_hi = series.y[0];
    for (double v : series.y) {
      y_lo = std::min(y_lo, v);
      y_hi = std::max(y_hi, v);
    }
    double range = y_hi - y_lo;
    for (size_t x = 0; x < width; ++x) {
      size_t idx = x * series.y.size() / width;
      double v = series.y[std::min(idx, series.y.size() - 1)];
      double norm = range > 0 ? (v - y_lo) / range : 0.5;
      size_t py = height - 1 -
                  std::min(static_cast<size_t>(norm * (height - 1)),
                           height - 1);
      plot.pixels[py * width + x] = 1.0;
    }
  }
  return RenderImage(plot);
}

}  // namespace hedc::analysis
