// Key-value configuration, parsed from "key = value" lines.
//
// The paper's name-mapping scheme obtains the [root] element "from the
// system configuration files", and DM call redirection is driven by "local
// configuration files" (§4.3, §5.4). Config is that file.
#ifndef HEDC_CORE_CONFIG_H_
#define HEDC_CORE_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/status.h"

namespace hedc {

class Config {
 public:
  Config() = default;

  // Parses newline-separated "key = value" pairs. '#' starts a comment.
  // Later keys override earlier ones.
  static Result<Config> Parse(std::string_view text);

  void Set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  const std::map<std::string, std::string>& values() const { return values_; }

  // Serializes back to "key = value" lines (sorted by key).
  std::string ToString() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hedc

#endif  // HEDC_CORE_CONFIG_H_
