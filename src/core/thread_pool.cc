#include "core/thread_pool.h"

namespace hedc {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_(queue_capacity) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    if (shutdown_) return false;
    ++pending_;
  }
  if (!queue_.Push(std::move(task))) {
    std::lock_guard<std::mutex> lock(wait_mu_);
    --pending_;
    return false;
  }
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    if (shutdown_) return false;
    ++pending_;
  }
  if (!queue_.TryPush(std::move(task))) {
    std::lock_guard<std::mutex> lock(wait_mu_);
    --pending_;
    if (pending_ == 0) idle_cv_.notify_all();
    return false;
  }
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wait_mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::optional<std::function<void()>> task = queue_.Pop();
    if (!task.has_value()) return;
    (*task)();
    {
      std::lock_guard<std::mutex> lock(wait_mu_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hedc
