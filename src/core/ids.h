// Monotonic id generation for tuples, items, sessions and requests.
#ifndef HEDC_CORE_IDS_H_
#define HEDC_CORE_IDS_H_

#include <atomic>
#include <cstdint>

namespace hedc {

// Thread-safe monotonically increasing id source starting at `start`.
class IdGenerator {
 public:
  explicit IdGenerator(int64_t start = 1) : next_(start) {}

  int64_t Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

  // Ensures future ids are strictly greater than `seen` (used by WAL
  // recovery to resume id allocation past recovered tuples).
  void AdvancePast(int64_t seen) {
    int64_t current = next_.load(std::memory_order_relaxed);
    while (current <= seen &&
           !next_.compare_exchange_weak(current, seen + 1,
                                        std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<int64_t> next_;
};

}  // namespace hedc

#endif  // HEDC_CORE_IDS_H_
