// Small string utilities shared across modules (no dependency on absl).
#ifndef HEDC_CORE_STRINGS_H_
#define HEDC_CORE_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hedc {

// Splits `s` on `sep`; empty pieces are kept (like SQL CSV fields).
std::vector<std::string> Split(std::string_view s, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// ASCII case conversion.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// Parses a signed integer / double; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace hedc

#endif  // HEDC_CORE_STRINGS_H_
