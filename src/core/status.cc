#include "core/status.h"

namespace hedc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace hedc
