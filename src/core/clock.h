// Clock abstraction: HEDC components take time from a Clock interface so
// they can run either in real time (examples, integration tests) or in
// virtual time inside the discrete-event testbed (benchmarks). This is the
// hook that lets one code base serve both the live system and the
// simulated 2003 evaluation environment.
#ifndef HEDC_CORE_CLOCK_H_
#define HEDC_CORE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace hedc {

// Microseconds since an arbitrary epoch.
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros Now() const = 0;
  // Advances (or sleeps) for `duration` microseconds.
  virtual void SleepFor(Micros duration) = 0;
};

// Wall-clock backed by std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  Micros Now() const override;
  void SleepFor(Micros duration) override;

  // Process-wide instance (trivially destructible access pattern).
  static RealClock* Instance();
};

// Manually-advanced clock for tests and simulation glue.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(Micros start = 0) : now_(start) {}

  Micros Now() const override { return now_.load(std::memory_order_relaxed); }
  void SleepFor(Micros duration) override { Advance(duration); }
  void Advance(Micros delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(Micros t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Micros> now_;
};

}  // namespace hedc

#endif  // HEDC_CORE_CLOCK_H_
