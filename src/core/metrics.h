// Process-wide metrics & request tracing.
//
// HEDC's operational schema section holds "logs and messages" about system
// behavior (§3.2); this module is the quantitative half of that story: it
// measures the hot paths (name-mapping resolution, WAL fsyncs, the 4-phase
// PL workflow, per-servlet latency) so performance claims are backed by
// numbers, and follows one analysis request across tiers via trace spans.
//
// Hot-path design: counters and histogram buckets are sharded atomics
// (one cache line per shard) written with relaxed ordering; readers sum
// the shards on demand (snapshot-on-read). Snapshots are monotone but not
// linearizable across metrics — good enough for monitoring, free on the
// write side. Registered metrics live for the process lifetime, so
// components may cache the returned pointers.
#ifndef HEDC_CORE_METRICS_H_
#define HEDC_CORE_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/clock.h"

namespace hedc {

// Monotone event count. Add() is wait-free on a sharded atomic; Value()
// sums the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const;

 private:
  friend class Histogram;  // reuses the per-thread shard striping

  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  // Threads are striped over shards round-robin at first use.
  static size_t ShardIndex();

  Shard shards_[kShards];
};

// Point-in-time value (cache occupancy, queue depth, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram. Bucket i counts observations with
// value <= bounds[i] (first matching bound); one overflow bucket catches
// the rest. Observe() touches exactly one sharded bucket plus the sum.
class Histogram {
 public:
  // Default bounds suit latencies in microseconds: 50us .. 10s.
  static const std::vector<int64_t>& DefaultLatencyBoundsUs();

  explicit Histogram(std::vector<int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t value);

  struct Snapshot {
    std::vector<int64_t> bounds;
    std::vector<int64_t> counts;  // bounds.size() + 1, last = overflow
    int64_t count = 0;            // sum of counts
    int64_t sum = 0;              // sum of observed values

    double Mean() const;
    // Approximate p-quantile (p in [0,1]) by linear interpolation within
    // the containing bucket; the overflow bucket reports its lower bound.
    double Percentile(double p) const;
  };
  Snapshot TakeSnapshot() const;

  int64_t count() const;
  const std::vector<int64_t>& bounds() const { return bounds_; }

 private:
  static constexpr size_t kShards = 8;
  struct Shard {
    std::unique_ptr<std::atomic<int64_t>[]> counts;
    std::atomic<int64_t> sum{0};
  };

  std::vector<int64_t> bounds_;
  Shard shards_[kShards];
};

// One completed span of a traced request: [start_us, end_us] spent in
// `component`/`span` on behalf of request `trace_id`. Times are process
// wall-clock microseconds (steady), independent of any virtual Clock.
struct TraceEvent {
  int64_t trace_id = 0;
  std::string component;
  std::string span;
  Micros start_us = 0;
  Micros end_us = 0;
  std::string note;
};

// Bounded in-memory ring of trace events; the DM mirrors (drains) it into
// the operational `request_traces` table.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 4096) : capacity_(capacity) {}

  int64_t NewTraceId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(TraceEvent event);
  // Oldest-first copy of the buffered events.
  std::vector<TraceEvent> SnapshotTrace() const;
  // Removes and returns all buffered events (oldest first).
  std::vector<TraceEvent> Drain();
  size_t size() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
  std::atomic<int64_t> next_id_{1};
};

class MetricsRegistry;

// RAII latency probe: records elapsed wall-clock microseconds into a
// histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(ElapsedUs());
  }

  int64_t ElapsedUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Cancel() { histogram_ = nullptr; }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

// RAII trace probe: records a TraceEvent into the registry's trace log on
// destruction. Spans with trace_id 0 are dropped (untraced request).
class TraceSpan {
 public:
  // `registry` defaults to MetricsRegistry::Default().
  TraceSpan(int64_t trace_id, std::string component, std::string span,
            MetricsRegistry* registry = nullptr);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  void AddNote(const std::string& note);

 private:
  MetricsRegistry* registry_;
  TraceEvent event_;
};

// Named metric directory. Get* registers on first use and afterwards
// returns the same pointer, which stays valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry used by the instrumented components.
  static MetricsRegistry* Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` applies only on first registration; empty = default latency
  // buckets.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds = {});

  TraceLog& traces() { return traces_; }

  // Flat snapshot for mirroring into the operational schema: counters and
  // gauges one row each, histograms as <name>.count / <name>.sum /
  // <name>.p95.
  struct MetricValue {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "histogram"
    double value = 0;
  };
  std::vector<MetricValue> SnapshotValues() const;

  // Prometheus-style text exposition (names sanitized to [a-z0-9_]).
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  TraceLog traces_;
};

// Microseconds since process start on the steady clock (trace timestamps).
Micros SteadyNowUs();

}  // namespace hedc

#endif  // HEDC_CORE_METRICS_H_
