#include "core/logging.h"

#include <cstdio>

namespace hedc {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), message.c_str());
  };
}

Logger* Logger::Instance() {
  static Logger* const kInstance = new Logger();
  return kInstance;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < min_level()) return;
  // Invoke the sink under mu_: a concurrent SetSink cannot return (and
  // free the old sink's captured state) while an invocation is in flight.
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) sink_(level, message);
}

Logger::Sink Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  Sink prev = std::move(sink_);
  sink_ = std::move(sink);
  return prev;
}

}  // namespace hedc
