// Retry policy with exponential backoff and jitter.
//
// Networked call redirection (§5.4) must tolerate transient peer failures;
// every retry loop in the system shares this policy object so the schedule
// is deterministic under test: the delay for a given retry index is a pure
// function of the policy and the injected Rng stream.
#ifndef HEDC_CORE_BACKOFF_H_
#define HEDC_CORE_BACKOFF_H_

#include <algorithm>

#include "core/clock.h"
#include "core/rng.h"

namespace hedc {

struct RetryPolicy {
  // Total tries including the first; 1 = no retries.
  int max_attempts = 4;
  // Delay before the first retry; doubles (by `multiplier`) per retry up
  // to `max_backoff`.
  Micros initial_backoff = 10 * kMicrosPerMilli;
  double multiplier = 2.0;
  Micros max_backoff = kMicrosPerSecond;
  // Fraction of the delay randomized: the delay is scaled by a factor
  // drawn uniformly from [1 - jitter, 1 + jitter]. 0 = fully
  // deterministic without an Rng.
  double jitter = 0.0;
};

// Delay before retry number `retry` (1-based: 1 follows the first failed
// attempt). `rng` may be null when `jitter` is 0.
inline Micros BackoffDelay(const RetryPolicy& policy, int retry, Rng* rng) {
  double base = static_cast<double>(policy.initial_backoff);
  for (int i = 1; i < retry; ++i) base *= policy.multiplier;
  base = std::min(base, static_cast<double>(policy.max_backoff));
  if (policy.jitter > 0.0 && rng != nullptr) {
    base *= 1.0 + policy.jitter * (2.0 * rng->NextDouble() - 1.0);
  }
  return std::max<Micros>(0, static_cast<Micros>(base));
}

}  // namespace hedc

#endif  // HEDC_CORE_BACKOFF_H_
