// Fast stable content hashing for cache keys.
//
// FNV-1a (64-bit) over canonicalized key material: stable across runs and
// platforms, cheap enough for hot paths, and statistically far better
// distributed than the CRC-32 used for corruption detection (crc32.h).
// The two stay distinct on purpose — CRC detects torn records, FNV names
// content. Not cryptographic: callers must not rely on collision
// resistance against adversarial inputs.
#ifndef HEDC_CORE_CONTENT_HASH_H_
#define HEDC_CORE_CONTENT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hedc {

inline constexpr uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv1a64Prime = 0x100000001b3ull;

inline uint64_t Fnv1a64(const void* data, size_t n,
                        uint64_t seed = kFnv1a64OffsetBasis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= kFnv1a64Prime;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s,
                        uint64_t seed = kFnv1a64OffsetBasis) {
  return Fnv1a64(s.data(), s.size(), seed);
}

// Exact match for string literals: without it, Fnv1a64("x", seed) would
// prefer the (void*, size_t) overload and read `seed` bytes.
inline uint64_t Fnv1a64(const char* s,
                        uint64_t seed = kFnv1a64OffsetBasis) {
  return Fnv1a64(std::string_view(s), seed);
}

}  // namespace hedc

#endif  // HEDC_CORE_CONTENT_HASH_H_
