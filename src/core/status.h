// Status and Result<T>: error handling without exceptions.
//
// Every fallible operation in HEDC returns a Status (or a Result<T> when it
// also produces a value). Codes mirror the failure classes the paper's
// middleware must distinguish: not-found vs. permission vs. timeout vs.
// corruption, so that the PL's fault-tolerance logic can react per class.
#ifndef HEDC_CORE_STATUS_H_
#define HEDC_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hedc {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kPermissionDenied,
  kFailedPrecondition,
  kTimeout,
  kUnavailable,     // transient: retry may succeed (e.g. IDL server restart)
  kCorruption,      // data integrity violation (bad checksum, torn record)
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

// Human-readable name for a status code ("NotFound", "Timeout", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status PermissionDenied(std::string m) {
    return Status(StatusCode::kPermissionDenied, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error carrier. Access to value() requires ok().
template <typename T>
class Result {
 public:
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hedc

// Propagate a non-OK status to the caller.
#define HEDC_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::hedc::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

// Evaluate a Result<T> expression; on error return its status, otherwise
// bind the value to `lhs`.
#define HEDC_ASSIGN_OR_RETURN(lhs, expr)              \
  HEDC_ASSIGN_OR_RETURN_IMPL_(                        \
      HEDC_STATUS_CONCAT_(_res, __LINE__), lhs, expr)
#define HEDC_STATUS_CONCAT_INNER_(a, b) a##b
#define HEDC_STATUS_CONCAT_(a, b) HEDC_STATUS_CONCAT_INNER_(a, b)
#define HEDC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // HEDC_CORE_STATUS_H_
