#include "core/crc32.h"

namespace hedc {
namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table* const kTable = new Crc32Table();
  return *kTable;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed) {
  const Crc32Table& table = Table();
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table.entries[(c ^ data[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace hedc
