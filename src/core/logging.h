// Minimal leveled logger. HEDC's operational schema section stores "logs
// and messages"; components log through this sink so tests can capture and
// assert on operational events, and the DM can mirror them into the
// operational tables.
#ifndef HEDC_CORE_LOGGING_H_
#define HEDC_CORE_LOGGING_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace hedc {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

const char* LogLevelName(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  // Process-wide logger.
  static Logger* Instance();

  void Log(LogLevel level, const std::string& message);

  // Replaces the sink (default writes to stderr). Returns previous sink.
  // Safe while other threads are inside Log: the sink is invoked under
  // mu_, so once SetSink returns, no thread is still running the old sink
  // and its captured state may be destroyed. Consequently a sink must not
  // call Log (or SetSink) itself.
  Sink SetSink(Sink sink);
  void SetMinLevel(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return min_level_.load(std::memory_order_relaxed);
  }

 private:
  Logger();

  std::mutex mu_;
  Sink sink_;
  std::atomic<LogLevel> min_level_{LogLevel::kInfo};
};

// Stream-style helper: HEDC_LOG(kInfo) << "loaded " << n << " units";
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance()->Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace hedc

#define HEDC_LOG(level) ::hedc::LogMessage(::hedc::LogLevel::level)

#endif  // HEDC_CORE_LOGGING_H_
