#include "core/clock.h"

#include <chrono>
#include <thread>

namespace hedc {

Micros RealClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::SleepFor(Micros duration) {
  if (duration > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(duration));
  }
}

RealClock* RealClock::Instance() {
  static RealClock* const kInstance = new RealClock();
  return kInstance;
}

}  // namespace hedc
