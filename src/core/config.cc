#include "core/config.h"

#include "core/strings.h"

namespace hedc {

Result<Config> Config::Parse(std::string_view text) {
  Config config;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    if (!line.empty() && line.front() == '#') continue;
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("config line %zu: missing '='", line_no));
    }
    std::string key(Trim(line.substr(0, eq)));
    std::string value(Trim(line.substr(eq + 1)));
    if (key.empty()) {
      return Status::InvalidArgument(
          StrFormat("config line %zu: empty key", line_no));
    }
    config.values_[key] = value;
  }
  return config;
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  int64_t v;
  return ParseInt64(it->second, &v) ? v : fallback;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double v;
  return ParseDouble(it->second, &v) ? v : fallback;
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

std::string Config::ToString() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace hedc
