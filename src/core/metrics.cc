#include "core/metrics.h"

#include <algorithm>

#include "core/strings.h"

namespace hedc {

// --- Counter ---------------------------------------------------------------

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// --- Histogram -------------------------------------------------------------

const std::vector<int64_t>& Histogram::DefaultLatencyBoundsUs() {
  static const std::vector<int64_t>* const kBounds =
      new std::vector<int64_t>{50,      100,     250,     500,      1000,
                               2500,    5000,    10000,   25000,    50000,
                               100000,  250000,  500000,  1000000,  2500000,
                               10000000};
  return *kBounds;
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBoundsUs();
  for (Shard& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(int64_t value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();  // first bound >= value; bounds_.size() = overflow
  Shard& shard = shards_[Counter::ShardIndex() % kShards];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (int64_t c : snap.counts) snap.count += c;
  return snap;
}

int64_t Histogram::count() const { return TakeSnapshot().count; }

double Histogram::Snapshot::Mean() const {
  return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(count - 1));
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] > rank) {
      double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      if (i >= bounds.size()) return lo;  // overflow bucket: lower bound
      double hi = static_cast<double>(bounds[i]);
      double within = static_cast<double>(rank - seen) /
                      static_cast<double>(counts[i]);
      return lo + (hi - lo) * within;
    }
    seen += counts[i];
  }
  return static_cast<double>(bounds.empty() ? 0 : bounds.back());
}

// --- TraceLog --------------------------------------------------------------

void TraceLog::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) events_.pop_front();
}

std::vector<TraceEvent> TraceLog::SnapshotTrace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(events_.begin(), events_.end());
}

std::vector<TraceEvent> TraceLog::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out(std::make_move_iterator(events_.begin()),
                              std::make_move_iterator(events_.end()));
  events_.clear();
  return out;
}

size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

// --- TraceSpan -------------------------------------------------------------

Micros SteadyNowUs() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - kEpoch)
      .count();
}

TraceSpan::TraceSpan(int64_t trace_id, std::string component,
                     std::string span, MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : MetricsRegistry::Default()) {
  event_.trace_id = trace_id;
  event_.component = std::move(component);
  event_.span = std::move(span);
  event_.start_us = SteadyNowUs();
}

TraceSpan::~TraceSpan() {
  if (event_.trace_id == 0) return;
  event_.end_us = SteadyNowUs();
  registry_->traces().Record(std::move(event_));
}

void TraceSpan::AddNote(const std::string& note) {
  if (!event_.note.empty()) event_.note += "; ";
  event_.note += note;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return kRegistry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

std::vector<MetricsRegistry::MetricValue> MetricsRegistry::SnapshotValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricValue> out;
  out.reserve(counters_.size() + gauges_.size() + 3 * histograms_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, "counter", static_cast<double>(counter->Value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, "gauge", static_cast<double>(gauge->Value())});
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->TakeSnapshot();
    out.push_back(
        {name + ".count", "histogram", static_cast<double>(snap.count)});
    out.push_back(
        {name + ".sum", "histogram", static_cast<double>(snap.sum)});
    out.push_back({name + ".p95", "histogram", snap.Percentile(0.95)});
  }
  return out;
}

namespace {

// Prometheus-compatible metric name: [a-z0-9_] only.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      out += c;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else {
      out += '_';
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += StrFormat("%s %lld\n", SanitizeMetricName(name).c_str(),
                     static_cast<long long>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += StrFormat("%s %lld\n", SanitizeMetricName(name).c_str(),
                     static_cast<long long>(gauge->Value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string base = SanitizeMetricName(name);
    Histogram::Snapshot snap = histogram->TakeSnapshot();
    int64_t cumulative = 0;
    for (size_t i = 0; i < snap.bounds.size(); ++i) {
      cumulative += snap.counts[i];
      out += StrFormat("%s_bucket{le=\"%lld\"} %lld\n", base.c_str(),
                       static_cast<long long>(snap.bounds[i]),
                       static_cast<long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", base.c_str(),
                     static_cast<long long>(snap.count));
    out += StrFormat("%s_sum %lld\n", base.c_str(),
                     static_cast<long long>(snap.sum));
    out += StrFormat("%s_count %lld\n", base.c_str(),
                     static_cast<long long>(snap.count));
  }
  return out;
}

}  // namespace hedc
