// CRC-32 (IEEE 802.3 polynomial) used by the WAL and archive containers to
// detect torn or corrupted records.
#ifndef HEDC_CORE_CRC32_H_
#define HEDC_CORE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hedc {

uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(const std::vector<uint8_t>& data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace hedc

#endif  // HEDC_CORE_CRC32_H_
