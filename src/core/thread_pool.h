// Fixed-size worker pool and a bounded MPMC queue.
//
// The DM uses pools of worker threads for asynchronous call execution
// (§5.4); the PL front end schedules requests onto IDL server managers.
#ifndef HEDC_CORE_THREAD_POOL_H_
#define HEDC_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace hedc {

// Bounded blocking queue. Push blocks when full, Pop blocks when empty.
// Close() wakes all waiters; Pop returns nullopt once closed and drained.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; fails when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
};

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task`; returns false after Shutdown().
  bool Submit(std::function<void()> task);

  // Non-blocking Submit: fails instead of waiting when the queue is
  // full. Lets latency-sensitive callers (parallel scans) degrade to
  // running the work inline rather than block behind a saturated pool.
  bool TrySubmit(std::function<void()> task);

  // Blocks until all submitted tasks have finished executing.
  void Wait();

  // Stops accepting tasks, drains the queue, joins workers.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::mutex wait_mu_;
  std::condition_variable idle_cv_;
  size_t pending_ = 0;  // queued + running
  bool shutdown_ = false;
};

}  // namespace hedc

#endif  // HEDC_CORE_THREAD_POOL_H_
