// ByteBuffer: append-only binary encoder plus a cursor-based decoder.
// Used by the FITS-lite container, the WAL, the wavelet codec and the
// archive compressor. Fixed-width integers are little-endian; varints use
// LEB128.
#ifndef HEDC_CORE_BYTES_H_
#define HEDC_CORE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/status.h"

namespace hedc {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<uint8_t> data) : data_(std::move(data)) {}

  void PutU8(uint8_t v) { data_.push_back(v); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }

  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      data_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    data_.push_back(static_cast<uint8_t>(v));
  }
  // ZigZag-encoded signed varint.
  void PutSignedVarint(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  void PutString(std::string_view s) {
    PutVarint(s.size());
    PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  void PutBytes(const uint8_t* p, size_t n) {
    data_.insert(data_.end(), p, p + n);
  }

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t>&& TakeData() { return std::move(data_); }
  size_t size() const { return data_.size(); }
  void Clear() { data_.clear(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      data_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> data_;
};

// Sequential reader over an externally-owned byte span. All getters report
// kCorruption on truncated input so callers can surface torn records.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::vector<uint8_t>& data)
      : ByteReader(data.data(), data.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ >= size_; }

  Status GetU8(uint8_t* out) { return GetFixed(out); }
  Status GetU16(uint16_t* out) { return GetFixed(out); }
  Status GetU32(uint32_t* out) { return GetFixed(out); }
  Status GetU64(uint64_t* out) { return GetFixed(out); }
  Status GetI64(int64_t* out) {
    uint64_t v = 0;
    HEDC_RETURN_IF_ERROR(GetFixed(&v));
    *out = static_cast<int64_t>(v);
    return Status::Ok();
  }
  Status GetF64(double* out) {
    uint64_t bits = 0;
    HEDC_RETURN_IF_ERROR(GetFixed(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::Ok();
  }

  Status GetVarint(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Status::Corruption("truncated varint");
      uint8_t b = data_[pos_++];
      if (shift >= 63 && (b & ~uint8_t{1})) {
        return Status::Corruption("varint overflow");
      }
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    *out = v;
    return Status::Ok();
  }
  Status GetSignedVarint(int64_t* out) {
    uint64_t raw;
    HEDC_RETURN_IF_ERROR(GetVarint(&raw));
    *out = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return Status::Ok();
  }

  Status GetString(std::string* out) {
    uint64_t n = 0;
    HEDC_RETURN_IF_ERROR(GetVarint(&n));
    if (n > remaining()) return Status::Corruption("truncated string");
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::Ok();
  }
  Status GetBytes(uint8_t* out, size_t n) {
    if (n > remaining()) return Status::Corruption("truncated bytes");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::Ok();
  }
  Status Skip(size_t n) {
    if (n > remaining()) return Status::Corruption("skip past end");
    pos_ += n;
    return Status::Ok();
  }

 private:
  template <typename T>
  Status GetFixed(T* out) {
    if (sizeof(T) > remaining()) {
      return Status::Corruption("truncated fixed-width field");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<uint64_t>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::Ok();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace hedc

#endif  // HEDC_CORE_BYTES_H_
