// Deterministic pseudo-random number generation (xoshiro256**).
//
// All synthetic data (telemetry, workloads, fault injection) flows through
// Rng so experiments are reproducible from a seed.
#ifndef HEDC_CORE_RNG_H_
#define HEDC_CORE_RNG_H_

#include <cmath>
#include <cstdint>

namespace hedc {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Exponential with the given mean (inter-arrival times).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-300;
    return -mean * std::log(u);
  }

  // Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
  }

  // Poisson-distributed count (Knuth for small lambda, normal approx above).
  int64_t Poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda > 64.0) {
      double v = Normal(lambda, std::sqrt(lambda));
      return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
    }
    double l = std::exp(-lambda);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace hedc

#endif  // HEDC_CORE_RNG_H_
