#include "testbed/browse_model.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace hedc::testbed {

double CpuDemandPerRequest(const BrowseCalibration& calibration,
                           double sessions_per_node) {
  double demand = calibration.base_cpu_seconds;
  double over = sessions_per_node - calibration.thrash_knee_sessions;
  if (over > 0) {
    demand += calibration.thrash_coefficient *
              std::pow(over, calibration.thrash_exponent);
  }
  return demand;
}

namespace {

struct Model {
  sim::Simulator simulator;
  std::unique_ptr<sim::FcfsQueue> dbms;
  std::vector<std::unique_ptr<sim::PsCpu>> nodes;
  const BrowseCalibration* calibration;
  double warmup_end = 0;
  int64_t completed = 0;           // after warmup
  int64_t db_queries_after_warmup = 0;
  sim::Accumulator response_times;
  std::vector<double> response_samples;  // raw, for percentiles

  // One closed-loop client pinned to a node.
  void StartClient(int node_index, double cpu_demand) {
    IssueRequest(node_index, cpu_demand);
  }

  void IssueRequest(int node_index, double cpu_demand) {
    double start = simulator.now();
    // Network to the web server, then application-logic CPU.
    simulator.After(calibration->network_seconds, [this, node_index,
                                                   cpu_demand, start] {
      nodes[node_index]->Submit(cpu_demand, [this, node_index, cpu_demand,
                                             start] {
        RunQueries(node_index, cpu_demand, start,
                   calibration->queries_per_request);
      });
    });
  }

  void RunQueries(int node_index, double cpu_demand, double start,
                  int remaining) {
    if (remaining == 0) {
      // Response back to the client; it immediately issues the next
      // request (zero think time, §7.2).
      simulator.After(calibration->network_seconds, [this, node_index,
                                                     cpu_demand, start] {
        if (simulator.now() >= warmup_end) {
          ++completed;
          response_times.Add(simulator.now() - start);
          response_samples.push_back(simulator.now() - start);
        }
        IssueRequest(node_index, cpu_demand);
      });
      return;
    }
    auto submit = [this, node_index, cpu_demand, start, remaining] {
      dbms->Submit(calibration->db_query_seconds,
                   [this, node_index, cpu_demand, start, remaining] {
                     if (simulator.now() >= warmup_end) {
                       ++db_queries_after_warmup;
                     }
                     RunQueries(node_index, cpu_demand, start, remaining - 1);
                   });
    };
    // Queries redirected to a remote DM node pay a network hop first.
    if (calibration->redirect_hop_seconds > 0) {
      simulator.After(calibration->redirect_hop_seconds, submit);
    } else {
      submit();
    }
  }
};

// Nearest-rank percentile over a copy of the samples.
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(p * (samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

BrowseResult RunBrowse(int clients, int nodes, double sim_seconds,
                       const BrowseCalibration& calibration) {
  Model model;
  model.calibration = &calibration;
  model.dbms = std::make_unique<sim::FcfsQueue>(&model.simulator, 1);
  for (int n = 0; n < nodes; ++n) {
    model.nodes.push_back(std::make_unique<sim::PsCpu>(
        &model.simulator, calibration.node_cores));
  }
  double warmup = sim_seconds / 5.0;
  model.warmup_end = warmup;

  // Spread clients evenly; each node's per-request CPU demand reflects
  // its session population (thrashing model).
  std::vector<int> sessions_per_node(nodes, 0);
  for (int c = 0; c < clients; ++c) ++sessions_per_node[c % nodes];
  for (int c = 0; c < clients; ++c) {
    int node = c % nodes;
    double demand = CpuDemandPerRequest(
        calibration, static_cast<double>(sessions_per_node[node]));
    model.StartClient(node, demand);
  }

  model.simulator.RunUntil(warmup + sim_seconds);

  BrowseResult result;
  result.completed_requests = model.completed;
  result.throughput_rps =
      static_cast<double>(model.completed) / sim_seconds;
  result.db_queries_per_sec =
      static_cast<double>(model.db_queries_after_warmup) / sim_seconds;
  result.mean_response_sec = model.response_times.mean();
  result.p50_response_sec = Percentile(model.response_samples, 0.50);
  result.p99_response_sec = Percentile(model.response_samples, 0.99);
  result.db_utilization = result.db_queries_per_sec *
                          calibration.db_query_seconds;
  return result;
}

}  // namespace hedc::testbed
