// Browse-workload model (§7, Figures 4 and 5).
//
// Closed-loop clients issue HEDC browse requests with zero think time.
// Each request executes application-logic CPU work on its middle-tier
// node and seven database queries against the shared DBMS (two full index
// scans, two counts — §7.2), then returns ~47 KB to the client.
//
// Calibration (documented per the paper's own numbers):
//  * DBMS peak throughput ~120 queries/s  ->  deterministic 8.33 ms/query;
//  * a single middle-tier node peaks at ~16-17 requests/s with 16 clients
//    (one complex request per second per client, §7.3)  ->  base
//    application-logic demand 0.115 s on a 2-core node;
//  * beyond ~16 concurrent sessions per node the node thrashes (memory
//    pressure of per-session state: the paper attributes the drop to "the
//    increased processing load of the application logic")  ->  per-request
//    demand grows as base + 0.0085 * (sessions - 16)^0.9, fitted to the
//    96-client endpoint of 3 requests/s.
#ifndef HEDC_TESTBED_BROWSE_MODEL_H_
#define HEDC_TESTBED_BROWSE_MODEL_H_

#include <cstdint>

namespace hedc::testbed {

struct BrowseCalibration {
  double db_query_seconds = 1.0 / 120.0;
  int queries_per_request = 7;
  double node_cores = 2.0;
  double base_cpu_seconds = 0.115;
  double thrash_knee_sessions = 16.0;
  double thrash_coefficient = 0.0085;
  double thrash_exponent = 0.9;
  double network_seconds = 0.004;  // ~47 KB over switched 100 Mb/s
  // Extra per-query hop when database calls are redirected to a remote
  // DataManager node over the RMI transport (0 = co-located DM). The
  // fig5_remote_redirection bench feeds a measured loopback round-trip
  // latency in here to model scale-out with networked redirection.
  double redirect_hop_seconds = 0.0;
};

struct BrowseResult {
  double throughput_rps = 0;       // requests/second at steady state
  double db_queries_per_sec = 0;
  double mean_response_sec = 0;
  double p50_response_sec = 0;
  double p99_response_sec = 0;
  double db_utilization = 0;
  int64_t completed_requests = 0;
};

// Application-logic CPU demand per request at `sessions_per_node`
// concurrent sessions (the thrashing model above).
double CpuDemandPerRequest(const BrowseCalibration& calibration,
                           double sessions_per_node);

// Simulates `clients` closed-loop clients spread evenly over `nodes`
// middle-tier nodes sharing one DBMS, for `sim_seconds` of virtual time
// (after a warmup of 1/5 that length).
BrowseResult RunBrowse(int clients, int nodes, double sim_seconds,
                       const BrowseCalibration& calibration = {});

}  // namespace hedc::testbed

#endif  // HEDC_TESTBED_BROWSE_MODEL_H_
