// Processing-workload model (§8, Tables 1-3).
//
// Requests are computed on server workers (2x177 MHz SPARC), a processing
// client (400 MHz PC fetching data over a 2 MB/s link), or both. Each
// analysis issues 3 DM queries and 2 DM edits whose duration is "almost
// constant and equal in all scenarios" (§8.4); they serialize at the DM /
// DBMS station. Histograms are I/O-intensive: part of their service time
// serializes at the server's single disk. Client-executed requests pay a
// per-request remote-coordination cost (job control over HTTP) on top of
// the data transfer; a cached client skips the transfer.
//
// Calibration (from §8.2/§8.3): imaging ~60 s/analysis on the server and
// ~20 s on the client over ~800 KB inputs; histograms 5-7 s (server) and
// 2-3 s (client) per ~300 KB.
#ifndef HEDC_TESTBED_PROCESSING_MODEL_H_
#define HEDC_TESTBED_PROCESSING_MODEL_H_

#include <string>

namespace hedc::testbed {

struct AnalysisProfile {
  std::string name;
  int num_requests = 100;
  double total_input_mb = 50;       // the test corpus (50 files, §8.1)
  double input_mb_per_request = 0.8;  // data actually moved per analysis
  double output_kb_per_request = 55;
  // Service decomposition per request.
  double server_cpu_sec = 58.5;   // parallel across server CPUs
  double client_cpu_sec = 17.3;
  double server_io_sec = 0.5;     // serialized at the server disk
  double client_io_sec = 0.1;
  int dm_queries = 3;
  int dm_edits = 2;
  // Max requests concurrently in the system ("no more than 20 requests
  // are in the system at any given time"; the imaging submitter
  // effectively kept ~2 in flight — see EXPERIMENTS.md).
  int submission_window = 20;
};

// The two test series of §8.
AnalysisProfile ImagingProfile();
AnalysisProfile HistogramProfile();

struct ProcessingConfig {
  int server_workers = 1;    // concurrent analyses on the server
  int client_workers = 0;    // concurrent analyses on the client
  bool client_cached = false;  // input already on client scratch space
};

struct ProcessingRow {
  std::string label;
  int concurrent_server = 0;
  int concurrent_client = 0;
  double duration_sec = 0;       // overall test duration
  double turnover_gb_per_day = 0;
  double avg_sojourn_sec = 0;
  double server_cpu_util = 0;    // usr CPU fraction of the 2-CPU server
  double client_cpu_util = 0;
  double dm_ops_total_sec = 0;   // aggregate DM query/edit service time
  int64_t total_queries = 0;
  int64_t total_edits = 0;
};

struct ProcessingCalibration {
  double server_cpus = 2.0;
  double dm_op_seconds = 0.25;        // per query or edit, any scenario
  double link_mb_per_sec = 2.0;       // client <-> server HTTP bandwidth
  double remote_coordination_sec = 1.6;  // job control for client runs
  // §8.4: "the central scheduling in combination with the fault tolerant
  // protocol among the services becomes critical" once analyses run in
  // parallel — per-request coordination charged whenever the
  // configuration has two or more workers.
  double parallel_coordination_sec = 2.3;
};

// Simulates one test series under `config`.
ProcessingRow RunProcessing(const AnalysisProfile& profile,
                            const ProcessingConfig& config,
                            const ProcessingCalibration& calibration = {});

}  // namespace hedc::testbed

#endif  // HEDC_TESTBED_PROCESSING_MODEL_H_
