#include "testbed/cluster_workload.h"

namespace hedc::testbed {

namespace {

const char* const kEventTypes[] = {"flare", "quiet", "ejection", "scan"};

}  // namespace

ClusterWorkload::ClusterWorkload(ClusterWorkloadOptions options)
    : options_(options) {}

Status ClusterWorkload::Seed(db::Database* db) const {
  HEDC_RETURN_IF_ERROR(
      db->Execute("CREATE TABLE IF NOT EXISTS cluster_events ("
                  "  event_id INTEGER PRIMARY KEY,"
                  "  event_type TEXT,"
                  "  peak_energy REAL,"
                  "  duration_sec INTEGER"
                  ")")
          .status());
  Rng rng(options_.seed);
  for (int i = 0; i < options_.events; ++i) {
    std::vector<db::Value> row;
    row.push_back(db::Value::Int(i + 1));
    row.push_back(db::Value::Text(
        kEventTypes[rng.UniformInt(0, 3)]));
    row.push_back(db::Value::Real(
        static_cast<double>(rng.UniformInt(10, 5000)) / 10.0));
    row.push_back(db::Value::Int(rng.UniformInt(1, 3600)));
    HEDC_RETURN_IF_ERROR(
        db->Execute("INSERT INTO cluster_events VALUES (?, ?, ?, ?)", row)
            .status());
  }
  return Status::Ok();
}

std::string ClusterWorkload::SessionKeyAt(int64_t index) const {
  // Per-index generator: reproducible regardless of which client thread
  // asks, and independent of call order.
  Rng rng(options_.seed ^ (0x5e55100bULL + static_cast<uint64_t>(index)));
  return "s" + std::to_string(rng.UniformInt(0, options_.sessions - 1));
}

ClusterWorkload::Query ClusterWorkload::QueryAt(int64_t index) const {
  Rng rng(options_.seed ^ (0x5e55100bULL + static_cast<uint64_t>(index)));
  Query q;
  q.session_key = "s" + std::to_string(rng.UniformInt(0, options_.sessions - 1));
  switch (rng.UniformInt(0, 2)) {
    case 0:  // point lookup (the paper's HLE-display query shape)
      q.sql = "SELECT event_id, event_type, peak_energy FROM cluster_events "
              "WHERE event_id = ?";
      q.params.push_back(db::Value::Int(rng.UniformInt(1, options_.events)));
      break;
    case 1: {  // bounded range scan (catalog browsing)
      int64_t lo = rng.UniformInt(1, options_.events - 10);
      q.sql = "SELECT event_id, duration_sec FROM cluster_events "
              "WHERE event_id BETWEEN ? AND ? ORDER BY event_id";
      q.params.push_back(db::Value::Int(lo));
      q.params.push_back(db::Value::Int(lo + rng.UniformInt(1, 20)));
      break;
    }
    default:  // small aggregate over one event class
      q.sql = "SELECT COUNT(*), MAX(peak_energy) FROM cluster_events "
              "WHERE event_type = ?";
      q.params.push_back(
          db::Value::Text(kEventTypes[rng.UniformInt(0, 3)]));
      break;
  }
  return q;
}

}  // namespace hedc::testbed
