#include "testbed/processing_model.h"

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace hedc::testbed {

AnalysisProfile ImagingProfile() {
  AnalysisProfile p;
  p.name = "imaging";
  p.num_requests = 100;
  p.input_mb_per_request = 0.8;   // 2-3 of 50 files per analysis, ~800 KB
  p.output_kb_per_request = 55;   // 5.5 MB over 100 GIFs
  p.server_cpu_sec = 58.5;
  p.client_cpu_sec = 17.3;
  p.server_io_sec = 0.5;
  p.client_io_sec = 0.1;
  p.dm_queries = 3;
  p.dm_edits = 2;
  // The imaging submitter effectively kept ~2 analyses in flight (the
  // paper's measured sojourn times imply L ~ 1.8 by Little's law).
  p.submission_window = 2;
  return p;
}

AnalysisProfile HistogramProfile() {
  AnalysisProfile p;
  p.name = "histogram";
  p.num_requests = 150;
  p.input_mb_per_request = 1.0 / 3.0;  // a third of a 1 MB file
  p.output_kb_per_request = 8;         // 1.2 MB over 150 GIFs
  p.server_cpu_sec = 3.35;
  p.client_cpu_sec = 2.2;
  p.server_io_sec = 1.8;   // the I/O-intensive series
  p.client_io_sec = 0.3;
  p.dm_queries = 3;
  p.dm_edits = 2;
  p.submission_window = 20;
  return p;
}

namespace {

// Counting slot resource: continuation-style acquire/release (a worker
// stays held across its internal disk + CPU stages, unlike FcfsQueue).
class SlotPool {
 public:
  explicit SlotPool(int slots) : free_(slots) {}

  void Acquire(std::function<void()> on_granted) {
    if (free_ > 0) {
      --free_;
      on_granted();
    } else {
      waiting_.push_back(std::move(on_granted));
    }
  }

  void Release() {
    if (!waiting_.empty()) {
      auto next = std::move(waiting_.front());
      waiting_.pop_front();
      next();
    } else {
      ++free_;
    }
  }

  int free_slots() const { return free_; }

 private:
  int free_;
  std::deque<std::function<void()>> waiting_;
};

struct Model {
  sim::Simulator simulator;
  const AnalysisProfile* profile;
  const ProcessingConfig* config;
  const ProcessingCalibration* calibration;

  std::unique_ptr<SlotPool> server_slots;
  std::unique_ptr<SlotPool> client_slots;
  std::unique_ptr<sim::FcfsQueue> dm_station;
  std::unique_ptr<sim::FcfsQueue> server_disk;
  std::unique_ptr<sim::FcfsQueue> link;

  int submitted = 0;
  int completed = 0;
  double finish_time = 0;
  double server_cpu_busy = 0;
  double client_cpu_busy = 0;
  double dm_busy = 0;
  int64_t queries = 0;
  int64_t edits = 0;
  sim::Accumulator sojourn;

  void SubmitNextIfAny() {
    if (submitted >= profile->num_requests) return;
    ++submitted;
    double enter_time = simulator.now();
    // A request is dispatched to whichever executor pool has a free slot;
    // when none is free it waits for the first to free up. Server slots
    // are probed first (the front end runs there).
    DispatchRequest(enter_time);
  }

  void DispatchRequest(double enter_time) {
    bool server_free = server_slots->free_slots() > 0;
    bool client_free = client_slots->free_slots() > 0;
    // The faster executor (the client PC outruns the 177 MHz SPARC) is
    // preferred when idle.
    if (client_free) {
      client_slots->Acquire(
          [this, enter_time] { RunOnClient(enter_time); });
    } else if (server_free) {
      server_slots->Acquire(
          [this, enter_time] { RunOnServer(enter_time); });
    } else if (config->client_workers == 0) {
      server_slots->Acquire(
          [this, enter_time] { RunOnServer(enter_time); });
    } else {
      // Both busy: wait on both; first grant wins. Implemented by waiting
      // on the server pool and letting client releases re-probe queued
      // dispatches via the shared pending list.
      pending.push_back(enter_time);
    }
  }

  std::deque<double> pending;

  void OnSlotFreed() {
    if (pending.empty()) return;
    double enter_time = pending.front();
    pending.pop_front();
    DispatchRequest(enter_time);
  }

  void DmOps(int count, std::function<void()> done_fn) {
    if (count == 0) {
      done_fn();
      return;
    }
    dm_busy += calibration->dm_op_seconds;
    auto done = std::make_shared<std::function<void()>>(std::move(done_fn));
    dm_station->Submit(calibration->dm_op_seconds, [this, count, done] {
      DmOps(count - 1, *done);
    });
  }

  double CoordinationDelay() const {
    return (config->server_workers + config->client_workers >= 2)
               ? calibration->parallel_coordination_sec
               : 0.0;
  }

  void RunOnServer(double enter_time) {
    queries += profile->dm_queries;
    simulator.After(CoordinationDelay(), [this, enter_time] {
    DmOps(profile->dm_queries, [this, enter_time] {
      // Disk I/O serialized at the single server disk.
      server_disk->Submit(profile->server_io_sec, [this, enter_time] {
        // CPU burst: the worker owns one of the server CPUs.
        server_cpu_busy += profile->server_cpu_sec;
        simulator.After(profile->server_cpu_sec, [this, enter_time] {
          edits += profile->dm_edits;
          DmOps(profile->dm_edits, [this, enter_time] {
            Complete(enter_time, /*on_server=*/true);
          });
        });
      });
    });
    });
  }

  void RunOnClient(double enter_time) {
    queries += profile->dm_queries;
    // Remote coordination (job control round trips) precedes everything;
    // parallel configurations add the §8.4 scheduling cost.
    simulator.After(
        calibration->remote_coordination_sec + CoordinationDelay(),
        [this, enter_time] {
      DmOps(profile->dm_queries, [this, enter_time] {
        auto after_transfer = [this, enter_time] {
          // Local scratch I/O then the client CPU burst.
          simulator.After(profile->client_io_sec, [this, enter_time] {
            client_cpu_busy += profile->client_cpu_sec;
            simulator.After(profile->client_cpu_sec, [this, enter_time] {
              edits += profile->dm_edits;
              DmOps(profile->dm_edits, [this, enter_time] {
                Complete(enter_time, /*on_server=*/false);
              });
            });
          });
        };
        if (config->client_cached) {
          after_transfer();
        } else {
          double transfer_sec =
              profile->input_mb_per_request / calibration->link_mb_per_sec;
          link->Submit(transfer_sec, after_transfer);
        }
      });
    });
  }

  void Complete(double enter_time, bool on_server) {
    ++completed;
    sojourn.Add(simulator.now() - enter_time);
    finish_time = simulator.now();
    if (on_server) {
      server_slots->Release();
    } else {
      client_slots->Release();
    }
    OnSlotFreed();
    SubmitNextIfAny();
  }
};

}  // namespace

ProcessingRow RunProcessing(const AnalysisProfile& profile,
                            const ProcessingConfig& config,
                            const ProcessingCalibration& calibration) {
  Model model;
  model.profile = &profile;
  model.config = &config;
  model.calibration = &calibration;
  model.server_slots = std::make_unique<SlotPool>(config.server_workers);
  model.client_slots = std::make_unique<SlotPool>(config.client_workers);
  model.dm_station = std::make_unique<sim::FcfsQueue>(&model.simulator, 1);
  model.server_disk = std::make_unique<sim::FcfsQueue>(&model.simulator, 1);
  model.link = std::make_unique<sim::FcfsQueue>(&model.simulator, 1);

  // Fill the submission window at t = 0; completions refill it.
  int initial = profile.submission_window;
  for (int i = 0; i < initial; ++i) model.SubmitNextIfAny();
  model.simulator.Run();

  ProcessingRow row;
  row.label = profile.name;
  row.concurrent_server = config.server_workers;
  row.concurrent_client = config.client_workers;
  row.duration_sec = model.finish_time;
  double input_gb = profile.total_input_mb / 1024.0;
  row.turnover_gb_per_day =
      model.finish_time > 0 ? input_gb * 86400.0 / model.finish_time : 0;
  row.avg_sojourn_sec = model.sojourn.mean();
  row.server_cpu_util =
      model.finish_time > 0
          ? model.server_cpu_busy /
                (calibration.server_cpus * model.finish_time)
          : 0;
  row.client_cpu_util =
      model.finish_time > 0 ? model.client_cpu_busy / model.finish_time : 0;
  row.dm_ops_total_sec = model.dm_busy;
  row.total_queries = model.queries;
  row.total_edits = model.edits;
  return row;
}

}  // namespace hedc::testbed
