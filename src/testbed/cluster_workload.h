// Deterministic cluster workload (§7 testbed).
//
// The cluster tests and the scale-out bench need two things the browse /
// processing models don't give them: (a) a dataset that can be seeded
// *byte-identically* into every node of a cluster, so any node can answer
// any query and a routed answer can be diffed against a single-node
// answer; and (b) a reproducible stream of parameterized read queries
// shaped like the paper's catalog browsing (point lookups, range scans,
// small aggregates) to drive through the routed dispatch path.
//
// Everything is a pure function of the seed: same seed → same rows on
// every node and the same query sequence on every run.
#ifndef HEDC_TESTBED_CLUSTER_WORKLOAD_H_
#define HEDC_TESTBED_CLUSTER_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "db/database.h"

namespace hedc::testbed {

struct ClusterWorkloadOptions {
  uint64_t seed = 7;
  // Rows seeded into cluster_events.
  int events = 200;
  // Distinct session keys the query stream draws from.
  int sessions = 16;
};

class ClusterWorkload {
 public:
  explicit ClusterWorkload(ClusterWorkloadOptions options = {});

  // Creates the cluster_events table and inserts `events` deterministic
  // rows. Call once per node with the same options to get identical data
  // everywhere (row content depends only on the seed, not the node).
  Status Seed(db::Database* db) const;

  struct Query {
    std::string session_key;  // routing key ("s0".."sN-1")
    std::string sql;          // parameterized SELECT on cluster_events
    std::vector<db::Value> params;
  };

  // The `index`-th query of the deterministic stream. Stateless: safe to
  // call concurrently, and interleaving across client threads preserves
  // per-index reproducibility.
  Query QueryAt(int64_t index) const;

  // Session key of the `index`-th query (for routing assertions).
  std::string SessionKeyAt(int64_t index) const;

 private:
  ClusterWorkloadOptions options_;
};

}  // namespace hedc::testbed

#endif  // HEDC_TESTBED_CLUSTER_WORKLOAD_H_
