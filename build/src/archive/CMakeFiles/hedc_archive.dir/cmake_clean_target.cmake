file(REMOVE_RECURSE
  "libhedc_archive.a"
)
