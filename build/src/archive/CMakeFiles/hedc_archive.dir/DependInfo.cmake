
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/archive/archive.cc" "src/archive/CMakeFiles/hedc_archive.dir/archive.cc.o" "gcc" "src/archive/CMakeFiles/hedc_archive.dir/archive.cc.o.d"
  "/root/repo/src/archive/compression.cc" "src/archive/CMakeFiles/hedc_archive.dir/compression.cc.o" "gcc" "src/archive/CMakeFiles/hedc_archive.dir/compression.cc.o.d"
  "/root/repo/src/archive/fits.cc" "src/archive/CMakeFiles/hedc_archive.dir/fits.cc.o" "gcc" "src/archive/CMakeFiles/hedc_archive.dir/fits.cc.o.d"
  "/root/repo/src/archive/name_mapper.cc" "src/archive/CMakeFiles/hedc_archive.dir/name_mapper.cc.o" "gcc" "src/archive/CMakeFiles/hedc_archive.dir/name_mapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hedc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/hedc_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
