# Empty compiler generated dependencies file for hedc_archive.
# This may be replaced when dependencies are built.
