file(REMOVE_RECURSE
  "CMakeFiles/hedc_archive.dir/archive.cc.o"
  "CMakeFiles/hedc_archive.dir/archive.cc.o.d"
  "CMakeFiles/hedc_archive.dir/compression.cc.o"
  "CMakeFiles/hedc_archive.dir/compression.cc.o.d"
  "CMakeFiles/hedc_archive.dir/fits.cc.o"
  "CMakeFiles/hedc_archive.dir/fits.cc.o.d"
  "CMakeFiles/hedc_archive.dir/name_mapper.cc.o"
  "CMakeFiles/hedc_archive.dir/name_mapper.cc.o.d"
  "libhedc_archive.a"
  "libhedc_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
