file(REMOVE_RECURSE
  "CMakeFiles/hedc_client.dir/cache.cc.o"
  "CMakeFiles/hedc_client.dir/cache.cc.o.d"
  "CMakeFiles/hedc_client.dir/streamcorder.cc.o"
  "CMakeFiles/hedc_client.dir/streamcorder.cc.o.d"
  "CMakeFiles/hedc_client.dir/synoptic.cc.o"
  "CMakeFiles/hedc_client.dir/synoptic.cc.o.d"
  "libhedc_client.a"
  "libhedc_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
