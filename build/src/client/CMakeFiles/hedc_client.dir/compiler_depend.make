# Empty compiler generated dependencies file for hedc_client.
# This may be replaced when dependencies are built.
