file(REMOVE_RECURSE
  "libhedc_client.a"
)
