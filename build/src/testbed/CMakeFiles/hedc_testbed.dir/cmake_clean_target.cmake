file(REMOVE_RECURSE
  "libhedc_testbed.a"
)
