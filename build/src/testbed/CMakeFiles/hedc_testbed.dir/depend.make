# Empty dependencies file for hedc_testbed.
# This may be replaced when dependencies are built.
