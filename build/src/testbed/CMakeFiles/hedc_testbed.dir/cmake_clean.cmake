file(REMOVE_RECURSE
  "CMakeFiles/hedc_testbed.dir/browse_model.cc.o"
  "CMakeFiles/hedc_testbed.dir/browse_model.cc.o.d"
  "CMakeFiles/hedc_testbed.dir/processing_model.cc.o"
  "CMakeFiles/hedc_testbed.dir/processing_model.cc.o.d"
  "libhedc_testbed.a"
  "libhedc_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
