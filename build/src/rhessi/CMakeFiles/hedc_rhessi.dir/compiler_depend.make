# Empty compiler generated dependencies file for hedc_rhessi.
# This may be replaced when dependencies are built.
