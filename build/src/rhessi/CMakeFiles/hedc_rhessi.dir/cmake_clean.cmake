file(REMOVE_RECURSE
  "CMakeFiles/hedc_rhessi.dir/calibration.cc.o"
  "CMakeFiles/hedc_rhessi.dir/calibration.cc.o.d"
  "CMakeFiles/hedc_rhessi.dir/event_detect.cc.o"
  "CMakeFiles/hedc_rhessi.dir/event_detect.cc.o.d"
  "CMakeFiles/hedc_rhessi.dir/phoenix.cc.o"
  "CMakeFiles/hedc_rhessi.dir/phoenix.cc.o.d"
  "CMakeFiles/hedc_rhessi.dir/photon.cc.o"
  "CMakeFiles/hedc_rhessi.dir/photon.cc.o.d"
  "CMakeFiles/hedc_rhessi.dir/raw_unit.cc.o"
  "CMakeFiles/hedc_rhessi.dir/raw_unit.cc.o.d"
  "CMakeFiles/hedc_rhessi.dir/telemetry.cc.o"
  "CMakeFiles/hedc_rhessi.dir/telemetry.cc.o.d"
  "libhedc_rhessi.a"
  "libhedc_rhessi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_rhessi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
