
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rhessi/calibration.cc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/calibration.cc.o" "gcc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/calibration.cc.o.d"
  "/root/repo/src/rhessi/event_detect.cc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/event_detect.cc.o" "gcc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/event_detect.cc.o.d"
  "/root/repo/src/rhessi/phoenix.cc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/phoenix.cc.o" "gcc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/phoenix.cc.o.d"
  "/root/repo/src/rhessi/photon.cc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/photon.cc.o" "gcc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/photon.cc.o.d"
  "/root/repo/src/rhessi/raw_unit.cc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/raw_unit.cc.o" "gcc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/raw_unit.cc.o.d"
  "/root/repo/src/rhessi/telemetry.cc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/telemetry.cc.o" "gcc" "src/rhessi/CMakeFiles/hedc_rhessi.dir/telemetry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hedc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/archive/CMakeFiles/hedc_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/hedc_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
