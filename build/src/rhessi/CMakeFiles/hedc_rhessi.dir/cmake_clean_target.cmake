file(REMOVE_RECURSE
  "libhedc_rhessi.a"
)
