file(REMOVE_RECURSE
  "libhedc_sim.a"
)
