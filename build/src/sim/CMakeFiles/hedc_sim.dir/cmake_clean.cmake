file(REMOVE_RECURSE
  "CMakeFiles/hedc_sim.dir/simulator.cc.o"
  "CMakeFiles/hedc_sim.dir/simulator.cc.o.d"
  "libhedc_sim.a"
  "libhedc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
