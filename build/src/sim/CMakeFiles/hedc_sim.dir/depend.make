# Empty dependencies file for hedc_sim.
# This may be replaced when dependencies are built.
