file(REMOVE_RECURSE
  "CMakeFiles/hedc_web.dir/http.cc.o"
  "CMakeFiles/hedc_web.dir/http.cc.o.d"
  "CMakeFiles/hedc_web.dir/servlets.cc.o"
  "CMakeFiles/hedc_web.dir/servlets.cc.o.d"
  "CMakeFiles/hedc_web.dir/template.cc.o"
  "CMakeFiles/hedc_web.dir/template.cc.o.d"
  "libhedc_web.a"
  "libhedc_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
