file(REMOVE_RECURSE
  "libhedc_web.a"
)
