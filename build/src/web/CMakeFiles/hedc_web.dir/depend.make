# Empty dependencies file for hedc_web.
# This may be replaced when dependencies are built.
