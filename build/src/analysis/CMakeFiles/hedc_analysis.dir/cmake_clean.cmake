file(REMOVE_RECURSE
  "CMakeFiles/hedc_analysis.dir/product.cc.o"
  "CMakeFiles/hedc_analysis.dir/product.cc.o.d"
  "CMakeFiles/hedc_analysis.dir/routines.cc.o"
  "CMakeFiles/hedc_analysis.dir/routines.cc.o.d"
  "libhedc_analysis.a"
  "libhedc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
