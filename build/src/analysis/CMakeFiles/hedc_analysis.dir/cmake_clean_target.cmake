file(REMOVE_RECURSE
  "libhedc_analysis.a"
)
