# Empty dependencies file for hedc_analysis.
# This may be replaced when dependencies are built.
