file(REMOVE_RECURSE
  "libhedc_pl.a"
)
