# Empty dependencies file for hedc_pl.
# This may be replaced when dependencies are built.
