file(REMOVE_RECURSE
  "CMakeFiles/hedc_pl.dir/commit.cc.o"
  "CMakeFiles/hedc_pl.dir/commit.cc.o.d"
  "CMakeFiles/hedc_pl.dir/frontend.cc.o"
  "CMakeFiles/hedc_pl.dir/frontend.cc.o.d"
  "CMakeFiles/hedc_pl.dir/idl_server.cc.o"
  "CMakeFiles/hedc_pl.dir/idl_server.cc.o.d"
  "CMakeFiles/hedc_pl.dir/server_manager.cc.o"
  "CMakeFiles/hedc_pl.dir/server_manager.cc.o.d"
  "libhedc_pl.a"
  "libhedc_pl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_pl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
