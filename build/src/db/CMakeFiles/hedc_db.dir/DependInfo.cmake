
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/blob_store.cc" "src/db/CMakeFiles/hedc_db.dir/blob_store.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/blob_store.cc.o.d"
  "/root/repo/src/db/btree.cc" "src/db/CMakeFiles/hedc_db.dir/btree.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/btree.cc.o.d"
  "/root/repo/src/db/checkpoint.cc" "src/db/CMakeFiles/hedc_db.dir/checkpoint.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/checkpoint.cc.o.d"
  "/root/repo/src/db/connection.cc" "src/db/CMakeFiles/hedc_db.dir/connection.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/connection.cc.o.d"
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/hedc_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/database.cc.o.d"
  "/root/repo/src/db/explain.cc" "src/db/CMakeFiles/hedc_db.dir/explain.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/explain.cc.o.d"
  "/root/repo/src/db/expr.cc" "src/db/CMakeFiles/hedc_db.dir/expr.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/expr.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/db/CMakeFiles/hedc_db.dir/schema.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/schema.cc.o.d"
  "/root/repo/src/db/sql.cc" "src/db/CMakeFiles/hedc_db.dir/sql.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/sql.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/hedc_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/table.cc.o.d"
  "/root/repo/src/db/value.cc" "src/db/CMakeFiles/hedc_db.dir/value.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/value.cc.o.d"
  "/root/repo/src/db/wal.cc" "src/db/CMakeFiles/hedc_db.dir/wal.cc.o" "gcc" "src/db/CMakeFiles/hedc_db.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hedc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
