# Empty dependencies file for hedc_db.
# This may be replaced when dependencies are built.
