file(REMOVE_RECURSE
  "CMakeFiles/hedc_db.dir/blob_store.cc.o"
  "CMakeFiles/hedc_db.dir/blob_store.cc.o.d"
  "CMakeFiles/hedc_db.dir/btree.cc.o"
  "CMakeFiles/hedc_db.dir/btree.cc.o.d"
  "CMakeFiles/hedc_db.dir/checkpoint.cc.o"
  "CMakeFiles/hedc_db.dir/checkpoint.cc.o.d"
  "CMakeFiles/hedc_db.dir/connection.cc.o"
  "CMakeFiles/hedc_db.dir/connection.cc.o.d"
  "CMakeFiles/hedc_db.dir/database.cc.o"
  "CMakeFiles/hedc_db.dir/database.cc.o.d"
  "CMakeFiles/hedc_db.dir/explain.cc.o"
  "CMakeFiles/hedc_db.dir/explain.cc.o.d"
  "CMakeFiles/hedc_db.dir/expr.cc.o"
  "CMakeFiles/hedc_db.dir/expr.cc.o.d"
  "CMakeFiles/hedc_db.dir/schema.cc.o"
  "CMakeFiles/hedc_db.dir/schema.cc.o.d"
  "CMakeFiles/hedc_db.dir/sql.cc.o"
  "CMakeFiles/hedc_db.dir/sql.cc.o.d"
  "CMakeFiles/hedc_db.dir/table.cc.o"
  "CMakeFiles/hedc_db.dir/table.cc.o.d"
  "CMakeFiles/hedc_db.dir/value.cc.o"
  "CMakeFiles/hedc_db.dir/value.cc.o.d"
  "CMakeFiles/hedc_db.dir/wal.cc.o"
  "CMakeFiles/hedc_db.dir/wal.cc.o.d"
  "libhedc_db.a"
  "libhedc_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
