file(REMOVE_RECURSE
  "libhedc_db.a"
)
