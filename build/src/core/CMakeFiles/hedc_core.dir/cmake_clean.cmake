file(REMOVE_RECURSE
  "CMakeFiles/hedc_core.dir/clock.cc.o"
  "CMakeFiles/hedc_core.dir/clock.cc.o.d"
  "CMakeFiles/hedc_core.dir/config.cc.o"
  "CMakeFiles/hedc_core.dir/config.cc.o.d"
  "CMakeFiles/hedc_core.dir/crc32.cc.o"
  "CMakeFiles/hedc_core.dir/crc32.cc.o.d"
  "CMakeFiles/hedc_core.dir/logging.cc.o"
  "CMakeFiles/hedc_core.dir/logging.cc.o.d"
  "CMakeFiles/hedc_core.dir/status.cc.o"
  "CMakeFiles/hedc_core.dir/status.cc.o.d"
  "CMakeFiles/hedc_core.dir/strings.cc.o"
  "CMakeFiles/hedc_core.dir/strings.cc.o.d"
  "CMakeFiles/hedc_core.dir/thread_pool.cc.o"
  "CMakeFiles/hedc_core.dir/thread_pool.cc.o.d"
  "libhedc_core.a"
  "libhedc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
