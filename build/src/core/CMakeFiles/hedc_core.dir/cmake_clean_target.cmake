file(REMOVE_RECURSE
  "libhedc_core.a"
)
