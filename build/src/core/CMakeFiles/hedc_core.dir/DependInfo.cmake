
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clock.cc" "src/core/CMakeFiles/hedc_core.dir/clock.cc.o" "gcc" "src/core/CMakeFiles/hedc_core.dir/clock.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/hedc_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/hedc_core.dir/config.cc.o.d"
  "/root/repo/src/core/crc32.cc" "src/core/CMakeFiles/hedc_core.dir/crc32.cc.o" "gcc" "src/core/CMakeFiles/hedc_core.dir/crc32.cc.o.d"
  "/root/repo/src/core/logging.cc" "src/core/CMakeFiles/hedc_core.dir/logging.cc.o" "gcc" "src/core/CMakeFiles/hedc_core.dir/logging.cc.o.d"
  "/root/repo/src/core/status.cc" "src/core/CMakeFiles/hedc_core.dir/status.cc.o" "gcc" "src/core/CMakeFiles/hedc_core.dir/status.cc.o.d"
  "/root/repo/src/core/strings.cc" "src/core/CMakeFiles/hedc_core.dir/strings.cc.o" "gcc" "src/core/CMakeFiles/hedc_core.dir/strings.cc.o.d"
  "/root/repo/src/core/thread_pool.cc" "src/core/CMakeFiles/hedc_core.dir/thread_pool.cc.o" "gcc" "src/core/CMakeFiles/hedc_core.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
