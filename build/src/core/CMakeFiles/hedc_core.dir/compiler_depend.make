# Empty compiler generated dependencies file for hedc_core.
# This may be replaced when dependencies are built.
