# Empty dependencies file for hedc_dm.
# This may be replaced when dependencies are built.
