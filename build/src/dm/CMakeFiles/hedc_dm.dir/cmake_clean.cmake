file(REMOVE_RECURSE
  "CMakeFiles/hedc_dm.dir/dm.cc.o"
  "CMakeFiles/hedc_dm.dir/dm.cc.o.d"
  "CMakeFiles/hedc_dm.dir/hedc_schema.cc.o"
  "CMakeFiles/hedc_dm.dir/hedc_schema.cc.o.d"
  "CMakeFiles/hedc_dm.dir/io_layer.cc.o"
  "CMakeFiles/hedc_dm.dir/io_layer.cc.o.d"
  "CMakeFiles/hedc_dm.dir/predefined_queries.cc.o"
  "CMakeFiles/hedc_dm.dir/predefined_queries.cc.o.d"
  "CMakeFiles/hedc_dm.dir/process_layer.cc.o"
  "CMakeFiles/hedc_dm.dir/process_layer.cc.o.d"
  "CMakeFiles/hedc_dm.dir/query_spec.cc.o"
  "CMakeFiles/hedc_dm.dir/query_spec.cc.o.d"
  "CMakeFiles/hedc_dm.dir/remote.cc.o"
  "CMakeFiles/hedc_dm.dir/remote.cc.o.d"
  "CMakeFiles/hedc_dm.dir/semantic_layer.cc.o"
  "CMakeFiles/hedc_dm.dir/semantic_layer.cc.o.d"
  "CMakeFiles/hedc_dm.dir/session.cc.o"
  "CMakeFiles/hedc_dm.dir/session.cc.o.d"
  "CMakeFiles/hedc_dm.dir/users.cc.o"
  "CMakeFiles/hedc_dm.dir/users.cc.o.d"
  "libhedc_dm.a"
  "libhedc_dm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
