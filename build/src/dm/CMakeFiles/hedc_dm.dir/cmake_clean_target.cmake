file(REMOVE_RECURSE
  "libhedc_dm.a"
)
