
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dm/dm.cc" "src/dm/CMakeFiles/hedc_dm.dir/dm.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/dm.cc.o.d"
  "/root/repo/src/dm/hedc_schema.cc" "src/dm/CMakeFiles/hedc_dm.dir/hedc_schema.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/hedc_schema.cc.o.d"
  "/root/repo/src/dm/io_layer.cc" "src/dm/CMakeFiles/hedc_dm.dir/io_layer.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/io_layer.cc.o.d"
  "/root/repo/src/dm/predefined_queries.cc" "src/dm/CMakeFiles/hedc_dm.dir/predefined_queries.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/predefined_queries.cc.o.d"
  "/root/repo/src/dm/process_layer.cc" "src/dm/CMakeFiles/hedc_dm.dir/process_layer.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/process_layer.cc.o.d"
  "/root/repo/src/dm/query_spec.cc" "src/dm/CMakeFiles/hedc_dm.dir/query_spec.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/query_spec.cc.o.d"
  "/root/repo/src/dm/remote.cc" "src/dm/CMakeFiles/hedc_dm.dir/remote.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/remote.cc.o.d"
  "/root/repo/src/dm/semantic_layer.cc" "src/dm/CMakeFiles/hedc_dm.dir/semantic_layer.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/semantic_layer.cc.o.d"
  "/root/repo/src/dm/session.cc" "src/dm/CMakeFiles/hedc_dm.dir/session.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/session.cc.o.d"
  "/root/repo/src/dm/users.cc" "src/dm/CMakeFiles/hedc_dm.dir/users.cc.o" "gcc" "src/dm/CMakeFiles/hedc_dm.dir/users.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hedc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/hedc_db.dir/DependInfo.cmake"
  "/root/repo/build/src/archive/CMakeFiles/hedc_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/rhessi/CMakeFiles/hedc_rhessi.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/hedc_wavelet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
