file(REMOVE_RECURSE
  "CMakeFiles/hedc_wavelet.dir/codec.cc.o"
  "CMakeFiles/hedc_wavelet.dir/codec.cc.o.d"
  "CMakeFiles/hedc_wavelet.dir/haar.cc.o"
  "CMakeFiles/hedc_wavelet.dir/haar.cc.o.d"
  "CMakeFiles/hedc_wavelet.dir/views.cc.o"
  "CMakeFiles/hedc_wavelet.dir/views.cc.o.d"
  "libhedc_wavelet.a"
  "libhedc_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedc_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
