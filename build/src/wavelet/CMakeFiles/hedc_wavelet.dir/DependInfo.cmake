
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wavelet/codec.cc" "src/wavelet/CMakeFiles/hedc_wavelet.dir/codec.cc.o" "gcc" "src/wavelet/CMakeFiles/hedc_wavelet.dir/codec.cc.o.d"
  "/root/repo/src/wavelet/haar.cc" "src/wavelet/CMakeFiles/hedc_wavelet.dir/haar.cc.o" "gcc" "src/wavelet/CMakeFiles/hedc_wavelet.dir/haar.cc.o.d"
  "/root/repo/src/wavelet/views.cc" "src/wavelet/CMakeFiles/hedc_wavelet.dir/views.cc.o" "gcc" "src/wavelet/CMakeFiles/hedc_wavelet.dir/views.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hedc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
