# Empty dependencies file for hedc_wavelet.
# This may be replaced when dependencies are built.
