file(REMOVE_RECURSE
  "libhedc_wavelet.a"
)
