# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for abl_overhead_vs_grain.
