# Empty dependencies file for abl_overhead_vs_grain.
# This may be replaced when dependencies are built.
