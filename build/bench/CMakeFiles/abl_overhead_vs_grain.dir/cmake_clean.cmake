file(REMOVE_RECURSE
  "CMakeFiles/abl_overhead_vs_grain.dir/abl_overhead_vs_grain.cc.o"
  "CMakeFiles/abl_overhead_vs_grain.dir/abl_overhead_vs_grain.cc.o.d"
  "abl_overhead_vs_grain"
  "abl_overhead_vs_grain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_overhead_vs_grain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
