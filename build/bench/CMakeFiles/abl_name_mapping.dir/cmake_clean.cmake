file(REMOVE_RECURSE
  "CMakeFiles/abl_name_mapping.dir/abl_name_mapping.cc.o"
  "CMakeFiles/abl_name_mapping.dir/abl_name_mapping.cc.o.d"
  "abl_name_mapping"
  "abl_name_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_name_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
