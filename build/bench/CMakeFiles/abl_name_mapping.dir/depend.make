# Empty dependencies file for abl_name_mapping.
# This may be replaced when dependencies are built.
