# Empty dependencies file for abl_lob_vs_file.
# This may be replaced when dependencies are built.
