file(REMOVE_RECURSE
  "CMakeFiles/abl_lob_vs_file.dir/abl_lob_vs_file.cc.o"
  "CMakeFiles/abl_lob_vs_file.dir/abl_lob_vs_file.cc.o.d"
  "abl_lob_vs_file"
  "abl_lob_vs_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lob_vs_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
