file(REMOVE_RECURSE
  "CMakeFiles/table1_processing.dir/table1_processing.cc.o"
  "CMakeFiles/table1_processing.dir/table1_processing.cc.o.d"
  "table1_processing"
  "table1_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
