
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_processing.cc" "bench/CMakeFiles/table1_processing.dir/table1_processing.cc.o" "gcc" "bench/CMakeFiles/table1_processing.dir/table1_processing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/hedc_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hedc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hedc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
