# Empty compiler generated dependencies file for table1_processing.
# This may be replaced when dependencies are built.
