# Empty dependencies file for abl_compression.
# This may be replaced when dependencies are built.
