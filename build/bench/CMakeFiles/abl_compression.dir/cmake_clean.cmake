file(REMOVE_RECURSE
  "CMakeFiles/abl_compression.dir/abl_compression.cc.o"
  "CMakeFiles/abl_compression.dir/abl_compression.cc.o.d"
  "abl_compression"
  "abl_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
