file(REMOVE_RECURSE
  "CMakeFiles/fig5_middle_tier_scaleout.dir/fig5_middle_tier_scaleout.cc.o"
  "CMakeFiles/fig5_middle_tier_scaleout.dir/fig5_middle_tier_scaleout.cc.o.d"
  "fig5_middle_tier_scaleout"
  "fig5_middle_tier_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_middle_tier_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
