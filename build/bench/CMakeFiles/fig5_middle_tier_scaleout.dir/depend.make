# Empty dependencies file for fig5_middle_tier_scaleout.
# This may be replaced when dependencies are built.
