# Empty dependencies file for abl_vertical_partition.
# This may be replaced when dependencies are built.
