file(REMOVE_RECURSE
  "CMakeFiles/abl_vertical_partition.dir/abl_vertical_partition.cc.o"
  "CMakeFiles/abl_vertical_partition.dir/abl_vertical_partition.cc.o.d"
  "abl_vertical_partition"
  "abl_vertical_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vertical_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
