# Empty compiler generated dependencies file for abl_wavelet_approx.
# This may be replaced when dependencies are built.
