file(REMOVE_RECURSE
  "CMakeFiles/abl_wavelet_approx.dir/abl_wavelet_approx.cc.o"
  "CMakeFiles/abl_wavelet_approx.dir/abl_wavelet_approx.cc.o.d"
  "abl_wavelet_approx"
  "abl_wavelet_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wavelet_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
