file(REMOVE_RECURSE
  "CMakeFiles/abl_session_pooling.dir/abl_session_pooling.cc.o"
  "CMakeFiles/abl_session_pooling.dir/abl_session_pooling.cc.o.d"
  "abl_session_pooling"
  "abl_session_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_session_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
