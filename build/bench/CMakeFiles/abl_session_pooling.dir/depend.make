# Empty dependencies file for abl_session_pooling.
# This may be replaced when dependencies are built.
