# Empty compiler generated dependencies file for table2_imaging_workload.
# This may be replaced when dependencies are built.
