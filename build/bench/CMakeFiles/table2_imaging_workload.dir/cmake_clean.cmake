file(REMOVE_RECURSE
  "CMakeFiles/table2_imaging_workload.dir/table2_imaging_workload.cc.o"
  "CMakeFiles/table2_imaging_workload.dir/table2_imaging_workload.cc.o.d"
  "table2_imaging_workload"
  "table2_imaging_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_imaging_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
