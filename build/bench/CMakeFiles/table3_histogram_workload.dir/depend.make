# Empty dependencies file for table3_histogram_workload.
# This may be replaced when dependencies are built.
