file(REMOVE_RECURSE
  "CMakeFiles/table3_histogram_workload.dir/table3_histogram_workload.cc.o"
  "CMakeFiles/table3_histogram_workload.dir/table3_histogram_workload.cc.o.d"
  "table3_histogram_workload"
  "table3_histogram_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_histogram_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
