# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/db_value_test[1]_include.cmake")
include("/root/repo/build/tests/db_btree_test[1]_include.cmake")
include("/root/repo/build/tests/db_sql_test[1]_include.cmake")
include("/root/repo/build/tests/db_database_test[1]_include.cmake")
include("/root/repo/build/tests/db_wal_test[1]_include.cmake")
include("/root/repo/build/tests/archive_test[1]_include.cmake")
include("/root/repo/build/tests/wavelet_test[1]_include.cmake")
include("/root/repo/build/tests/rhessi_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/dm_test[1]_include.cmake")
include("/root/repo/build/tests/pl_test[1]_include.cmake")
include("/root/repo/build/tests/web_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/db_explain_test[1]_include.cmake")
include("/root/repo/build/tests/db_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/db_checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/dm_remote_test[1]_include.cmake")
