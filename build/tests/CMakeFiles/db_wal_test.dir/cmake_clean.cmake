file(REMOVE_RECURSE
  "CMakeFiles/db_wal_test.dir/db_wal_test.cc.o"
  "CMakeFiles/db_wal_test.dir/db_wal_test.cc.o.d"
  "db_wal_test"
  "db_wal_test.pdb"
  "db_wal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_wal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
